#include "core/sim_executor.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "bgsim/fabric.hpp"
#include "bgsim/task.hpp"
#include "bgsim/torus.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "grid/array3d.hpp"

namespace gpawfd::core {

using bgsim::CountdownLatch;
using bgsim::EventLoop;
using bgsim::EventPtr;
using bgsim::Fabric;
using bgsim::MachineConfig;
using bgsim::Phase;
using bgsim::TraceLog;
using bgsim::SimMutex;
using bgsim::SimTask;
using bgsim::SimTime;
using bgsim::TorusNetwork;
using sched::Approach;
using sched::RunPlan;

std::int64_t stencil_flops_per_point(int radius) {
  const std::int64_t terms = 1 + 6 * static_cast<std::int64_t>(radius);
  return 2 * terms - 1;
}

namespace {

/// Rank placement: which physical node hosts each rank, and the shape of
/// the machine partition.
struct Placement {
  Vec3 node_dims;
  std::vector<int> rank_to_node;
};

/// Factor triple `t` of `count` that divides `grid` component-wise,
/// preferring the most cubic resulting node grid. Returns {0,0,0} when
/// none exists.
Vec3 find_core_split(Vec3 grid, int count) {
  Vec3 best{0, 0, 0};
  std::int64_t best_max = std::numeric_limits<std::int64_t>::max();
  for (Vec3 t : factor_triples(count)) {
    if (grid.x % t.x || grid.y % t.y || grid.z % t.z) continue;
    const Vec3 nd = grid / t;
    if (nd.max() < best_max) {
      best_max = nd.max();
      best = t;
    }
  }
  return best;
}

Placement make_placement(const RunPlan& plan) {
  const int nranks = plan.nranks();
  const int nodes = std::max(
      1, static_cast<int>(ceil_div(plan.total_cores(), plan.cores_per_node())));
  const int rpn = static_cast<int>(ceil_div(nranks, nodes));
  Placement p;
  p.rank_to_node.resize(static_cast<std::size_t>(nranks));

  const bool mapped = plan.opt().topology_mapping;
  const auto& decomp = plan.decomp();

  if (mapped && plan.approach() == Approach::kHybridMultiple) {
    // One rank per node: the machine partition is wired to the process
    // grid, every neighbour is one hop.
    p.node_dims = decomp.process_grid();
    for (int r = 0; r < nranks; ++r) p.rank_to_node[static_cast<std::size_t>(r)] = r;
    return p;
  }
  if (mapped && plan.approach() == Approach::kHybridMasterOnly) {
    p.node_dims = decomp.process_grid();
    for (int r = 0; r < nranks; ++r) p.rank_to_node[static_cast<std::size_t>(r)] = r;
    return p;
  }
  if (mapped && plan.approach() == Approach::kFlatOptimizedSubgroups) {
    // Cells are nodes; the ranks of a cell share its node.
    p.node_dims = decomp.process_grid();
    const int rpc = nranks / static_cast<int>(decomp.ranks());
    for (int r = 0; r < nranks; ++r)
      p.rank_to_node[static_cast<std::size_t>(r)] = r / rpc;
    return p;
  }
  if (mapped && nranks > nodes) {
    // Flat virtual mode with reorder: fold `rpn` neighbouring ranks onto
    // each node so rank-grid neighbours stay at most one hop apart.
    const Vec3 split = find_core_split(decomp.process_grid(), rpn);
    if (split != Vec3{0, 0, 0}) {
      p.node_dims = decomp.process_grid() / split;
      for (int r = 0; r < nranks; ++r) {
        const Vec3 c = decomp.coords_of(r);
        const Vec3 nc = c / split;
        p.rank_to_node[static_cast<std::size_t>(r)] =
            static_cast<int>(linear_index(nc, p.node_dims));
      }
      return p;
    }
    // No clean fold exists; fall through to linear packing.
  }
  if (mapped && nranks == nodes) {
    p.node_dims = decomp.process_grid();
    for (int r = 0; r < nranks; ++r) p.rank_to_node[static_cast<std::size_t>(r)] = r;
    return p;
  }

  // Unmapped (or unfoldable): the machine keeps its own most-cubic shape
  // and each group of rpn consecutive ranks lands on *some* node with no
  // relation to the process grid's geometry (deterministic shuffle — the
  // allocation order a scheduler without topology knowledge produces).
  p.node_dims = bgsim::torus_dims(nodes);
  std::vector<int> order(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) order[static_cast<std::size_t>(n)] = n;
  Rng shuffle_rng(0x5EED5EEDULL);
  for (int n = nodes - 1; n > 0; --n)
    std::swap(order[static_cast<std::size_t>(n)],
              order[shuffle_rng.next_below(static_cast<std::uint64_t>(n + 1))]);
  for (int r = 0; r < nranks; ++r)
    p.rank_to_node[static_cast<std::size_t>(r)] =
        order[static_cast<std::size_t>(std::min(r / rpn, nodes - 1))];
  return p;
}

/// Everything one stream coroutine needs, resolved once up front.
struct StreamEnv {
  int rank;
  int stream;
  Vec3 coords;
  std::array<int, 6> neighbor;      // peer rank per face, -1 = none
  std::array<std::int64_t, 6> face_bytes;  // per grid
  std::int64_t points_per_grid;
  std::int64_t flops_per_point;
  std::vector<int> batches;
  std::int64_t local_wrap_bytes = 0;  // per grid: single-process periodic dims
  bool serialized;                  // flat-original pattern
  bool multiple_mode;               // pays MULTIPLE lock per call
  bool master_only;                 // split compute + barrier per batch
  bool hybrid;                      // pays thread spawn cost
  int compute_threads;              // threads sharing one batch (master-only)
  int copy_sharers = 1;             // threads sharing pack/unpack copies
  int active_cores;                 // per-node concurrency for roofline
};

class Simulation {
 public:
  Simulation(const RunPlan& plan, const MachineConfig& cfg,
             TraceLog* trace)
      : plan_(plan),
        cfg_(cfg),
        trace_(trace),
        placement_(make_placement(plan)),
        net_(loop_, cfg, placement_.node_dims),
        fabric_(loop_, net_, placement_.rank_to_node),
        done_(loop_, plan.nranks() * plan.comm_streams_per_rank()) {
    locks_.reserve(static_cast<std::size_t>(plan.nranks()));
    for (int r = 0; r < plan.nranks(); ++r)
      locks_.push_back(std::make_unique<SimMutex>(loop_));
  }

  SimResult run() {
    for (int r = 0; r < plan_.nranks(); ++r)
      for (int s = 0; s < plan_.comm_streams_per_rank(); ++s)
        stream_main(make_env(r, s));
    loop_.run();
    GPAWFD_CHECK_MSG(done_.released(), "simulation deadlocked");

    SimResult res;
    res.seconds = bgsim::to_seconds(loop_.now());
    res.compute_core_seconds = bgsim::to_seconds(compute_ns_);
    const double core_time =
        res.seconds * static_cast<double>(plan_.total_cores());
    res.utilization = core_time > 0 ? res.compute_core_seconds / core_time : 0;
    res.bytes_sent_total = fabric_.total_bytes_sent();
    res.messages_total = fabric_.total_messages();
    res.bytes_sent_per_node =
        static_cast<double>(res.bytes_sent_total) /
        static_cast<double>(placement_.node_dims.product());
    res.phases.compute = bgsim::to_seconds(phase_ns_[0]);
    res.phases.copy = bgsim::to_seconds(phase_ns_[1]);
    res.phases.mpi_overhead = bgsim::to_seconds(phase_ns_[2]);
    res.phases.wait = bgsim::to_seconds(phase_ns_[3]);
    res.phases.barrier = bgsim::to_seconds(phase_ns_[4]);
    res.phases.spawn = bgsim::to_seconds(phase_ns_[5]);
    return res;
  }

 private:
  StreamEnv make_env(int rank, int stream) const {
    StreamEnv e;
    e.rank = rank;
    e.stream = stream;
    e.coords = plan_.coords_of_rank(rank);
    const auto& d = plan_.decomp();
    for (int f = 0; f < 6; ++f) {
      const grid::Face face = grid::kFaces[f];
      if (d.process_grid()[face.dim] <= 1) {
        e.neighbor[static_cast<std::size_t>(f)] = -1;  // local wrap
        e.face_bytes[static_cast<std::size_t>(f)] = 0;
        continue;
      }
      const bool boundary =
          face.side == 0 ? e.coords[face.dim] == 0
                         : e.coords[face.dim] ==
                               d.process_grid()[face.dim] - 1;
      if (!plan_.job().periodic && boundary) {
        e.neighbor[static_cast<std::size_t>(f)] = -1;
        e.face_bytes[static_cast<std::size_t>(f)] = 0;
        continue;
      }
      const Vec3 nc = d.neighbor(e.coords, face.dim, face.side);
      int peer = static_cast<int>(d.rank_of(nc));
      if (plan_.approach() == Approach::kFlatOptimizedSubgroups) {
        const int rpc = plan_.nranks() / static_cast<int>(d.ranks());
        peer = peer * rpc + rank % rpc;
      }
      e.neighbor[static_cast<std::size_t>(f)] = peer;
      e.face_bytes[static_cast<std::size_t>(f)] =
          plan_.face_bytes_per_grid(e.coords, face.dim);
    }
    e.points_per_grid = plan_.points_per_grid(e.coords);
    e.flops_per_point = stencil_flops_per_point(plan_.job().ghost);
    e.batches = plan_.batches_of_stream(rank, stream);
    if (plan_.job().periodic) {
      const Vec3 n = d.local_box(e.coords).shape();
      for (int dim = 0; dim < 3; ++dim) {
        if (d.process_grid()[dim] > 1) continue;
        std::int64_t cross = 1;
        for (int o = 0; o < 3; ++o)
          if (o != dim) cross *= n[o];
        e.local_wrap_bytes +=
            2 * 2 * plan_.job().ghost * cross * plan_.job().elem_bytes;
      }
    }
    e.serialized = !plan_.opt().nonblocking_tridim;
    e.multiple_mode = plan_.approach() == Approach::kHybridMultiple;
    e.master_only = plan_.approach() == Approach::kHybridMasterOnly;
    e.hybrid = e.multiple_mode || e.master_only;
    e.compute_threads = e.master_only ? plan_.threads_per_rank() : 1;
    // Master-only parallelizes the face copies across the worker pool
    // (they are compute, not MPI calls); everything else stays on the
    // master thread.
    e.copy_sharers = e.compute_threads;
    e.active_cores = std::min(plan_.total_cores(), plan_.cores_per_node());
    return e;
  }

  int stream_id(const StreamEnv& e) const {
    return e.rank * plan_.comm_streams_per_rank() + e.stream;
  }

  /// Close a span that began at `begin` (ends now) and account it.
  void record(const StreamEnv& e, Phase ph, SimTime begin) {
    const SimTime end = loop_.now();
    phase_ns_[static_cast<std::size_t>(ph)] += end - begin;
    if (trace_) trace_->add(stream_id(e), ph, begin, end);
  }

  int tag(int stream, int slot, int face) const {
    return stream * 64 + slot * 8 + face;
  }
  static int opposite(int face) { return face ^ 1; }

  SimTask stream_main(StreamEnv e) {
    if (e.hybrid) {
      const SimTime t0 = loop_.now();
      co_await loop_.delay(cfg_.thread_spawn_cost);
      record(e, Phase::kSpawn, t0);
    }

    for (int it = 0; it < plan_.job().iterations; ++it) {
      EventPtr fin = bgsim::make_event(loop_);
      if (e.serialized) {
        run_serialized_iteration(e, fin);
      } else {
        run_pipelined_iteration(e, fin);
      }
      co_await fin->wait();
    }
    done_.arrive();
  }

  struct BatchState {
    std::vector<EventPtr> events;
    int nreqs = 0;
  };

  /// Post the non-blocking exchange of one batch (mirrors
  /// HaloExchanger::begin).
  SimTask begin_batch(StreamEnv e, int batch_grids, int slot,
                      std::shared_ptr<BatchState> st, EventPtr posted) {
    // Post receives first.
    for (int f = 0; f < 6; ++f) {
      if (e.neighbor[static_cast<std::size_t>(f)] < 0) continue;
      const SimTime tmpi = loop_.now();
      if (e.multiple_mode) {
        SimMutex& lock = *locks_[static_cast<std::size_t>(e.rank)];
        co_await lock.acquire();
        co_await loop_.delay(cfg_.mpi_call_overhead +
                             cfg_.mpi_multiple_overhead);
        lock.release();
      } else {
        co_await loop_.delay(cfg_.mpi_call_overhead);
      }
      record(e, Phase::kMpiOverhead, tmpi);
      st->events.push_back(fabric_.post_recv(
          e.rank, e.neighbor[static_cast<std::size_t>(f)],
          tag(e.stream, slot, opposite(f)),
          e.face_bytes[static_cast<std::size_t>(f)] * batch_grids));
      ++st->nreqs;
    }
    // Pack and send.
    for (int f = 0; f < 6; ++f) {
      if (e.neighbor[static_cast<std::size_t>(f)] < 0) continue;
      const std::int64_t bytes =
          e.face_bytes[static_cast<std::size_t>(f)] * batch_grids;
      const SimTime tcopy = loop_.now();
      co_await loop_.delay(cfg_.copy_time(bytes) / e.copy_sharers);  // pack
      record(e, Phase::kCopy, tcopy);
      const SimTime tmpi = loop_.now();
      if (e.multiple_mode) {
        SimMutex& lock = *locks_[static_cast<std::size_t>(e.rank)];
        co_await lock.acquire();
        co_await loop_.delay(cfg_.mpi_call_overhead +
                             cfg_.mpi_multiple_overhead);
        lock.release();
      } else {
        co_await loop_.delay(cfg_.mpi_call_overhead);
      }
      record(e, Phase::kMpiOverhead, tmpi);
      st->events.push_back(fabric_.post_send(
          e.rank, e.neighbor[static_cast<std::size_t>(f)],
          tag(e.stream, slot, f), bytes));
      ++st->nreqs;
    }
    posted->set();
  }

  /// Wait for a batch and unpack (mirrors HaloExchanger::finish).
  SimTask finish_batch(StreamEnv e, int batch_grids,
                       std::shared_ptr<BatchState> st, EventPtr done) {
    const SimTime twait = loop_.now();
    for (auto& ev : st->events) co_await ev->wait();
    record(e, Phase::kWait, twait);
    const SimTime tmpi = loop_.now();
    co_await loop_.delay(cfg_.mpi_wait_overhead * st->nreqs);
    record(e, Phase::kMpiOverhead, tmpi);
    // Unpack received faces + local periodic wraps.
    std::int64_t copy_bytes = 0;
    for (int f = 0; f < 6; ++f) {
      if (e.neighbor[static_cast<std::size_t>(f)] >= 0)
        copy_bytes += e.face_bytes[static_cast<std::size_t>(f)] * batch_grids;
    }
    copy_bytes += e.local_wrap_bytes * batch_grids;
    const SimTime tcopy = loop_.now();
    co_await loop_.delay(cfg_.copy_time(copy_bytes) / e.copy_sharers);
    record(e, Phase::kCopy, tcopy);
    done->set();
  }

  /// Batch compute: plain per-core time, or master-only's fork/join with
  /// the work split across the node's threads.
  SimTask compute_batch(StreamEnv e, int batch_grids, EventPtr done) {
    const std::int64_t points = e.points_per_grid * batch_grids;
    const SimTime full = cfg_.stencil_compute_time(
        points, e.flops_per_point, e.active_cores);
    if (e.master_only) {
      // Every grid's computation is divided across the cores and joined
      // before the next grid (the paper's per-grid synchronization),
      // plus one fork/join pair for the batch's shared face copies.
      const SimTime t0 = loop_.now();
      co_await loop_.delay(full / e.compute_threads);
      record(e, Phase::kCompute, t0);
      const SimTime t1 = loop_.now();
      co_await loop_.delay((2 * batch_grids + 2) * cfg_.thread_barrier_cost);
      record(e, Phase::kBarrier, t1);
    } else {
      const SimTime t0 = loop_.now();
      co_await loop_.delay(full);
      record(e, Phase::kCompute, t0);
    }
    compute_ns_ += full;  // core-time is the same either way
    done->set();
  }

  SimTask run_pipelined_iteration(StreamEnv e, EventPtr iter_done) {
    // Same control flow as DistributedFd::run_stream.
    const auto& batches = e.batches;
    const std::size_t nb = batches.size();
    if (nb == 0) {
      iter_done->set();
      co_return;
    }
    const bool pipelined = plan_.opt().double_buffering && nb > 1;

    if (!pipelined) {
      for (std::size_t k = 0; k < nb; ++k) {
        auto st = std::make_shared<BatchState>();
        EventPtr posted = bgsim::make_event(loop_);
        begin_batch(e, batches[k], 0, st, posted);
        co_await posted->wait();
        EventPtr fin = bgsim::make_event(loop_);
        finish_batch(e, batches[k], st, fin);
        co_await fin->wait();
        EventPtr comp = bgsim::make_event(loop_);
        compute_batch(e, batches[k], comp);
        co_await comp->wait();
      }
      iter_done->set();
      co_return;
    }

    std::array<std::shared_ptr<BatchState>, 2> slots;
    {
      auto st = std::make_shared<BatchState>();
      EventPtr posted = bgsim::make_event(loop_);
      begin_batch(e, batches[0], 0, st, posted);
      co_await posted->wait();
      slots[0] = st;
    }
    for (std::size_t k = 0; k < nb; ++k) {
      const int slot = static_cast<int>(k % 2);
      if (k + 1 < nb) {
        auto st = std::make_shared<BatchState>();
        EventPtr posted = bgsim::make_event(loop_);
        begin_batch(e, batches[k + 1], 1 - slot, st, posted);
        co_await posted->wait();
        slots[static_cast<std::size_t>(1 - slot)] = st;
      }
      EventPtr fin = bgsim::make_event(loop_);
      finish_batch(e, batches[k], slots[static_cast<std::size_t>(slot)], fin);
      co_await fin->wait();
      EventPtr comp = bgsim::make_event(loop_);
      compute_batch(e, batches[k], comp);
      co_await comp->wait();
    }
    iter_done->set();
  }

  SimTask run_serialized_iteration(StreamEnv e, EventPtr iter_done) {
    // Original pattern: per grid, per dimension, blocking exchange; then
    // compute the grid.
    const int ngrids = [&] {
      int n = 0;
      for (int b : e.batches) n += b;
      return n;
    }();
    for (int g = 0; g < ngrids; ++g) {
      for (int d = 0; d < 3; ++d) {
        std::vector<EventPtr> events;
        int nreqs = 0;
        for (int side = 0; side < 2; ++side) {
          const int f = 2 * d + side;
          if (e.neighbor[static_cast<std::size_t>(f)] < 0) continue;
          const SimTime tmpi = loop_.now();
          if (e.multiple_mode) {
            SimMutex& lock = *locks_[static_cast<std::size_t>(e.rank)];
            co_await lock.acquire();
            co_await loop_.delay(cfg_.mpi_call_overhead +
                                 cfg_.mpi_multiple_overhead);
            lock.release();
          } else {
            co_await loop_.delay(cfg_.mpi_call_overhead);
          }
          record(e, Phase::kMpiOverhead, tmpi);
          events.push_back(fabric_.post_recv(
              e.rank, e.neighbor[static_cast<std::size_t>(f)],
              tag(e.stream, 0, opposite(f)),
              e.face_bytes[static_cast<std::size_t>(f)]));
          ++nreqs;
        }
        for (int side = 0; side < 2; ++side) {
          const int f = 2 * d + side;
          if (e.neighbor[static_cast<std::size_t>(f)] < 0) continue;
          const std::int64_t bytes = e.face_bytes[static_cast<std::size_t>(f)];
          const SimTime tcopy = loop_.now();
          co_await loop_.delay(cfg_.copy_time(bytes));
          record(e, Phase::kCopy, tcopy);
          const SimTime tmpi = loop_.now();
          if (e.multiple_mode) {
            SimMutex& lock = *locks_[static_cast<std::size_t>(e.rank)];
            co_await lock.acquire();
            co_await loop_.delay(cfg_.mpi_call_overhead +
                                 cfg_.mpi_multiple_overhead);
            lock.release();
          } else {
            co_await loop_.delay(cfg_.mpi_call_overhead);
          }
          record(e, Phase::kMpiOverhead, tmpi);
          events.push_back(fabric_.post_send(
              e.rank, e.neighbor[static_cast<std::size_t>(f)],
              tag(e.stream, 0, f), bytes));
          ++nreqs;
        }
        const SimTime twait = loop_.now();
        for (auto& ev : events) co_await ev->wait();
        record(e, Phase::kWait, twait);
        const SimTime tmpi2 = loop_.now();
        co_await loop_.delay(cfg_.mpi_wait_overhead * nreqs);
        record(e, Phase::kMpiOverhead, tmpi2);
        std::int64_t unpack = 0;
        for (int side = 0; side < 2; ++side) {
          const int f = 2 * d + side;
          if (e.neighbor[static_cast<std::size_t>(f)] >= 0)
            unpack += e.face_bytes[static_cast<std::size_t>(f)];
        }
        const SimTime tcopy2 = loop_.now();
        co_await loop_.delay(cfg_.copy_time(unpack));
        record(e, Phase::kCopy, tcopy2);
      }
      // Local wraps of single-process dimensions.
      if (e.local_wrap_bytes > 0) {
        const SimTime tcopy3 = loop_.now();
        co_await loop_.delay(cfg_.copy_time(e.local_wrap_bytes));
        record(e, Phase::kCopy, tcopy3);
      }
      EventPtr comp = bgsim::make_event(loop_);
      compute_batch(e, 1, comp);
      co_await comp->wait();
    }
    iter_done->set();
  }

  RunPlan plan_;
  MachineConfig cfg_;
  TraceLog* trace_;
  Placement placement_;
  EventLoop loop_;
  TorusNetwork net_;
  Fabric fabric_;
  std::vector<std::unique_ptr<SimMutex>> locks_;
  CountdownLatch done_;
  SimTime compute_ns_ = 0;
  std::array<SimTime, 6> phase_ns_{};
};

}  // namespace

SimResult simulate(const RunPlan& plan, const MachineConfig& machine,
                   TraceLog* trace) {
  Simulation sim(plan, machine, trace);
  return sim.run();
}

double simulate_sequential_seconds(const sched::JobConfig& job,
                                   const MachineConfig& machine) {
  const std::int64_t vol = job.grid_shape.product();
  const std::int64_t flops = stencil_flops_per_point(job.ghost);
  SimTime per_grid = machine.stencil_compute_time(vol, flops, 1);
  if (job.periodic) {
    // Local periodic wraps: pack+unpack both faces of every dimension.
    std::int64_t bytes = 0;
    for (int d = 0; d < 3; ++d) {
      std::int64_t cross = 1;
      for (int o = 0; o < 3; ++o)
        if (o != d) cross *= job.grid_shape[o];
      bytes += 2 * 2 * job.ghost * cross * job.elem_bytes;
    }
    per_grid += machine.copy_time(bytes);
  }
  return bgsim::to_seconds(per_grid * job.ngrids * job.iterations);
}

}  // namespace gpawfd::core
