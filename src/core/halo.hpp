// Halo (surface-point) exchange for batches of grids — the communication
// side of the distributed finite-difference operation.
//
// Two patterns, matching the paper:
//  * exchange_serialized(): the original GPAW pattern — for one grid,
//    exchange dimension 1, then 2, then 3, each blocking.
//  * begin()/finish(): the optimized pattern — initiate the exchange in
//    all three dimensions at once for a whole batch of grids (halos of
//    all grids packed into one message per face), wait, unpack. Separate
//    begin/finish is what double buffering pipelines across batches.
//
// Buffers are slot-indexed so two batches can be in flight (slot = batch
// index % 2).
#pragma once

#include <array>
#include <vector>

#include "grid/array3d.hpp"
#include "grid/decomposition.hpp"
#include "mp/comm.hpp"

namespace gpawfd::core {

/// Communicator rank of the neighbour across each of the six faces when
/// comm rank == decomposition cell rank (the plain, non-sub-group case).
inline std::array<int, 6> face_neighbors(const grid::Decomposition& d,
                                         Vec3 coords) {
  std::array<int, 6> out{};
  for (int f = 0; f < 6; ++f) {
    const grid::Face face = grid::kFaces[f];
    out[static_cast<std::size_t>(f)] =
        static_cast<int>(d.rank_of(d.neighbor(coords, face.dim, face.side)));
  }
  return out;
}

template <typename T>
class HaloExchanger {
 public:
  /// `coords`: this rank's cell in the decomposition. `neighbor_rank`:
  /// communicator rank owning the neighbouring cell across (dim, side) —
  /// already resolved by the engine (it differs between the plain and the
  /// sub-group approaches).
  HaloExchanger(mp::Comm& comm, const grid::Decomposition& decomp,
                Vec3 coords, std::array<int, 6> neighbor_rank, bool periodic,
                int tag_base)
      : comm_(&comm),
        decomp_(&decomp),
        coords_(coords),
        neighbor_(neighbor_rank),
        periodic_(periodic),
        tag_base_(tag_base) {}

  /// Initiate the exchange of every grid in `batch` in all three
  /// dimensions (non-blocking). `slot` selects the buffer set (0 or 1).
  void begin(std::span<grid::Array3D<T>* const> batch, int slot) {
    GPAWFD_CHECK(slot >= 0 && slot < kSlots);
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    GPAWFD_CHECK_MSG(!s.active, "slot " << slot << " already in flight");
    s.active = true;
    s.reqs.clear();

    for (int f = 0; f < 6; ++f) {
      const grid::Face face = grid::kFaces[f];
      if (!needs_comm(face.dim)) continue;
      if (!periodic_ && at_boundary(face)) continue;
      const std::int64_t per_grid =
          batch.empty() ? 0 : grid::face_points(*batch[0], face.dim);
      const std::int64_t total = per_grid * std::ssize(batch);
      auto& recv = s.recv_buf[static_cast<std::size_t>(f)];
      recv.resize(static_cast<std::size_t>(total));
      // Receive from the neighbour on this side; it sends its opposite
      // face's interior slab.
      s.reqs.push_back(comm_->irecv(
          std::as_writable_bytes(std::span<T>(recv.data(), recv.size())),
          neighbor_[static_cast<std::size_t>(f)], tag(slot, opposite(f))));
    }
    for (int f = 0; f < 6; ++f) {
      const grid::Face face = grid::kFaces[f];
      if (!needs_comm(face.dim)) continue;
      if (!periodic_ && at_boundary(face)) continue;
      auto& send = s.send_buf[static_cast<std::size_t>(f)];
      std::int64_t offset = 0;
      const std::int64_t per_grid =
          batch.empty() ? 0 : grid::face_points(*batch[0], face.dim);
      send.resize(static_cast<std::size_t>(per_grid * std::ssize(batch)));
      for (grid::Array3D<T>* g : batch) {
        grid::pack_face(*g, face,
                        std::span<T>(send.data() + offset,
                                     static_cast<std::size_t>(per_grid)));
        offset += per_grid;
      }
      s.reqs.push_back(comm_->isend(
          std::as_bytes(std::span<const T>(send.data(), send.size())),
          neighbor_[static_cast<std::size_t>(f)], tag(slot, f)));
    }
  }

  /// Wait for the batch started in `slot` and fill every ghost layer:
  /// received slabs, local periodic wraps (single-process dimensions) and
  /// zero boundaries (non-periodic edges).
  void finish(std::span<grid::Array3D<T>* const> batch, int slot) {
    GPAWFD_CHECK(slot >= 0 && slot < kSlots);
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    GPAWFD_CHECK_MSG(s.active, "slot " << slot << " is not in flight");
    comm_->wait_all(s.reqs);
    s.active = false;

    for (int f = 0; f < 6; ++f) {
      const grid::Face face = grid::kFaces[f];
      if (needs_comm(face.dim)) {
        if (!periodic_ && at_boundary(face)) {
          for (grid::Array3D<T>* g : batch) zero_ghost_face(*g, face);
          continue;
        }
        const auto& recv = s.recv_buf[static_cast<std::size_t>(f)];
        const std::int64_t per_grid =
            batch.empty() ? 0 : grid::face_points(*batch[0], face.dim);
        std::int64_t offset = 0;
        for (grid::Array3D<T>* g : batch) {
          grid::unpack_ghost(
              *g, face,
              std::span<const T>(recv.data() + offset,
                                 static_cast<std::size_t>(per_grid)));
          offset += per_grid;
        }
      } else if (face.side == 0) {  // handle the dimension once
        for (grid::Array3D<T>* g : batch) local_fill_dim(*g, face.dim);
      }
    }
  }

  /// The original blocking pattern for one grid: per dimension, exchange
  /// both faces and wait before moving to the next dimension.
  void exchange_serialized(grid::Array3D<T>& g) {
    for (int d = 0; d < 3; ++d) {
      if (!needs_comm(d)) {
        local_fill_dim(g, d);
        continue;
      }
      std::vector<mp::Request> reqs;
      std::array<std::vector<T>, 2> recv;
      std::array<std::vector<T>, 2> send;
      const std::int64_t pts = grid::face_points(g, d);
      for (int side = 0; side < 2; ++side) {
        const int f = 2 * d + side;
        const grid::Face face = grid::kFaces[f];
        if (!periodic_ && at_boundary(face)) continue;
        recv[static_cast<std::size_t>(side)].resize(
            static_cast<std::size_t>(pts));
        auto& r = recv[static_cast<std::size_t>(side)];
        reqs.push_back(comm_->irecv(
            std::as_writable_bytes(std::span<T>(r.data(), r.size())),
            neighbor_[static_cast<std::size_t>(f)], tag(0, opposite(f))));
      }
      for (int side = 0; side < 2; ++side) {
        const int f = 2 * d + side;
        const grid::Face face = grid::kFaces[f];
        if (!periodic_ && at_boundary(face)) continue;
        auto& sbuf = send[static_cast<std::size_t>(side)];
        sbuf.resize(static_cast<std::size_t>(pts));
        grid::pack_face(g, face, std::span<T>(sbuf.data(), sbuf.size()));
        reqs.push_back(comm_->isend(
            std::as_bytes(std::span<const T>(sbuf.data(), sbuf.size())),
            neighbor_[static_cast<std::size_t>(f)], tag(0, f)));
      }
      comm_->wait_all(reqs);
      for (int side = 0; side < 2; ++side) {
        const int f = 2 * d + side;
        const grid::Face face = grid::kFaces[f];
        if (!periodic_ && at_boundary(face)) {
          zero_ghost_face(g, face);
          continue;
        }
        const auto& r = recv[static_cast<std::size_t>(side)];
        grid::unpack_ghost(g, face,
                           std::span<const T>(r.data(), r.size()));
      }
    }
  }

  static constexpr int kSlots = 2;

 private:
  bool needs_comm(int dim) const {
    return decomp_->process_grid()[dim] > 1;
  }
  bool at_boundary(grid::Face f) const {
    return f.side == 0 ? coords_[f.dim] == 0
                       : coords_[f.dim] == decomp_->process_grid()[f.dim] - 1;
  }
  static int opposite(int face_index) { return face_index ^ 1; }
  int tag(int slot, int face_index) const {
    return tag_base_ + slot * 8 + face_index;
  }

  /// Single-process dimension: ghosts come from this rank itself
  /// (periodic wrap) or are zero (non-periodic).
  void local_fill_dim(grid::Array3D<T>& g, int d) {
    const std::int64_t pts = grid::face_points(g, d);
    std::vector<T> buf(static_cast<std::size_t>(pts));
    for (int side = 0; side < 2; ++side) {
      const grid::Face ghost_face{d, side};
      if (!periodic_) {
        zero_ghost_face(g, ghost_face);
        continue;
      }
      grid::pack_face(g, grid::Face{d, 1 - side},
                      std::span<T>(buf.data(), buf.size()));
      grid::unpack_ghost(g, ghost_face,
                         std::span<const T>(buf.data(), buf.size()));
    }
  }

  static void zero_ghost_face(grid::Array3D<T>& g, grid::Face face) {
    const std::int64_t pts = grid::face_points(g, face.dim);
    std::vector<T> zeros(static_cast<std::size_t>(pts), T{});
    grid::unpack_ghost(g, face,
                       std::span<const T>(zeros.data(), zeros.size()));
  }

  struct Slot {
    bool active = false;
    std::array<std::vector<T>, 6> send_buf;
    std::array<std::vector<T>, 6> recv_buf;
    std::vector<mp::Request> reqs;
  };

  mp::Comm* comm_;
  const grid::Decomposition* decomp_;
  Vec3 coords_;
  std::array<int, 6> neighbor_;
  bool periodic_;
  int tag_base_;
  std::array<Slot, kSlots> slots_;
};

}  // namespace gpawfd::core
