#include "core/result_codec.hpp"

#include <cstring>

#include "common/check.hpp"

namespace gpawfd::core {

// ---- little-endian primitives -----------------------------------------

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  append_u64(out, bits);
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double read_double(const std::uint8_t* p) {
  const std::uint64_t bits = read_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// ---- SimResult codec ---------------------------------------------------

std::vector<std::uint8_t> encode_sim_result(const SimResult& r) {
  std::vector<std::uint8_t> out;
  out.reserve(kSimResultCodecBytes);
  append_double(out, r.seconds);
  append_double(out, r.compute_core_seconds);
  append_double(out, r.utilization);
  append_u64(out, static_cast<std::uint64_t>(r.bytes_sent_total));
  append_double(out, r.bytes_sent_per_node);
  append_u64(out, static_cast<std::uint64_t>(r.messages_total));
  append_double(out, r.phases.compute);
  append_double(out, r.phases.copy);
  append_double(out, r.phases.mpi_overhead);
  append_double(out, r.phases.wait);
  append_double(out, r.phases.barrier);
  append_double(out, r.phases.spawn);
  return out;
}

SimResult decode_sim_result(const std::uint8_t* p, std::size_t n) {
  GPAWFD_CHECK_MSG(n == kSimResultCodecBytes,
                   "SimResult payload is " << n << " bytes, want "
                                           << kSimResultCodecBytes);
  SimResult r;
  r.seconds = read_double(p);
  r.compute_core_seconds = read_double(p + 8);
  r.utilization = read_double(p + 16);
  r.bytes_sent_total = static_cast<std::int64_t>(read_u64(p + 24));
  r.bytes_sent_per_node = read_double(p + 32);
  r.messages_total = static_cast<std::int64_t>(read_u64(p + 40));
  r.phases.compute = read_double(p + 48);
  r.phases.copy = read_double(p + 56);
  r.phases.mpi_overhead = read_double(p + 64);
  r.phases.wait = read_double(p + 72);
  r.phases.barrier = read_double(p + 80);
  r.phases.spawn = read_double(p + 88);
  return r;
}

}  // namespace gpawfd::core
