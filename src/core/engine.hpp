// The distributed finite-difference engine (functional executor).
//
// One DistributedFd instance runs on each MPI rank (a ThreadWorld thread
// in-process) and applies the stencil to this rank's piece of every
// real-space grid, using the programming approach and the section V
// optimizations configured in the RunPlan:
//
//   Flat original       — per grid: blocking dimension-serialized
//                         exchange, then compute.
//   Flat optimized      — batches of grids: non-blocking tri-dimensional
//                         exchange, double-buffered across batches.
//   Hybrid multiple     — threads_per_rank worker threads, each running
//                         the optimized pipeline over its own whole
//                         grids with its own communication stream;
//                         threads join once at the end.
//   Hybrid master-only  — the master thread runs the communication
//                         pipeline; each batch's computation is split
//                         into x-slabs across the worker pool (a
//                         fork/join barrier per batch).
//   Flat sub-groups     — section VII ablation: like flat optimized but
//                         each rank owns whole grids of its node-level
//                         sub-group.
//
// The numerics are identical across approaches (verified by the engine
// tests): only the communication pattern and thread structure differ.
#pragma once

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/halo.hpp"
#include "core/worker_pool.hpp"
#include "mp/comm.hpp"
#include "sched/plan.hpp"
#include "stencil/kernels.hpp"
#include "trace/stats.hpp"

namespace gpawfd::core {

template <typename T>
class DistributedFd {
 public:
  DistributedFd(mp::Comm& comm, const sched::RunPlan& plan,
                const stencil::Coeffs& coeffs)
      : comm_(&comm), plan_(plan), coeffs_(coeffs) {
    GPAWFD_CHECK_MSG(comm.size() == plan.nranks(),
                     "communicator has " << comm.size() << " ranks, plan "
                                         << plan.nranks());
    GPAWFD_CHECK(plan.job().ghost >= coeffs.radius);
    if (plan_.approach() == sched::Approach::kHybridMasterOnly)
      pool_ = std::make_unique<WorkerPool>(plan_.threads_per_rank());
  }

  /// Attach host wall-clock phase accounting ("exchange" = begin+finish
  /// of halo batches, "compute" = stencil kernels). Optional; shared by
  /// all threads of this rank.
  void set_timers(trace::PhaseTimers* timers) { timers_ = timers; }

  /// Local sub-grid shape on this rank (all grids share it).
  Vec3 local_shape() const {
    return plan_.decomp().local_box(coords()).shape();
  }

  Vec3 coords() const { return plan_.coords_of_rank(comm_->rank()); }

  /// Apply the stencil to every grid this rank participates in:
  /// out[g] = stencil(in[g]). `in` ghosts are overwritten by the halo
  /// exchange. Arrays not owned by this rank's streams (sub-group
  /// approach) are left untouched.
  void apply_all(std::span<grid::Array3D<T>> in,
                 std::span<grid::Array3D<T>> out) {
    GPAWFD_CHECK(std::ssize(in) == plan_.job().ngrids);
    GPAWFD_CHECK(std::ssize(out) == plan_.job().ngrids);
    for (const auto& g : in) {
      GPAWFD_CHECK(g.shape() == local_shape());
      GPAWFD_CHECK(g.ghost() >= plan_.job().ghost);
    }

    switch (plan_.approach()) {
      case sched::Approach::kFlatOriginal:
      case sched::Approach::kFlatOptimized:
      case sched::Approach::kFlatOptimizedSubgroups:
        run_stream(0, in, out);
        break;
      case sched::Approach::kHybridMultiple: {
        // One communicating thread per core; whole grids per thread; a
        // single join at the very end (constant synchronization cost).
        std::vector<std::thread> threads;
        std::exception_ptr first_error;
        std::mutex err_mu;
        for (int t = 0; t < plan_.threads_per_rank(); ++t) {
          threads.emplace_back([&, t] {
            try {
              run_stream(t, in, out);
            } catch (...) {
              std::lock_guard lock(err_mu);
              if (!first_error) first_error = std::current_exception();
            }
          });
        }
        for (auto& t : threads) t.join();
        if (first_error) std::rethrow_exception(first_error);
        break;
      }
      case sched::Approach::kHybridMasterOnly:
        run_stream(0, in, out);
        break;
    }
  }

 private:
  /// The per-stream pipeline: exchange + compute over this stream's
  /// batches, optionally double-buffered.
  void run_stream(int stream, std::span<grid::Array3D<T>> in,
                  std::span<grid::Array3D<T>> out) {
    const auto grid_ids = plan_.grids_of_stream(comm_->rank(), stream);
    const auto batch_sizes = plan_.batches_of_stream(comm_->rank(), stream);
    if (grid_ids.empty()) return;

    HaloExchanger<T> ex(*comm_, plan_.decomp(), coords(), neighbors(),
                        plan_.job().periodic, /*tag_base=*/stream * 64);

    if (!plan_.opt().nonblocking_tridim) {
      // Original pattern: per grid, serialized blocking exchange then
      // compute. (Batching/double buffering require non-blocking ops.)
      for (int g : grid_ids) {
        {
          auto t = timed("exchange");
          ex.exchange_serialized(in[static_cast<std::size_t>(g)]);
        }
        auto t = timed("compute");
        compute_one(g, in, out);
      }
      return;
    }

    // Build the batch structure: pointers into `in` plus the grid ids.
    std::vector<std::vector<grid::Array3D<T>*>> batches;
    std::vector<std::vector<int>> batch_ids;
    std::size_t pos = 0;
    for (int bs : batch_sizes) {
      std::vector<grid::Array3D<T>*> ptrs;
      std::vector<int> ids;
      for (int i = 0; i < bs; ++i) {
        const int g = grid_ids[pos++];
        ids.push_back(g);
        ptrs.push_back(&in[static_cast<std::size_t>(g)]);
      }
      batches.push_back(std::move(ptrs));
      batch_ids.push_back(std::move(ids));
    }

    const std::size_t nb = batches.size();
    const bool pipelined = plan_.opt().double_buffering && nb > 1;
    if (!pipelined) {
      for (std::size_t k = 0; k < nb; ++k) {
        {
          auto t = timed("exchange");
          ex.begin(batches[k], 0);
          ex.finish(batches[k], 0);
        }
        auto t = timed("compute");
        compute_batch(batch_ids[k], in, out);
      }
      return;
    }

    // Double buffering (section V): while batch k computes, batch k+1's
    // exchange is in flight.
    {
      auto t = timed("exchange");
      ex.begin(batches[0], 0);
    }
    for (std::size_t k = 0; k < nb; ++k) {
      const int slot = static_cast<int>(k % 2);
      {
        auto t = timed("exchange");
        if (k + 1 < nb) ex.begin(batches[k + 1], 1 - slot);
        ex.finish(batches[k], slot);
      }
      auto t = timed("compute");
      compute_batch(batch_ids[k], in, out);
    }
  }

  /// RAII phase span when timers are attached (no-op otherwise).
  std::optional<trace::PhaseTimers::Scoped> timed(const char* phase) {
    if (!timers_) return std::nullopt;
    return std::optional<trace::PhaseTimers::Scoped>(std::in_place, *timers_,
                                                     phase);
  }

  void compute_batch(const std::vector<int>& ids,
                     std::span<grid::Array3D<T>> in,
                     std::span<grid::Array3D<T>> out) {
    if (plan_.approach() == sched::Approach::kHybridMasterOnly) {
      // Split every grid of the batch into x-slabs across the pool; the
      // run() call is the per-batch fork/join synchronization.
      const std::int64_t nx = local_shape().x;
      const int nt = pool_->size();
      pool_->run([&](int tid) {
        const std::int64_t x0 = nx * tid / nt;
        const std::int64_t x1 = nx * (tid + 1) / nt;
        for (int g : ids)
          stencil::apply_slab(in[static_cast<std::size_t>(g)],
                              out[static_cast<std::size_t>(g)], coeffs_, x0,
                              x1);
      });
      if (timers_)
        timers_->add_count("compute", static_cast<std::int64_t>(ids.size()) *
                                          local_shape().product());
    } else {
      for (int g : ids) compute_one(g, in, out);
    }
  }

  void compute_one(int g, std::span<grid::Array3D<T>> in,
                   std::span<grid::Array3D<T>> out) {
    stencil::apply(in[static_cast<std::size_t>(g)],
                   out[static_cast<std::size_t>(g)], coeffs_);
    if (timers_) timers_->add_count("compute", local_shape().product());
  }

  /// Communicator rank of the neighbour across each of the six faces.
  std::array<int, 6> neighbors() const {
    const auto& d = plan_.decomp();
    const Vec3 c = coords();
    std::array<int, 6> out{};
    for (int f = 0; f < 6; ++f) {
      const grid::Face face = grid::kFaces[f];
      const Vec3 nc = d.neighbor(c, face.dim, face.side);
      const int cell = static_cast<int>(d.rank_of(nc));
      if (plan_.approach() == sched::Approach::kFlatOptimizedSubgroups) {
        const int rpc = plan_.nranks() / static_cast<int>(d.ranks());
        out[static_cast<std::size_t>(f)] = cell * rpc + comm_->rank() % rpc;
      } else {
        out[static_cast<std::size_t>(f)] = cell;
      }
    }
    return out;
  }

  mp::Comm* comm_;
  sched::RunPlan plan_;
  stencil::Coeffs coeffs_;
  std::unique_ptr<WorkerPool> pool_;
  trace::PhaseTimers* timers_ = nullptr;
};

}  // namespace gpawfd::core
