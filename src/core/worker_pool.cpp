#include "core/worker_pool.hpp"

namespace gpawfd::core {

WorkerPool::WorkerPool(int nthreads) : nthreads_(nthreads) {
  GPAWFD_CHECK(nthreads >= 1);
  threads_.reserve(static_cast<std::size_t>(nthreads - 1));
  for (int id = 1; id < nthreads; ++id)
    threads_.emplace_back([this, id] { worker_loop(id); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  {
    std::lock_guard lock(mu_);
    GPAWFD_CHECK_MSG(job_ == nullptr, "WorkerPool::run is not reentrant");
    job_ = &fn;
    remaining_ = nthreads_;
    ++generation_;
  }
  cv_start_.notify_all();

  fn(0);  // the master participates

  std::unique_lock lock(mu_);
  if (--remaining_ == 0) {
    job_ = nullptr;
    cv_done_.notify_all();
  } else {
    const std::uint64_t gen = generation_;
    cv_done_.wait(lock, [&] { return remaining_ == 0 || generation_ != gen; });
    job_ = nullptr;
  }
}

void WorkerPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(id);
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace gpawfd::core
