// Fixed-width binary codec for core::SimResult plus the little-endian
// primitives it is built from. One implementation shared by every layer
// that serializes results — the RPC wire format (src/net/frame) and the
// persistent result store (src/svc/cache_store) — so a result that
// crosses the wire and a result recovered from disk are byte-identical
// by construction: 12 little-endian 8-byte fields, doubles stored as
// their IEEE-754 bit images, so encoding round-trips to the last bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sim_executor.hpp"

namespace gpawfd::core {

// ---- little-endian primitives -----------------------------------------

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void append_double(std::vector<std::uint8_t>& out, double v);
std::uint32_t read_u32(const std::uint8_t* p);
std::uint64_t read_u64(const std::uint8_t* p);
double read_double(const std::uint8_t* p);

// ---- SimResult codec ---------------------------------------------------

/// Encoded size: 12 fields x 8 bytes. A change here is a format change
/// for both the wire protocol and the on-disk store — bump
/// net::kWireVersion and svc::kStoreVersion together with it.
inline constexpr std::size_t kSimResultCodecBytes = 12 * 8;

std::vector<std::uint8_t> encode_sim_result(const SimResult& r);
/// Throws Error on a size mismatch.
SimResult decode_sim_result(const std::uint8_t* p, std::size_t n);

}  // namespace gpawfd::core
