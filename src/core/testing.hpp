// Deterministic workload construction and a sequential ground-truth
// reference, shared by the engine tests, the property tests and the
// examples. Grid values are a pure function of (grid id, global
// coordinate), so every rank can fill its sub-grid independently and any
// result can be checked point-wise against the sequential answer.
#pragma once

#include <complex>

#include "grid/array3d.hpp"
#include "grid/box.hpp"
#include "grid/decomposition.hpp"
#include "stencil/kernels.hpp"

namespace gpawfd::core::testing {

/// Deterministic pseudo-random value of grid `g` at global point `p`
/// (SplitMix64 finalizer over the packed coordinates, mapped to [-1, 1]).
inline double test_value(int g, Vec3 p) {
  std::uint64_t z = static_cast<std::uint64_t>(g) * 0x9e3779b97f4a7c15ULL;
  z ^= static_cast<std::uint64_t>(p.x) + 0x517cc1b727220a95ULL +
       (z << 6) + (z >> 2);
  z ^= static_cast<std::uint64_t>(p.y) + 0x2545f4914f6cdd1dULL +
       (z << 6) + (z >> 2);
  z ^= static_cast<std::uint64_t>(p.z) + 0x9e3779b97f4a7c15ULL +
       (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}

template <typename T>
T test_value_t(int g, Vec3 p) {
  if constexpr (std::is_same_v<T, std::complex<double>>) {
    return {test_value(g, p), test_value(g + 7919, p)};
  } else {
    return static_cast<T>(test_value(g, p));
  }
}

/// Fill a rank-local array covering `box` with grid `g`'s global values.
template <typename T>
void fill_local(grid::Array3D<T>& a, const grid::Box3& box, int g) {
  GPAWFD_CHECK(a.shape() == box.shape());
  a.for_each_interior(
      [&](Vec3 p, T& v) { v = test_value_t<T>(g, box.lo + p); });
}

/// Sequential ground truth: the stencil applied to the whole global grid
/// `g` with periodic or zero boundaries.
template <typename T>
grid::Array3D<T> sequential_reference(Vec3 gshape, int ghost, int g,
                                      const stencil::Coeffs& c,
                                      bool periodic) {
  grid::Array3D<T> in(gshape, ghost), out(gshape, ghost);
  fill_local(in, grid::Box3{{0, 0, 0}, gshape}, g);
  if (periodic)
    grid::local_periodic_fill(in);
  else
    in.fill_ghosts(T{});
  stencil::apply_reference(in, out, c);
  return out;
}

}  // namespace gpawfd::core::testing
