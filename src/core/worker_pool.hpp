// A manually managed thread pool, mirroring the paper's choice to "handle
// the threading manually in pthread". Used by the hybrid master-only
// approach: the master enqueues one task per core, all threads (master
// included) execute, and run() returns only when every task finished —
// the per-batch thread synchronization whose cost the paper analyzes.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace gpawfd::core {

class WorkerPool {
 public:
  /// `nthreads` total workers; the thread calling run() acts as worker 0,
  /// so nthreads-1 threads are spawned.
  explicit WorkerPool(int nthreads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return nthreads_; }

  /// Execute fn(worker_id) on every worker (caller runs id 0) and return
  /// when all are done — a fork/join barrier.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_loop(int id);

  int nthreads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gpawfd::core
