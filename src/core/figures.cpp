#include "core/figures.hpp"

#include <algorithm>
#include <limits>

#include "common/math.hpp"

namespace gpawfd::core {

using sched::Approach;
using sched::JobConfig;
using sched::Optimizations;
using sched::RunPlan;

namespace {

/// Streams whose grid counts the sample sizes must respect: grids are
/// dealt round-robin over this many owners.
int stream_fanout(Approach a, int total_cores, int cores_per_node) {
  if (a == Approach::kHybridMultiple ||
      a == Approach::kFlatOptimizedSubgroups)
    return std::min(total_cores, cores_per_node);
  return 1;
}

SimResult run_once(Approach a, JobConfig job, const Optimizations& opt,
                   int cores, int cpn, const bgsim::MachineConfig& m) {
  const auto plan = RunPlan::make(a, job, opt, cores, cpn);
  return simulate(plan, m);
}

}  // namespace

SimResult simulate_job(const SimJobSpec& spec) {
  return simulate_scaled(spec.approach, spec.job, spec.opt, spec.total_cores,
                         spec.cores_per_node, spec.machine, spec.scaled);
}

SimResult simulate_scaled(Approach approach, const JobConfig& job,
                          const Optimizations& opt, int total_cores,
                          int cores_per_node,
                          const bgsim::MachineConfig& machine,
                          const ScaledSimOptions& sopt) {
  GPAWFD_CHECK(sopt.grid_cap >= 8);
  if (job.ngrids <= sopt.grid_cap)
    return run_once(approach, job, opt, total_cores, cores_per_node,
                    machine);

  // Sample sizes: multiples of the stream fanout, large enough that every
  // stream runs several steady-state batches beyond the ramp-up.
  const int fan = stream_fanout(approach, total_cores, cores_per_node);
  // Both sample points must sit in the affine regime. The serialized
  // pattern has no cross-grid pipelining, so it is affine from the first
  // grid; the batched pipeline needs several steady-state batches past
  // the ramp-up and double-buffer fill.
  int n1, n2;
  if (!opt.nonblocking_tridim) {
    n1 = 4 * fan;
    n2 = 3 * n1;
  } else {
    const int unit = fan * std::max(1, opt.batch_size);
    n1 = static_cast<int>(
        round_up(std::max<std::int64_t>(3 * unit, sopt.grid_cap / 2), unit));
    n2 = 2 * n1;
  }
  if (job.ngrids <= n2)
    return run_once(approach, job, opt, total_cores, cores_per_node,
                    machine);

  JobConfig j1 = job, j2 = job;
  j1.ngrids = n1;
  j2.ngrids = n2;
  const SimResult r1 =
      run_once(approach, j1, opt, total_cores, cores_per_node, machine);
  const SimResult r2 =
      run_once(approach, j2, opt, total_cores, cores_per_node, machine);

  const double dn = static_cast<double>(n2 - n1);
  const double extra = static_cast<double>(job.ngrids - n2);
  auto affine = [&](double v1, double v2) {
    return v2 + (v2 - v1) / dn * extra;
  };

  SimResult out;
  out.seconds = affine(r1.seconds, r2.seconds);
  out.compute_core_seconds =
      affine(r1.compute_core_seconds, r2.compute_core_seconds);
  out.utilization =
      out.seconds > 0
          ? out.compute_core_seconds /
                (out.seconds * static_cast<double>(total_cores))
          : 0;
  out.bytes_sent_total = static_cast<std::int64_t>(
      affine(static_cast<double>(r1.bytes_sent_total),
             static_cast<double>(r2.bytes_sent_total)));
  out.bytes_sent_per_node =
      affine(r1.bytes_sent_per_node, r2.bytes_sent_per_node);
  out.messages_total = static_cast<std::int64_t>(
      affine(static_cast<double>(r1.messages_total),
             static_cast<double>(r2.messages_total)));
  out.phases.compute = affine(r1.phases.compute, r2.phases.compute);
  out.phases.copy = affine(r1.phases.copy, r2.phases.copy);
  out.phases.mpi_overhead =
      affine(r1.phases.mpi_overhead, r2.phases.mpi_overhead);
  out.phases.wait = affine(r1.phases.wait, r2.phases.wait);
  out.phases.barrier = affine(r1.phases.barrier, r2.phases.barrier);
  out.phases.spawn = affine(r1.phases.spawn, r2.phases.spawn);
  return out;
}

int best_batch_size(Approach approach, const JobConfig& job,
                    Optimizations opt, int total_cores, int cores_per_node,
                    const bgsim::MachineConfig& machine, int max_batch,
                    const ScaledSimOptions& sopt) {
  const int fan = stream_fanout(approach, total_cores, cores_per_node);
  const int per_stream = std::max(1, job.ngrids / std::max(1, fan));
  // Sweep descending: large batches are the cheapest to simulate, and
  // run time is roughly unimodal in the batch size, so once times keep
  // worsening well past the best seen we can stop.
  int start = 1;
  for (int b = 1; b <= std::min(max_batch, per_stream); b *= 2)
    start = b;  // largest admissible power of two
  int best = 1;
  double best_t = std::numeric_limits<double>::infinity();
  int worsening = 0;
  for (int b = start; b >= 1; b /= 2) {
    opt.batch_size = b;
    // A small cap keeps the sweep cheap; the relative ranking of batch
    // sizes stabilizes after a few steady-state batches.
    ScaledSimOptions sweep_opt = sopt;
    sweep_opt.grid_cap = std::max(8, std::min(sopt.grid_cap, 8 * b * fan));
    const SimResult r = simulate_scaled(approach, job, opt, total_cores,
                                        cores_per_node, machine, sweep_opt);
    if (r.seconds < best_t) {
      best_t = r.seconds;
      best = b;
      worsening = 0;
    } else if (++worsening >= 3) {
      break;
    }
  }
  return best;
}

}  // namespace gpawfd::core
