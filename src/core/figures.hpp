// Drivers for the paper's figures: scaled simulation with affine
// extrapolation over the grid count, and the per-point best-batch-size
// search ("the best batch-size has been found for every number of
// CPU-cores", Figs. 6 and 7).
//
// Why extrapolation is sound: every stream processes its grids as a
// pipeline whose per-batch cost reaches a steady state after the first
// couple of batches (ramp-up + filling the double buffer). Total time is
// therefore affine in the number of grids: T(n) = a + b*n. Two simulated
// points at moderate n recover (a, b) exactly; tests verify the affinity
// on the simulator itself. Communication bytes/messages are exactly
// linear in n.
#pragma once

#include "core/sim_executor.hpp"

namespace gpawfd::core {

struct ScaledSimOptions {
  /// Run the full job directly when ngrids <= cap; otherwise simulate at
  /// two sampled grid counts and extrapolate.
  int grid_cap = 256;

  friend bool operator==(const ScaledSimOptions&,
                         const ScaledSimOptions&) = default;
};

/// A fully self-contained simulation request: everything simulate_scaled
/// needs, bundled so it can be queued, hashed, and cached by the service
/// layer (src/svc).
struct SimJobSpec {
  sched::Approach approach = sched::Approach::kHybridMultiple;
  sched::JobConfig job;
  sched::Optimizations opt;
  int total_cores = 4;
  int cores_per_node = 4;
  bgsim::MachineConfig machine = bgsim::MachineConfig::bluegene_p();
  ScaledSimOptions scaled;
};

/// Re-entrant simulate entry point: `simulate_scaled` on a bundled spec.
/// Safe to call concurrently from many threads — every call builds its
/// own RunPlan and event loop (the simulator's current-loop pointer is
/// thread-local) and touches no shared mutable state. This is the
/// executor the service layer's worker pool drives.
SimResult simulate_job(const SimJobSpec& spec);

/// Simulate `plan`'s job, extrapolating over ngrids when it exceeds the
/// cap. Exact (direct simulation) below the cap.
SimResult simulate_scaled(sched::Approach approach,
                          const sched::JobConfig& job,
                          const sched::Optimizations& opt, int total_cores,
                          int cores_per_node,
                          const bgsim::MachineConfig& machine,
                          const ScaledSimOptions& sopt = {});

/// Sweep batch sizes (powers of two up to `max_batch`, clamped to the
/// per-stream grid count) and return the batch size with the smallest
/// simulated run time.
int best_batch_size(sched::Approach approach, const sched::JobConfig& job,
                    sched::Optimizations opt, int total_cores,
                    int cores_per_node, const bgsim::MachineConfig& machine,
                    int max_batch = 128,
                    const ScaledSimOptions& sopt = {});

}  // namespace gpawfd::core
