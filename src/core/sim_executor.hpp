// Simulated executor: runs a RunPlan on the Blue Gene/P machine model
// (bgsim) in virtual time. Every communication stream of the functional
// engine becomes a coroutine that pays the modelled CPU costs (MPI call
// overheads, MULTIPLE-mode locking, face pack/unpack copies, stencil
// compute time, thread barriers) and moves its halo messages through the
// simulated torus. The communication pattern — who sends how many bytes
// to whom, in which order, with how much overlap — is byte-for-byte the
// pattern of the functional engine (cross-checked by tests), which is
// what makes figure-scale runs at 16384 cores trustworthy.
#pragma once

#include "bgsim/machine.hpp"
#include "bgsim/trace_log.hpp"
#include "sched/plan.hpp"

namespace gpawfd::core {

/// Aggregate virtual time per activity, summed over all streams
/// (elapsed stream time, so master-only's split compute counts once).
struct PhaseBreakdown {
  double compute = 0;
  double copy = 0;
  double mpi_overhead = 0;
  double wait = 0;
  double barrier = 0;
  double spawn = 0;
};

/// What one simulated run reports — the quantities the paper's figures
/// are built from.
struct SimResult {
  /// Wall-clock (virtual) seconds for the whole job.
  double seconds = 0;
  /// Sum over all cores of time spent in stencil computation.
  double compute_core_seconds = 0;
  /// compute_core_seconds / (total_cores * seconds) — the paper's
  /// "CPU utilization" (36% -> 70% headline).
  double utilization = 0;
  /// MPI-level bytes injected, total and per node (Fig. 6 right axis
  /// counts what a node's ranks send).
  std::int64_t bytes_sent_total = 0;
  double bytes_sent_per_node = 0;
  std::int64_t messages_total = 0;
  PhaseBreakdown phases;
};

/// Simulate `plan` on `machine`. Deterministic: same inputs, same result.
/// Pass a TraceLog to capture a per-stream timeline (Chrome tracing
/// export) of the run.
SimResult simulate(const sched::RunPlan& plan,
                   const bgsim::MachineConfig& machine,
                   bgsim::TraceLog* trace = nullptr);

/// One core, no communication: the sequential baseline of the speedup
/// graphs.
double simulate_sequential_seconds(const sched::JobConfig& job,
                                   const bgsim::MachineConfig& machine);

/// Flops per point of the radius-`ghost` axis-separable stencil
/// (13-point for the paper's radius 2 -> 25 flops).
std::int64_t stencil_flops_per_point(int radius);

}  // namespace gpawfd::core
