// Span log for simulated executions. Collects (stream, phase, begin,
// end) intervals in virtual time and exports them as a Chrome tracing
// JSON (chrome://tracing / Perfetto), so a simulated 4096-core run can
// be inspected visually: where each core computed, packed, posted MPI
// calls, or sat waiting for the torus.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "bgsim/sim_time.hpp"

namespace gpawfd::bgsim {

/// Phase categories of a simulated communication stream.
enum class Phase : std::uint8_t {
  kCompute,
  kCopy,         // face pack/unpack memcpy work
  kMpiOverhead,  // CPU cost of MPI calls (incl. MULTIPLE locking)
  kWait,         // blocked on message completion
  kBarrier,      // thread fork/join synchronization
  kSpawn,        // one-time thread start-up
};

const char* to_string(Phase p);

class TraceLog {
 public:
  struct Span {
    std::int32_t stream;  // global stream id (rank * streams + thread)
    Phase phase;
    SimTime begin;
    SimTime end;
  };

  void add(std::int32_t stream, Phase phase, SimTime begin, SimTime end) {
    if (end > begin) spans_.push_back(Span{stream, phase, begin, end});
  }

  const std::vector<Span>& spans() const { return spans_; }

  /// Total virtual time per phase across all streams.
  double total_seconds(Phase p) const;

  /// Chrome tracing "trace event" JSON (complete events, microseconds).
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace gpawfd::bgsim
