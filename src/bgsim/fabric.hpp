// Message layer of the simulator: MPI-style (source, destination, tag)
// matching in virtual time on top of the torus.
//
// The CPU-side cost of MPI calls (call overhead, MULTIPLE-mode locking)
// is paid by the calling core coroutine *before* it posts here — the
// fabric itself models only what BGP's DMA engine does asynchronously:
// moving bytes and completing requests. That split is exactly why
// non-blocking communication overlaps with computation on BGP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "bgsim/task.hpp"
#include "bgsim/torus.hpp"

namespace gpawfd::bgsim {

class Fabric {
 public:
  /// `rank_to_node[r]` places every rank on a physical node.
  Fabric(EventLoop& loop, TorusNetwork& net, std::vector<int> rank_to_node);

  int ranks() const { return static_cast<int>(rank_to_node_.size()); }
  int node_of_rank(int rank) const {
    return rank_to_node_[static_cast<std::size_t>(rank)];
  }

  /// Begin sending `bytes` from `src` to `dst`; the returned event fires
  /// when the message has been delivered (buffer reuse is safe earlier —
  /// the engine treats delivery as the conservative completion point).
  EventPtr post_send(int src, int dst, int tag, std::int64_t bytes);

  /// Post a receive; the event fires when a matching message (FIFO per
  /// (src, tag)) has arrived.
  EventPtr post_recv(int dst, int src, int tag, std::int64_t bytes);

  /// Bytes a rank has injected (loopback included — this is the MPI-level
  /// traffic the paper's Fig. 6 right axis counts).
  std::int64_t rank_bytes_sent(int rank) const {
    return rank_bytes_sent_[static_cast<std::size_t>(rank)];
  }
  std::int64_t rank_messages_sent(int rank) const {
    return rank_messages_sent_[static_cast<std::size_t>(rank)];
  }
  std::int64_t total_bytes_sent() const { return total_bytes_sent_; }
  std::int64_t total_messages() const { return total_messages_; }

 private:
  struct Key {
    int src, dst, tag;
    auto operator<=>(const Key&) const = default;
  };

  EventLoop* loop_;
  TorusNetwork* net_;
  std::vector<int> rank_to_node_;
  // Arrived-but-unmatched deliveries and posted-but-unmatched receives.
  std::map<Key, std::deque<std::int64_t>> arrived_;   // payload bytes
  std::map<Key, std::deque<EventPtr>> waiting_recv_;
  std::vector<std::int64_t> rank_bytes_sent_;
  std::vector<std::int64_t> rank_messages_sent_;
  std::int64_t total_bytes_sent_ = 0;
  std::int64_t total_messages_ = 0;
};

}  // namespace gpawfd::bgsim
