// Blue Gene/P machine model — Table I of the paper plus the software
// cost constants the model needs. All tunables live here so the
// calibration tests and ablation benchmarks can vary them explicitly.
#pragma once

#include <cstdint>

#include "bgsim/sim_time.hpp"
#include "common/vec3.hpp"

namespace gpawfd::bgsim {

struct MachineConfig {
  // ---- Table I -----------------------------------------------------
  int cores_per_node = 4;             // PowerPC 450 cores
  double cpu_hz = 850e6;              // 850 MHz
  double peak_flops_per_node = 13.6e9;
  double mem_bandwidth = 13.6e9;      // bytes/s, shared by the node
  std::int64_t main_memory_bytes = std::int64_t{2} << 30;  // 2 GB
  double link_bandwidth = 425e6;      // bytes/s per torus link direction
  // 6 links x 2 directions x 425 MB/s = 5.1 GB/s aggregate per node.

  // ---- Torus network model ------------------------------------------
  /// Fraction of raw link bandwidth a message stream achieves (packet
  /// headers, alignment). Chosen so the Fig. 2 asymptote lands at the
  /// paper's ~370-390 MB/s.
  double packet_efficiency = 0.88;
  /// Router traversal latency per hop.
  SimTime hop_latency = 64;
  /// DMA injection fixed cost (hardware side, overlaps with CPU).
  SimTime injection_latency = 600;
  /// Partitions smaller than this are wired as a mesh (no wrap links).
  int torus_min_nodes = 512;
  /// On-node "loopback" path for ranks sharing a node in virtual mode:
  /// memory-to-memory copy bandwidth and latency.
  double loopback_bandwidth = 6.8e9;  // read+write through 13.6 GB/s DRAM
  SimTime loopback_latency = 500;

  // ---- MPI (MPICH2) software model ----------------------------------
  /// CPU time burned by one isend/irecv call in SINGLE thread mode.
  SimTime mpi_call_overhead = 1300;
  /// Extra CPU time per call in MULTIPLE mode (lock acquire/release,
  /// thread-safe queue handoff); on top of this, concurrent calls from
  /// one rank serialize on a lock. MPICH2's MULTIPLE mode on BGP was
  /// known to be expensive — this is what batching amortizes for the
  /// hybrid approaches.
  SimTime mpi_multiple_overhead = 3'000;
  /// CPU time to complete a wait once the request is already done.
  SimTime mpi_wait_overhead = 250;
  /// Collective (tree) network: latency and per-byte cost of a global
  /// reduce/bcast; the global-interrupt barrier latency.
  SimTime tree_latency = 5'000;
  double tree_bandwidth = 300e6;
  SimTime barrier_latency = 1'300;

  // ---- Node compute model -------------------------------------------
  /// Effective scalar flop rate of one core running the C stencil kernel
  /// (no double-hummer SIMD: ~0.5 flops/cycle sustained).
  double core_flops = 425e6;
  /// Effective per-core bandwidth for pack/unpack memcpy work (an
  /// 850 MHz in-order core copying strided face slabs).
  double memcpy_bandwidth = 1.2e9;
  /// Per-extra-active-core compute slowdown from shared L3 / memory
  /// contention: t(active) = t(1) * (1 + slope * (active - 1)).
  double smp_slowdown = 0.04;
  /// Per-point memory traffic of the stencil (streaming read + write
  /// with write-allocate), used for the roofline check.
  double stencil_bytes_per_point = 24.0;
  /// pthread fork/join barrier cost per use (850 MHz in-order cores,
  /// wakeup through the shared L3). Hybrid master-only pays one pair per
  /// grid-computation — the penalty "proportional to the number of
  /// grids" of section VI.
  SimTime thread_barrier_cost = 3'000;
  /// One-time cost of spawning the worker threads of a rank.
  SimTime thread_spawn_cost = 25'000;

  /// The machine the paper ran on.
  static MachineConfig bluegene_p() { return {}; }

  /// Time for one core to compute `points` stencil points of
  /// `flops_per_point` each: roofline max of flop time and memory time
  /// (memory bandwidth shared fairly among `active_cores`).
  SimTime stencil_compute_time(std::int64_t points,
                               std::int64_t flops_per_point,
                               int active_cores = 1) const {
    const int active = active_cores > 0 ? active_cores : 1;
    const double flop_t =
        static_cast<double>(points * flops_per_point) / core_flops;
    const double mem_bw_share = mem_bandwidth / static_cast<double>(active);
    const double mem_t =
        static_cast<double>(points) * stencil_bytes_per_point / mem_bw_share;
    const double contention = 1.0 + smp_slowdown * (active - 1);
    return from_seconds((flop_t > mem_t ? flop_t : mem_t) * contention);
  }

  /// Time for one core to pack/unpack `bytes` of face data.
  SimTime copy_time(std::int64_t bytes) const {
    return transfer_time(bytes, memcpy_bandwidth);
  }

  /// Achieved point-to-point stream bandwidth (the Fig. 2 asymptote).
  double effective_link_bandwidth() const {
    return link_bandwidth * packet_efficiency;
  }

  // ---- Collective (tree) network -------------------------------------
  // BGP routes reductions/broadcasts over a dedicated tree network and
  // barriers over a global-interrupt network; costs scale with tree
  // depth, not with torus distance. GPAW's orthogonalization (overlap
  // matrices via allreduce) rides on these.

  /// Time of a tree allreduce of `bytes` over `nodes` nodes: up and down
  /// the tree once each, pipelined payload.
  SimTime allreduce_time(int nodes, std::int64_t bytes) const {
    const int depth = tree_depth(nodes);
    return 2 * depth * tree_latency + 2 * transfer_time(bytes, tree_bandwidth);
  }

  /// One-way tree broadcast.
  SimTime bcast_time(int nodes, std::int64_t bytes) const {
    const int depth = tree_depth(nodes);
    return depth * tree_latency + transfer_time(bytes, tree_bandwidth);
  }

  /// Global-interrupt barrier: near-constant regardless of node count.
  SimTime barrier_time(int /*nodes*/) const { return barrier_latency; }

  static int tree_depth(int nodes) {
    int depth = 0;
    for (int n = 1; n < nodes; n *= 2) ++depth;
    return depth < 1 ? 1 : depth;
  }
};

/// Pick torus dimensions for `nodes`: the most cubic factorization
/// (minimizes the longest dimension, then the total surface).
Vec3 torus_dims(std::int64_t nodes);

}  // namespace gpawfd::bgsim
