#include "bgsim/machine.hpp"

#include <algorithm>

#include "common/math.hpp"

namespace gpawfd::bgsim {

Vec3 torus_dims(std::int64_t nodes) {
  GPAWFD_CHECK(nodes >= 1);
  Vec3 best{1, 1, nodes};
  auto surface = [](Vec3 v) { return v.x * v.y + v.y * v.z + v.x * v.z; };
  for (Vec3 t : factor_triples(nodes)) {
    // Canonicalize ascending so ties are deterministic.
    Vec3 s = t;
    if (s.x > s.y) std::swap(s.x, s.y);
    if (s.y > s.z) std::swap(s.y, s.z);
    if (s.x > s.y) std::swap(s.x, s.y);
    if (s.max() < best.max() ||
        (s.max() == best.max() && surface(s) < surface(best)))
      best = s;
  }
  return best;
}

}  // namespace gpawfd::bgsim
