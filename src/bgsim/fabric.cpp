#include "bgsim/fabric.hpp"

namespace gpawfd::bgsim {

Fabric::Fabric(EventLoop& loop, TorusNetwork& net,
               std::vector<int> rank_to_node)
    : loop_(&loop), net_(&net), rank_to_node_(std::move(rank_to_node)) {
  GPAWFD_CHECK(!rank_to_node_.empty());
  for (int n : rank_to_node_)
    GPAWFD_CHECK(n >= 0 && n < net_->nodes());
  rank_bytes_sent_.assign(rank_to_node_.size(), 0);
  rank_messages_sent_.assign(rank_to_node_.size(), 0);
}

EventPtr Fabric::post_send(int src, int dst, int tag, std::int64_t bytes) {
  GPAWFD_CHECK(src >= 0 && src < ranks());
  GPAWFD_CHECK(dst >= 0 && dst < ranks());
  rank_bytes_sent_[static_cast<std::size_t>(src)] += bytes;
  rank_messages_sent_[static_cast<std::size_t>(src)] += 1;
  total_bytes_sent_ += bytes;
  total_messages_ += 1;

  const SimTime delivered =
      net_->submit(node_of_rank(src), node_of_rank(dst), bytes);
  EventPtr send_done = make_event(*loop_);
  const Key key{src, dst, tag};
  loop_->schedule_at(delivered, [this, key, bytes, send_done] {
    auto& recvs = waiting_recv_[key];
    if (!recvs.empty()) {
      recvs.front()->set();
      recvs.pop_front();
    } else {
      arrived_[key].push_back(bytes);
    }
    send_done->set();
  });
  return send_done;
}

EventPtr Fabric::post_recv(int dst, int src, int tag, std::int64_t bytes) {
  GPAWFD_CHECK(src >= 0 && src < ranks());
  GPAWFD_CHECK(dst >= 0 && dst < ranks());
  EventPtr recv_done = make_event(*loop_);
  const Key key{src, dst, tag};
  auto& arrivals = arrived_[key];
  if (!arrivals.empty()) {
    GPAWFD_CHECK_MSG(arrivals.front() <= bytes,
                     "simulated receive smaller than matched message: "
                         << bytes << " < " << arrivals.front());
    arrivals.pop_front();
    recv_done->set();
  } else {
    waiting_recv_[key].push_back(recv_done);
  }
  return recv_done;
}

}  // namespace gpawfd::bgsim
