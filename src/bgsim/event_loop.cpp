#include "bgsim/event_loop.hpp"

namespace gpawfd::bgsim {

namespace {
thread_local EventLoop* g_current = nullptr;
}

EventLoop::EventLoop() : parent_(g_current) { g_current = this; }

EventLoop::~EventLoop() { g_current = parent_; }

EventLoop* EventLoop::current() { return g_current; }

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  GPAWFD_CHECK_MSG(t >= now_, "event scheduled in the past: " << t << " < "
                                                              << now_);
  queue_.push(Item{t, next_seq_++, std::move(fn)});
}

void EventLoop::run() {
  while (!queue_.empty() && !error_) {
    // priority_queue::top is const; the copy here would be wasteful for
    // millions of events, so move via const_cast (safe: we pop right
    // after and never touch the moved-from function).
    auto& top = const_cast<Item&>(queue_.top());
    now_ = top.t;
    auto fn = std::move(top.fn);
    queue_.pop();
    try {
      fn();
    } catch (...) {
      record_exception(std::current_exception());
    }
  }
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace gpawfd::bgsim
