// The 3-D torus point-to-point network of Blue Gene/P.
//
// Model: dimension-ordered (x, then y, then z) wormhole routing. The
// message head advances one hop per `hop_latency`, queuing behind earlier
// messages on every link it crosses; the payload then streams at the
// link's effective bandwidth, occupying each crossed link for the
// serialization time. Partitions below `torus_min_nodes` have no
// wrap-around links (mesh), so "periodic" neighbour traffic crosses the
// whole dimension — one of the effects the paper's topology mapping
// avoids.
//
// Ranks co-located on one node (virtual mode) communicate through the
// node's memory instead: a per-node loopback channel.
#pragma once

#include <cstdint>
#include <vector>

#include "bgsim/event_loop.hpp"
#include "bgsim/machine.hpp"

namespace gpawfd::bgsim {

class TorusNetwork {
 public:
  TorusNetwork(EventLoop& loop, const MachineConfig& cfg, Vec3 dims);

  Vec3 dims() const { return dims_; }
  int nodes() const { return static_cast<int>(dims_.product()); }
  bool is_torus() const { return torus_; }

  Vec3 coords_of(int node) const;
  int node_at(Vec3 coords) const;

  /// Hop count of the dimension-ordered route (0 for src == dst).
  int hops(int src, int dst) const;

  /// Book the transfer of `bytes` from `src` to `dst` starting now;
  /// returns the absolute delivery time. Updates link occupancy, so
  /// concurrent transfers sharing a link queue behind each other.
  SimTime submit(int src, int dst, std::int64_t bytes);

  /// Total bytes that crossed network links (excludes loopback).
  std::int64_t total_link_bytes() const { return total_link_bytes_; }
  /// Bytes injected into the network by `node` (excludes loopback).
  std::int64_t node_link_bytes(int node) const {
    return node_link_bytes_[static_cast<std::size_t>(node)];
  }

 private:
  // Direction encoding: 2*dim + (0 = +, 1 = -).
  std::size_t link_index(int node, int dim, bool positive) const {
    return static_cast<std::size_t>(node) * 6 +
           static_cast<std::size_t>(2 * dim) + (positive ? 0 : 1);
  }

  /// Signed steps to travel along `dim` from a to b (shortest direction
  /// on a torus; direct on a mesh).
  std::int64_t steps(int dim, std::int64_t from, std::int64_t to) const;

  EventLoop* loop_;
  MachineConfig cfg_;
  Vec3 dims_;
  bool torus_;
  std::vector<SimTime> link_free_;      // per directed link
  std::vector<SimTime> loopback_free_;  // per node
  std::vector<std::int64_t> node_link_bytes_;
  std::int64_t total_link_bytes_ = 0;
};

}  // namespace gpawfd::bgsim
