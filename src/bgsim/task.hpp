// Coroutine primitives for simulated processes.
//
// Every simulated instruction stream — one per CPU core in use — is a
// SimTask coroutine. Tasks start eagerly, run until their first co_await,
// and are driven entirely by the EventLoop afterwards. Synchronization
// uses Event (one-shot, multi-waiter) and CountdownLatch (join / barrier
// building block).
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "bgsim/event_loop.hpp"

namespace gpawfd::bgsim {

/// Fire-and-forget coroutine. The frame self-destructs on completion;
/// exceptions are reported to the innermost EventLoop and rethrown from
/// EventLoop::run().
class SimTask {
 public:
  struct promise_type {
    SimTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      EventLoop* loop = EventLoop::current();
      GPAWFD_CHECK_MSG(loop != nullptr,
                       "SimTask exception outside any EventLoop");
      loop->record_exception(std::current_exception());
    }
  };
};

/// One-shot event: set() resumes every waiter (at the current virtual
/// time, in wait order). Waiting on an already-set event does not
/// suspend. Hold via shared_ptr when the waiter may outlive the setter.
class Event {
 public:
  explicit Event(EventLoop& loop) : loop_(&loop) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_)
      loop_->schedule_after(0, [h] { h.resume(); });
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  EventLoop* loop_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

using EventPtr = std::shared_ptr<Event>;

inline EventPtr make_event(EventLoop& loop) {
  return std::make_shared<Event>(loop);
}

/// Await the completion of every event in `events`.
inline SimTask wait_all_into(std::vector<EventPtr> events, EventPtr done) {
  for (auto& e : events) co_await e->wait();
  done->set();
}

/// Latch released when `count` arrivals have happened. Used to join
/// simulated threads and to build the per-node thread barrier.
class CountdownLatch {
 public:
  CountdownLatch(EventLoop& loop, int count)
      : event_(loop), count_(count) {
    GPAWFD_CHECK(count >= 0);
    if (count_ == 0) event_.set();
  }

  void arrive() {
    GPAWFD_CHECK_MSG(count_ > 0, "latch over-arrived");
    if (--count_ == 0) event_.set();
  }

  auto wait() { return event_.wait(); }
  bool released() const { return event_.is_set(); }

 private:
  Event event_;
  int count_;
};

/// Cyclic barrier over `parties` simulated threads with a fixed
/// synchronization cost: every arrival burns `cost_ns` of that thread's
/// time and the last arrival releases everyone. This is the pthread
/// barrier of the hybrid approaches — its per-use cost is exactly the
/// "thread synchronization overhead" the paper discusses.
class SimBarrier {
 public:
  SimBarrier(EventLoop& loop, int parties, SimTime cost_ns)
      : loop_(&loop), parties_(parties), cost_(cost_ns) {
    GPAWFD_CHECK(parties >= 1);
  }

  /// Awaitable: returns once all parties of this generation arrived.
  auto arrive_and_wait() {
    struct Awaiter {
      SimBarrier* b;
      bool release_now = false;
      bool await_ready() noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        b->loop_->schedule_after(b->cost_, [this, h] {
          if (++b->arrived_ == b->parties_) {
            b->arrived_ = 0;
            auto waiters = std::move(b->waiters_);
            b->waiters_.clear();
            for (auto w : waiters)
              b->loop_->schedule_after(0, [w] { w.resume(); });
            h.resume();
          } else {
            b->waiters_.push_back(h);
          }
        });
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  EventLoop* loop_;
  int parties_;
  int arrived_ = 0;
  SimTime cost_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// FIFO mutex in virtual time — models the internal lock MPI MULTIPLE
/// mode takes around every library call.
class SimMutex {
 public:
  explicit SimMutex(EventLoop& loop) : loop_(&loop) {}

  auto acquire() {
    struct Awaiter {
      SimMutex* m;
      bool await_ready() noexcept {
        if (!m->locked_) {
          m->locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        m->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    GPAWFD_CHECK(locked_);
    if (waiters_.empty()) {
      locked_ = false;
    } else {
      auto h = waiters_.front();
      waiters_.erase(waiters_.begin());
      loop_->schedule_after(0, [h] { h.resume(); });
    }
  }

 private:
  EventLoop* loop_;
  bool locked_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace gpawfd::bgsim
