// Virtual time for the Blue Gene/P simulator. Integer nanoseconds:
// deterministic ordering, no floating-point drift across platforms.
#pragma once

#include <cstdint>

namespace gpawfd::bgsim {

/// Virtual nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + 0.5);
}
constexpr SimTime from_us(double us) {
  return static_cast<SimTime>(us * 1e3 + 0.5);
}
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// Time to move `bytes` at `bytes_per_second`, rounded up to whole ns.
constexpr SimTime transfer_time(std::int64_t bytes, double bytes_per_second) {
  if (bytes <= 0) return 0;
  const double ns = static_cast<double>(bytes) / bytes_per_second * 1e9;
  return static_cast<SimTime>(ns) + 1;
}

}  // namespace gpawfd::bgsim
