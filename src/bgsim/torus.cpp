#include "bgsim/torus.hpp"

#include <limits>

#include "common/math.hpp"

namespace gpawfd::bgsim {

TorusNetwork::TorusNetwork(EventLoop& loop, const MachineConfig& cfg,
                           Vec3 dims)
    : loop_(&loop),
      cfg_(cfg),
      dims_(dims),
      torus_(dims.product() >= cfg.torus_min_nodes),
      link_free_(static_cast<std::size_t>(dims.product()) * 6, 0),
      loopback_free_(static_cast<std::size_t>(dims.product()), 0),
      node_link_bytes_(static_cast<std::size_t>(dims.product()), 0) {
  GPAWFD_CHECK(dims.min() >= 1);
}

Vec3 TorusNetwork::coords_of(int node) const {
  GPAWFD_CHECK(node >= 0 && node < nodes());
  return delinearize(node, dims_);
}

int TorusNetwork::node_at(Vec3 coords) const {
  return static_cast<int>(linear_index(coords, dims_));
}

std::int64_t TorusNetwork::steps(int dim, std::int64_t from,
                                 std::int64_t to) const {
  const std::int64_t extent = dims_[dim];
  std::int64_t direct = to - from;
  if (!torus_) return direct;
  // Torus: go the short way round; ties resolve to the positive
  // direction (deterministic).
  std::int64_t wrapped = direct > 0 ? direct - extent : direct + extent;
  if (std::llabs(wrapped) < std::llabs(direct)) return wrapped;
  return direct;
}

int TorusNetwork::hops(int src, int dst) const {
  const Vec3 a = coords_of(src), b = coords_of(dst);
  int h = 0;
  for (int d = 0; d < 3; ++d)
    h += static_cast<int>(std::llabs(steps(d, a[d], b[d])));
  return h;
}

SimTime TorusNetwork::submit(int src, int dst, std::int64_t bytes) {
  GPAWFD_CHECK(src >= 0 && src < nodes());
  GPAWFD_CHECK(dst >= 0 && dst < nodes());
  GPAWFD_CHECK(bytes >= 0);
  const SimTime start = loop_->now();

  if (src == dst) {
    // Same node (virtual-mode ranks): memory-to-memory copy through the
    // node's loopback channel.
    SimTime& free = loopback_free_[static_cast<std::size_t>(src)];
    const SimTime ser = transfer_time(bytes, cfg_.loopback_bandwidth);
    const SimTime begin =
        std::max(start + cfg_.loopback_latency, free);
    free = begin + ser;
    return begin + ser;
  }

  const SimTime ser = transfer_time(bytes, cfg_.effective_link_bandwidth());
  SimTime head = start + cfg_.injection_latency;
  Vec3 cur = coords_of(src);
  const Vec3 goal = coords_of(dst);
  for (int d = 0; d < 3; ++d) {
    std::int64_t remaining = steps(d, cur[d], goal[d]);
    const std::int64_t extent = dims_[d];
    while (remaining != 0) {
      const bool positive = remaining > 0;
      const std::size_t link =
          link_index(node_at(cur), d, positive);
      // Head waits for the link, crosses it, and the body occupies the
      // link for the serialization time behind it.
      head = std::max(head, link_free_[link]) + cfg_.hop_latency;
      link_free_[link] = head + ser;
      cur[d] = (cur[d] + (positive ? 1 : -1) + extent) % extent;
      remaining += positive ? -1 : 1;
    }
  }
  GPAWFD_ASSERT(cur == goal);
  total_link_bytes_ += bytes;
  node_link_bytes_[static_cast<std::size_t>(src)] += bytes;
  return head + ser;
}

}  // namespace gpawfd::bgsim
