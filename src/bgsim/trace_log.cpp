#include "bgsim/trace_log.hpp"

namespace gpawfd::bgsim {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kCompute:
      return "compute";
    case Phase::kCopy:
      return "copy";
    case Phase::kMpiOverhead:
      return "mpi";
    case Phase::kWait:
      return "wait";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kSpawn:
      return "spawn";
  }
  return "?";
}

double TraceLog::total_seconds(Phase p) const {
  SimTime total = 0;
  for (const Span& s : spans_)
    if (s.phase == p) total += s.end - s.begin;
  return to_seconds(total);
}

void TraceLog::write_chrome_json(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) os << ",\n";
    first = false;
    // Durations in microseconds, as chrome://tracing expects.
    os << R"({"name":")" << to_string(s.phase)
       << R"(","cat":"sim","ph":"X","ts":)"
       << static_cast<double>(s.begin) / 1e3
       << R"(,"dur":)" << static_cast<double>(s.end - s.begin) / 1e3
       << R"(,"pid":0,"tid":)" << s.stream << "}";
  }
  os << "\n]\n";
}

}  // namespace gpawfd::bgsim
