// Discrete-event core. Single-threaded: events fire in (time, insertion)
// order, so simulations are bit-reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

#include "bgsim/sim_time.hpp"
#include "common/check.hpp"

namespace gpawfd::bgsim {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_after(SimTime d, std::function<void()> fn) {
    schedule_at(now_ + d, std::move(fn));
  }

  /// Run until the event queue drains. Rethrows the first exception that
  /// escaped a coroutine or callback.
  void run();

  /// Awaitable: suspend the current coroutine for `d` virtual ns.
  auto delay(SimTime d) {
    struct Awaiter {
      EventLoop* loop;
      SimTime dur;
      bool await_ready() const noexcept { return dur <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        loop->schedule_after(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  void record_exception(std::exception_ptr e) {
    if (!error_) error_ = e;
  }

  /// Innermost live loop on this thread (used by coroutine promises to
  /// report unhandled exceptions).
  static EventLoop* current();

 private:
  struct Item {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Item& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::exception_ptr error_;
  EventLoop* parent_ = nullptr;  // loop shadowed by this one (tests nest)
};

}  // namespace gpawfd::bgsim
