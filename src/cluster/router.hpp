// cluster::Router: the sharded-cluster front door. It implements
// net::RequestHandler, so a plain net::Server in front of it speaks the
// exact wire protocol sim_client already speaks — clients cannot tell a
// router from a single backend. Inside, every submit is consistent-
// hashed (HashRing over the JobKey canonical string) onto a backend
// preference list and forwarded over pooled pipelined net::Clients by a
// small pool of forwarder threads.
//
// Failure handling (the paper's "lose a rack, keep the run" analogue):
//   - Retryable wire failures (connection lost, backend shutting down,
//     queue full, overloaded, cancelled, internal) advance to the next
//     alive node on the preference list under the svc::RetryPolicy
//     backoff schedule — a SIGKILLed backend's in-flight jobs land on
//     its replica, so a node kill mid-run loses zero jobs. Safe because
//     submits are idempotent: the request *is* the JobKey.
//   - Deterministic job failures (executor failed, timed out, gave up,
//     bad request, frame too large) are forwarded to the client
//     verbatim — they would fail identically on every node.
//   - A health thread pings every backend each period; after
//     `health_fail_threshold` consecutive failures the node is marked
//     down and skipped by the preference walk (forward failures feed
//     the same counter, so a dead primary is shunned before the prober
//     notices). Any later successful probe or forward marks it up — the
//     ring itself never changes, so recovery reshuffles nothing.
//
// Replication (peer cache-fill): after a successful forward the result
// is pushed as a kFill frame to the next distinct alive node on the
// key's preference list, which ingests it via SimService::ingest_fill
// (ResultCache::insert_warm semantics + durable write-behind). When the
// owner dies, the replica serves the hot set from its cache instead of
// re-simulating. A bounded dedup set keeps a hot key from being
// re-pushed on every hit.
//
// Optional hedging: with hedge_after_seconds > 0, a primary that has
// not replied within the budget gets a backup request on the next alive
// replica and the first reply wins (tail-latency insurance, counted in
// metrics, off by default).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/ring.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"

namespace gpawfd::cluster {

struct BackendAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Stable ring identity override. Leave empty to use "host:port" (the
  /// deployment default). Harnesses that bind ephemeral ports set this
  /// ("node-0", "node-1", ...) so key ownership is identical across
  /// runs — which backend a scenario kills then provably owns the same
  /// keys every time.
  std::string ring_id;
  std::string id() const {
    return ring_id.empty() ? host + ":" + std::to_string(port) : ring_id;
  }
};

struct RouterConfig {
  std::vector<BackendAddress> backends;
  /// Ring points per backend (see HashRing).
  int vnodes = 64;
  /// Distinct nodes a job may be tried on (primary + failover targets),
  /// and the span replication considers. Clamped to the backend count.
  int replicas = 2;
  /// Attempt budget + backoff across failover retries. max_attempts
  /// counts total forwards per job (like SimService attempts).
  svc::RetryPolicy retry;
  /// Forwarder threads draining the submit queue. Each blocks on one
  /// in-flight forward at a time (pipelining across jobs comes from the
  /// thread pool, not per-thread pipelining).
  int forwarders = 4;
  /// Bounded task queue between the poll loop and the forwarders;
  /// overflow is answered kOverloaded without queuing.
  std::size_t queue_capacity = 1024;
  /// Pooled connections per backend, round-robined by the forwarders.
  int connections_per_backend = 2;
  /// Probe period of the health thread (<= 0 disables probing; forward
  /// failures still mark nodes down).
  double health_period_seconds = 0.2;
  /// Consecutive failures (probes and forwards) before a node is down.
  int health_fail_threshold = 3;
  /// Backup-request budget: > 0 hedges a slow primary onto the next
  /// alive replica after this many seconds. 0 disables hedging.
  double hedge_after_seconds = 0;
  /// Push results to the next replica (peer cache-fill).
  bool replicate = true;
  /// Keys remembered by the fill dedup set before it resets.
  std::size_t fill_dedup_capacity = 4096;
  std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
};

/// Router-wide counters in the svc::Metrics style: relaxed atomics, a
/// reconciling counter_map(), a text snapshot(). At quiescence
///   jobs == ok + failed + gave_up + rejected_overload + rejected_shutdown
/// and attempts == ok + failed + gave_up-terminal attempts; per-backend
/// rows carry where traffic actually landed (the rebalance view).
class RouterMetrics {
 public:
  struct PerBackend {
    std::atomic<std::int64_t> routed{0};   // forward attempts sent here
    std::atomic<std::int64_t> ok{0};       // ... that returned a result
    std::atomic<std::int64_t> failed{0};   // ... that failed (any cause)
    std::atomic<std::int64_t> retried{0};  // retries that landed here
    std::atomic<std::int64_t> hedged{0};   // hedge backups sent here
    std::atomic<std::int64_t> fills{0};    // cache-fill pushes sent here
  };

  RouterMetrics(std::size_t backends, std::int64_t ring_nodes,
                std::int64_t ring_vnodes);

  // ---- job outcomes (one per handle_submit) ---------------------------
  std::atomic<std::int64_t> jobs{0};
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> failed{0};   // terminal backend error forwarded
  std::atomic<std::int64_t> gave_up{0};  // retry budget exhausted here
  std::atomic<std::int64_t> rejected_overload{0};  // router queue full
  std::atomic<std::int64_t> rejected_shutdown{0};
  // ---- attempt-level --------------------------------------------------
  std::atomic<std::int64_t> attempts{0};
  std::atomic<std::int64_t> retried{0};  // attempts after the first
  std::atomic<std::int64_t> hedged{0};   // backup requests launched
  // ---- replication ----------------------------------------------------
  std::atomic<std::int64_t> fills_sent{0};
  std::atomic<std::int64_t> fills_suppressed{0};  // dedup hit
  std::atomic<std::int64_t> fills_failed{0};      // push could not be sent
  std::atomic<std::int64_t> fills_forwarded{0};   // client fills relayed
  // ---- health ---------------------------------------------------------
  std::atomic<std::int64_t> probes{0};
  std::atomic<std::int64_t> probe_failures{0};
  std::atomic<std::int64_t> marked_down{0};
  std::atomic<std::int64_t> recovered{0};

  PerBackend& backend(int index) { return *per_backend_[index]; }
  const PerBackend& backend(int index) const { return *per_backend_[index]; }
  std::size_t backends() const { return per_backend_.size(); }

  /// Every counter by snapshot name ("cluster." prefix; per-backend rows
  /// as "cluster.b<i>.<name>"), plus the static ring shape.
  std::map<std::string, std::int64_t> counter_map() const;
  std::string snapshot() const;

 private:
  std::int64_t ring_nodes_;
  std::int64_t ring_vnodes_;
  std::vector<std::unique_ptr<PerBackend>> per_backend_;
};

class Router : public net::RequestHandler {
 public:
  explicit Router(RouterConfig config);
  ~Router();  // shutdown()
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void handle_submit(std::string canonical, svc::Priority priority,
                     Done done) override;
  /// A client-pushed fill is relayed to the key's owner (first alive
  /// node on its preference list) — the router is fill-transparent, so
  /// sim_client --cache-dir harvesting works through it unchanged.
  void handle_fill(net::FillRecord record, Done done) override;

  /// Stop accepting, fail queued jobs kRejectedShutdown, join the
  /// forwarder + health threads, close every connection. Idempotent.
  void shutdown();

  const HashRing& ring() const { return ring_; }
  bool backend_alive(int index) const {
    return backends_[static_cast<std::size_t>(index)]->alive.load(
        std::memory_order_relaxed);
  }
  int alive_backends() const;
  /// Run one synchronous probe sweep over all backends (tests and the
  /// binary's startup use this to settle liveness deterministically).
  void probe_all();

  const RouterMetrics& metrics() const { return metrics_; }
  std::string metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  struct Task {
    bool is_fill = false;
    std::string canonical;  // submit payload
    svc::Priority priority = svc::Priority::kNormal;
    net::FillRecord fill;  // fill payload
    Done done;
  };

  struct Backend {
    BackendAddress addr;
    std::vector<std::unique_ptr<net::Client>> pool;
    std::atomic<std::uint64_t> next_client{0};
    std::unique_ptr<net::Client> prober;
    std::atomic<bool> alive{true};
    std::atomic<int> consecutive_failures{0};
  };

  void forwarder_loop();
  void health_loop();
  void forward_submit(Task task);
  void forward_fill(Task task);
  /// Wait on `primary` with the hedge budget; on timeout launch a backup
  /// on the next alive replica and return the first reply, recording the
  /// node that actually served in *served.
  core::SimResult await_hedged(std::future<core::SimResult>& primary,
                               const Task& task,
                               const std::vector<int>& prefs,
                               std::size_t cursor, int target, int* served);
  /// The pooled client the next forward on `backend` should use.
  net::Client& client_for(Backend& backend);
  /// First alive node on `prefs` at or after `cursor` (wrapping, one
  /// lap); -1 when every preferred node is down.
  int pick_alive(const std::vector<int>& prefs, std::size_t cursor) const;
  void note_success(int index);
  void note_failure(int index);
  /// True when this key has not been pushed recently (and records it).
  bool fill_is_fresh(const std::string& canonical);
  void replicate_result(int served_by, const std::string& canonical,
                        const core::SimResult& result, double cost_seconds);
  static bool retryable(net::WireStatus status);

  RouterConfig config_;
  HashRing ring_;
  RouterMetrics metrics_;
  std::vector<std::unique_ptr<Backend>> backends_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool closed_ = false;

  std::mutex fill_mu_;
  std::unordered_set<std::uint64_t> filled_keys_;

  std::mutex health_mu_;  // pairs with health_cv_ for the period sleep
  std::condition_variable health_cv_;

  std::vector<std::thread> forwarders_;
  std::thread health_;
  std::atomic<bool> running_{true};
  std::once_flag shutdown_once_;
};

}  // namespace gpawfd::cluster
