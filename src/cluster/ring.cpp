#include "cluster/ring.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace gpawfd::cluster {

namespace {
std::uint64_t point_hash(const std::string& node_id, int vnode) {
  // Per-vnode placement: fold the vnode index into the node id's hash
  // with the full mixer so consecutive vnodes land far apart (raw FNV of
  // "id#0", "id#1"... would correlate low bits).
  return hash_combine(fnv1a(node_id), static_cast<std::uint64_t>(vnode));
}
}  // namespace

HashRing::HashRing(std::vector<std::string> node_ids, int vnodes)
    : node_ids_(std::move(node_ids)), vnodes_(vnodes) {
  GPAWFD_CHECK_MSG(!node_ids_.empty(), "hash ring needs at least one node");
  GPAWFD_CHECK_MSG(vnodes_ >= 1, "hash ring needs at least one vnode");
  points_.reserve(node_ids_.size() * static_cast<std::size_t>(vnodes_));
  for (int n = 0; n < static_cast<int>(node_ids_.size()); ++n)
    for (int v = 0; v < vnodes_; ++v)
      points_.push_back({point_hash(node_ids_[n], v), n});
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

std::uint64_t HashRing::key_hash(std::string_view key) {
  // mix64 on top of FNV-1a: the canonical strings share long prefixes
  // ("v1|approach=..."), and the finalizer turns their small FNV deltas
  // into full-width avalanche before the ring walk.
  return mix64(fnv1a(key));
}

int HashRing::owner(std::string_view key) const {
  const std::uint64_t h = key_hash(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t value) {
                               return p.hash < value;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap past 2^64
  return it->node;
}

std::vector<int> HashRing::preference(std::string_view key,
                                      std::size_t n) const {
  n = std::min(n, node_ids_.size());
  std::vector<int> order;
  order.reserve(n);
  if (n == 0) return order;
  const std::uint64_t h = key_hash(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t value) {
                               return p.hash < value;
                             });
  std::vector<bool> seen(node_ids_.size(), false);
  for (std::size_t walked = 0; walked < points_.size() && order.size() < n;
       ++walked) {
    if (it == points_.end()) it = points_.begin();
    if (!seen[static_cast<std::size_t>(it->node)]) {
      seen[static_cast<std::size_t>(it->node)] = true;
      order.push_back(it->node);
    }
    ++it;
  }
  return order;
}

std::vector<double> HashRing::ownership_fractions(
    std::size_t sample_keys) const {
  std::vector<std::int64_t> counts(node_ids_.size(), 0);
  for (std::size_t k = 0; k < sample_keys; ++k)
    ++counts[static_cast<std::size_t>(
        owner("sample-key-" + std::to_string(k)))];
  std::vector<double> fractions(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    fractions[i] = sample_keys > 0
                       ? static_cast<double>(counts[i]) /
                             static_cast<double>(sample_keys)
                       : 0.0;
  return fractions;
}

}  // namespace gpawfd::cluster
