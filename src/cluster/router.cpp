#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "trace/stats.hpp"

namespace gpawfd::cluster {

namespace {

std::vector<std::uint8_t> message_bytes(const std::string& what) {
  return std::vector<std::uint8_t>(what.begin(), what.end());
}

std::vector<std::string> backend_ids(
    const std::vector<BackendAddress>& backends) {
  std::vector<std::string> ids;
  ids.reserve(backends.size());
  for (const BackendAddress& addr : backends) ids.push_back(addr.id());
  return ids;
}

RouterConfig normalized(RouterConfig config) {
  GPAWFD_CHECK_MSG(!config.backends.empty(),
                   "router needs at least one backend");
  const int n = static_cast<int>(config.backends.size());
  config.replicas = std::clamp(config.replicas, 1, n);
  if (config.vnodes < 1) config.vnodes = 1;
  if (config.forwarders < 1) config.forwarders = 1;
  if (config.connections_per_backend < 1) config.connections_per_backend = 1;
  if (config.retry.max_attempts < 1) config.retry.max_attempts = 1;
  if (config.health_fail_threshold < 1) config.health_fail_threshold = 1;
  if (config.queue_capacity < 1) config.queue_capacity = 1;
  if (config.fill_dedup_capacity < 1) config.fill_dedup_capacity = 1;
  return config;
}

}  // namespace

// ---- metrics -----------------------------------------------------------

RouterMetrics::RouterMetrics(std::size_t backends, std::int64_t ring_nodes,
                             std::int64_t ring_vnodes)
    : ring_nodes_(ring_nodes), ring_vnodes_(ring_vnodes) {
  per_backend_.reserve(backends);
  for (std::size_t i = 0; i < backends; ++i)
    per_backend_.push_back(std::make_unique<PerBackend>());
}

std::map<std::string, std::int64_t> RouterMetrics::counter_map() const {
  auto get = [](const std::atomic<std::int64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  std::map<std::string, std::int64_t> out;
  out["cluster.jobs"] = get(jobs);
  out["cluster.ok"] = get(ok);
  out["cluster.failed"] = get(failed);
  out["cluster.gave_up"] = get(gave_up);
  out["cluster.rejected_overload"] = get(rejected_overload);
  out["cluster.rejected_shutdown"] = get(rejected_shutdown);
  out["cluster.attempts"] = get(attempts);
  out["cluster.retried"] = get(retried);
  out["cluster.hedged"] = get(hedged);
  out["cluster.fills_sent"] = get(fills_sent);
  out["cluster.fills_suppressed"] = get(fills_suppressed);
  out["cluster.fills_failed"] = get(fills_failed);
  out["cluster.fills_forwarded"] = get(fills_forwarded);
  out["cluster.probes"] = get(probes);
  out["cluster.probe_failures"] = get(probe_failures);
  out["cluster.marked_down"] = get(marked_down);
  out["cluster.recovered"] = get(recovered);
  out["cluster.ring.nodes"] = ring_nodes_;
  out["cluster.ring.vnodes"] = ring_vnodes_;
  for (std::size_t i = 0; i < per_backend_.size(); ++i) {
    const PerBackend& b = *per_backend_[i];
    const std::string prefix = "cluster.b" + std::to_string(i) + ".";
    out[prefix + "routed"] = get(b.routed);
    out[prefix + "ok"] = get(b.ok);
    out[prefix + "failed"] = get(b.failed);
    out[prefix + "retried"] = get(b.retried);
    out[prefix + "hedged"] = get(b.hedged);
    out[prefix + "fills"] = get(b.fills);
  }
  return out;
}

std::string RouterMetrics::snapshot() const {
  std::ostringstream os;
  for (const auto& [key, value] : counter_map())
    os << key << ": " << value << "\n";
  return os.str();
}

// ---- lifecycle ---------------------------------------------------------

Router::Router(RouterConfig config)
    : config_(normalized(std::move(config))),
      ring_(backend_ids(config_.backends), config_.vnodes),
      metrics_(config_.backends.size(),
               static_cast<std::int64_t>(config_.backends.size()),
               config_.vnodes) {
  for (const BackendAddress& addr : config_.backends) {
    auto backend = std::make_unique<Backend>();
    backend->addr = addr;
    net::ClientConfig cc;
    cc.host = addr.host;
    cc.port = addr.port;
    cc.max_frame_bytes = config_.max_frame_bytes;
    // Failover — not TCP-level redial — is the router's retry story, and
    // the holddown keeps a forwarder herd off a dead backend: one SYN
    // per window, everyone else fails fast onto the next replica.
    cc.max_reconnect_attempts = 0;
    cc.reconnect_holddown_seconds =
        std::max(0.01, config_.health_period_seconds * 0.5);
    for (int c = 0; c < config_.connections_per_backend; ++c)
      backend->pool.push_back(std::make_unique<net::Client>(cc));
    net::ClientConfig pc = cc;
    pc.reconnect_holddown_seconds = 0;  // probes pace their own dials
    backend->prober = std::make_unique<net::Client>(pc);
    backends_.push_back(std::move(backend));
  }
  forwarders_.reserve(static_cast<std::size_t>(config_.forwarders));
  for (int f = 0; f < config_.forwarders; ++f)
    forwarders_.emplace_back([this] { forwarder_loop(); });
  if (config_.health_period_seconds > 0)
    health_ = std::thread([this] { health_loop(); });
}

Router::~Router() { shutdown(); }

void Router::shutdown() {
  std::call_once(shutdown_once_, [&] {
    running_.store(false, std::memory_order_release);
    {
      std::lock_guard lock(queue_mu_);
      closed_ = true;
    }
    queue_cv_.notify_all();
    health_cv_.notify_all();
    if (health_.joinable()) health_.join();
    // Forwarders drain what is already queued (tasks fail fast onto dead
    // backends thanks to the holddown, and backoff parks are skipped
    // once closed_), so an accepted job is never silently dropped.
    for (std::thread& t : forwarders_) t.join();
    for (auto& backend : backends_) {
      for (auto& client : backend->pool) client->close();
      backend->prober->close();
    }
  });
}

int Router::alive_backends() const {
  int n = 0;
  for (const auto& backend : backends_)
    if (backend->alive.load(std::memory_order_relaxed)) ++n;
  return n;
}

// ---- request intake (poll-loop thread) ---------------------------------

void Router::handle_submit(std::string canonical, svc::Priority priority,
                           Done done) {
  metrics_.jobs.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lock(queue_mu_);
    if (closed_) {
      lock.unlock();
      metrics_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      done(net::WireStatus::kRejectedShutdown,
           message_bytes("router shutting down"));
      return;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      metrics_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      done(net::WireStatus::kOverloaded,
           message_bytes("router forward queue full"));
      return;
    }
    Task task;
    task.is_fill = false;
    task.canonical = std::move(canonical);
    task.priority = priority;
    task.done = std::move(done);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Router::handle_fill(net::FillRecord record, Done done) {
  {
    std::unique_lock lock(queue_mu_);
    if (closed_) {
      lock.unlock();
      done(net::WireStatus::kRejectedShutdown,
           message_bytes("router shutting down"));
      return;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      done(net::WireStatus::kOverloaded,
           message_bytes("router forward queue full"));
      return;
    }
    Task task;
    task.is_fill = true;
    task.fill = std::move(record);
    task.done = std::move(done);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

// ---- forwarding (forwarder threads) ------------------------------------

void Router::forwarder_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.is_fill)
      forward_fill(std::move(task));
    else
      forward_submit(std::move(task));
  }
}

net::Client& Router::client_for(Backend& backend) {
  const std::uint64_t turn =
      backend.next_client.fetch_add(1, std::memory_order_relaxed);
  return *backend.pool[turn % backend.pool.size()];
}

int Router::pick_alive(const std::vector<int>& prefs,
                       std::size_t cursor) const {
  for (std::size_t i = 0; i < prefs.size(); ++i) {
    const std::size_t pos = (cursor + i) % prefs.size();
    if (backends_[static_cast<std::size_t>(prefs[pos])]->alive.load(
            std::memory_order_relaxed))
      return static_cast<int>(pos);
  }
  return -1;
}

bool Router::retryable(net::WireStatus status) {
  switch (status) {
    // The job never completed anywhere and another node can serve it —
    // safe because a submit is idempotent (the request IS the JobKey;
    // a resend joins or refills, never recomputes a different answer).
    case net::WireStatus::kConnectionLost:
    case net::WireStatus::kRejectedShutdown:
    case net::WireStatus::kRejectedQueueFull:
    case net::WireStatus::kOverloaded:
    case net::WireStatus::kCancelled:
    case net::WireStatus::kInternal:
      return true;
    // Deterministic outcomes: identical on every node. Forward verbatim.
    case net::WireStatus::kOk:
    case net::WireStatus::kExecutorFailed:
    case net::WireStatus::kTimedOut:
    case net::WireStatus::kGaveUp:
    case net::WireStatus::kBadRequest:
    case net::WireStatus::kFrameTooLarge:
      return false;
  }
  return false;
}

void Router::forward_submit(Task task) {
  const std::vector<int> prefs = ring_.preference(
      task.canonical, static_cast<std::size_t>(config_.replicas));
  const svc::RetryPolicy& rp = config_.retry;
  std::string last_error = "no backend reachable";
  std::size_t cursor = 0;
  for (int attempt = 0; attempt < rp.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Backoff parked on the queue lifecycle: shutdown skips the wait.
      const double pause = rp.backoff_after(attempt - 1);
      if (pause > 0) {
        std::unique_lock lock(queue_mu_);
        queue_cv_.wait_for(lock,
                           std::chrono::duration<double>(pause),
                           [&] { return closed_; });
      }
    }
    // Next alive node on the preference list; when every replica is
    // down, try the preferred node anyway — it may have just come back
    // (the probe period lags) and a failed dial is cheap under holddown.
    const int pos = pick_alive(prefs, cursor);
    const int target =
        prefs[pos >= 0 ? static_cast<std::size_t>(pos)
                       : cursor % prefs.size()];
    cursor = (pos >= 0 ? static_cast<std::size_t>(pos) : cursor) + 1;

    metrics_.attempts.fetch_add(1, std::memory_order_relaxed);
    RouterMetrics::PerBackend& pb = metrics_.backend(target);
    pb.routed.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0) {
      metrics_.retried.fetch_add(1, std::memory_order_relaxed);
      pb.retried.fetch_add(1, std::memory_order_relaxed);
    }

    const double t0 = trace::now_seconds();
    int served = target;
    try {
      std::future<core::SimResult> fut =
          client_for(*backends_[static_cast<std::size_t>(target)])
              .submit_canonical_async(task.canonical, task.priority);
      core::SimResult result = config_.hedge_after_seconds > 0
                                   ? await_hedged(fut, task, prefs, cursor,
                                                  target, &served)
                                   : fut.get();
      const double elapsed = trace::now_seconds() - t0;
      note_success(served);
      metrics_.ok.fetch_add(1, std::memory_order_relaxed);
      metrics_.backend(served).ok.fetch_add(1, std::memory_order_relaxed);
      if (config_.replicate)
        replicate_result(served, task.canonical, result, elapsed);
      task.done(net::WireStatus::kOk, net::encode_sim_result(result));
      return;
    } catch (const net::RpcError& e) {
      pb.failed.fetch_add(1, std::memory_order_relaxed);
      if (e.status() == net::WireStatus::kConnectionLost ||
          e.status() == net::WireStatus::kRejectedShutdown)
        note_failure(target);
      if (!retryable(e.status())) {
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
        task.done(e.status(), message_bytes(e.what()));
        return;
      }
      last_error = e.what();
    } catch (const std::exception& e) {
      pb.failed.fetch_add(1, std::memory_order_relaxed);
      last_error = e.what();
    }
  }
  metrics_.gave_up.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream what;
  what << "cluster: gave up after " << rp.max_attempts
       << " forward attempts; last: " << last_error;
  task.done(net::WireStatus::kGaveUp, message_bytes(what.str()));
}

core::SimResult Router::await_hedged(std::future<core::SimResult>& primary,
                                     const Task& task,
                                     const std::vector<int>& prefs,
                                     std::size_t cursor, int target,
                                     int* served) {
  const auto budget =
      std::chrono::duration<double>(config_.hedge_after_seconds);
  if (primary.wait_for(budget) == std::future_status::ready) {
    *served = target;
    return primary.get();
  }
  // The primary is slow: launch a backup on the next alive replica and
  // let the first reply win. The loser's future is abandoned safely —
  // its pending slot retires when the late reply (or the connection
  // drop) lands.
  const int hpos = pick_alive(prefs, cursor);
  const int hedge_target =
      hpos >= 0 ? prefs[static_cast<std::size_t>(hpos)] : -1;
  if (hedge_target < 0 || hedge_target == target) {
    *served = target;
    return primary.get();
  }
  metrics_.hedged.fetch_add(1, std::memory_order_relaxed);
  RouterMetrics::PerBackend& hb = metrics_.backend(hedge_target);
  hb.hedged.fetch_add(1, std::memory_order_relaxed);
  hb.routed.fetch_add(1, std::memory_order_relaxed);
  std::future<core::SimResult> backup;
  try {
    backup = client_for(*backends_[static_cast<std::size_t>(hedge_target)])
                 .submit_canonical_async(task.canonical, task.priority);
  } catch (const net::RpcError&) {
    hb.failed.fetch_add(1, std::memory_order_relaxed);
    *served = target;
    return primary.get();  // hedge could not even launch
  }
  const auto tick = std::chrono::milliseconds(1);
  for (;;) {
    if (primary.wait_for(tick) == std::future_status::ready) {
      try {
        *served = target;
        return primary.get();
      } catch (...) {
        *served = hedge_target;
        return backup.get();  // primary lost the race by failing
      }
    }
    if (backup.wait_for(tick) == std::future_status::ready) {
      try {
        *served = hedge_target;
        return backup.get();
      } catch (...) {
        hb.failed.fetch_add(1, std::memory_order_relaxed);
        *served = target;
        return primary.get();  // backup failed; fall back to the primary
      }
    }
  }
}

void Router::forward_fill(Task task) {
  const std::vector<int> prefs = ring_.preference(
      task.fill.key, static_cast<std::size_t>(config_.replicas));
  const int pos = pick_alive(prefs, 0);
  const int target = prefs[pos >= 0 ? static_cast<std::size_t>(pos) : 0];
  try {
    client_for(*backends_[static_cast<std::size_t>(target)])
        .fill_async(task.fill)
        .get();
    metrics_.fills_forwarded.fetch_add(1, std::memory_order_relaxed);
    metrics_.backend(target).fills.fetch_add(1, std::memory_order_relaxed);
    task.done(net::WireStatus::kOk, {});
  } catch (const net::RpcError& e) {
    metrics_.fills_failed.fetch_add(1, std::memory_order_relaxed);
    if (e.status() == net::WireStatus::kConnectionLost) note_failure(target);
    task.done(e.status(), message_bytes(e.what()));
  }
}

bool Router::fill_is_fresh(const std::string& canonical) {
  const std::uint64_t h = HashRing::key_hash(canonical);
  std::lock_guard lock(fill_mu_);
  // A full set resets wholesale: crude, but bounded — the cost of a
  // false "fresh" is one redundant push the peer dedups anyway
  // (insert_warm refuses same-or-older entries).
  if (filled_keys_.size() >= config_.fill_dedup_capacity)
    filled_keys_.clear();
  return filled_keys_.insert(h).second;
}

void Router::replicate_result(int served_by, const std::string& canonical,
                              const core::SimResult& result,
                              double cost_seconds) {
  // The next distinct alive node on the key's preference order. When the
  // owner served, this is replica #1; when a failover replica served,
  // it is the next one over — either way the hot result now lives on
  // two nodes.
  int peer = -1;
  for (const int node : ring_.preference(
           canonical, static_cast<std::size_t>(config_.replicas))) {
    if (node == served_by) continue;
    if (!backends_[static_cast<std::size_t>(node)]->alive.load(
            std::memory_order_relaxed))
      continue;
    peer = node;
    break;
  }
  if (peer < 0) return;  // nobody alive to replicate to
  if (!fill_is_fresh(canonical)) {
    metrics_.fills_suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  net::FillRecord record;
  record.key = canonical;
  record.result = result;
  // The router never saw the backend's measured executor cost; the
  // forward round-trip is the closest observable proxy and only weights
  // eviction on the peer.
  record.cost_seconds = cost_seconds;
  record.write_time = trace::unix_seconds();
  try {
    // Fire and forget: the ack retires the pending slot whenever it
    // lands; replication is best-effort by design.
    (void)client_for(*backends_[static_cast<std::size_t>(peer)])
        .fill_async(record);
    metrics_.fills_sent.fetch_add(1, std::memory_order_relaxed);
    metrics_.backend(peer).fills.fetch_add(1, std::memory_order_relaxed);
  } catch (const net::RpcError&) {
    metrics_.fills_failed.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---- health ------------------------------------------------------------

void Router::note_success(int index) {
  Backend& b = *backends_[static_cast<std::size_t>(index)];
  b.consecutive_failures.store(0, std::memory_order_relaxed);
  if (!b.alive.exchange(true, std::memory_order_relaxed))
    metrics_.recovered.fetch_add(1, std::memory_order_relaxed);
}

void Router::note_failure(int index) {
  Backend& b = *backends_[static_cast<std::size_t>(index)];
  const int failures =
      b.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= config_.health_fail_threshold &&
      b.alive.exchange(false, std::memory_order_relaxed))
    metrics_.marked_down.fetch_add(1, std::memory_order_relaxed);
}

void Router::probe_all() {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!running_.load(std::memory_order_acquire)) return;
    metrics_.probes.fetch_add(1, std::memory_order_relaxed);
    if (backends_[i]->prober->try_ping()) {
      note_success(static_cast<int>(i));
    } else {
      metrics_.probe_failures.fetch_add(1, std::memory_order_relaxed);
      note_failure(static_cast<int>(i));
    }
  }
}

void Router::health_loop() {
  const auto period =
      std::chrono::duration<double>(config_.health_period_seconds);
  while (running_.load(std::memory_order_acquire)) {
    probe_all();
    std::unique_lock lock(health_mu_);
    health_cv_.wait_for(lock, period, [&] {
      return !running_.load(std::memory_order_acquire);
    });
  }
}

}  // namespace gpawfd::cluster
