// Consistent-hash ring over backend nodes — the cluster layer's answer
// to the paper's domain decomposition: instead of partitioning the grid
// across Blue Gene racks, partition the JobKey space across sim_server
// backends. Each node is hashed onto a 64-bit circle at `vnodes` points
// (virtual nodes smooth the arc lengths, bounding max/mean load), a key
// is owned by the first node point clockwise from its hash, and the
// walk order past the owner defines the replica preference list. The
// construction gives remapping minimality for free: removing a node
// reassigns only the keys that node owned (its arcs fall to their
// clockwise successors); every other key keeps its owner.
//
// The ring is immutable after construction. Liveness is deliberately
// NOT a ring property: the router skips down nodes while *walking* the
// preference list, so a node flapping up and down never reshuffles
// ownership — exactly the stability consistent hashing is for.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpawfd::cluster {

class HashRing {
 public:
  /// `node_ids` are stable identity strings (the router uses
  /// "host:port"); the vector index is the node index everything else
  /// speaks. `vnodes` points are placed per node. Deterministic: the
  /// same ids in the same order give the same ring in every process.
  explicit HashRing(std::vector<std::string> node_ids, int vnodes = 64);

  /// The node owning `key`: first ring point clockwise from hash(key).
  int owner(std::string_view key) const;

  /// Up to `n` distinct nodes in clockwise walk order from hash(key) —
  /// preference[0] is the owner, preference[1] the first replica, and
  /// so on. n beyond the node count returns every node once.
  std::vector<int> preference(std::string_view key, std::size_t n) const;

  /// The position-independent key hash the ring walks from (exposed so
  /// tests and the fill dedup set agree on it).
  static std::uint64_t key_hash(std::string_view key);

  std::size_t nodes() const { return node_ids_.size(); }
  int vnodes() const { return vnodes_; }
  std::size_t points() const { return points_.size(); }
  const std::string& node_id(int index) const { return node_ids_[index]; }

  /// Ownership share per node over `sample_keys` synthetic keys — the
  /// balance diagnostic the distribution tests bound (max/mean).
  std::vector<double> ownership_fractions(std::size_t sample_keys) const;

 private:
  struct Point {
    std::uint64_t hash;
    int node;
  };

  std::vector<std::string> node_ids_;
  int vnodes_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace gpawfd::cluster
