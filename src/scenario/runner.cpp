#include "scenario/runner.hpp"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/fault.hpp"
#include "trace/stats.hpp"

namespace gpawfd::scenario {

namespace {

/// Shared mutable tallies one phase's generators record into. The
/// latency histograms are lock-free; the counters are relaxed atomics —
/// same contract as svc::Metrics.
struct PhaseTally {
  std::atomic<std::int64_t> issued{0};
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<std::int64_t> failed{0};
  trace::LatencyHistogram latency;
};

void summarize(const PhaseTally& t, double wall, PhaseStats* out) {
  out->wall_seconds = wall;
  out->issued = t.issued.load();
  out->ok = t.ok.load();
  out->rejected = t.rejected.load();
  out->failed = t.failed.load();
  out->throughput_rps =
      wall > 0 ? static_cast<double>(out->ok) / wall : 0.0;
  out->p50_seconds = t.latency.quantile(0.50);
  out->p90_seconds = t.latency.quantile(0.90);
  out->p99_seconds = t.latency.quantile(0.99);
  out->max_seconds = t.latency.max_seconds();
  out->mean_seconds = t.latency.mean_seconds();
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20)
      out.push_back(c);
    else
      out.push_back(' ');
  }
  return out;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

void render_phase(std::ostream& os, const PhaseStats& p,
                  const std::string& indent) {
  os << indent << "{\n"
     << indent << "  \"name\": \"" << json_escaped(p.name) << "\",\n"
     << indent << "  \"wall_seconds\": " << json_number(p.wall_seconds)
     << ",\n"
     << indent << "  \"issued\": " << p.issued << ",\n"
     << indent << "  \"ok\": " << p.ok << ",\n"
     << indent << "  \"rejected\": " << p.rejected << ",\n"
     << indent << "  \"failed\": " << p.failed << ",\n"
     << indent << "  \"throughput_rps\": " << json_number(p.throughput_rps)
     << ",\n"
     << indent << "  \"p50_seconds\": " << json_number(p.p50_seconds) << ",\n"
     << indent << "  \"p90_seconds\": " << json_number(p.p90_seconds) << ",\n"
     << indent << "  \"p99_seconds\": " << json_number(p.p99_seconds) << ",\n"
     << indent << "  \"max_seconds\": " << json_number(p.max_seconds) << ",\n"
     << indent << "  \"mean_seconds\": " << json_number(p.mean_seconds)
     << ",\n"
     << indent << "  \"service_delta\": {";
  bool first = true;
  for (const auto& [k, v] : p.service_delta) {
    os << (first ? "\n" : ",\n") << indent << "    \"" << json_escaped(k)
       << "\": " << v;
    first = false;
  }
  if (!first) os << "\n" << indent << "  ";
  os << "}\n" << indent << "}";
}

/// Everything one run instantiates: the service (or, in cluster mode,
/// N backend services + servers + the router), optionally the wire in
/// front, and the per-client connections. Rebuilt on a restart_service
/// phase boundary.
struct Stack {
  std::unique_ptr<svc::SimService> service;
  std::shared_ptr<svc::FaultyExecutor> faulty;  // owned by the executor fn
  std::unique_ptr<net::Server> server;  // tcp: over service; cluster: front
  std::vector<std::unique_ptr<svc::SimService>> backend_services;
  std::vector<std::unique_ptr<net::Server>> backend_servers;
  std::unique_ptr<cluster::Router> router;
  std::vector<std::unique_ptr<net::Client>> clients;
  std::int64_t reconnects_retired = 0;  // from clients of torn-down stacks
};

}  // namespace

Runner::Runner(Scenario scenario) : scenario_(std::move(scenario)) {}

void Runner::set_telemetry(std::shared_ptr<telemetry::TelemetrySink> sink) {
  telemetry_ = std::move(sink);
}

namespace {
/// Signed headroom to the bound; see AssertionResult::margin.
double slo_margin(SloParams::Op op, double observed, double bound) {
  switch (op) {
    case SloParams::Op::kLe:
    case SloParams::Op::kLt:
      return bound - observed;
    case SloParams::Op::kGe:
    case SloParams::Op::kGt:
      return observed - bound;
    case SloParams::Op::kEq: {
      const double d = std::abs(observed - bound);
      return d == 0 ? 0.0 : -d;  // avoid printing "-0" on exact matches
    }
    case SloParams::Op::kNe:
      return std::abs(observed - bound);
  }
  return 0;
}
}  // namespace

double ScenarioReport::metric(const std::string& name,
                              const std::string& phase) const {
  const PhaseStats* stats = &overall;
  if (!phase.empty()) {
    stats = nullptr;
    for (const PhaseStats& p : phases)
      if (p.name == phase) stats = &p;
    GPAWFD_CHECK_MSG(stats, "slo references unknown phase \"" << phase
                                                              << "\"");
  }
  if (name == "wall_seconds") return stats->wall_seconds;
  if (name == "issued") return static_cast<double>(stats->issued);
  if (name == "ok") return static_cast<double>(stats->ok);
  if (name == "rejected") return static_cast<double>(stats->rejected);
  if (name == "failed") return static_cast<double>(stats->failed);
  if (name == "throughput_rps") return stats->throughput_rps;
  if (name == "p50_seconds") return stats->p50_seconds;
  if (name == "p90_seconds") return stats->p90_seconds;
  if (name == "p99_seconds") return stats->p99_seconds;
  if (name == "max_seconds") return stats->max_seconds;
  if (name == "mean_seconds") return stats->mean_seconds;
  if (name == "reconnects") return static_cast<double>(reconnects);
  // Every issued request must reach exactly one of ok / rejected /
  // failed; anything left over vanished without an answer — the number
  // the node-kill scenario pins to zero.
  if (name == "lost_jobs")
    return static_cast<double>(stats->issued - stats->ok - stats->rejected -
                               stats->failed);

  // Service counters: run scope reads the final counters, phase scope
  // the phase delta. Accept both "gave_up" and "svc.gave_up".
  const std::map<std::string, std::int64_t>& counters =
      phase.empty() ? service_counters : stats->service_delta;
  auto lookup = [&](const std::string& key) -> const std::int64_t* {
    auto it = counters.find(key);
    if (it == counters.end()) it = counters.find("svc." + key);
    return it == counters.end() ? nullptr : &it->second;
  };
  auto counter = [&](const char* key) -> double {
    const std::int64_t* v = lookup(key);
    return v ? static_cast<double>(*v) : 0.0;
  };
  if (name == "hit_ratio") {
    const double hits = counter("cache_hits");
    const double total =
        hits + counter("dedup_joined") + counter("accepted");
    return total > 0 ? hits / total : 0.0;
  }
  if (name == "batched_jobs_reconcile")
    return std::abs(counter("batched_jobs") - counter("accepted"));
  if (const std::int64_t* v = lookup(name)) return static_cast<double>(*v);
  GPAWFD_CHECK_MSG(false, "unknown slo metric \"" << name << "\"");
  return 0;
}

std::vector<AssertionResult> evaluate_slos(const std::vector<SloParams>& slos,
                                           const ScenarioReport& report) {
  std::vector<AssertionResult> out;
  for (const SloParams& slo : slos) {
    AssertionResult r;
    r.slo = slo;
    try {
      r.observed = report.metric(slo.metric, slo.phase);
      r.passed = slo_holds(slo.op, r.observed, slo.value);
      r.margin = slo_margin(slo.op, r.observed, slo.value);
    } catch (const Error& e) {
      r.passed = false;
      r.detail = e.what();
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::string ScenarioReport::assertion_summary() const {
  std::ostringstream os;
  for (const AssertionResult& a : assertions) {
    os << (a.passed ? "PASS " : "FAIL ") << a.slo.metric;
    if (!a.slo.phase.empty()) os << "[" << a.slo.phase << "]";
    os << " " << to_string(a.slo.op) << " " << json_number(a.slo.value)
       << " (observed " << json_number(a.observed) << ", margin "
       << json_number(a.margin) << ")";
    if (!a.detail.empty()) os << " — " << a.detail;
    os << "\n";
  }
  return os.str();
}

std::string ScenarioReport::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"scenario\": \"" << json_escaped(scenario) << "\",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"plan_fingerprint\": \"" << std::hex << plan_fingerprint
     << std::dec << "\",\n"
     << "  \"passed\": " << (passed ? "true" : "false") << ",\n"
     << "  \"reconnects\": " << reconnects << ",\n"
     << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    render_phase(os, phases[i], "    ");
    os << (i + 1 < phases.size() ? ",\n" : "\n");
  }
  os << "  ],\n"
     << "  \"overall\":\n";
  render_phase(os, overall, "    ");
  os << ",\n  \"service_counters\": {";
  bool first = true;
  for (const auto& [k, v] : service_counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escaped(k) << "\": " << v;
    first = false;
  }
  if (!first) os << "\n  ";
  os << "},\n  \"assertions\": [\n";
  for (std::size_t i = 0; i < assertions.size(); ++i) {
    const AssertionResult& a = assertions[i];
    os << "    {\"metric\": \"" << json_escaped(a.slo.metric) << "\", \"op\": \""
       << to_string(a.slo.op) << "\", \"value\": " << json_number(a.slo.value)
       << ", \"phase\": \"" << json_escaped(a.slo.phase)
       << "\", \"observed\": " << json_number(a.observed)
       << ", \"margin\": " << json_number(a.margin) << ", \"passed\": "
       << (a.passed ? "true" : "false") << "}"
       << (i + 1 < assertions.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

ScenarioReport Runner::run() {
  Generator generator(scenario_);
  const std::vector<core::SimJobSpec>& catalog = generator.catalog();
  const std::vector<PlannedRequest> plan = generator.plan();

  ScenarioReport report;
  report.scenario = scenario_.name;
  report.seed = scenario_.seed;
  report.plan_fingerprint = generator.fingerprint();

  // "auto" cache_dir: a fresh temp directory, removed after the run.
  std::string cache_dir = scenario_.service.cache_dir;
  bool auto_dir = false;
  if (cache_dir == "auto") {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        ("gpawfd_scenario_" + scenario_.name + "_XXXXXX"))
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    GPAWFD_CHECK_MSG(made, "mkdtemp failed for " << tmpl);
    cache_dir = made;
    auto_dir = true;
  }

  const bool tcp = scenario_.transport.mode == TransportParams::Mode::kTcp;
  const bool clustered =
      scenario_.transport.mode == TransportParams::Mode::kCluster;
  const bool wire = tcp || clustered;

  Stack stack;
  auto make_clients = [&](std::uint16_t port, std::int64_t closed_clients) {
    const std::int64_t n = std::max<std::int64_t>(1, closed_clients);
    for (std::int64_t i = 0; i < n; ++i) {
      net::ClientConfig ccfg;
      ccfg.port = port;
      ccfg.pipeline_window =
          static_cast<std::size_t>(scenario_.transport.pipeline_window);
      stack.clients.push_back(std::make_unique<net::Client>(ccfg));
    }
  };
  auto build_stack = [&](std::int64_t closed_clients) {
    svc::ServiceConfig cfg = scenario_.service.to_service_config();
    cfg.cache_dir = cache_dir;
    cfg.telemetry = telemetry_;
    cfg.telemetry_period_seconds = 0.25;  // scenarios run for seconds
    // Over the wire the poll thread calls submit_then; a blocking
    // admission there would stall every connection, so the wire always
    // sheds (the client-side pipeline window is the throttle).
    if (wire) cfg.block_when_full = false;
    if (scenario_.faults.enabled()) {
      stack.faulty = std::make_shared<svc::FaultyExecutor>(
          core::simulate_job, scenario_.faults.to_fault_config());
      auto faulty = stack.faulty;
      cfg.executor = [faulty](const core::SimJobSpec& s) {
        return (*faulty)(s);
      };
    }
    if (clustered) {
      // N backend services, each its own server (and its own slice of
      // the store when persistence is on), a router hashing across
      // them, and a front server speaking the wire to the generators.
      const TransportParams& t = scenario_.transport;
      cluster::RouterConfig rcfg;
      for (std::int64_t b = 0; b < t.backends; ++b) {
        svc::ServiceConfig bcfg = cfg;
        bcfg.telemetry_source = "svc.b" + std::to_string(b);
        if (!cache_dir.empty()) {
          bcfg.cache_dir = cache_dir + "/b" + std::to_string(b);
          std::filesystem::create_directories(bcfg.cache_dir);
        }
        auto service = std::make_unique<svc::SimService>(bcfg);
        service->wait_warm_loaded();
        stack.backend_servers.push_back(
            std::make_unique<net::Server>(*service));
        // Ring identity is the backend *index*, not the ephemeral port:
        // key ownership (and therefore what a kill_backend phase hits)
        // is identical on every run of the same scenario.
        rcfg.backends.push_back({"127.0.0.1",
                                 stack.backend_servers.back()->port(),
                                 "node-" + std::to_string(b)});
        stack.backend_services.push_back(std::move(service));
      }
      rcfg.vnodes = static_cast<int>(t.vnodes);
      rcfg.replicas = static_cast<int>(t.replicas);
      rcfg.retry.max_attempts = static_cast<int>(t.retries);
      rcfg.retry.initial_backoff_seconds = t.backoff_ms / 1e3;
      rcfg.health_period_seconds = t.health_period_ms / 1e3;
      rcfg.health_fail_threshold = static_cast<int>(t.fail_threshold);
      stack.router = std::make_unique<cluster::Router>(rcfg);
      net::ServerConfig fcfg;
      // The kill window spikes latency; a deep front window keeps the
      // open-loop dispatcher's backlog from tripping kOverloaded.
      fcfg.max_inflight_per_conn = 1 << 16;
      stack.server = std::make_unique<net::Server>(*stack.router, fcfg);
      make_clients(stack.server->port(), closed_clients);
      return;
    }
    stack.service = std::make_unique<svc::SimService>(cfg);
    stack.service->wait_warm_loaded();
    if (tcp) {
      stack.server = std::make_unique<net::Server>(*stack.service);
      make_clients(stack.server->port(), closed_clients);
    }
  };
  auto teardown_stack = [&] {
    for (auto& c : stack.clients) {
      stack.reconnects_retired += c->reconnects();
      c->close();
    }
    stack.clients.clear();
    if (stack.server) stack.server->stop();
    stack.server.reset();
    if (stack.router) stack.router->shutdown();
    stack.router.reset();
    for (auto& s : stack.backend_servers) s->stop();
    stack.backend_servers.clear();
    for (auto& s : stack.backend_services) s->shutdown();
    stack.backend_services.clear();
    if (stack.service) stack.service->shutdown();
    stack.service.reset();
    stack.faulty.reset();
  };
  // The mode-independent counter view: one service's counters, or (in
  // cluster mode) every backend's summed plus the router's "cluster.*"
  // rows — so SLOs read "gave_up" and "cluster.retried" the same way.
  auto counters_now = [&] {
    if (!clustered) return stack.service->metrics().counter_map();
    std::map<std::string, std::int64_t> out;
    for (const auto& s : stack.backend_services)
      for (const auto& [k, v] : s->metrics().counter_map()) out[k] += v;
    for (const auto& [k, v] : stack.router->metrics().counter_map())
      out[k] += v;
    return out;
  };

  const std::int64_t max_clients = [&] {
    std::int64_t n = 1;
    for (const PhaseParams& p : scenario_.phases)
      if (p.mode == PhaseParams::Mode::kClosed) n = std::max(n, p.clients);
    return n;
  }();
  build_stack(max_clients);

  PhaseTally overall_tally;
  for (std::size_t pi = 0; pi < scenario_.phases.size(); ++pi) {
    const PhaseParams& phase = scenario_.phases[pi];
    if (phase.restart_service) {
      teardown_stack();
      build_stack(max_clients);
    }
    // The phase's slice of the plan, in issue order.
    std::vector<PlannedRequest> mine;
    for (const PlannedRequest& r : plan)
      if (r.phase == static_cast<int>(pi)) mine.push_back(r);

    const std::map<std::string, std::int64_t> before = counters_now();
    PhaseTally tally;

    // The declarative node kill: once this phase has issued its
    // kill_after_fraction share, stop the victim backend's server —
    // connections sever mid-reply, exactly what a SIGKILL looks like
    // from the router's side. The service object stays (its counters
    // still merge); only the wire presence dies.
    std::atomic<bool> kill_armed{clustered && phase.kill_backend >= 0};
    const std::int64_t kill_at = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(phase.kill_after_fraction *
                                     static_cast<double>(phase.requests)));
    auto maybe_kill = [&](std::int64_t issued_so_far) {
      if (!kill_armed.load(std::memory_order_relaxed)) return;
      if (issued_so_far < kill_at) return;
      if (!kill_armed.exchange(false, std::memory_order_relaxed)) return;
      stack.backend_servers[static_cast<std::size_t>(phase.kill_backend)]
          ->stop();
    };

    // One settle path for every transport/loop combination.
    auto record_ok = [&](double rtt) {
      tally.ok.fetch_add(1, std::memory_order_relaxed);
      overall_tally.ok.fetch_add(1, std::memory_order_relaxed);
      tally.latency.record(rtt);
      overall_tally.latency.record(rtt);
    };
    auto record_rejected = [&] {
      tally.rejected.fetch_add(1, std::memory_order_relaxed);
      overall_tally.rejected.fetch_add(1, std::memory_order_relaxed);
    };
    auto record_failed = [&] {
      tally.failed.fetch_add(1, std::memory_order_relaxed);
      overall_tally.failed.fetch_add(1, std::memory_order_relaxed);
    };
    auto record_error = [&](std::exception_ptr err) {
      try {
        std::rethrow_exception(err);
      } catch (const svc::ServiceError& e) {
        if (e.reason() == svc::ErrorReason::kRejectedQueueFull ||
            e.reason() == svc::ErrorReason::kRejectedShutdown)
          record_rejected();
        else
          record_failed();
      } catch (const net::RpcError& e) {
        if (e.status() == net::WireStatus::kRejectedQueueFull ||
            e.status() == net::WireStatus::kRejectedShutdown)
          record_rejected();
        else
          record_failed();
      } catch (...) {
        record_failed();
      }
    };

    const double t0 = trace::now_seconds();
    if (phase.mode == PhaseParams::Mode::kClosed) {
      std::vector<std::thread> generators;
      for (std::int64_t c = 0; c < phase.clients; ++c) {
        generators.emplace_back([&, c] {
          net::Client* client =
              wire ? stack.clients[static_cast<std::size_t>(c)].get() : nullptr;
          for (const PlannedRequest& r : mine) {
            if (r.client != static_cast<int>(c)) continue;
            maybe_kill(tally.issued.fetch_add(1, std::memory_order_relaxed) +
                       1);
            overall_tally.issued.fetch_add(1, std::memory_order_relaxed);
            const core::SimJobSpec& spec =
                catalog[static_cast<std::size_t>(r.job)];
            const double r0 = trace::now_seconds();
            try {
              if (client) {
                client->submit(spec, r.priority);
                record_ok(trace::now_seconds() - r0);
              } else {
                svc::Ticket t = stack.service->submit(spec, r.priority);
                if (t.rejected()) {
                  record_rejected();
                  continue;
                }
                t.result.get();
                record_ok(trace::now_seconds() - r0);
              }
            } catch (...) {
              record_error(std::current_exception());
            }
          }
        });
      }
      for (auto& g : generators) g.join();
    } else {
      // Open loop: pace arrivals on the clock; completions settle on
      // worker threads (in-proc continuations) or a harvest thread
      // (wire futures). The dispatcher never waits for a reply.
      std::mutex mu;
      std::condition_variable cv;
      std::int64_t outstanding = 0;
      auto settled = [&] {
        std::lock_guard lock(mu);
        --outstanding;
        cv.notify_all();
      };

      std::deque<std::pair<std::future<core::SimResult>, double>> inflight;
      std::mutex inflight_mu;
      std::condition_variable inflight_cv;
      bool dispatch_done = false;
      std::thread harvester;
      if (wire) {
        harvester = std::thread([&] {
          for (;;) {
            std::pair<std::future<core::SimResult>, double> item;
            {
              std::unique_lock lock(inflight_mu);
              inflight_cv.wait(
                  lock, [&] { return !inflight.empty() || dispatch_done; });
              if (inflight.empty()) return;
              item = std::move(inflight.front());
              inflight.pop_front();
            }
            try {
              item.first.get();
              record_ok(trace::now_seconds() - item.second);
            } catch (...) {
              record_error(std::current_exception());
            }
            settled();
          }
        });
      }

      net::Client* client = wire ? stack.clients.front().get() : nullptr;
      for (const PlannedRequest& r : mine) {
        const double due = t0 + r.arrival_offset_seconds;
        const double now = trace::now_seconds();
        if (due > now)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(due - now));
        maybe_kill(tally.issued.fetch_add(1, std::memory_order_relaxed) + 1);
        overall_tally.issued.fetch_add(1, std::memory_order_relaxed);
        const core::SimJobSpec& spec = catalog[static_cast<std::size_t>(r.job)];
        const double r0 = trace::now_seconds();
        {
          std::lock_guard lock(mu);
          ++outstanding;
        }
        if (client) {
          try {
            std::future<core::SimResult> f = client->submit_async(spec,
                                                                  r.priority);
            std::lock_guard lock(inflight_mu);
            inflight.emplace_back(std::move(f), r0);
            inflight_cv.notify_one();
          } catch (...) {
            record_error(std::current_exception());
            settled();
          }
        } else {
          stack.service->submit_then(
              spec, r.priority,
              [&, r0](const core::SimResult* result, std::exception_ptr err) {
                if (result)
                  record_ok(trace::now_seconds() - r0);
                else
                  record_error(err);
                settled();
              });
        }
      }
      if (wire) {
        {
          std::lock_guard lock(inflight_mu);
          dispatch_done = true;
        }
        inflight_cv.notify_all();
      }
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return outstanding == 0; });
      }
      if (harvester.joinable()) harvester.join();
    }
    const double wall = trace::now_seconds() - t0;

    PhaseStats stats;
    stats.name = phase.name;
    summarize(tally, wall, &stats);
    const std::map<std::string, std::int64_t> after = counters_now();
    for (const auto& [k, v] : after) {
      auto it = before.find(k);
      stats.service_delta[k] = v - (it == before.end() ? 0 : it->second);
    }
    if (telemetry_) {
      // Per-phase rows: client-side stats plus the service counter
      // deltas, all keyed under the phase name so the trajectory report
      // can track one phase across PRs.
      const std::string src = "scenario." + scenario_.name;
      const std::string pfx = "phase." + stats.name + ".";
      auto emit = [&](const std::string& key, double value) {
        telemetry_->record(src, pfx + key, value, "phase");
      };
      emit("throughput_rps", stats.throughput_rps);
      emit("p50_s", stats.p50_seconds);
      emit("p99_s", stats.p99_seconds);
      emit("wall_s", stats.wall_seconds);
      emit("issued", static_cast<double>(stats.issued));
      emit("ok", static_cast<double>(stats.ok));
      emit("rejected", static_cast<double>(stats.rejected));
      emit("failed", static_cast<double>(stats.failed));
      for (const auto& [k, v] : stats.service_delta)
        if (v != 0)
          telemetry_->record(src, pfx + "delta." + k,
                             static_cast<double>(v), "phase");
    }
    report.phases.push_back(std::move(stats));
  }

  // Settle the write-behind queue so persist counters reconcile, then
  // take the final counter snapshot.
  if (stack.service)
    if (svc::Persister* p = stack.service->persister()) p->flush();
  for (const auto& s : stack.backend_services)
    if (svc::Persister* p = s->persister()) p->flush();
  report.service_counters = counters_now();
  report.overall.name = "overall";
  {
    double wall = 0;
    for (const PhaseStats& p : report.phases) wall += p.wall_seconds;
    summarize(overall_tally, wall, &report.overall);
    report.overall.service_delta = report.service_counters;
  }
  report.reconnects = stack.reconnects_retired;
  for (const auto& c : stack.clients) report.reconnects += c->reconnects();

  teardown_stack();
  if (auto_dir) {
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
  }

  report.assertions = evaluate_slos(scenario_.slos, report);
  report.passed = true;
  for (const AssertionResult& a : report.assertions)
    report.passed = report.passed && a.passed;

  if (telemetry_) {
    // Whole-run stats plus per-assertion observed value and headroom —
    // the "SLO margin across PRs" series, not just pass/fail.
    const std::string src = "scenario." + scenario_.name;
    telemetry_->record(src, "overall.throughput_rps",
                       report.overall.throughput_rps, "run");
    telemetry_->record(src, "overall.p50_s", report.overall.p50_seconds,
                       "run");
    telemetry_->record(src, "overall.p99_s", report.overall.p99_seconds,
                       "run");
    telemetry_->record(src, "overall.ok",
                       static_cast<double>(report.overall.ok), "run");
    telemetry_->record(src, "overall.failed",
                       static_cast<double>(report.overall.failed), "run");
    telemetry_->record(src, "passed", report.passed ? 1.0 : 0.0, "run");
    for (const AssertionResult& a : report.assertions) {
      std::string key = "slo." + a.slo.metric;
      if (!a.slo.phase.empty()) key += "." + a.slo.phase;
      telemetry_->record(src, key + ".observed", a.observed, "slo");
      telemetry_->record(src, key + ".margin", a.margin, "slo");
    }
    telemetry_->flush();
  }
  return report;
}

}  // namespace gpawfd::scenario
