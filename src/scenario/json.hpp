// Minimal strict JSON reader for declarative scenario configs. The repo
// already *writes* JSON (bench::JsonReport, the runner's report); this is
// the other direction: parse a scenario file into a JsonValue tree with
// position-carrying errors, and typed accessors that name the offending
// key path — a typo in a scenario must fail loudly, never silently run
// the wrong experiment (same philosophy as common/cli.hpp).
//
// Scope: standard JSON (RFC 8259) — objects, arrays, strings with
// escapes (\uXXXX limited to the BMP), numbers, true/false/null. No
// comments, no trailing commas: scenario files are checked in and CI-run,
// so strictness is a feature.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace gpawfd::scenario {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one complete JSON document; throws Error("json parse error at
  /// line L, column C: ...") on any violation, including trailing bytes.
  static JsonValue parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; throw Error naming `where` (a key path like
  /// "workload.skew.s") when the value has the wrong type.
  bool as_bool(const std::string& where) const;
  double as_number(const std::string& where) const;
  std::int64_t as_int(const std::string& where) const;  // rejects fractions
  const std::string& as_string(const std::string& where) const;
  const std::vector<JsonValue>& as_array(const std::string& where) const;

  /// Object member lookup; nullptr when absent (absence means "use the
  /// default" throughout the scenario schema).
  const JsonValue* get(const std::string& key) const;
  /// Members in file order — what schema validators walk to reject
  /// unknown keys.
  const std::vector<std::pair<std::string, JsonValue>>& members(
      const std::string& where) const;

  // Construction (used by the parser and by tests building fixtures).
  static JsonValue make_null() { return JsonValue(Type::kNull); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  explicit JsonValue(Type t) : type_(t) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Read a whole file; throws Error when unreadable.
std::string read_file(const std::string& path);

}  // namespace gpawfd::scenario
