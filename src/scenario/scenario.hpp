// Declarative workload scenarios: a JSON file names the experiment — the
// job catalog (grid sizes, radii, core counts), the key mix and skew
// (uniform or Zipf, the "millions of users" shape), the arrival process
// per phase (open- vs closed-loop), the fault schedule, the service
// knobs (cache TTL, batching, retry budget), the transport (in-process
// or over the wire), and the SLOs the run must meet — and the engine
// runs it deterministically (scenario/generator.hpp) and grades it
// (scenario/runner.hpp). DESIGN.md §14 is the schema reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/fault.hpp"
#include "svc/service.hpp"

namespace gpawfd::scenario {

/// "service": the svc::ServiceConfig knobs a scenario may set. Defaults
/// mirror ServiceConfig except block_when_full: a load generator is an
/// in-process batch producer, so throttling (not shedding) is the
/// scenario default — shed-mode scenarios opt in explicitly.
struct ServiceParams {
  int workers = 0;
  std::int64_t queue_capacity = 64;
  std::int64_t cache_capacity = 512;
  int cache_shards = 8;
  bool block_when_full = true;
  int max_attempts = 1;
  double backoff_ms = 1.0;
  double timeout_ms = 0;
  /// "auto" = the runner creates (and removes) a fresh temp directory —
  /// how checked-in scenarios use persistence without hardcoding paths.
  std::string cache_dir;
  double cache_ttl_seconds = 0;
  std::int64_t persist_queue_capacity = 256;
  std::int64_t batch_max = 1;
  bool batch_ramp = true;
  std::int64_t batch_linger_us = 0;
  bool reserve_interactive_lane = true;

  /// The corresponding ServiceConfig (executor and cache_dir resolution
  /// are the runner's job).
  svc::ServiceConfig to_service_config() const;
};

/// "faults": the svc::FaultConfig a scenario stands between the service
/// and the simulator. All-zero probabilities = no injection.
struct FaultParams {
  std::uint64_t seed = 0x5eedfa11ULL;
  double throw_probability = 0;
  double delay_probability = 0;
  double hang_probability = 0;
  int fail_attempts = -1;  // fail-N-then-succeed; -1 = permanent
  double delay_ms = 0;
  double jitter_ms = 0;

  bool enabled() const {
    return throw_probability > 0 || delay_probability > 0 ||
           hang_probability > 0;
  }
  svc::FaultConfig to_fault_config() const;
};

/// "workload.jobs": the distinct-key catalog, the cross product of the
/// listed grid edges × stencil radii × core counts (in that nesting
/// order), optionally truncated to the first `distinct` entries.
struct JobCatalogParams {
  std::vector<std::int64_t> grid_edges{48};
  std::vector<std::int64_t> radii{2};
  std::vector<std::int64_t> cores{256};
  std::int64_t ngrids = 32;
  std::int64_t distinct = 0;  // 0 = the full cross product
};

/// "workload.skew": how requests distribute over the catalog. Zipf rank
/// k (0-based, job 0 hottest) draws with weight 1/(k+1)^s — s ≈ 1 is
/// the classic web-traffic shape of a "millions of users" key mix.
struct KeyMixParams {
  enum class Kind { kUniform, kZipf };
  Kind kind = Kind::kUniform;
  double zipf_s = 1.0;
};

/// One traffic phase. Closed loop: `clients` generators each issue their
/// share of `requests`, next request only after the previous reply (the
/// classic saturation-free shape; pipelining widens it). Open loop:
/// arrivals are scheduled on a clock at `rate_hz` regardless of
/// completions — the shape that actually stresses queues.
struct PhaseParams {
  std::string name;
  enum class Mode { kClosed, kOpen };
  Mode mode = Mode::kClosed;
  std::int64_t clients = 4;    // closed-loop generator threads
  std::int64_t requests = 64;  // total requests this phase issues
  double rate_hz = 0;          // open-loop arrival rate
  enum class Process { kPoisson, kUniform };
  Process process = Process::kPoisson;  // open-loop gap distribution
  double interactive_fraction = 0;      // Priority::kInteractive share
  /// Tear the service down and rebuild it (warm-loading cache_dir)
  /// before this phase — the declarative warm-restart scenario.
  bool restart_service = false;
  /// Cluster transport only: SIGKILL-equivalent a backend (its server
  /// stops mid-connection, in-flight replies dropped) once this phase
  /// has issued kill_after_fraction of its requests. -1 = no kill.
  std::int64_t kill_backend = -1;
  double kill_after_fraction = 0.5;
};

/// "transport": drive the service in-process, stand a net::Server in
/// front of it and drive it through net::Client connections (one per
/// closed-loop client) — the full wire path, self-hosted on loopback —
/// or build a whole sharded cluster: N backend services behind N
/// servers, a cluster::Router consistent-hashing across them, and a
/// front server speaking the same wire protocol to the generators.
struct TransportParams {
  enum class Mode { kInProc, kTcp, kCluster };
  Mode mode = Mode::kInProc;
  std::int64_t pipeline_window = 0;  // net::ClientConfig::pipeline_window
  // Cluster-mode shape (rejected for other modes): see
  // cluster::RouterConfig for semantics.
  std::int64_t backends = 3;
  std::int64_t replicas = 2;
  std::int64_t vnodes = 64;
  std::int64_t retries = 4;
  double backoff_ms = 5;
  double health_period_ms = 100;
  std::int64_t fail_threshold = 2;
};

/// One declarative SLO: compare a named metric against a bound. Metrics
/// are client-side phase stats ("p99_seconds", "ok", "throughput_rps",
/// ...), service counters ("gave_up", "retries", any counter_map key),
/// or derived values ("hit_ratio", "batched_jobs_reconcile"). An empty
/// phase scopes the metric to the whole run (final service counters);
/// a phase name scopes it to that phase (counter deltas).
struct SloParams {
  std::string metric;
  enum class Op { kLe, kGe, kLt, kGt, kEq, kNe };
  Op op = Op::kLe;
  double value = 0;
  std::string phase;
};

const char* to_string(SloParams::Op op);
bool slo_holds(SloParams::Op op, double observed, double bound);

struct Scenario {
  std::string name;
  std::uint64_t seed = 1;
  ServiceParams service;
  FaultParams faults;
  JobCatalogParams catalog;
  KeyMixParams mix;
  TransportParams transport;
  std::vector<PhaseParams> phases;
  std::vector<SloParams> slos;
};

/// Parse + validate a scenario document. Unknown keys anywhere are
/// errors (typos must not silently run the wrong experiment); every
/// range violation names the offending key path.
Scenario parse_scenario(const std::string& json_text);
Scenario load_scenario(const std::string& path);

}  // namespace gpawfd::scenario
