#include "scenario/scenario.hpp"

#include <set>
#include <utility>

#include "scenario/json.hpp"

namespace gpawfd::scenario {

namespace {

/// Reject members outside `allowed` — the schema's typo guard.
void check_keys(const JsonValue& obj, const std::string& where,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, unused] : obj.members(where)) {
    bool known = false;
    for (const char* a : allowed)
      if (key == a) {
        known = true;
        break;
      }
    GPAWFD_CHECK_MSG(known, "unknown key \"" << key << "\" in " << where);
  }
}

std::int64_t int_in(const JsonValue& v, const std::string& where,
                    std::int64_t lo, std::int64_t hi) {
  const std::int64_t out = v.as_int(where);
  GPAWFD_CHECK_MSG(out >= lo && out <= hi, where << " must be in [" << lo
                                                 << ", " << hi << "], got "
                                                 << out);
  return out;
}

double number_in(const JsonValue& v, const std::string& where, double lo,
                 double hi) {
  const double out = v.as_number(where);
  GPAWFD_CHECK_MSG(out >= lo && out <= hi, where << " must be in [" << lo
                                                 << ", " << hi << "], got "
                                                 << out);
  return out;
}

std::vector<std::int64_t> int_list(const JsonValue& v, const std::string& where,
                                   std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> out;
  for (const JsonValue& item : v.as_array(where))
    out.push_back(int_in(item, where + "[]", lo, hi));
  GPAWFD_CHECK_MSG(!out.empty(), where << " must not be empty");
  return out;
}

constexpr std::int64_t kMaxI64 = std::int64_t{1} << 40;

ServiceParams parse_service(const JsonValue& v) {
  ServiceParams p;
  check_keys(v, "service",
             {"workers", "queue_capacity", "cache_capacity", "cache_shards",
              "block_when_full", "max_attempts", "backoff_ms", "timeout_ms",
              "cache_dir", "cache_ttl_seconds", "persist_queue_capacity",
              "batch_max", "batch_ramp", "batch_linger_us",
              "reserve_interactive_lane"});
  if (const auto* j = v.get("workers"))
    p.workers = static_cast<int>(int_in(*j, "service.workers", 0, 1024));
  if (const auto* j = v.get("queue_capacity"))
    p.queue_capacity = int_in(*j, "service.queue_capacity", 1, kMaxI64);
  if (const auto* j = v.get("cache_capacity"))
    p.cache_capacity = int_in(*j, "service.cache_capacity", 1, kMaxI64);
  if (const auto* j = v.get("cache_shards"))
    p.cache_shards =
        static_cast<int>(int_in(*j, "service.cache_shards", 1, 1024));
  if (const auto* j = v.get("block_when_full"))
    p.block_when_full = j->as_bool("service.block_when_full");
  if (const auto* j = v.get("max_attempts"))
    p.max_attempts =
        static_cast<int>(int_in(*j, "service.max_attempts", 1, 1000));
  if (const auto* j = v.get("backoff_ms"))
    p.backoff_ms = number_in(*j, "service.backoff_ms", 0, 1e9);
  if (const auto* j = v.get("timeout_ms"))
    p.timeout_ms = number_in(*j, "service.timeout_ms", 0, 1e9);
  if (const auto* j = v.get("cache_dir"))
    p.cache_dir = j->as_string("service.cache_dir");
  if (const auto* j = v.get("cache_ttl_seconds"))
    p.cache_ttl_seconds = number_in(*j, "service.cache_ttl_seconds", 0, 1e12);
  if (const auto* j = v.get("persist_queue_capacity"))
    p.persist_queue_capacity =
        int_in(*j, "service.persist_queue_capacity", 1, kMaxI64);
  if (const auto* j = v.get("batch_max"))
    p.batch_max = int_in(*j, "service.batch_max", 1, kMaxI64);
  if (const auto* j = v.get("batch_ramp"))
    p.batch_ramp = j->as_bool("service.batch_ramp");
  if (const auto* j = v.get("batch_linger_us"))
    p.batch_linger_us = int_in(*j, "service.batch_linger_us", 0, kMaxI64);
  if (const auto* j = v.get("reserve_interactive_lane"))
    p.reserve_interactive_lane = j->as_bool("service.reserve_interactive_lane");
  return p;
}

FaultParams parse_faults(const JsonValue& v) {
  FaultParams p;
  check_keys(v, "faults",
             {"seed", "throw_probability", "delay_probability",
              "hang_probability", "fail_attempts", "delay_ms", "jitter_ms"});
  if (const auto* j = v.get("seed"))
    p.seed = static_cast<std::uint64_t>(int_in(*j, "faults.seed", 0, kMaxI64));
  if (const auto* j = v.get("throw_probability"))
    p.throw_probability = number_in(*j, "faults.throw_probability", 0, 1);
  if (const auto* j = v.get("delay_probability"))
    p.delay_probability = number_in(*j, "faults.delay_probability", 0, 1);
  if (const auto* j = v.get("hang_probability"))
    p.hang_probability = number_in(*j, "faults.hang_probability", 0, 1);
  if (const auto* j = v.get("fail_attempts"))
    p.fail_attempts =
        static_cast<int>(int_in(*j, "faults.fail_attempts", -1, 1000));
  if (const auto* j = v.get("delay_ms"))
    p.delay_ms = number_in(*j, "faults.delay_ms", 0, 1e9);
  if (const auto* j = v.get("jitter_ms"))
    p.jitter_ms = number_in(*j, "faults.jitter_ms", 0, 1e9);
  return p;
}

JobCatalogParams parse_jobs(const JsonValue& v) {
  JobCatalogParams p;
  check_keys(v, "workload.jobs",
             {"grid_edges", "radii", "cores", "ngrids", "distinct"});
  if (const auto* j = v.get("grid_edges"))
    p.grid_edges = int_list(*j, "workload.jobs.grid_edges", 4, 4096);
  if (const auto* j = v.get("radii"))
    p.radii = int_list(*j, "workload.jobs.radii", 1, 4);
  if (const auto* j = v.get("cores"))
    p.cores = int_list(*j, "workload.jobs.cores", 1, 1 << 24);
  if (const auto* j = v.get("ngrids"))
    p.ngrids = int_in(*j, "workload.jobs.ngrids", 1, 1 << 20);
  if (const auto* j = v.get("distinct"))
    p.distinct = int_in(*j, "workload.jobs.distinct", 0, kMaxI64);
  return p;
}

KeyMixParams parse_skew(const JsonValue& v) {
  KeyMixParams p;
  check_keys(v, "workload.skew", {"kind", "s"});
  if (const auto* j = v.get("kind")) {
    const std::string& kind = j->as_string("workload.skew.kind");
    if (kind == "uniform")
      p.kind = KeyMixParams::Kind::kUniform;
    else if (kind == "zipf")
      p.kind = KeyMixParams::Kind::kZipf;
    else
      GPAWFD_CHECK_MSG(false, "workload.skew.kind must be \"uniform\" or "
                              "\"zipf\", got \""
                                  << kind << "\"");
  }
  if (const auto* j = v.get("s"))
    p.zipf_s = number_in(*j, "workload.skew.s", 0, 16);
  return p;
}

TransportParams parse_transport(const JsonValue& v) {
  TransportParams p;
  check_keys(v, "transport",
             {"mode", "pipeline_window", "backends", "replicas", "vnodes",
              "retries", "backoff_ms", "health_period_ms", "fail_threshold"});
  if (const auto* j = v.get("mode")) {
    const std::string& mode = j->as_string("transport.mode");
    if (mode == "inproc")
      p.mode = TransportParams::Mode::kInProc;
    else if (mode == "tcp")
      p.mode = TransportParams::Mode::kTcp;
    else if (mode == "cluster")
      p.mode = TransportParams::Mode::kCluster;
    else
      GPAWFD_CHECK_MSG(false, "transport.mode must be \"inproc\", \"tcp\" "
                              "or \"cluster\", got \""
                                  << mode << "\"");
  }
  if (const auto* j = v.get("pipeline_window"))
    p.pipeline_window = int_in(*j, "transport.pipeline_window", 0, 1 << 20);
  // The cluster shape keys only mean something under mode "cluster";
  // anywhere else they are almost certainly a mis-filed experiment.
  for (const char* key : {"backends", "replicas", "vnodes", "retries",
                          "backoff_ms", "health_period_ms", "fail_threshold"})
    GPAWFD_CHECK_MSG(p.mode == TransportParams::Mode::kCluster || !v.get(key),
                     "transport." << key
                                  << " requires transport.mode \"cluster\"");
  if (const auto* j = v.get("backends"))
    p.backends = int_in(*j, "transport.backends", 1, 64);
  if (const auto* j = v.get("replicas"))
    p.replicas = int_in(*j, "transport.replicas", 1, 64);
  if (const auto* j = v.get("vnodes"))
    p.vnodes = int_in(*j, "transport.vnodes", 1, 1 << 16);
  if (const auto* j = v.get("retries"))
    p.retries = int_in(*j, "transport.retries", 1, 1000);
  if (const auto* j = v.get("backoff_ms"))
    p.backoff_ms = number_in(*j, "transport.backoff_ms", 0, 1e9);
  if (const auto* j = v.get("health_period_ms"))
    p.health_period_ms = number_in(*j, "transport.health_period_ms", 0, 1e9);
  if (const auto* j = v.get("fail_threshold"))
    p.fail_threshold = int_in(*j, "transport.fail_threshold", 1, 1000);
  return p;
}

PhaseParams parse_phase(const JsonValue& v, std::size_t index) {
  PhaseParams p;
  const std::string where = "phases[" + std::to_string(index) + "]";
  check_keys(v, where,
             {"name", "mode", "clients", "requests", "rate_hz", "process",
              "interactive_fraction", "restart_service", "kill_backend",
              "kill_after_fraction"});
  const auto* name = v.get("name");
  GPAWFD_CHECK_MSG(name, where << " requires a \"name\"");
  p.name = name->as_string(where + ".name");
  GPAWFD_CHECK_MSG(!p.name.empty(), where << ".name must not be empty");
  if (const auto* j = v.get("mode")) {
    const std::string& mode = j->as_string(where + ".mode");
    if (mode == "closed")
      p.mode = PhaseParams::Mode::kClosed;
    else if (mode == "open")
      p.mode = PhaseParams::Mode::kOpen;
    else
      GPAWFD_CHECK_MSG(false, where << ".mode must be \"closed\" or "
                                       "\"open\", got \""
                                    << mode << "\"");
  }
  if (const auto* j = v.get("clients"))
    p.clients = int_in(*j, where + ".clients", 1, 4096);
  if (const auto* j = v.get("requests"))
    p.requests = int_in(*j, where + ".requests", 1, kMaxI64);
  if (const auto* j = v.get("rate_hz"))
    p.rate_hz = number_in(*j, where + ".rate_hz", 0, 1e9);
  if (const auto* j = v.get("process")) {
    const std::string& process = j->as_string(where + ".process");
    if (process == "poisson")
      p.process = PhaseParams::Process::kPoisson;
    else if (process == "uniform")
      p.process = PhaseParams::Process::kUniform;
    else
      GPAWFD_CHECK_MSG(false, where << ".process must be \"poisson\" or "
                                       "\"uniform\", got \""
                                    << process << "\"");
  }
  if (const auto* j = v.get("interactive_fraction"))
    p.interactive_fraction =
        number_in(*j, where + ".interactive_fraction", 0, 1);
  if (const auto* j = v.get("restart_service"))
    p.restart_service = j->as_bool(where + ".restart_service");
  if (const auto* j = v.get("kill_backend"))
    p.kill_backend = int_in(*j, where + ".kill_backend", -1, 63);
  if (const auto* j = v.get("kill_after_fraction"))
    p.kill_after_fraction = number_in(*j, where + ".kill_after_fraction", 0, 1);
  GPAWFD_CHECK_MSG(p.mode != PhaseParams::Mode::kOpen || p.rate_hz > 0,
                   where << ": open-loop phases require rate_hz > 0");
  return p;
}

SloParams parse_slo(const JsonValue& v, std::size_t index) {
  SloParams p;
  const std::string where = "slo[" + std::to_string(index) + "]";
  check_keys(v, where, {"metric", "op", "value", "phase"});
  const auto* metric = v.get("metric");
  GPAWFD_CHECK_MSG(metric, where << " requires a \"metric\"");
  p.metric = metric->as_string(where + ".metric");
  GPAWFD_CHECK_MSG(!p.metric.empty(), where << ".metric must not be empty");
  const auto* op = v.get("op");
  GPAWFD_CHECK_MSG(op, where << " requires an \"op\"");
  const std::string& o = op->as_string(where + ".op");
  if (o == "<=")
    p.op = SloParams::Op::kLe;
  else if (o == ">=")
    p.op = SloParams::Op::kGe;
  else if (o == "<")
    p.op = SloParams::Op::kLt;
  else if (o == ">")
    p.op = SloParams::Op::kGt;
  else if (o == "==")
    p.op = SloParams::Op::kEq;
  else if (o == "!=")
    p.op = SloParams::Op::kNe;
  else
    GPAWFD_CHECK_MSG(false, where << ".op must be one of <=, >=, <, >, ==, "
                                     "!=, got \""
                                  << o << "\"");
  const auto* value = v.get("value");
  GPAWFD_CHECK_MSG(value, where << " requires a \"value\"");
  p.value = value->as_number(where + ".value");
  if (const auto* j = v.get("phase")) p.phase = j->as_string(where + ".phase");
  return p;
}

}  // namespace

svc::ServiceConfig ServiceParams::to_service_config() const {
  svc::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = static_cast<std::size_t>(queue_capacity);
  cfg.cache_capacity = static_cast<std::size_t>(cache_capacity);
  cfg.cache_shards = cache_shards;
  cfg.block_when_full = block_when_full;
  cfg.retry.max_attempts = max_attempts;
  cfg.retry.initial_backoff_seconds = backoff_ms / 1e3;
  cfg.retry.attempt_timeout_seconds = timeout_ms / 1e3;
  cfg.cache_ttl_seconds = cache_ttl_seconds;
  cfg.persist_queue_capacity = static_cast<std::size_t>(persist_queue_capacity);
  cfg.batch_max = static_cast<std::size_t>(batch_max);
  cfg.batch_ramp = batch_ramp;
  cfg.batch_linger_us = static_cast<long>(batch_linger_us);
  cfg.reserve_interactive_lane = reserve_interactive_lane;
  // cache_dir is resolved by the runner ("auto" -> fresh temp dir).
  return cfg;
}

svc::FaultConfig FaultParams::to_fault_config() const {
  svc::FaultConfig cfg;
  cfg.seed = seed;
  cfg.throw_probability = throw_probability;
  cfg.delay_probability = delay_probability;
  cfg.hang_probability = hang_probability;
  cfg.fail_attempts = fail_attempts;
  cfg.delay_seconds = delay_ms / 1e3;
  cfg.jitter_seconds = jitter_ms / 1e3;
  return cfg;
}

const char* to_string(SloParams::Op op) {
  switch (op) {
    case SloParams::Op::kLe:
      return "<=";
    case SloParams::Op::kGe:
      return ">=";
    case SloParams::Op::kLt:
      return "<";
    case SloParams::Op::kGt:
      return ">";
    case SloParams::Op::kEq:
      return "==";
    case SloParams::Op::kNe:
      return "!=";
  }
  return "?";
}

bool slo_holds(SloParams::Op op, double observed, double bound) {
  switch (op) {
    case SloParams::Op::kLe:
      return observed <= bound;
    case SloParams::Op::kGe:
      return observed >= bound;
    case SloParams::Op::kLt:
      return observed < bound;
    case SloParams::Op::kGt:
      return observed > bound;
    case SloParams::Op::kEq:
      return observed == bound;
    case SloParams::Op::kNe:
      return observed != bound;
  }
  return false;
}

Scenario parse_scenario(const std::string& json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  Scenario s;
  check_keys(doc, "scenario",
             {"name", "seed", "service", "faults", "workload", "transport",
              "phases", "slo"});
  const auto* name = doc.get("name");
  GPAWFD_CHECK_MSG(name, "scenario requires a \"name\"");
  s.name = name->as_string("name");
  GPAWFD_CHECK_MSG(!s.name.empty(), "scenario name must not be empty");
  if (const auto* j = doc.get("seed"))
    s.seed = static_cast<std::uint64_t>(int_in(*j, "seed", 0, kMaxI64));
  if (const auto* j = doc.get("service")) s.service = parse_service(*j);
  if (const auto* j = doc.get("faults")) s.faults = parse_faults(*j);
  if (const auto* j = doc.get("workload")) {
    check_keys(*j, "workload", {"jobs", "skew"});
    if (const auto* jobs = j->get("jobs")) s.catalog = parse_jobs(*jobs);
    if (const auto* skew = j->get("skew")) s.mix = parse_skew(*skew);
  }
  if (const auto* j = doc.get("transport")) s.transport = parse_transport(*j);

  const auto* phases = doc.get("phases");
  GPAWFD_CHECK_MSG(phases, "scenario requires a \"phases\" array");
  const auto& phase_items = phases->as_array("phases");
  GPAWFD_CHECK_MSG(!phase_items.empty(), "phases must not be empty");
  std::set<std::string> phase_names;
  for (std::size_t i = 0; i < phase_items.size(); ++i) {
    PhaseParams p = parse_phase(phase_items[i], i);
    GPAWFD_CHECK_MSG(phase_names.insert(p.name).second,
                     "duplicate phase name \"" << p.name << "\"");
    s.phases.push_back(std::move(p));
  }
  GPAWFD_CHECK_MSG(!s.phases.front().restart_service,
                   "phases[0] cannot set restart_service (nothing to "
                   "restart yet)");
  for (const PhaseParams& p : s.phases)
    GPAWFD_CHECK_MSG(!p.restart_service || !s.service.cache_dir.empty(),
                     "restart_service requires service.cache_dir (a warm "
                     "restart without a store proves nothing)");
  for (const PhaseParams& p : s.phases) {
    if (p.kill_backend < 0) continue;
    GPAWFD_CHECK_MSG(s.transport.mode == TransportParams::Mode::kCluster,
                     "phase \"" << p.name << "\": kill_backend requires "
                                             "transport.mode \"cluster\"");
    GPAWFD_CHECK_MSG(p.kill_backend < s.transport.backends,
                     "phase \"" << p.name << "\": kill_backend "
                                << p.kill_backend << " out of range (only "
                                << s.transport.backends << " backends)");
  }

  if (const auto* j = doc.get("slo")) {
    const auto& slo_items = j->as_array("slo");
    for (std::size_t i = 0; i < slo_items.size(); ++i) {
      SloParams p = parse_slo(slo_items[i], i);
      GPAWFD_CHECK_MSG(p.phase.empty() || phase_names.count(p.phase),
                       "slo[" << i << "] references unknown phase \""
                              << p.phase << "\"");
      s.slos.push_back(std::move(p));
    }
  }
  return s;
}

Scenario load_scenario(const std::string& path) {
  try {
    return parse_scenario(read_file(path));
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace gpawfd::scenario
