// The scenario runner: build the service a Scenario declares (optionally
// fronted by a net::Server and driven through net::Client connections),
// replay the Generator's deterministic plan phase by phase — closed-loop
// client threads or an open-loop paced dispatcher — collect per-phase
// client-side latency stats and service counter deltas, evaluate the
// declarative SLO assertions, and return a pass/fail ScenarioReport
// (with a JSON rendering for CI artifacts). This is the reusable,
// assertion-gated traffic harness every perf PR drives instead of
// bespoke bench code.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scenario/generator.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/sink.hpp"

namespace gpawfd::scenario {

/// Client-side view of one phase, summarized (histograms reduced to
/// quantiles so the report is a plain value type).
struct PhaseStats {
  std::string name;
  double wall_seconds = 0;
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;  // shed by admission control (in-proc)
  std::int64_t failed = 0;    // terminal ServiceError / RpcError
  double throughput_rps = 0;
  double p50_seconds = 0;
  double p90_seconds = 0;
  double p99_seconds = 0;
  double max_seconds = 0;
  double mean_seconds = 0;
  /// Service counter_map() delta over the phase (empty after a remote
  /// run where the service is not in this process).
  std::map<std::string, std::int64_t> service_delta;
};

struct AssertionResult {
  SloParams slo;
  double observed = 0;
  /// Signed headroom to the bound, positive while the assertion passes:
  /// kLe/kLt: value - observed; kGe/kGt: observed - value;
  /// kEq: -|observed - value|; kNe: |observed - value|. Tracked across
  /// PRs (via the telemetry table) so an SLO eroding toward its bound is
  /// visible long before it flips to FAIL.
  double margin = 0;
  bool passed = false;
  std::string detail;  // set when the metric could not be evaluated
};

struct ScenarioReport {
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t plan_fingerprint = 0;
  std::vector<PhaseStats> phases;
  /// Whole-run client-side stats (all phases merged) — what run-scoped
  /// latency/count SLOs read.
  PhaseStats overall;
  /// Final service counters (last service instance when phases restart).
  std::map<std::string, std::int64_t> service_counters;
  std::int64_t reconnects = 0;  // TCP transport only
  std::vector<AssertionResult> assertions;
  bool passed = false;

  /// Metric lookup the SLO evaluator uses; `phase` empty = run scope.
  /// Throws Error naming the metric when it does not exist.
  double metric(const std::string& name, const std::string& phase) const;

  std::string to_json() const;
  /// Human-readable assertion table ("PASS p99_seconds <= 0.5 ...").
  std::string assertion_summary() const;
};

class Runner {
 public:
  explicit Runner(Scenario scenario);

  /// Stream this run into a telemetry sink (null = off, the default):
  /// the built service(s) flush counter deltas on a period (source
  /// "svc", or "svc.b<i>" per cluster backend), and the runner itself
  /// emits per-phase client stats + service counter deltas
  /// ("phase.<name>.*"), overall stats, and per-assertion observed/
  /// margin rows ("slo.<metric>...") under source
  /// "scenario.<scenario name>".
  void set_telemetry(std::shared_ptr<telemetry::TelemetrySink> sink);

  /// Execute every phase and grade the SLOs. Runs to completion even
  /// when assertions fail — the report carries the verdict.
  ScenarioReport run();

 private:
  Scenario scenario_;
  std::shared_ptr<telemetry::TelemetrySink> telemetry_;
};

/// Evaluate `slos` against a filled-in report (exposed for tests).
std::vector<AssertionResult> evaluate_slos(const std::vector<SloParams>& slos,
                                           const ScenarioReport& report);

}  // namespace gpawfd::scenario
