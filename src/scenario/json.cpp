#include "scenario/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gpawfd::scenario {

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kNumber:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

/// Recursive-descent parser tracking line/column for error messages.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json parse error at line " << line << ", column " << col << ": "
       << what;
    throw Error(os.str());
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'" +
           (eof() ? " but hit end of input"
                  : std::string(", got '") + peek() + "'"));
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid token");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid token");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid token");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      for (const auto& [existing, unused] : members)
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          const std::uint32_t cp = parse_hex4();
          append_utf8(out, cp);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {  // BMP only — surrogate pairs are out of scope for configs
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("malformed number");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        fail("digit required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) fail("malformed number");
      return JsonValue::make_number(v);
    } catch (const std::exception&) {
      fail("number out of range");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool(const std::string& where) const {
  GPAWFD_CHECK_MSG(type_ == Type::kBool, where << " expects a bool, got "
                                               << type_name(type_));
  return bool_;
}

double JsonValue::as_number(const std::string& where) const {
  GPAWFD_CHECK_MSG(type_ == Type::kNumber, where << " expects a number, got "
                                                 << type_name(type_));
  return number_;
}

std::int64_t JsonValue::as_int(const std::string& where) const {
  const double v = as_number(where);
  const double r = std::nearbyint(v);
  GPAWFD_CHECK_MSG(v == r && std::abs(v) <= 9.007199254740992e15,
                   where << " expects an integer, got " << v);
  return static_cast<std::int64_t>(r);
}

const std::string& JsonValue::as_string(const std::string& where) const {
  GPAWFD_CHECK_MSG(type_ == Type::kString, where << " expects a string, got "
                                                 << type_name(type_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array(
    const std::string& where) const {
  GPAWFD_CHECK_MSG(type_ == Type::kArray, where << " expects an array, got "
                                                << type_name(type_));
  return array_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members(
    const std::string& where) const {
  GPAWFD_CHECK_MSG(type_ == Type::kObject, where << " expects an object, got "
                                                 << type_name(type_));
  return object_;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v(Type::kBool);
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v(Type::kNumber);
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v(Type::kString);
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v(Type::kArray);
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v(Type::kObject);
  v.object_ = std::move(members);
  return v;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GPAWFD_CHECK_MSG(is.good(), "cannot read " << path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace gpawfd::scenario
