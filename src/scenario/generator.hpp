// Seeded deterministic load generation: expand a Scenario into (a) the
// job catalog — the distinct SimJobSpecs the key mix draws from — and
// (b) the full request plan, every request of every phase in issue
// order with its catalog index, priority, issuing client, and (open
// loop) arrival offset. The plan is a pure function of the scenario:
// same JSON + same seed produce a bit-identical sequence (key order,
// arrival times, fault points), which is what makes SLO assertions
// meaningful across machines and what the determinism property test
// pins. All randomness flows through common/rng.hpp (SplitMix64), never
// std:: distributions, so the sequence is stable across platforms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "scenario/scenario.hpp"
#include "svc/job_queue.hpp"

namespace gpawfd::scenario {

/// One planned request. Closed loop: `client` issues it in plan order,
/// arrival_offset_seconds is 0 (the loop itself paces). Open loop:
/// client is the dispatcher (0) and arrival_offset_seconds is the
/// scheduled send time relative to phase start.
struct PlannedRequest {
  int phase = 0;
  int client = 0;
  int job = 0;  // catalog index
  svc::Priority priority = svc::Priority::kNormal;
  double arrival_offset_seconds = 0;

  friend bool operator==(const PlannedRequest&,
                         const PlannedRequest&) = default;
};

class Generator {
 public:
  explicit Generator(const Scenario& scenario);

  /// The distinct jobs, catalog order = grid_edges × radii × cores
  /// nesting (truncated to `distinct` when set). Zipf rank 0 is
  /// catalog[0].
  const std::vector<core::SimJobSpec>& catalog() const { return catalog_; }

  /// The full deterministic plan (see PlannedRequest).
  std::vector<PlannedRequest> plan() const;

  /// The deterministic fault kind each catalog entry is subject to under
  /// the scenario's fault plan (svc::FaultyExecutor's seeded partition)
  /// — the "fault points" half of the reproducibility contract. All
  /// kNone when fault injection is disabled.
  std::vector<svc::FaultKind> fault_points() const;

  /// FNV-1a over every plan field plus the fault points: two scenarios
  /// generate the same traffic iff their fingerprints match (modulo
  /// hash collisions). Recorded in the scenario report.
  std::uint64_t fingerprint() const;

 private:
  int sample_job(Rng& rng) const;

  Scenario scenario_;
  std::vector<core::SimJobSpec> catalog_;
  /// Zipf CDF over catalog ranks (empty for the uniform mix).
  std::vector<double> zipf_cdf_;
};

}  // namespace gpawfd::scenario
