#include "scenario/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "svc/fault.hpp"
#include "svc/job_key.hpp"

namespace gpawfd::scenario {

namespace {

core::SimJobSpec spec_of(const JobCatalogParams& p, std::int64_t edge,
                         std::int64_t radius, std::int64_t cores) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(static_cast<int>(edge));
  spec.job.ghost = static_cast<int>(radius);
  spec.job.ngrids = static_cast<int>(p.ngrids);
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = static_cast<int>(cores);
  return spec;
}

void mix64(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

Generator::Generator(const Scenario& scenario) : scenario_(scenario) {
  const JobCatalogParams& c = scenario_.catalog;
  for (const std::int64_t edge : c.grid_edges)
    for (const std::int64_t radius : c.radii)
      for (const std::int64_t cores : c.cores) {
        if (c.distinct > 0 &&
            static_cast<std::int64_t>(catalog_.size()) >= c.distinct)
          break;
        catalog_.push_back(spec_of(c, edge, radius, cores));
      }
  GPAWFD_CHECK_MSG(!catalog_.empty(), "scenario \"" << scenario_.name
                                                    << "\" has an empty job "
                                                       "catalog");
  if (scenario_.mix.kind == KeyMixParams::Kind::kZipf) {
    double total = 0;
    zipf_cdf_.reserve(catalog_.size());
    for (std::size_t k = 0; k < catalog_.size(); ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), scenario_.mix.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (double& v : zipf_cdf_) v /= total;
  }
}

int Generator::sample_job(Rng& rng) const {
  const double u = rng.next_double();
  if (zipf_cdf_.empty())
    return static_cast<int>(rng.next_below(catalog_.size()));
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int>(it - zipf_cdf_.begin());
}

std::vector<PlannedRequest> Generator::plan() const {
  std::vector<PlannedRequest> out;
  for (std::size_t pi = 0; pi < scenario_.phases.size(); ++pi) {
    const PhaseParams& phase = scenario_.phases[pi];
    // One stream per phase, derived from (seed, phase index) so adding a
    // phase never perturbs the ones before it.
    Rng rng(scenario_.seed * 0x9e3779b97f4a7c15ULL + pi + 1);
    double clock = 0;
    for (std::int64_t r = 0; r < phase.requests; ++r) {
      PlannedRequest req;
      req.phase = static_cast<int>(pi);
      req.job = sample_job(rng);
      req.priority = rng.next_double() < phase.interactive_fraction
                         ? svc::Priority::kInteractive
                         : svc::Priority::kNormal;
      if (phase.mode == PhaseParams::Mode::kClosed) {
        req.client = static_cast<int>(r % phase.clients);
      } else {
        // Open loop: arrivals on a clock. Poisson gaps are exponential
        // with mean 1/rate; uniform gaps are exactly 1/rate.
        const double mean_gap = 1.0 / phase.rate_hz;
        const double gap =
            phase.process == PhaseParams::Process::kPoisson
                ? -std::log(1.0 - rng.next_double()) * mean_gap
                : mean_gap;
        clock += gap;
        req.arrival_offset_seconds = clock;
      }
      out.push_back(req);
    }
  }
  return out;
}

std::vector<svc::FaultKind> Generator::fault_points() const {
  std::vector<svc::FaultKind> out(catalog_.size(), svc::FaultKind::kNone);
  if (!scenario_.faults.enabled()) return out;
  // The real partition, not a reimplementation: build the executor the
  // runner would and ask it. The inner function is never called.
  svc::FaultyExecutor exec([](const core::SimJobSpec&) {
    return core::SimResult{};
  }, scenario_.faults.to_fault_config());
  for (std::size_t i = 0; i < catalog_.size(); ++i)
    out[i] = exec.rule_for(svc::JobKey::of(catalog_[i])).kind;
  return out;
}

std::uint64_t Generator::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  // The catalog first: a plan is indices into it, so two scenarios whose
  // request streams match but whose jobs differ must not collide.
  for (const core::SimJobSpec& spec : catalog_)
    mix64(h, svc::JobKey::of(spec).hash());
  for (const PlannedRequest& r : plan()) {
    mix64(h, static_cast<std::uint64_t>(r.phase));
    mix64(h, static_cast<std::uint64_t>(r.client));
    mix64(h, static_cast<std::uint64_t>(r.job));
    mix64(h, static_cast<std::uint64_t>(r.priority));
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof r.arrival_offset_seconds);
    std::memcpy(&bits, &r.arrival_offset_seconds, sizeof bits);
    mix64(h, bits);
  }
  for (const svc::FaultKind k : fault_points())
    mix64(h, static_cast<std::uint64_t>(k));
  return h;
}

}  // namespace gpawfd::scenario
