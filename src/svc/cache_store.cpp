#include "svc/cache_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "svc/metrics.hpp"

namespace gpawfd::svc {

namespace {

/// Offset of the CRC field inside the header: the CRC covers everything
/// before it (plus key and value), never itself.
constexpr std::size_t kCrcOffset = kStoreHeaderBytes - 4;

void write_all(int fd, const std::uint8_t* p, std::size_t n,
               std::uint64_t offset) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      GPAWFD_CHECK_MSG(false, "cache store write failed: "
                                  << std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<std::uint64_t>(w);
  }
}

/// Durability of a rename needs the *directory* entry flushed too;
/// best-effort (not every filesystem lets you fsync a directory).
void sync_parent_dir(const std::string& path) {
  auto slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::string CacheStore::path_in(const std::string& dir) {
  if (dir.empty() || dir.back() == '/') return dir + kFileName;
  return dir + "/" + kFileName;
}

CacheStore::CacheStore(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  GPAWFD_CHECK_MSG(fd_ >= 0, "cannot open cache store " << path_ << ": "
                                                        << std::strerror(errno));
}

CacheStore::~CacheStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> CacheStore::encode_record(
    RecordType type, std::uint64_t sequence, double write_time,
    double cost_seconds, const std::string& key, const std::uint8_t* value,
    std::size_t value_len) const {
  std::vector<std::uint8_t> out;
  out.reserve(kStoreHeaderBytes + key.size() + value_len);
  core::append_u32(out, kStoreMagic);
  out.push_back(kStoreVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // reserved
  out.push_back(0);
  core::append_u64(out, sequence);
  core::append_double(out, write_time);
  core::append_double(out, cost_seconds);
  core::append_u32(out, static_cast<std::uint32_t>(key.size()));
  core::append_u32(out, static_cast<std::uint32_t>(value_len));
  std::uint32_t crc = crc32(out.data(), kCrcOffset);
  crc = crc32(key.data(), key.size(), crc);
  crc = crc32(value, value_len, crc);
  core::append_u32(out, crc);
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), value, value + value_len);
  return out;
}

std::uint64_t CacheStore::append_record(RecordType type,
                                        const std::string& key,
                                        const std::uint8_t* value,
                                        std::size_t value_len,
                                        double cost_seconds,
                                        double write_time) {
  GPAWFD_CHECK_MSG(recovered_,
                   "CacheStore::recover() must run before appends");
  GPAWFD_CHECK_MSG(!key.empty() && key.size() <= kStoreMaxKeyBytes,
                   "cache store key size " << key.size() << " out of range");
  const std::uint64_t seq = next_sequence_;
  std::vector<std::uint8_t> buf = encode_record(
      type, seq, write_time, cost_seconds, key, value, value_len);
  write_all(fd_, buf.data(), buf.size(), end_offset_);
  end_offset_ += buf.size();
  next_sequence_ = seq + 1;
  ++total_records_;
  note_applied(type, key, seq);
  return end_offset_;
}

std::uint64_t CacheStore::append_put(const std::string& key,
                                     const core::SimResult& result,
                                     double cost_seconds, double write_time) {
  std::vector<std::uint8_t> value = core::encode_sim_result(result);
  return append_record(RecordType::kPut, key, value.data(), value.size(),
                       cost_seconds, write_time);
}

std::uint64_t CacheStore::append_tombstone(const std::string& key,
                                           double write_time) {
  return append_record(RecordType::kTombstone, key, nullptr, 0, 0.0,
                       write_time);
}

std::uint64_t CacheStore::append_puts(const std::vector<StorePut>& puts) {
  GPAWFD_CHECK_MSG(recovered_,
                   "CacheStore::recover() must run before appends");
  if (puts.empty()) return end_offset_;
  std::vector<std::uint8_t> buf;
  std::vector<std::uint64_t> seqs;
  seqs.reserve(puts.size());
  for (const StorePut& p : puts) {
    GPAWFD_CHECK_MSG(!p.key.empty() && p.key.size() <= kStoreMaxKeyBytes,
                     "cache store key size " << p.key.size()
                                             << " out of range");
    seqs.push_back(next_sequence_);
    const std::vector<std::uint8_t> rec = encode_record(
        RecordType::kPut, next_sequence_, p.write_time, p.cost_seconds,
        p.key, p.value.data(), p.value.size());
    buf.insert(buf.end(), rec.begin(), rec.end());
    ++next_sequence_;
  }
  write_all(fd_, buf.data(), buf.size(), end_offset_);
  end_offset_ += buf.size();
  for (std::size_t i = 0; i < puts.size(); ++i) {
    ++total_records_;
    note_applied(RecordType::kPut, puts[i].key, seqs[i]);
  }
  return end_offset_;
}

void CacheStore::sync() {
  GPAWFD_CHECK_MSG(::fsync(fd_) == 0,
                   "cache store fsync failed: " << std::strerror(errno));
}

void CacheStore::note_applied(RecordType type, const std::string& key,
                              std::uint64_t sequence) {
  if (type == RecordType::kPut)
    live_[key] = sequence;
  else
    live_.erase(key);
}

std::uint64_t CacheStore::recover_stream(
    const std::function<void(RawStoreRecord&&)>& emit, RecoveryStats* stats,
    bool repair) {
  struct stat st;
  GPAWFD_CHECK_MSG(::fstat(fd_, &st) == 0,
                   "cache store fstat failed: " << std::strerror(errno));
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  // Chunked forward scan: a bounded window streams through the file so
  // records reach `emit` while later chunks are still unread (the
  // producer half of the startup double buffer). Accept records until
  // the first one that fails any structural or integrity check, then
  // stop — nothing past a bad record can be trusted (its length fields
  // might be the corruption).
  constexpr std::size_t kChunkBytes = 256 * 1024;
  std::vector<std::uint8_t> buf;
  std::size_t start = 0;        // parse cursor within buf
  std::uint64_t file_pos = 0;   // next byte to pread
  std::uint64_t valid_end = 0;  // offset just past the last good record
  bool eof = false;
  bool short_read = false;  // concurrently truncated under us

  // Ensure `need` unparsed bytes are buffered; false on (effective) EOF.
  auto refill = [&](std::size_t need) {
    while (!eof && buf.size() - start < need) {
      if (start > 0) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(start));
        start = 0;
      }
      if (file_pos >= file_size) {
        eof = true;
        break;
      }
      const std::size_t want = std::max(kChunkBytes, need);
      const std::size_t to_read = static_cast<std::size_t>(
          std::min<std::uint64_t>(want, file_size - file_pos));
      const std::size_t old = buf.size();
      buf.resize(old + to_read);
      std::size_t got = 0;
      while (got < to_read) {
        ssize_t r = ::pread(fd_, buf.data() + old + got, to_read - got,
                            static_cast<off_t>(file_pos + got));
        if (r < 0 && errno == EINTR) continue;
        GPAWFD_CHECK_MSG(r >= 0,
                         "cache store read failed: " << std::strerror(errno));
        if (r == 0) {  // concurrently truncated; treat the rest as torn
          eof = short_read = true;
          break;
        }
        got += static_cast<std::size_t>(r);
      }
      buf.resize(old + got);
      file_pos += got;
      if (file_pos >= file_size) eof = true;
    }
    return buf.size() - start >= need;
  };

  std::int64_t scanned = 0, puts = 0, tombstones = 0;
  std::uint64_t last_seq = 0;
  std::unordered_map<std::string, std::uint64_t> live;
  for (;;) {
    if (!refill(kStoreHeaderBytes)) break;
    const std::uint8_t* h = buf.data() + start;
    if (core::read_u32(h) != kStoreMagic) break;
    if (h[4] != kStoreVersion) break;
    const std::uint8_t type_byte = h[5];
    if (type_byte != static_cast<std::uint8_t>(RecordType::kPut) &&
        type_byte != static_cast<std::uint8_t>(RecordType::kTombstone))
      break;
    const std::uint64_t seq = core::read_u64(h + 8);
    const double write_time = core::read_double(h + 16);
    const double cost_seconds = core::read_double(h + 24);
    const std::uint32_t key_len = core::read_u32(h + 32);
    const std::uint32_t value_len = core::read_u32(h + 36);
    if (key_len == 0 || key_len > kStoreMaxKeyBytes) break;
    const auto type = static_cast<RecordType>(type_byte);
    const std::size_t want_value =
        type == RecordType::kPut ? core::kSimResultCodecBytes : 0;
    if (value_len != want_value) break;
    const std::size_t total = kStoreHeaderBytes + key_len + value_len;
    if (!refill(total)) break;  // torn tail: record extends past EOF
    h = buf.data() + start;     // refill may have compacted/reallocated
    std::uint32_t crc = crc32(h, kCrcOffset);
    crc = crc32(h + kStoreHeaderBytes, key_len + value_len, crc);
    if (crc != core::read_u32(h + kCrcOffset)) break;
    if (seq <= last_seq) break;  // sequences are strictly increasing

    RawStoreRecord rec;
    rec.key.assign(reinterpret_cast<const char*>(h + kStoreHeaderBytes),
                   key_len);
    if (type == RecordType::kPut) {
      rec.value.assign(h + kStoreHeaderBytes + key_len,
                       h + kStoreHeaderBytes + key_len + value_len);
      live[rec.key] = seq;
      ++puts;
    } else {
      live.erase(rec.key);
      ++tombstones;
    }
    rec.cost_seconds = cost_seconds;
    rec.write_time = write_time;
    rec.sequence = seq;
    rec.type = type;
    emit(std::move(rec));
    ++scanned;
    last_seq = seq;
    start += total;
    valid_end += total;
  }

  const std::uint64_t avail = short_read ? file_pos : file_size;
  if (stats) {
    stats->records_scanned = scanned;
    stats->puts = puts;
    stats->tombstones = tombstones;
    stats->live = static_cast<std::int64_t>(live.size());
    stats->truncated_bytes = static_cast<std::int64_t>(avail - valid_end);
    stats->truncated = avail != valid_end;
  }

  // Establish (or re-establish) the writer state from the valid prefix.
  live_ = std::move(live);
  total_records_ = scanned;
  next_sequence_ = last_seq + 1;
  end_offset_ = valid_end;
  recovered_ = true;

  if (repair && valid_end < file_size) {
    GPAWFD_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(valid_end)) == 0,
                     "cache store truncate failed: " << std::strerror(errno));
    sync();
  }
  return valid_end;
}

std::vector<StoreRecord> CacheStore::recover(RecoveryStats* stats,
                                             bool repair) {
  std::vector<StoreRecord> accepted;
  recover_stream(
      [&](RawStoreRecord&& raw) {
        StoreRecord rec;
        rec.key = std::move(raw.key);
        if (raw.type == RecordType::kPut)
          rec.result =
              core::decode_sim_result(raw.value.data(), raw.value.size());
        rec.cost_seconds = raw.cost_seconds;
        rec.write_time = raw.write_time;
        rec.sequence = raw.sequence;
        rec.type = raw.type;
        accepted.push_back(std::move(rec));
      },
      stats, repair);

  // Replay in sequence order: a later put supersedes an earlier one, a
  // tombstone deletes. The survivors are the live set.
  std::unordered_map<std::string, std::size_t> live_idx;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i].type == RecordType::kPut)
      live_idx[accepted[i].key] = i;
    else
      live_idx.erase(accepted[i].key);
  }
  std::vector<std::size_t> order;
  order.reserve(live_idx.size());
  for (const auto& [key, idx] : live_idx) order.push_back(idx);
  std::sort(order.begin(), order.end());

  std::vector<StoreRecord> live;
  live.reserve(order.size());
  for (std::size_t idx : order) live.push_back(std::move(accepted[idx]));
  return live;
}

double CacheStore::garbage_ratio() const {
  if (total_records_ <= 0) return 0.0;
  const std::int64_t garbage = total_records_ - live_records();
  return static_cast<double>(garbage) / static_cast<double>(total_records_);
}

bool CacheStore::maybe_compact(double garbage_threshold,
                               std::int64_t min_records) {
  if (total_records_ < min_records) return false;
  if (garbage_ratio() <= garbage_threshold) return false;
  return compact();
}

bool CacheStore::compact() {
  GPAWFD_CHECK_MSG(recovered_,
                   "CacheStore::recover() must run before compact()");
  // Re-read the live set from disk (the in-memory index only holds keys
  // and sequences, not values). The file is ours alone here: the
  // persister thread is the only writer and it is the caller.
  std::vector<StoreRecord> live = recover(nullptr, /*repair=*/false);
  const std::uint64_t keep_next_seq = next_sequence_;

  const std::string tmp = path_ + ".compact";
  int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  GPAWFD_CHECK_MSG(tfd >= 0, "cannot open " << tmp << ": "
                                            << std::strerror(errno));
  std::uint64_t offset = 0;
  for (const StoreRecord& rec : live) {
    std::vector<std::uint8_t> value = core::encode_sim_result(rec.result);
    std::vector<std::uint8_t> buf =
        encode_record(RecordType::kPut, rec.sequence, rec.write_time,
                      rec.cost_seconds, rec.key, value.data(), value.size());
    write_all(tfd, buf.data(), buf.size(), offset);
    offset += buf.size();
  }
  GPAWFD_CHECK_MSG(::fsync(tfd) == 0,
                   "compaction fsync failed: " << std::strerror(errno));
  ::close(tfd);
  GPAWFD_CHECK_MSG(::rename(tmp.c_str(), path_.c_str()) == 0,
                   "compaction rename failed: " << std::strerror(errno));
  sync_parent_dir(path_);

  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  GPAWFD_CHECK_MSG(fd_ >= 0, "cannot reopen compacted store " << path_ << ": "
                                                              << std::strerror(
                                                                     errno));
  live_.clear();
  for (const StoreRecord& rec : live) live_[rec.key] = rec.sequence;
  total_records_ = static_cast<std::int64_t>(live.size());
  next_sequence_ = keep_next_seq;  // never reuse a sequence number
  end_offset_ = offset;
  ++compactions_;
  return true;
}

// ---- Persister ----------------------------------------------------------

Persister::Persister(std::unique_ptr<CacheStore> store,
                     PersisterConfig config, Metrics* metrics,
                     bool store_ready)
    : store_(std::move(store)),
      config_(std::move(config)),
      metrics_(metrics),
      ready_(store_ready) {
  GPAWFD_CHECK(store_ != nullptr);
  GPAWFD_CHECK(config_.queue_capacity >= 1);
  thread_ = std::thread(&Persister::loop, this);
}

void Persister::mark_ready() {
  {
    std::lock_guard lock(mu_);
    ready_ = true;
  }
  cv_.notify_all();
}

Persister::~Persister() { shutdown(); }

void Persister::enqueue(std::string key, const core::SimResult& result,
                        double cost_seconds, double write_time) {
  std::lock_guard lock(mu_);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_)
    metrics_->persist_enqueued.fetch_add(1, std::memory_order_relaxed);
  // After shutdown (or when bumping the oldest out of a full queue) the
  // entry is dropped, keeping enqueued == written + dropped exact.
  if (closed_ || queue_.size() >= config_.queue_capacity) {
    if (!closed_) queue_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
      metrics_->persist_dropped.fetch_add(1, std::memory_order_relaxed);
    if (closed_) return;
  }
  queue_.push_back(Write{std::move(key), result, cost_seconds, write_time});
  cv_.notify_one();
}

void Persister::enqueue_batch(std::vector<Write> writes) {
  if (writes.empty()) return;
  bool accepted_any = false;
  {
    std::lock_guard lock(mu_);
    const auto n = static_cast<std::int64_t>(writes.size());
    enqueued_.fetch_add(n, std::memory_order_relaxed);
    if (metrics_)
      metrics_->persist_enqueued.fetch_add(n, std::memory_order_relaxed);
    for (Write& w : writes) {
      if (closed_ || queue_.size() >= config_.queue_capacity) {
        if (!closed_) queue_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_)
          metrics_->persist_dropped.fetch_add(1, std::memory_order_relaxed);
        if (closed_) continue;
      }
      queue_.push_back(std::move(w));
      accepted_any = true;
    }
  }
  // One wake for the whole batch: the drain loop empties the queue
  // anyway, so per-entry notifies would only buy futex traffic.
  if (accepted_any) cv_.notify_one();
}

void Persister::loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return closed_ || (ready_ && !queue_.empty()); });
    if (closed_ && !ready_) {
      // Shut down before recovery finished: the store was never legal
      // to append to. Account whatever queued as dropped and leave.
      const auto n = static_cast<std::int64_t>(queue_.size());
      queue_.clear();
      dropped_.fetch_add(n, std::memory_order_relaxed);
      if (metrics_)
        metrics_->persist_dropped.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    if (queue_.empty()) return;  // closed and fully drained (and synced)
    draining_ = true;
    while (!queue_.empty()) {
      // Swap the whole backlog out and land it as ONE contiguous append:
      // per-record write(2) syscalls and lock round-trips collapse into
      // one of each per drain swap. Items enqueued while we write go out
      // on the next swap; the fsync below still waits for a fully empty
      // queue.
      std::vector<Write> batch;
      batch.reserve(queue_.size());
      for (auto& w : queue_) batch.push_back(std::move(w));
      queue_.clear();
      lk.unlock();
      std::vector<CacheStore::StorePut> puts;
      puts.reserve(batch.size());
      for (Write& w : batch) {
        if (config_.on_write) config_.on_write(w.key);
        puts.push_back({std::move(w.key), core::encode_sim_result(w.result),
                        w.cost_seconds, w.write_time});
      }
      store_->append_puts(puts);
      const auto n = static_cast<std::int64_t>(puts.size());
      written_.fetch_add(n, std::memory_order_relaxed);
      if (metrics_)
        metrics_->persist_written.fetch_add(n, std::memory_order_relaxed);
      lk.lock();
    }
    // Queue drained: this is the durability point — one fsync per
    // batch, not per record — and the bookkeeping moment for
    // compaction (still on this thread, so the store stays
    // single-threaded).
    lk.unlock();
    store_->sync();
    flushes_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
      metrics_->persist_flushes.fetch_add(1, std::memory_order_relaxed);
    if (config_.compact_garbage_threshold > 0 &&
        store_->maybe_compact(config_.compact_garbage_threshold,
                              config_.compact_min_records)) {
      compactions_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_)
        metrics_->persist_compactions.fetch_add(1,
                                                std::memory_order_relaxed);
    }
    lk.lock();
    draining_ = false;
    idle_cv_.notify_all();
    if (closed_ && queue_.empty()) return;
  }
}

void Persister::flush() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && !draining_; });
}

void Persister::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (closed_ && !thread_.joinable()) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace gpawfd::svc
