// Canonical cache key for a simulation request. Two SimJobSpecs that
// would produce the same SimResult (same workload, approach,
// optimizations, machine slice, machine constants, and scaling options)
// map to the same JobKey; any field that can change the result is part
// of the encoding. The key carries an explicit format version so that a
// change to the simulator's semantics (not just to this encoding) can
// invalidate every previously cached result by bumping kVersion.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "core/figures.hpp"

namespace gpawfd::svc {

class JobKey {
 public:
  /// Bump whenever the meaning of a cached SimResult changes: a new
  /// field in JobConfig/Optimizations/MachineConfig, a simulator cost
  /// model fix — anything that makes previously cached results stale for
  /// an identical-looking spec.
  static constexpr int kVersion = 1;

  /// Canonicalize a spec. Deterministic: equal specs (field-wise) give
  /// byte-identical keys and equal hashes, across threads and processes.
  static JobKey of(const core::SimJobSpec& spec);

  /// Rehydrate a key from a canonical string that *this process* (or a
  /// peer speaking the same kVersion) produced — the warm-load path of
  /// the persistent cache store. Purely lexical: the hash is recomputed,
  /// nothing is parsed or validated; callers that need a SimJobSpec back
  /// go through net::parse_job_spec's decisive round-trip instead.
  static JobKey from_canonical(std::string canonical);

  /// "v<kVersion>|" — every current-version canonical string starts with
  /// this. Warm loads drop records whose key lacks the prefix, which is
  /// how a kVersion bump invalidates every previously persisted result.
  static std::string version_prefix();

  /// True when `canonical` was written by the current kVersion.
  static bool current_version(const std::string& canonical);

  /// The full canonical encoding — unambiguous, human-readable,
  /// suitable as a map key or a log line.
  const std::string& canonical() const { return canonical_; }
  /// 64-bit hash of the canonical encoding (FNV-1a), precomputed once.
  std::uint64_t hash() const { return hash_; }

  friend bool operator==(const JobKey& a, const JobKey& b) {
    return a.hash_ == b.hash_ && a.canonical_ == b.canonical_;
  }
  friend bool operator!=(const JobKey& a, const JobKey& b) {
    return !(a == b);
  }
  friend std::ostream& operator<<(std::ostream& os, const JobKey& k) {
    return os << k.canonical_;
  }

  struct Hasher {
    std::size_t operator()(const JobKey& k) const {
      return static_cast<std::size_t>(k.hash());
    }
  };

 private:
  JobKey(std::string canonical, std::uint64_t hash)
      : canonical_(std::move(canonical)), hash_(hash) {}

  std::string canonical_;
  std::uint64_t hash_;
};

}  // namespace gpawfd::svc
