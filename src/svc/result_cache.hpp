// Sharded, mutex-striped LRU cache of simulation results with built-in
// single-flight deduplication: the first requester of a missing key
// becomes the *leader* (it must run the simulation and call complete()
// or abort()); every concurrent requester of the same key *joins* the
// leader's shared_future instead of spawning a duplicate run. N
// identical concurrent requests therefore cost exactly one execution —
// the amortization the paper applies to stencil/DFT planning, applied
// here to whole simulation runs.
//
// Striping: a key lives on exactly one shard (by hash), so the lock held
// during a lookup is 1/shards as contended as a single global mutex;
// LRU order is maintained per shard, which bounds staleness of eviction
// decisions but keeps every operation O(1) under its stripe lock.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/sim_executor.hpp"
#include "svc/job_key.hpp"

namespace gpawfd::svc {

class ResultCache {
 public:
  enum class Outcome {
    kHit,     // value was cached; `result` is already ready
    kJoined,  // another requester is computing it; `result` will be set
    kLeader,  // caller owns the computation: run it, then complete()/abort()
  };

  struct Lookup {
    Outcome outcome;
    std::shared_future<core::SimResult> result;
  };

  /// `capacity` cached results total, spread over `shards` stripes
  /// (each stripe holds ceil(capacity/shards)).
  explicit ResultCache(std::size_t capacity, int shards = 8);

  /// The single-flight entry point; atomic per key.
  Lookup lookup_or_begin(const JobKey& key);

  /// Cache-only probe: never starts a flight, counts a hit but not a
  /// miss (used by monitoring / tests).
  std::optional<core::SimResult> peek(const JobKey& key);

  /// Leader hand-off: publish the result to the LRU, wake every joined
  /// waiter, and end the flight. Exactly one of complete()/abort() must
  /// follow every kLeader lookup.
  void complete(const JobKey& key, const core::SimResult& result);

  /// Leader hand-off on failure: propagate `error` to every joined
  /// waiter (their future.get() throws) without caching anything.
  void abort(const JobKey& key, std::exception_ptr error);

  // ---- statistics ----------------------------------------------------
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t joins() const {
    return joins_.load(std::memory_order_relaxed);
  }
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Flight {
    std::promise<core::SimResult> promise;
    std::shared_future<core::SimResult> future;
  };

  struct Shard {
    std::mutex mu;
    /// Most-recently-used at the front.
    std::list<std::pair<JobKey, core::SimResult>> lru;
    std::unordered_map<JobKey, decltype(lru)::iterator, JobKey::Hasher> map;
    std::unordered_map<JobKey, std::shared_ptr<Flight>, JobKey::Hasher>
        flights;
  };

  Shard& shard_of(const JobKey& key) {
    return *shards_[key.hash() % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> joins_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace gpawfd::svc
