// Sharded, mutex-striped LRU cache of simulation results with built-in
// single-flight deduplication: the first requester of a missing key
// becomes the *leader* (it must run the simulation and call complete()
// or abort()); every concurrent requester of the same key *joins* the
// leader's shared_future instead of spawning a duplicate run. N
// identical concurrent requests therefore cost exactly one execution —
// the amortization the paper applies to stencil/DFT planning, applied
// here to whole simulation runs.
//
// Striping: a key lives on exactly one shard (by hash), so the lock held
// during a lookup is 1/shards as contended as a single global mutex;
// LRU order is maintained per shard, which bounds staleness of eviction
// decisions but keeps every operation O(1) under its stripe lock.
//
// Eviction is cost-weighted: complete() records what the result cost to
// produce (measured cold executor seconds), and when a stripe overflows
// the *cheapest* entry in a small window at the LRU end is evicted
// instead of blindly the oldest. A 16k-core result that took seconds to
// simulate therefore survives a scan of cheap insertions; with uniform
// costs the policy degenerates to exact LRU.
//
// Staleness is bounded by an optional TTL: every entry remembers when
// its result was produced (unix clock, so warm-loaded entries from the
// persistent store keep aging across restarts), and an entry older than
// the TTL is dropped on the lookup that observes it — the requester
// becomes the leader and re-fills it, exactly as if it had never been
// cached.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/sim_executor.hpp"
#include "svc/job_key.hpp"

namespace gpawfd::svc {

class ResultCache {
 public:
  enum class Outcome {
    kHit,     // value was cached; `result` is already ready
    kJoined,  // another requester is computing it; `result` will be set
    kLeader,  // caller owns the computation: run it, then complete()/abort()
  };

  struct Lookup {
    Outcome outcome;
    std::shared_future<core::SimResult> result;
  };

  /// Invoked exactly once when a flight settles: (&result, nullptr) on
  /// complete(), (nullptr, error) on abort(). Runs on the settling
  /// thread, outside the stripe lock; the result pointer is only valid
  /// for the duration of the call.
  using Continuation =
      std::function<void(const core::SimResult*, std::exception_ptr)>;

  /// `capacity` cached results total, spread over `shards` stripes
  /// (each stripe holds ceil(capacity/shards)). `ttl_seconds` bounds the
  /// staleness of every entry (0 = entries never expire): an entry older
  /// than the TTL — measured from its write time on the unix clock, so
  /// the bound survives process restarts — is treated as a miss on the
  /// next lookup/peek (erased, counted in expired(), and re-filled by
  /// the requester, who becomes the leader).
  explicit ResultCache(std::size_t capacity, int shards = 8,
                       double ttl_seconds = 0);

  /// The single-flight entry point; atomic per key.
  Lookup lookup_or_begin(const JobKey& key);

  /// Cache-only probe: never starts a flight, counts a hit but not a
  /// miss (used by monitoring / tests).
  std::optional<core::SimResult> peek(const JobKey& key);

  /// Leader hand-off: publish the result to the LRU, wake every joined
  /// waiter, and end the flight. Exactly one of complete()/abort() must
  /// follow every kLeader lookup. `cost_seconds` is what producing the
  /// result cost (measured executor wall time); it weights eviction.
  void complete(const JobKey& key, const core::SimResult& result,
                double cost_seconds = 0.0);

  /// Leader hand-off on failure: propagate `error` to every joined
  /// waiter (their future.get() throws) without caching anything.
  void abort(const JobKey& key, std::exception_ptr error);

  /// Warm-load path (persistent store recovery): insert a result that
  /// was produced earlier — possibly by another process — preserving its
  /// original `write_time` so the TTL keeps counting from when the
  /// result was actually computed, not from when it was reloaded.
  /// Never starts or settles a flight and touches no hit/miss counters.
  /// Newest wins: a strictly newer write_time replaces an existing
  /// entry, so store records streamed in log order converge on the live
  /// value without the loader having to pre-collapse supersedes.
  /// Returns false (and inserts nothing) when the entry is already
  /// expired, the key is in flight, or a same-or-newer entry is cached.
  bool insert_warm(const JobKey& key, const core::SimResult& result,
                   double cost_seconds, double write_time);

  /// Tombstone counterpart for the streamed warm load: erase the key's
  /// entry unless it is strictly newer than `write_time` (a result the
  /// running service computed after the tombstone was logged must
  /// survive). Returns true when an entry was erased.
  bool erase_warm(const JobKey& key, double write_time);

  /// Attach a continuation to the key's in-flight computation (the
  /// ticket continuation hook the RPC front-end rides on). Returns false
  /// when no flight exists for the key — it already settled (or never
  /// started), in which case the caller's shared_future is ready or
  /// about to be: complete()/abort() erase the flight under the stripe
  /// lock *before* fulfilling the promise, so "no flight" can precede
  /// the future becoming ready by a few instructions.
  bool on_settled(const JobKey& key, Continuation fn);

  // ---- statistics ----------------------------------------------------
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t joins() const {
    return joins_.load(std::memory_order_relaxed);
  }
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Entries dropped because they outlived the TTL (observed on a
  /// lookup/peek of the stale key; each was re-countable as a miss).
  std::int64_t expired() const {
    return expired_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  double ttl_seconds() const { return ttl_seconds_; }

  /// How far from the LRU end eviction searches for the cheapest entry.
  /// Small and fixed: eviction stays O(1), yet an expensive result needs
  /// kEvictionWindow consecutive cheap insertions *after* reaching the
  /// window to be displaced — and each insertion evicts a cheap
  /// neighbour first, so it never is.
  static constexpr std::size_t kEvictionWindow = 8;

 private:
  struct Flight {
    std::promise<core::SimResult> promise;
    std::shared_future<core::SimResult> future;
    std::vector<Continuation> continuations;
  };

  struct Entry {
    JobKey key;
    core::SimResult result;
    double cost_seconds = 0.0;
    /// trace::unix_seconds() when the result was produced (not inserted:
    /// a warm-loaded entry keeps its original stamp). 0 with no TTL.
    double write_time = 0.0;
  };

  struct Shard {
    std::mutex mu;
    /// Most-recently-used at the front.
    std::list<Entry> lru;
    std::unordered_map<JobKey, std::list<Entry>::iterator, JobKey::Hasher>
        map;
    std::unordered_map<JobKey, std::shared_ptr<Flight>, JobKey::Hasher>
        flights;
  };

  Shard& shard_of(const JobKey& key) {
    return *shards_[key.hash() % shards_.size()];
  }

  bool is_expired(const Entry& e, double now) const {
    return ttl_seconds_ > 0 && now - e.write_time >= ttl_seconds_;
  }
  /// If the key's entry exists and is stale, erase it (counting it in
  /// expired_) so the caller proceeds on the miss path. Stripe lock held.
  void expire_if_stale(Shard& sh, const JobKey& key);
  void insert_locked(Shard& sh, const JobKey& key,
                     const core::SimResult& result, double cost_seconds,
                     double write_time);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  double ttl_seconds_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> joins_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> expired_{0};
};

}  // namespace gpawfd::svc
