// SimService: the concurrent control plane over the simulation engine.
// Clients submit SimJobSpecs and get back shared futures; internally a
// bounded priority queue (admission control, backpressure) feeds a pool
// of worker threads that drive the re-entrant core::simulate_job, with a
// single-flight LRU ResultCache in front so identical requests are
// served from memory (or join an in-flight run) instead of re-simulating.
// Every stage is metered (svc::Metrics).
//
// Lifecycle: construct -> submit()* -> shutdown() (or destructor, which
// drains). After shutdown() begins, submits are rejected with
// kRejectedShutdown; in-flight and (when draining) queued work still
// completes, so no accepted future is ever abandoned.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/figures.hpp"
#include "svc/job_key.hpp"
#include "svc/job_queue.hpp"
#include "svc/metrics.hpp"
#include "svc/result_cache.hpp"

namespace gpawfd::svc {

/// Thrown into a request's future when its job was accepted but the
/// service shut down (discard mode) or the executor failed.
class ServiceError : public Error {
 public:
  using Error::Error;
};

struct ServiceConfig {
  /// Executor threads. 0 = one per hardware thread, capped at 8 (the
  /// simulator is CPU-bound; more workers than cores just thrash).
  int workers = 0;
  /// Bounded queue: requests beyond this are rejected (or, with
  /// block_when_full, throttled).
  std::size_t queue_capacity = 64;
  /// Cached SimResults across all shards.
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Backpressure policy: false = reject-with-reason (load shedding,
  /// the default for a service), true = block the submitter (throttling,
  /// for in-process batch producers).
  bool block_when_full = false;
  /// The simulation function. Replaceable for tests (count executions,
  /// inject delays/failures); defaults to core::simulate_job.
  std::function<core::SimResult(const core::SimJobSpec&)> executor;
};

enum class SubmitStatus {
  kCacheHit,           // completed immediately from the ResultCache
  kJoined,             // deduplicated onto an identical in-flight job
  kAccepted,           // enqueued; a worker will execute it
  kRejectedQueueFull,  // admission control refused (queue at capacity)
  kRejectedShutdown,   // service no longer accepts work
};

const char* to_string(SubmitStatus s);

/// What submit() hands back. `result` is valid unless rejected() —
/// rejected requests get *no* future (the request was never admitted),
/// which keeps rejection O(1) and allocation-free on the hot path.
struct Ticket {
  SubmitStatus status = SubmitStatus::kRejectedShutdown;
  std::shared_future<core::SimResult> result;

  bool rejected() const {
    return status == SubmitStatus::kRejectedQueueFull ||
           status == SubmitStatus::kRejectedShutdown;
  }
};

class SimService {
 public:
  explicit SimService(ServiceConfig config = {});
  ~SimService();  // shutdown(/*drain=*/true)
  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Thread-safe. Never runs the simulation on the caller's thread.
  Ticket submit(const core::SimJobSpec& spec,
                Priority priority = Priority::kNormal);

  /// Convenience: submit and wait. Throws ServiceError on rejection.
  core::SimResult run(const core::SimJobSpec& spec,
                      Priority priority = Priority::kNormal);

  /// Stop the service. drain=true (default) finishes everything already
  /// accepted; drain=false fails queued-but-unstarted jobs with
  /// ServiceError ("cancelled"). Idempotent; later submits are rejected.
  void shutdown(bool drain = true);

  const Metrics& metrics() const { return metrics_; }
  const ResultCache& cache() const { return cache_; }
  std::size_t queue_depth() const { return queue_.size(); }
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Metrics + cache counters as one text block (the exporter).
  std::string metrics_snapshot() const;

 private:
  struct QueuedJob {
    JobKey key;
    core::SimJobSpec spec;
    double enqueue_time = 0;
  };

  void worker_loop();
  void execute(QueuedJob job);

  ServiceConfig config_;
  ResultCache cache_;
  JobQueue<QueuedJob> queue_;
  Metrics metrics_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutting_down_{false};
  std::once_flag shutdown_once_;
};

}  // namespace gpawfd::svc
