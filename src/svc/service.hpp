// SimService: the concurrent control plane over the simulation engine.
// Clients submit SimJobSpecs and get back shared futures; internally a
// bounded priority queue (admission control, backpressure) feeds a pool
// of worker threads that drive the re-entrant core::simulate_job, with a
// single-flight LRU ResultCache in front so identical requests are
// served from memory (or join an in-flight run) instead of re-simulating.
// Every stage is metered (svc::Metrics).
//
// Lifecycle: construct -> submit()* -> shutdown() (or destructor, which
// drains). After shutdown() begins, submits are rejected with
// kRejectedShutdown; in-flight and (when draining) queued work still
// completes, so no accepted future is ever abandoned.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/figures.hpp"
#include "svc/cache_store.hpp"
#include "svc/job_key.hpp"
#include "svc/job_queue.hpp"
#include "svc/metrics.hpp"
#include "svc/result_cache.hpp"

namespace gpawfd::svc {

/// Machine-readable cause of a ServiceError. Tests and clients branch on
/// this instead of matching message strings, and the two historically
/// indistinguishable paths — discard-shutdown cancellation vs executor
/// failure — carry distinct reasons.
enum class ErrorReason {
  kUnknown = 0,
  kCancelled,           // accepted but discarded by shutdown(drain=false)
  kExecutorFailed,      // executor threw and the policy allows no retries
  kTimedOut,            // final attempt exceeded the per-attempt deadline
  kGaveUp,              // retry budget exhausted without success
  kRejectedQueueFull,   // admission aborted the flight (joined waiters)
  kRejectedShutdown,    // admission aborted the flight during shutdown
};

const char* to_string(ErrorReason r);

/// Thrown into a request's future when its job was accepted but could
/// not be completed: the service shut down in discard mode, the executor
/// failed (terminally, after any retries), or an attempt timed out.
class ServiceError : public Error {
 public:
  explicit ServiceError(const std::string& what,
                        ErrorReason reason = ErrorReason::kUnknown)
      : Error(what), reason_(reason) {}
  ErrorReason reason() const { return reason_; }

 private:
  ErrorReason reason_;
};

/// How SimService handles executor failures and stragglers: up to
/// max_attempts executions per job with capped exponential backoff in
/// between, and an optional per-attempt deadline. The deadline is
/// *cooperative*: executors run synchronously on a worker thread, so the
/// worker classifies an attempt as timed out after the fact (and
/// publishes the deadline through svc::ExecContext so cooperative
/// executors can unwind early). A late-but-successful result past the
/// deadline is discarded and retried — deterministic-cost executors that
/// always exceed the budget will time out on every attempt, so size the
/// budget from measured exec_time, not hope.
struct RetryPolicy {
  /// Total executions allowed per job (1 = no retries, the default).
  int max_attempts = 1;
  /// Backoff before retry k (0-based failed attempt k): min(
  /// initial_backoff_seconds * backoff_multiplier^k, max_backoff_seconds).
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.100;
  /// Per-attempt budget; 0 disables the deadline.
  double attempt_timeout_seconds = 0;

  /// The capped exponential schedule above, as a pure function (unit
  /// tested; also what the docs' state diagram refers to).
  double backoff_after(int failed_attempt) const;
};

struct ServiceConfig {
  /// Executor threads. 0 = one per hardware thread, capped at 8 (the
  /// simulator is CPU-bound; more workers than cores just thrash).
  int workers = 0;
  /// Bounded queue: requests beyond this are rejected (or, with
  /// block_when_full, throttled).
  std::size_t queue_capacity = 64;
  /// Cached SimResults across all shards.
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Backpressure policy: false = reject-with-reason (load shedding,
  /// the default for a service), true = block the submitter (throttling,
  /// for in-process batch producers).
  bool block_when_full = false;
  /// The simulation function. Replaceable for tests (count executions,
  /// inject delays/failures — see svc::FaultyExecutor); defaults to
  /// core::simulate_job. Workers publish an ExecContext (attempt index,
  /// per-attempt deadline, cancel flag) around every call.
  std::function<core::SimResult(const core::SimJobSpec&)> executor;
  /// Failure handling for accepted jobs (attempts / backoff / timeout).
  RetryPolicy retry;
  /// Directory for the persistent result store (created if missing;
  /// empty = no persistence). At startup the store is recovered and its
  /// live, current-version, unexpired records warm-load the cache; at
  /// runtime every executed result is written behind by a dedicated
  /// persister thread, so a second process pointed at the same directory
  /// starts with this process's results already cached.
  std::string cache_dir;
  /// TTL on cached results, in seconds (0 = never expire). Applies to
  /// in-memory entries (expired on the lookup that observes them) and to
  /// warm-loaded store records (skipped at startup), both measured from
  /// the result's original write time on the unix clock.
  double cache_ttl_seconds = 0;
  /// Bounded queue between workers and the persister thread; when full,
  /// the oldest pending entry is dropped (persist_dropped counts them).
  std::size_t persist_queue_capacity = 256;
};

enum class SubmitStatus {
  kCacheHit,           // completed immediately from the ResultCache
  kJoined,             // deduplicated onto an identical in-flight job
  kAccepted,           // enqueued; a worker will execute it
  kRejectedQueueFull,  // admission control refused (queue at capacity)
  kRejectedShutdown,   // service no longer accepts work
};

const char* to_string(SubmitStatus s);

/// What submit() hands back. `result` is valid unless rejected() —
/// rejected requests get *no* future (the request was never admitted),
/// which keeps rejection O(1) and allocation-free on the hot path.
struct Ticket {
  SubmitStatus status = SubmitStatus::kRejectedShutdown;
  std::shared_future<core::SimResult> result;

  bool rejected() const {
    return status == SubmitStatus::kRejectedQueueFull ||
           status == SubmitStatus::kRejectedShutdown;
  }
};

class SimService {
 public:
  explicit SimService(ServiceConfig config = {});
  ~SimService();  // shutdown(/*drain=*/true)
  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Thread-safe. Never runs the simulation on the caller's thread.
  Ticket submit(const core::SimJobSpec& spec,
                Priority priority = Priority::kNormal);

  /// Continuation flavour of submit() for event-driven callers (the RPC
  /// front-end): `done` fires exactly once with either the result or the
  /// ServiceError as an exception_ptr — synchronously on the caller's
  /// thread for cache hits and rejections, else on the worker thread
  /// that settles the flight. The result pointer is only valid for the
  /// duration of the call. No thread is parked waiting on the future.
  SubmitStatus submit_then(const core::SimJobSpec& spec, Priority priority,
                           ResultCache::Continuation done);

  /// Convenience: submit and wait. Throws ServiceError on rejection.
  core::SimResult run(const core::SimJobSpec& spec,
                      Priority priority = Priority::kNormal);

  /// Stop the service. drain=true (default) finishes everything already
  /// accepted; drain=false fails queued-but-unstarted jobs with
  /// ServiceError ("cancelled"). Idempotent; later submits are rejected.
  void shutdown(bool drain = true);

  const Metrics& metrics() const { return metrics_; }
  const ResultCache& cache() const { return cache_; }
  /// Null when ServiceConfig::cache_dir is empty.
  Persister* persister() { return persister_.get(); }
  std::size_t queue_depth() const { return queue_.size(); }
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Metrics + cache counters as one text block (the exporter).
  std::string metrics_snapshot() const;

 private:
  struct QueuedJob {
    JobKey key;
    core::SimJobSpec spec;
    double enqueue_time = 0;
  };

  void worker_loop();
  void execute(QueuedJob job);
  /// Terminal failure: abort the flight with a reasoned ServiceError.
  void fail(const JobKey& key, ErrorReason reason, const std::string& what);

  ServiceConfig config_;
  ResultCache cache_;
  JobQueue<QueuedJob> queue_;
  Metrics metrics_;
  std::unique_ptr<Persister> persister_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutting_down_{false};
  /// shutdown(drain=false) was requested: retry loops stop retrying and
  /// cancel instead; published to executors via ExecContext::cancel.
  std::atomic<bool> discard_{false};
  std::once_flag shutdown_once_;
};

}  // namespace gpawfd::svc
