// SimService: the concurrent control plane over the simulation engine.
// Clients submit SimJobSpecs and get back shared futures; internally a
// bounded priority queue (admission control, backpressure) feeds a pool
// of worker threads that drive the re-entrant core::simulate_job, with a
// single-flight LRU ResultCache in front so identical requests are
// served from memory (or join an in-flight run) instead of re-simulating.
// Every stage is metered (svc::Metrics).
//
// Dispatch can be batched (ServiceConfig::batch_max): a worker wakeup
// drains up to batch_max same-priority jobs as one unit — one queue
// lock, one wake, one persister hand-off — with a depth-following ramp
// and an optional interactive affinity lane (DESIGN.md §13).
//
// Lifecycle: construct -> submit()* -> shutdown() (or destructor, which
// drains). After shutdown() begins, submits are rejected with
// kRejectedShutdown; in-flight and (when draining) queued work still
// completes, so no accepted future is ever abandoned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/figures.hpp"
#include "svc/cache_store.hpp"
#include "svc/job_key.hpp"
#include "svc/job_queue.hpp"
#include "svc/metrics.hpp"
#include "svc/result_cache.hpp"
#include "telemetry/sink.hpp"

namespace gpawfd::svc {

/// Machine-readable cause of a ServiceError. Tests and clients branch on
/// this instead of matching message strings, and the two historically
/// indistinguishable paths — discard-shutdown cancellation vs executor
/// failure — carry distinct reasons.
enum class ErrorReason {
  kUnknown = 0,
  kCancelled,           // accepted but discarded by shutdown(drain=false)
  kExecutorFailed,      // executor threw and the policy allows no retries
  kTimedOut,            // final attempt exceeded the per-attempt deadline
  kGaveUp,              // retry budget exhausted without success
  kRejectedQueueFull,   // admission aborted the flight (joined waiters)
  kRejectedShutdown,    // admission aborted the flight during shutdown
};

const char* to_string(ErrorReason r);

/// Thrown into a request's future when its job was accepted but could
/// not be completed: the service shut down in discard mode, the executor
/// failed (terminally, after any retries), or an attempt timed out.
class ServiceError : public Error {
 public:
  explicit ServiceError(const std::string& what,
                        ErrorReason reason = ErrorReason::kUnknown)
      : Error(what), reason_(reason) {}
  ErrorReason reason() const { return reason_; }

 private:
  ErrorReason reason_;
};

/// How SimService handles executor failures and stragglers: up to
/// max_attempts executions per job with capped exponential backoff in
/// between, and an optional per-attempt deadline. The deadline is
/// *cooperative*: executors run synchronously on a worker thread, so the
/// worker classifies an attempt as timed out after the fact (and
/// publishes the deadline through svc::ExecContext so cooperative
/// executors can unwind early). A late-but-successful result past the
/// deadline is discarded and retried — deterministic-cost executors that
/// always exceed the budget will time out on every attempt, so size the
/// budget from measured exec_time, not hope.
struct RetryPolicy {
  /// Total executions allowed per job (1 = no retries, the default).
  int max_attempts = 1;
  /// Backoff before retry k (0-based failed attempt k): min(
  /// initial_backoff_seconds * backoff_multiplier^k, max_backoff_seconds).
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.100;
  /// Per-attempt budget; 0 disables the deadline.
  double attempt_timeout_seconds = 0;

  /// The capped exponential schedule above, as a pure function (unit
  /// tested; also what the docs' state diagram refers to).
  double backoff_after(int failed_attempt) const;
};

struct ServiceConfig {
  /// Executor threads. 0 = one per hardware thread, capped at 8 (the
  /// simulator is CPU-bound; more workers than cores just thrash).
  int workers = 0;
  /// Bounded queue: requests beyond this are rejected (or, with
  /// block_when_full, throttled).
  std::size_t queue_capacity = 64;
  /// Cached SimResults across all shards.
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Backpressure policy: false = reject-with-reason (load shedding,
  /// the default for a service), true = block the submitter (throttling,
  /// for in-process batch producers).
  bool block_when_full = false;
  /// The simulation function. Replaceable for tests (count executions,
  /// inject delays/failures — see svc::FaultyExecutor); defaults to
  /// core::simulate_job. Workers publish an ExecContext (attempt index,
  /// per-attempt deadline, cancel flag) around every call.
  std::function<core::SimResult(const core::SimJobSpec&)> executor;
  /// Failure handling for accepted jobs (attempts / backoff / timeout).
  RetryPolicy retry;
  /// Directory for the persistent result store (created if missing;
  /// empty = no persistence). At startup the store is recovered and its
  /// live, current-version, unexpired records warm-load the cache — in
  /// the background, double-buffered (a reader thread scans/CRCs while a
  /// decoder thread inserts), so the constructor returns and the service
  /// accepts submits immediately; a submit that misses a still-loading
  /// key simply executes (wait_warm_loaded() blocks until the load is
  /// done). At runtime every executed result is written behind by a
  /// dedicated persister thread, so a second process pointed at the same
  /// directory starts with this process's results already cached.
  std::string cache_dir;
  /// TTL on cached results, in seconds (0 = never expire). Applies to
  /// in-memory entries (expired on the lookup that observes them) and to
  /// warm-loaded store records (skipped at startup), both measured from
  /// the result's original write time on the unix clock.
  double cache_ttl_seconds = 0;
  /// Bounded queue between workers and the persister thread; when full,
  /// the oldest pending entry is dropped (persist_dropped counts them).
  std::size_t persist_queue_capacity = 256;
  /// Batched dispatch: each worker wakeup drains up to this many
  /// same-priority jobs from the queue in one unit (one lock, one wake,
  /// one persister hand-off for all of them). 1 = classic one-job
  /// dispatch. Interactive jobs are never batched regardless.
  std::size_t batch_max = 1;
  /// With batch_max > 1, grow the effective batch cap with observed
  /// queue depth (ceil(depth/2), bounded by batch_max) instead of
  /// always forming full batches — low load keeps single-job latency,
  /// only a real backlog amortizes. See JobQueue::pop_batch.
  bool batch_ramp = true;
  /// Microseconds a batching worker that woke to fewer than batch_max
  /// queued jobs waits for the batch to fill before dispatching what it
  /// has (NIC-style interrupt coalescing; see JobQueue::pop_batch).
  /// While a worker lingers, producers push without waking anyone, so
  /// the amortization survives single-core wakeup preemption. 0 (the
  /// default) dispatches immediately; interactive arrivals always abort
  /// a linger. Only meaningful with batch_max > 1.
  long batch_linger_us = 0;
  /// With batch_max > 1 and workers >= 2, dedicate worker 0 to the
  /// kInteractive class so an interactive job never waits behind a
  /// forming batch on a busy worker. Costs one general worker; disable
  /// to keep every worker draining batches (e.g. pure-throughput
  /// deployments with no interactive traffic).
  bool reserve_interactive_lane = true;
  /// Telemetry sink shared across the process (null = no telemetry). A
  /// flusher thread streams nonzero counter deltas (tag "delta") and
  /// histogram/gauge samples (tag "gauge") every telemetry_period_seconds
  /// and once more at shutdown, after the persister drained, so the last
  /// flush carries final counts. telemetry_rows / telemetry_dropped /
  /// telemetry_flushes in Metrics account this service's share of the
  /// sink traffic.
  std::shared_ptr<telemetry::TelemetrySink> telemetry;
  double telemetry_period_seconds = 1.0;
  /// The `source` field on every row this service records (distinguishes
  /// cluster backends sharing one sink).
  std::string telemetry_source = "svc";
};

enum class SubmitStatus {
  kCacheHit,           // completed immediately from the ResultCache
  kJoined,             // deduplicated onto an identical in-flight job
  kAccepted,           // enqueued; a worker will execute it
  kRejectedQueueFull,  // admission control refused (queue at capacity)
  kRejectedShutdown,   // service no longer accepts work
};

const char* to_string(SubmitStatus s);

/// What submit() hands back. `result` is valid unless rejected() —
/// rejected requests get *no* future (the request was never admitted),
/// which keeps rejection O(1) and allocation-free on the hot path.
struct Ticket {
  SubmitStatus status = SubmitStatus::kRejectedShutdown;
  std::shared_future<core::SimResult> result;

  bool rejected() const {
    return status == SubmitStatus::kRejectedQueueFull ||
           status == SubmitStatus::kRejectedShutdown;
  }
};

class SimService {
 public:
  explicit SimService(ServiceConfig config = {});
  ~SimService();  // shutdown(/*drain=*/true)
  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Thread-safe. Never runs the simulation on the caller's thread.
  Ticket submit(const core::SimJobSpec& spec,
                Priority priority = Priority::kNormal);

  /// Continuation flavour of submit() for event-driven callers (the RPC
  /// front-end): `done` fires exactly once with either the result or the
  /// ServiceError as an exception_ptr — synchronously on the caller's
  /// thread for cache hits and rejections, else on the worker thread
  /// that settles the flight. The result pointer is only valid for the
  /// duration of the call. No thread is parked waiting on the future.
  SubmitStatus submit_then(const core::SimJobSpec& spec, Priority priority,
                           ResultCache::Continuation done);

  /// Convenience: submit and wait. Throws ServiceError on rejection.
  core::SimResult run(const core::SimJobSpec& spec,
                      Priority priority = Priority::kNormal);

  /// Peer cache-fill ingest (the cluster replication path): insert a
  /// result some *other* node produced, exactly as the warm loader
  /// inserts a store record — newest-wins by write_time, never touching
  /// hit/miss accounting or starting a flight. The canonical key is
  /// taken lexically (JobKey::from_canonical) after a version-prefix
  /// gate; accepted fills are also written behind to this node's store,
  /// so replication is durable. Returns true when the cache took the
  /// entry (false: stale version, expired, in flight, or an equal-or-
  /// newer entry already cached — all counted in fills_rejected).
  bool ingest_fill(const std::string& canonical,
                   const core::SimResult& result, double cost_seconds,
                   double write_time);

  /// Stop the service. drain=true (default) finishes everything already
  /// accepted; drain=false fails queued-but-unstarted jobs with
  /// ServiceError ("cancelled"). Idempotent; later submits are rejected.
  void shutdown(bool drain = true);

  const Metrics& metrics() const { return metrics_; }
  const ResultCache& cache() const { return cache_; }
  /// Null when ServiceConfig::cache_dir is empty.
  Persister* persister() { return persister_.get(); }
  std::size_t queue_depth() const { return queue_.size(); }
  int workers() const { return static_cast<int>(threads_.size()); }
  /// True when worker 0 only serves kInteractive jobs (see
  /// ServiceConfig::reserve_interactive_lane).
  bool has_interactive_lane() const { return has_lane_; }

  /// Block until the background warm load (if any) has finished and the
  /// warm_loaded/warm_skipped counters are final. Returns immediately
  /// when no cache_dir is configured. Safe from any thread, any time.
  void wait_warm_loaded() const;

  /// Metrics + cache counters as one text block (the exporter).
  std::string metrics_snapshot() const;

 private:
  struct QueuedJob {
    JobKey key;
    core::SimJobSpec spec;
    double enqueue_time = 0;
  };

  void worker_loop();
  void lane_loop();  // worker 0 when has_lane_: kInteractive only
  void execute(QueuedJob job);
  /// One dispatch unit: per-batch metrics flush, per-job execution, one
  /// persister hand-off for every success in the batch.
  void execute_batch(std::vector<QueuedJob> batch);
  /// The attempt lifecycle for one job. Successful results go to `sink`
  /// when given (batched persistence), else straight to the persister.
  void execute_attempts(QueuedJob job, std::vector<Persister::Write>* sink);
  /// Record one dispatch unit of `n` jobs leaving the queue.
  void note_dispatch(std::size_t n);
  /// Terminal failure: abort the flight with a reasoned ServiceError.
  void fail(const JobKey& key, ErrorReason reason, const std::string& what);

  void warm_reader_loop(CacheStore* store);
  void warm_decoder_loop();

  void telemetry_loop();
  /// One flush pass: counter deltas since the previous pass + current
  /// gauges into the sink. Runs on the flusher thread, and once more
  /// from shutdown() after that thread (and the persister) is gone.
  void telemetry_flush();

  ServiceConfig config_;
  ResultCache cache_;
  JobQueue<QueuedJob> queue_;
  Metrics metrics_;
  std::unique_ptr<Persister> persister_;
  std::vector<std::thread> threads_;
  bool has_lane_ = false;

  // Startup double buffer: the reader thread scans/CRCs store records
  // into this bounded channel (push_wait = backpressure) while the
  // decoder thread decodes and inserts them into the cache. Both exit
  // on their own once the log is exhausted; shutdown() joins them.
  std::unique_ptr<JobQueue<RawStoreRecord>> warm_channel_;
  std::thread warm_reader_;
  std::thread warm_decoder_;
  mutable std::mutex warm_mu_;
  mutable std::condition_variable warm_cv_;
  bool warm_done_ = true;  // false only while a background load runs

  // Telemetry flusher: tel_last_ (the previous pass's counter values,
  // for deltas) is only touched by the flusher thread and, after it is
  // joined, by the final flush in shutdown().
  std::thread telemetry_thread_;
  std::mutex tel_mu_;
  std::condition_variable tel_cv_;
  bool tel_stop_ = false;
  std::map<std::string, std::int64_t> tel_last_;

  std::atomic<bool> shutting_down_{false};
  /// shutdown(drain=false) was requested: retry loops stop retrying and
  /// cancel instead; published to executors via ExecContext::cancel.
  std::atomic<bool> discard_{false};
  std::once_flag shutdown_once_;
};

}  // namespace gpawfd::svc
