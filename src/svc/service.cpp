#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "svc/exec_context.hpp"
#include "trace/stats.hpp"

namespace gpawfd::svc {

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kCacheHit:
      return "cache-hit";
    case SubmitStatus::kJoined:
      return "joined";
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kRejectedQueueFull:
      return "rejected: queue full";
    case SubmitStatus::kRejectedShutdown:
      return "rejected: shutdown";
  }
  return "?";
}

const char* to_string(ErrorReason r) {
  switch (r) {
    case ErrorReason::kUnknown:
      return "unknown";
    case ErrorReason::kCancelled:
      return "cancelled";
    case ErrorReason::kExecutorFailed:
      return "executor-failed";
    case ErrorReason::kTimedOut:
      return "timed-out";
    case ErrorReason::kGaveUp:
      return "gave-up";
    case ErrorReason::kRejectedQueueFull:
      return "rejected-queue-full";
    case ErrorReason::kRejectedShutdown:
      return "rejected-shutdown";
  }
  return "?";
}

double RetryPolicy::backoff_after(int failed_attempt) const {
  if (initial_backoff_seconds <= 0) return 0;
  double pause = initial_backoff_seconds;
  for (int k = 0; k < failed_attempt; ++k) {
    pause *= backoff_multiplier;
    if (pause >= max_backoff_seconds) break;  // capped; stop before overflow
  }
  return std::min(pause, max_backoff_seconds);
}

namespace {
int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

std::string what_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}
}  // namespace

SimService::SimService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards,
             config_.cache_ttl_seconds),
      queue_(config_.queue_capacity) {
  if (config_.workers <= 0) config_.workers = default_workers();
  if (!config_.executor) config_.executor = core::simulate_job;
  if (config_.retry.max_attempts < 1) config_.retry.max_attempts = 1;
  if (config_.batch_max < 1) config_.batch_max = 1;
  if (!config_.cache_dir.empty()) {
    // Warm start, double-buffered (the paper's overlap trick applied to
    // startup): a reader thread scans/CRCs the log while a decoder
    // thread decodes records and inserts them into the cache, and this
    // constructor returns immediately — submits race the load safely
    // (a miss on a still-loading key just executes; insert_warm is
    // newest-wins, so a streamed record never clobbers a fresher live
    // result). The persister starts parked and is released by the
    // reader once recovery establishes the writer state.
    std::filesystem::create_directories(config_.cache_dir);
    auto store =
        std::make_unique<CacheStore>(CacheStore::path_in(config_.cache_dir));
    CacheStore* store_raw = store.get();
    PersisterConfig pc;
    pc.queue_capacity = config_.persist_queue_capacity;
    persister_ = std::make_unique<Persister>(std::move(store), pc, &metrics_,
                                             /*store_ready=*/false);
    warm_done_ = false;
    warm_channel_ = std::make_unique<JobQueue<RawStoreRecord>>(
        /*capacity=*/128);
    warm_decoder_ = std::thread([this] { warm_decoder_loop(); });
    warm_reader_ = std::thread([this, store_raw] {
      warm_reader_loop(store_raw);
    });
  }
  has_lane_ = config_.batch_max > 1 && config_.reserve_interactive_lane &&
              config_.workers >= 2;
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  if (has_lane_) threads_.emplace_back([this] { lane_loop(); });
  for (int w = has_lane_ ? 1 : 0; w < config_.workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
  if (config_.telemetry && config_.telemetry_period_seconds > 0)
    telemetry_thread_ = std::thread([this] { telemetry_loop(); });
}

void SimService::telemetry_loop() {
  const auto period =
      std::chrono::duration<double>(config_.telemetry_period_seconds);
  std::unique_lock lk(tel_mu_);
  for (;;) {
    tel_cv_.wait_for(lk, period, [&] { return tel_stop_; });
    if (tel_stop_) return;  // shutdown() takes the final flush itself
    lk.unlock();
    telemetry_flush();
    lk.lock();
  }
}

void SimService::telemetry_flush() {
  telemetry::TelemetrySink& sink = *config_.telemetry;
  std::int64_t rows = 0, drops = 0;
  auto emit = [&](const std::string& key, double value, const char* tags) {
    if (!sink.record(config_.telemetry_source, key, value, tags)) ++drops;
    ++rows;
  };
  // Counter deltas since the previous pass — the trajectory wants rates,
  // and deltas of monotonic counters sum back to totals. The sink's own
  // accounting counters are excluded: emitting them would change them,
  // so an idle service would tick rows forever.
  for (const auto& [key, value] : metrics_.counter_map()) {
    if (std::string_view(key).substr(0, 14) == "svc.telemetry_") continue;
    const std::int64_t delta = value - tel_last_[key];
    if (delta != 0) emit(key, static_cast<double>(delta), "delta");
    tel_last_[key] = value;
  }
  // Point-in-time gauges: ratios and latency quantiles have no delta
  // form, so each pass samples the current value.
  emit("svc.hit_ratio", metrics_.hit_ratio(), "gauge");
  emit("svc.queue_depth", static_cast<double>(queue_.size()), "gauge");
  if (metrics_.exec_time.count() > 0) {
    emit("svc.exec_time.p50_s", metrics_.exec_time.quantile(0.50), "gauge");
    emit("svc.exec_time.p99_s", metrics_.exec_time.quantile(0.99), "gauge");
  }
  if (metrics_.queue_wait.count() > 0) {
    emit("svc.queue_wait.p50_s", metrics_.queue_wait.quantile(0.50), "gauge");
    emit("svc.queue_wait.p99_s", metrics_.queue_wait.quantile(0.99), "gauge");
  }
  if (metrics_.batch_size.count() > 0)
    emit("svc.batch_size.mean", metrics_.batch_size.mean(), "gauge");
  metrics_.telemetry_rows.fetch_add(rows, std::memory_order_relaxed);
  metrics_.telemetry_dropped.fetch_add(drops, std::memory_order_relaxed);
  metrics_.telemetry_flushes.fetch_add(1, std::memory_order_relaxed);
}

void SimService::warm_reader_loop(CacheStore* store) {
  // The persister owns the store but its thread is parked until
  // mark_ready(), so this thread has exclusive use during the scan.
  store->recover_stream(
      [this](RawStoreRecord&& rec) {
        warm_channel_->push_wait(std::move(rec));
      },
      nullptr, /*repair=*/true);
  warm_channel_->close();  // decoder drains the tail, then finishes
  persister_->mark_ready();
}

void SimService::warm_decoder_loop() {
  // Per-key fate of the *newest* streamed put: true = in the cache,
  // false = skipped (stale version / expired / lost to a fresher live
  // entry or flight). Tombstoned keys leave the map, so at the end
  //   live store records == warm_loaded + warm_skipped
  // exactly as the old collapse-then-load path counted.
  std::unordered_map<std::string, bool> fate;
  while (auto rec = warm_channel_->pop()) {
    if (rec->type == RecordType::kTombstone) {
      if (JobKey::current_version(rec->key))
        cache_.erase_warm(JobKey::from_canonical(rec->key), rec->write_time);
      fate.erase(rec->key);
      continue;
    }
    bool loaded = false;
    if (JobKey::current_version(rec->key)) {
      const core::SimResult result =
          core::decode_sim_result(rec->value.data(), rec->value.size());
      loaded = cache_.insert_warm(JobKey::from_canonical(rec->key), result,
                                  rec->cost_seconds, rec->write_time);
    }
    fate[rec->key] = loaded;
  }
  std::int64_t loaded_n = 0, skipped_n = 0;
  for (const auto& [key, ok] : fate) (ok ? loaded_n : skipped_n) += 1;
  metrics_.warm_loaded.store(loaded_n, std::memory_order_relaxed);
  metrics_.warm_skipped.store(skipped_n, std::memory_order_relaxed);
  {
    std::lock_guard lock(warm_mu_);
    warm_done_ = true;
  }
  warm_cv_.notify_all();
}

void SimService::wait_warm_loaded() const {
  std::unique_lock lock(warm_mu_);
  warm_cv_.wait(lock, [&] { return warm_done_; });
}

SimService::~SimService() { shutdown(/*drain=*/true); }

Ticket SimService::submit(const core::SimJobSpec& spec, Priority priority) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (shutting_down_.load(std::memory_order_acquire)) {
    metrics_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejectedShutdown, {}};
  }

  const double t0 = trace::now_seconds();
  const JobKey key = JobKey::of(spec);
  ResultCache::Lookup lookup = cache_.lookup_or_begin(key);
  switch (lookup.outcome) {
    case ResultCache::Outcome::kHit:
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics_.hit_time.record(trace::now_seconds() - t0);
      return {SubmitStatus::kCacheHit, std::move(lookup.result)};
    case ResultCache::Outcome::kJoined:
      metrics_.dedup_joined.fetch_add(1, std::memory_order_relaxed);
      return {SubmitStatus::kJoined, std::move(lookup.result)};
    case ResultCache::Outcome::kLeader:
      break;
  }

  // We are the leader: admission control decides whether the execution
  // actually happens.
  QueuedJob job{key, spec, trace::now_seconds()};
  const PushResult push =
      config_.block_when_full ? queue_.push_wait(std::move(job), priority)
                              : queue_.try_push(std::move(job), priority);
  switch (push) {
    case PushResult::kAccepted:
      metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
      metrics_.note_queue_depth(static_cast<std::int64_t>(queue_.size()));
      return {SubmitStatus::kAccepted, std::move(lookup.result)};
    case PushResult::kQueueFull:
    case PushResult::kClosed: {
      // End the flight we started. A request that joined in the window
      // between our lookup and this abort sees the rejection as an
      // exception on its future — it shared our admission fate.
      const bool full = push == PushResult::kQueueFull;
      (full ? metrics_.rejected_queue_full : metrics_.rejected_shutdown)
          .fetch_add(1, std::memory_order_relaxed);
      cache_.abort(key,
                   std::make_exception_ptr(ServiceError(
                       full ? "rejected: queue full" : "rejected: shutdown",
                       full ? ErrorReason::kRejectedQueueFull
                            : ErrorReason::kRejectedShutdown)));
      return {full ? SubmitStatus::kRejectedQueueFull
                   : SubmitStatus::kRejectedShutdown,
              {}};
    }
  }
  return {SubmitStatus::kRejectedShutdown, {}};
}

SubmitStatus SimService::submit_then(const core::SimJobSpec& spec,
                                     Priority priority,
                                     ResultCache::Continuation done) {
  Ticket t = submit(spec, priority);
  switch (t.status) {
    case SubmitStatus::kRejectedQueueFull:
    case SubmitStatus::kRejectedShutdown:
      done(nullptr,
           std::make_exception_ptr(ServiceError(
               to_string(t.status),
               t.status == SubmitStatus::kRejectedQueueFull
                   ? ErrorReason::kRejectedQueueFull
                   : ErrorReason::kRejectedShutdown)));
      return t.status;
    case SubmitStatus::kCacheHit: {
      const core::SimResult result = t.result.get();  // ready by contract
      done(&result, nullptr);
      return t.status;
    }
    case SubmitStatus::kJoined:
    case SubmitStatus::kAccepted:
      break;
  }
  // Attach to the in-flight computation. If the flight settled in the
  // window since admission, the ticket's future is (about to be) ready —
  // the wait below is bounded by the settling thread's few remaining
  // instructions.
  if (!cache_.on_settled(JobKey::of(spec), done)) {
    try {
      const core::SimResult result = t.result.get();
      done(&result, nullptr);
    } catch (...) {
      done(nullptr, std::current_exception());
    }
  }
  return t.status;
}

bool SimService::ingest_fill(const std::string& canonical,
                             const core::SimResult& result,
                             double cost_seconds, double write_time) {
  metrics_.fills_received.fetch_add(1, std::memory_order_relaxed);
  bool accepted = false;
  if (JobKey::current_version(canonical)) {
    const JobKey key = JobKey::from_canonical(canonical);
    accepted = cache_.insert_warm(key, result, cost_seconds, write_time);
  }
  (accepted ? metrics_.fills_accepted : metrics_.fills_rejected)
      .fetch_add(1, std::memory_order_relaxed);
  // Durable replication: the accepted fill goes to this node's own store
  // too, so a restart of the replica still holds the peer's results.
  if (accepted && persister_)
    persister_->enqueue(canonical, result, cost_seconds, write_time);
  return accepted;
}

core::SimResult SimService::run(const core::SimJobSpec& spec,
                                Priority priority) {
  Ticket t = submit(spec, priority);
  if (t.rejected())
    throw ServiceError(to_string(t.status),
                       t.status == SubmitStatus::kRejectedQueueFull
                           ? ErrorReason::kRejectedQueueFull
                           : ErrorReason::kRejectedShutdown);
  return t.result.get();
}

void SimService::note_dispatch(std::size_t n) {
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batched_jobs.fetch_add(static_cast<std::int64_t>(n),
                                  std::memory_order_relaxed);
  metrics_.batch_size.record(static_cast<std::int64_t>(n));
}

void SimService::worker_loop() {
  if (config_.batch_max <= 1) {
    while (auto job = queue_.pop()) {
      note_dispatch(1);
      execute(std::move(*job));
    }
    return;
  }
  const auto linger =
      std::chrono::microseconds(std::max(0L, config_.batch_linger_us));
  for (;;) {
    std::vector<QueuedJob> batch =
        queue_.pop_batch(config_.batch_max, config_.batch_ramp, linger);
    if (batch.empty()) return;  // closed and drained
    execute_batch(std::move(batch));
  }
}

void SimService::lane_loop() {
  // The interactive affinity lane: this worker only ever takes
  // kInteractive jobs, one at a time, so none of them waits behind a
  // batch forming (or executing) on a general worker. General workers
  // still pick interactive work up first when the lane is busy.
  while (auto job = queue_.pop_class(Priority::kInteractive)) {
    note_dispatch(1);
    execute(std::move(*job));
  }
}

void SimService::fail(const JobKey& key, ErrorReason reason,
                      const std::string& what) {
  cache_.abort(key, std::make_exception_ptr(ServiceError(what, reason)));
}

void SimService::execute(QueuedJob job) {
  metrics_.queue_wait.record(trace::now_seconds() - job.enqueue_time);
  execute_attempts(std::move(job), nullptr);
}

// One dispatch unit (DESIGN.md §13): the per-dispatch bookkeeping —
// queue-wait flush (one clock read: every member left the queue at the
// same wakeup), executed-counter update, persister hand-off — happens
// once per batch instead of once per job. Jobs still execute serially
// on this worker, each through the full attempt lifecycle; a retrying
// job's backoff delays its batch-mates (retries are rare, and
// re-queueing would reorder within a priority class).
void SimService::execute_batch(std::vector<QueuedJob> batch) {
  note_dispatch(batch.size());
  const double now = trace::now_seconds();
  for (const QueuedJob& job : batch)
    metrics_.queue_wait.record(now - job.enqueue_time);
  std::vector<Persister::Write> writes;
  if (persister_) writes.reserve(batch.size());
  for (QueuedJob& job : batch)
    execute_attempts(std::move(job), persister_ ? &writes : nullptr);
  if (persister_ && !writes.empty())
    persister_->enqueue_batch(std::move(writes));
}

// The attempt lifecycle (see DESIGN.md §10 for the state diagram). Each
// loop iteration is one attempt and classifies itself exactly one way —
// success / exec_failure (threw within budget) / timeout (exceeded the
// per-attempt deadline, whether it threw or returned) — so the metrics
// reconcile: accepted == executed + gave_up + cancelled at quiescence.
void SimService::execute_attempts(QueuedJob job,
                                  std::vector<Persister::Write>* sink) {
  const RetryPolicy& rp = config_.retry;
  for (int attempt = 0;; ++attempt) {
    const double t0 = trace::now_seconds();
    const trace::Deadline deadline =
        rp.attempt_timeout_seconds > 0
            ? trace::Deadline::at(t0 + rp.attempt_timeout_seconds)
            : trace::Deadline::never();
    std::exception_ptr error;
    core::SimResult result;
    {
      ExecContextScope scope(ExecContext{attempt, deadline, &discard_});
      try {
        result = config_.executor(job.spec);
      } catch (...) {
        error = std::current_exception();
      }
    }
    const double elapsed = trace::now_seconds() - t0;
    metrics_.attempt_time.record(elapsed);
    const bool timed_out =
        !deadline.is_never() && elapsed >= rp.attempt_timeout_seconds;

    if (!error && !timed_out) {
      metrics_.exec_time.record(elapsed);
      metrics_.executed.fetch_add(1, std::memory_order_relaxed);
      // The measured cold cost weights this entry's eviction priority.
      cache_.complete(job.key, result, elapsed);
      // Write-behind, off this worker's critical path: the persister's
      // thread does the file I/O. Cache hits (including warm-loaded
      // entries) never reach here, so the log only grows on real work.
      // Batched dispatch collects the writes in `sink` and hands the
      // whole batch over in one enqueue_batch (one lock, one wake).
      if (sink)
        sink->push_back(Persister::Write{job.key.canonical(), result,
                                         elapsed, trace::unix_seconds()});
      else if (persister_)
        persister_->enqueue(job.key.canonical(), result, elapsed,
                            trace::unix_seconds());
      return;
    }

    // Classify the failed attempt and decide the job's fate.
    ErrorReason reason;
    std::ostringstream what;
    if (timed_out) {
      metrics_.timeouts.fetch_add(1, std::memory_order_relaxed);
      reason = ErrorReason::kTimedOut;
      what << "attempt " << attempt << " timed out after " << elapsed
           << "s (budget " << rp.attempt_timeout_seconds << "s)";
    } else {
      metrics_.exec_failures.fetch_add(1, std::memory_order_relaxed);
      reason = rp.max_attempts > 1 ? ErrorReason::kGaveUp
                                   : ErrorReason::kExecutorFailed;
      what << "executor failed on attempt " << attempt << ": "
           << what_of(error);
    }

    if (attempt + 1 >= rp.max_attempts) {
      metrics_.gave_up.fetch_add(1, std::memory_order_relaxed);
      if (reason == ErrorReason::kGaveUp)
        what << " (gave up after " << rp.max_attempts << " attempts)";
      fail(job.key, reason, what.str());
      return;
    }

    // Backoff parked on the queue's lifecycle (close() wakes it), then
    // re-check for discard-shutdown: cancelling beats retrying into a
    // service that is throwing work away.
    const double pause = rp.backoff_after(attempt);
    if (pause > 0) queue_.wait_closed_for(pause);
    if (discard_.load(std::memory_order_acquire)) {
      metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
      fail(job.key, ErrorReason::kCancelled,
           "cancelled: shutdown during retry backoff");
      return;
    }
    metrics_.retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void SimService::shutdown(bool drain) {
  std::call_once(shutdown_once_, [&] {
    shutting_down_.store(true, std::memory_order_release);
    // Publish discard *before* closing the queue so a retry loop woken
    // by close() observes it.
    if (!drain) discard_.store(true, std::memory_order_release);
    queue_.close();
    if (!drain) {
      for (QueuedJob& job : queue_.drain_remaining()) {
        metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
        fail(job.key, ErrorReason::kCancelled, "cancelled: shutdown");
      }
    }
    for (std::thread& t : threads_) t.join();
    // The warm load is bounded by the log size; let it finish rather
    // than tearing down structures it reads (it also releases the
    // persister, which must happen before the persister can drain).
    if (warm_reader_.joinable()) warm_reader_.join();
    if (warm_decoder_.joinable()) warm_decoder_.join();
    // Workers are gone, so nothing can enqueue anymore: drain what the
    // persister still holds, fsync, and stop its thread.
    if (persister_) persister_->shutdown();
    // Telemetry last: the flusher thread stops, then one final pass on
    // this thread captures the now-final counters (including the
    // persister's) so the table's last rows reconcile with
    // metrics_snapshot(). The sink itself outlives the service (shared).
    if (telemetry_thread_.joinable()) {
      {
        std::lock_guard lock(tel_mu_);
        tel_stop_ = true;
      }
      tel_cv_.notify_all();
      telemetry_thread_.join();
    }
    if (config_.telemetry) {
      telemetry_flush();
      config_.telemetry->flush();
    }
  });
}

std::string SimService::metrics_snapshot() const {
  return metrics_.snapshot(static_cast<std::int64_t>(cache_.size()),
                           cache_.evictions(), cache_.expired());
}

}  // namespace gpawfd::svc
