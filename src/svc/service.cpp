#include "svc/service.hpp"

#include <algorithm>

#include "trace/stats.hpp"

namespace gpawfd::svc {

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kCacheHit:
      return "cache-hit";
    case SubmitStatus::kJoined:
      return "joined";
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kRejectedQueueFull:
      return "rejected: queue full";
    case SubmitStatus::kRejectedShutdown:
      return "rejected: shutdown";
  }
  return "?";
}

namespace {
int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}
}  // namespace

SimService::SimService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards),
      queue_(config_.queue_capacity) {
  if (config_.workers <= 0) config_.workers = default_workers();
  if (!config_.executor) config_.executor = core::simulate_job;
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

SimService::~SimService() { shutdown(/*drain=*/true); }

Ticket SimService::submit(const core::SimJobSpec& spec, Priority priority) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (shutting_down_.load(std::memory_order_acquire)) {
    metrics_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejectedShutdown, {}};
  }

  const double t0 = trace::now_seconds();
  const JobKey key = JobKey::of(spec);
  ResultCache::Lookup lookup = cache_.lookup_or_begin(key);
  switch (lookup.outcome) {
    case ResultCache::Outcome::kHit:
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics_.hit_time.record(trace::now_seconds() - t0);
      return {SubmitStatus::kCacheHit, std::move(lookup.result)};
    case ResultCache::Outcome::kJoined:
      metrics_.dedup_joined.fetch_add(1, std::memory_order_relaxed);
      return {SubmitStatus::kJoined, std::move(lookup.result)};
    case ResultCache::Outcome::kLeader:
      break;
  }

  // We are the leader: admission control decides whether the execution
  // actually happens.
  QueuedJob job{key, spec, trace::now_seconds()};
  const PushResult push =
      config_.block_when_full ? queue_.push_wait(std::move(job), priority)
                              : queue_.try_push(std::move(job), priority);
  switch (push) {
    case PushResult::kAccepted:
      metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
      metrics_.note_queue_depth(static_cast<std::int64_t>(queue_.size()));
      return {SubmitStatus::kAccepted, std::move(lookup.result)};
    case PushResult::kQueueFull:
    case PushResult::kClosed: {
      // End the flight we started. A request that joined in the window
      // between our lookup and this abort sees the rejection as an
      // exception on its future — it shared our admission fate.
      const bool full = push == PushResult::kQueueFull;
      (full ? metrics_.rejected_queue_full : metrics_.rejected_shutdown)
          .fetch_add(1, std::memory_order_relaxed);
      cache_.abort(key, std::make_exception_ptr(ServiceError(
                            full ? "rejected: queue full"
                                 : "rejected: shutdown")));
      return {full ? SubmitStatus::kRejectedQueueFull
                   : SubmitStatus::kRejectedShutdown,
              {}};
    }
  }
  return {SubmitStatus::kRejectedShutdown, {}};
}

core::SimResult SimService::run(const core::SimJobSpec& spec,
                                Priority priority) {
  Ticket t = submit(spec, priority);
  if (t.rejected()) throw ServiceError(to_string(t.status));
  return t.result.get();
}

void SimService::worker_loop() {
  while (auto job = queue_.pop()) execute(std::move(*job));
}

void SimService::execute(QueuedJob job) {
  metrics_.queue_wait.record(trace::now_seconds() - job.enqueue_time);
  try {
    const double t0 = trace::now_seconds();
    const core::SimResult result = config_.executor(job.spec);
    metrics_.exec_time.record(trace::now_seconds() - t0);
    metrics_.executed.fetch_add(1, std::memory_order_relaxed);
    cache_.complete(job.key, result);
  } catch (...) {
    metrics_.exec_failures.fetch_add(1, std::memory_order_relaxed);
    cache_.abort(job.key, std::current_exception());
  }
}

void SimService::shutdown(bool drain) {
  std::call_once(shutdown_once_, [&] {
    shutting_down_.store(true, std::memory_order_release);
    queue_.close();
    if (!drain) {
      for (QueuedJob& job : queue_.drain_remaining()) {
        metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
        cache_.abort(job.key, std::make_exception_ptr(
                                  ServiceError("cancelled: shutdown")));
      }
    }
    for (std::thread& t : threads_) t.join();
  });
}

std::string SimService::metrics_snapshot() const {
  return metrics_.snapshot(static_cast<std::int64_t>(cache_.size()),
                           cache_.evictions());
}

}  // namespace gpawfd::svc
