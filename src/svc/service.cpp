#include "svc/service.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>

#include "svc/exec_context.hpp"
#include "trace/stats.hpp"

namespace gpawfd::svc {

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kCacheHit:
      return "cache-hit";
    case SubmitStatus::kJoined:
      return "joined";
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kRejectedQueueFull:
      return "rejected: queue full";
    case SubmitStatus::kRejectedShutdown:
      return "rejected: shutdown";
  }
  return "?";
}

const char* to_string(ErrorReason r) {
  switch (r) {
    case ErrorReason::kUnknown:
      return "unknown";
    case ErrorReason::kCancelled:
      return "cancelled";
    case ErrorReason::kExecutorFailed:
      return "executor-failed";
    case ErrorReason::kTimedOut:
      return "timed-out";
    case ErrorReason::kGaveUp:
      return "gave-up";
    case ErrorReason::kRejectedQueueFull:
      return "rejected-queue-full";
    case ErrorReason::kRejectedShutdown:
      return "rejected-shutdown";
  }
  return "?";
}

double RetryPolicy::backoff_after(int failed_attempt) const {
  if (initial_backoff_seconds <= 0) return 0;
  double pause = initial_backoff_seconds;
  for (int k = 0; k < failed_attempt; ++k) {
    pause *= backoff_multiplier;
    if (pause >= max_backoff_seconds) break;  // capped; stop before overflow
  }
  return std::min(pause, max_backoff_seconds);
}

namespace {
int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

std::string what_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}
}  // namespace

SimService::SimService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards,
             config_.cache_ttl_seconds),
      queue_(config_.queue_capacity) {
  if (config_.workers <= 0) config_.workers = default_workers();
  if (!config_.executor) config_.executor = core::simulate_job;
  if (config_.retry.max_attempts < 1) config_.retry.max_attempts = 1;
  if (!config_.cache_dir.empty()) {
    // Warm start: recover the persistent store and pre-fill the cache
    // with every live record that is still current-version and within
    // TTL, before any worker can race a submit against the load.
    std::filesystem::create_directories(config_.cache_dir);
    auto store =
        std::make_unique<CacheStore>(CacheStore::path_in(config_.cache_dir));
    for (const StoreRecord& rec : store->recover()) {
      const bool loaded =
          JobKey::current_version(rec.key) &&
          cache_.insert_warm(JobKey::from_canonical(rec.key), rec.result,
                             rec.cost_seconds, rec.write_time);
      (loaded ? metrics_.warm_loaded : metrics_.warm_skipped)
          .fetch_add(1, std::memory_order_relaxed);
    }
    PersisterConfig pc;
    pc.queue_capacity = config_.persist_queue_capacity;
    persister_ = std::make_unique<Persister>(std::move(store), pc, &metrics_);
  }
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

SimService::~SimService() { shutdown(/*drain=*/true); }

Ticket SimService::submit(const core::SimJobSpec& spec, Priority priority) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (shutting_down_.load(std::memory_order_acquire)) {
    metrics_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejectedShutdown, {}};
  }

  const double t0 = trace::now_seconds();
  const JobKey key = JobKey::of(spec);
  ResultCache::Lookup lookup = cache_.lookup_or_begin(key);
  switch (lookup.outcome) {
    case ResultCache::Outcome::kHit:
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics_.hit_time.record(trace::now_seconds() - t0);
      return {SubmitStatus::kCacheHit, std::move(lookup.result)};
    case ResultCache::Outcome::kJoined:
      metrics_.dedup_joined.fetch_add(1, std::memory_order_relaxed);
      return {SubmitStatus::kJoined, std::move(lookup.result)};
    case ResultCache::Outcome::kLeader:
      break;
  }

  // We are the leader: admission control decides whether the execution
  // actually happens.
  QueuedJob job{key, spec, trace::now_seconds()};
  const PushResult push =
      config_.block_when_full ? queue_.push_wait(std::move(job), priority)
                              : queue_.try_push(std::move(job), priority);
  switch (push) {
    case PushResult::kAccepted:
      metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
      metrics_.note_queue_depth(static_cast<std::int64_t>(queue_.size()));
      return {SubmitStatus::kAccepted, std::move(lookup.result)};
    case PushResult::kQueueFull:
    case PushResult::kClosed: {
      // End the flight we started. A request that joined in the window
      // between our lookup and this abort sees the rejection as an
      // exception on its future — it shared our admission fate.
      const bool full = push == PushResult::kQueueFull;
      (full ? metrics_.rejected_queue_full : metrics_.rejected_shutdown)
          .fetch_add(1, std::memory_order_relaxed);
      cache_.abort(key,
                   std::make_exception_ptr(ServiceError(
                       full ? "rejected: queue full" : "rejected: shutdown",
                       full ? ErrorReason::kRejectedQueueFull
                            : ErrorReason::kRejectedShutdown)));
      return {full ? SubmitStatus::kRejectedQueueFull
                   : SubmitStatus::kRejectedShutdown,
              {}};
    }
  }
  return {SubmitStatus::kRejectedShutdown, {}};
}

SubmitStatus SimService::submit_then(const core::SimJobSpec& spec,
                                     Priority priority,
                                     ResultCache::Continuation done) {
  Ticket t = submit(spec, priority);
  switch (t.status) {
    case SubmitStatus::kRejectedQueueFull:
    case SubmitStatus::kRejectedShutdown:
      done(nullptr,
           std::make_exception_ptr(ServiceError(
               to_string(t.status),
               t.status == SubmitStatus::kRejectedQueueFull
                   ? ErrorReason::kRejectedQueueFull
                   : ErrorReason::kRejectedShutdown)));
      return t.status;
    case SubmitStatus::kCacheHit: {
      const core::SimResult result = t.result.get();  // ready by contract
      done(&result, nullptr);
      return t.status;
    }
    case SubmitStatus::kJoined:
    case SubmitStatus::kAccepted:
      break;
  }
  // Attach to the in-flight computation. If the flight settled in the
  // window since admission, the ticket's future is (about to be) ready —
  // the wait below is bounded by the settling thread's few remaining
  // instructions.
  if (!cache_.on_settled(JobKey::of(spec), done)) {
    try {
      const core::SimResult result = t.result.get();
      done(&result, nullptr);
    } catch (...) {
      done(nullptr, std::current_exception());
    }
  }
  return t.status;
}

core::SimResult SimService::run(const core::SimJobSpec& spec,
                                Priority priority) {
  Ticket t = submit(spec, priority);
  if (t.rejected())
    throw ServiceError(to_string(t.status),
                       t.status == SubmitStatus::kRejectedQueueFull
                           ? ErrorReason::kRejectedQueueFull
                           : ErrorReason::kRejectedShutdown);
  return t.result.get();
}

void SimService::worker_loop() {
  while (auto job = queue_.pop()) execute(std::move(*job));
}

void SimService::fail(const JobKey& key, ErrorReason reason,
                      const std::string& what) {
  cache_.abort(key, std::make_exception_ptr(ServiceError(what, reason)));
}

// The attempt lifecycle (see DESIGN.md §10 for the state diagram). Each
// loop iteration is one attempt and classifies itself exactly one way —
// success / exec_failure (threw within budget) / timeout (exceeded the
// per-attempt deadline, whether it threw or returned) — so the metrics
// reconcile: accepted == executed + gave_up + cancelled at quiescence.
void SimService::execute(QueuedJob job) {
  metrics_.queue_wait.record(trace::now_seconds() - job.enqueue_time);
  const RetryPolicy& rp = config_.retry;
  for (int attempt = 0;; ++attempt) {
    const double t0 = trace::now_seconds();
    const trace::Deadline deadline =
        rp.attempt_timeout_seconds > 0
            ? trace::Deadline::at(t0 + rp.attempt_timeout_seconds)
            : trace::Deadline::never();
    std::exception_ptr error;
    core::SimResult result;
    {
      ExecContextScope scope(ExecContext{attempt, deadline, &discard_});
      try {
        result = config_.executor(job.spec);
      } catch (...) {
        error = std::current_exception();
      }
    }
    const double elapsed = trace::now_seconds() - t0;
    metrics_.attempt_time.record(elapsed);
    const bool timed_out =
        !deadline.is_never() && elapsed >= rp.attempt_timeout_seconds;

    if (!error && !timed_out) {
      metrics_.exec_time.record(elapsed);
      metrics_.executed.fetch_add(1, std::memory_order_relaxed);
      // The measured cold cost weights this entry's eviction priority.
      cache_.complete(job.key, result, elapsed);
      // Write-behind, off this worker's critical path: the persister's
      // thread does the file I/O. Cache hits (including warm-loaded
      // entries) never reach here, so the log only grows on real work.
      if (persister_)
        persister_->enqueue(job.key.canonical(), result, elapsed,
                            trace::unix_seconds());
      return;
    }

    // Classify the failed attempt and decide the job's fate.
    ErrorReason reason;
    std::ostringstream what;
    if (timed_out) {
      metrics_.timeouts.fetch_add(1, std::memory_order_relaxed);
      reason = ErrorReason::kTimedOut;
      what << "attempt " << attempt << " timed out after " << elapsed
           << "s (budget " << rp.attempt_timeout_seconds << "s)";
    } else {
      metrics_.exec_failures.fetch_add(1, std::memory_order_relaxed);
      reason = rp.max_attempts > 1 ? ErrorReason::kGaveUp
                                   : ErrorReason::kExecutorFailed;
      what << "executor failed on attempt " << attempt << ": "
           << what_of(error);
    }

    if (attempt + 1 >= rp.max_attempts) {
      metrics_.gave_up.fetch_add(1, std::memory_order_relaxed);
      if (reason == ErrorReason::kGaveUp)
        what << " (gave up after " << rp.max_attempts << " attempts)";
      fail(job.key, reason, what.str());
      return;
    }

    // Backoff parked on the queue's lifecycle (close() wakes it), then
    // re-check for discard-shutdown: cancelling beats retrying into a
    // service that is throwing work away.
    const double pause = rp.backoff_after(attempt);
    if (pause > 0) queue_.wait_closed_for(pause);
    if (discard_.load(std::memory_order_acquire)) {
      metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
      fail(job.key, ErrorReason::kCancelled,
           "cancelled: shutdown during retry backoff");
      return;
    }
    metrics_.retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void SimService::shutdown(bool drain) {
  std::call_once(shutdown_once_, [&] {
    shutting_down_.store(true, std::memory_order_release);
    // Publish discard *before* closing the queue so a retry loop woken
    // by close() observes it.
    if (!drain) discard_.store(true, std::memory_order_release);
    queue_.close();
    if (!drain) {
      for (QueuedJob& job : queue_.drain_remaining()) {
        metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
        fail(job.key, ErrorReason::kCancelled, "cancelled: shutdown");
      }
    }
    for (std::thread& t : threads_) t.join();
    // Workers are gone, so nothing can enqueue anymore: drain what the
    // persister still holds, fsync, and stop its thread.
    if (persister_) persister_->shutdown();
  });
}

std::string SimService::metrics_snapshot() const {
  return metrics_.snapshot(static_cast<std::int64_t>(cache_.size()),
                           cache_.evictions(), cache_.expired());
}

}  // namespace gpawfd::svc
