// Deterministic fault injection for the service layer: FaultyExecutor
// wraps any ServiceConfig::executor and injects failures *keyed off the
// JobKey hash and the attempt number*, never off rand() or the clock —
// the same seed and request stream reproduce the same fault schedule on
// every run, which is what makes retry/timeout/backoff behaviour
// testable at all (the chaos harness in tests/svc_fault_test.cpp and the
// soak in tests/svc_stress_test.cpp are the consumers).
//
// Fault kinds (per key, chosen once by seeded hash partition or pinned
// explicitly with set_rule):
//   kThrow — the attempt throws FaultInjected. With fail_attempts = N,
//            attempts 0..N-1 fail and attempt N succeeds
//            ("fail-N-then-succeed", the retry-recovery scenario).
//   kDelay — the attempt is slowed by delay_seconds plus a deterministic
//            per-(key, attempt) jitter in [0, jitter_seconds). Sleeps
//            are capped just past the attempt deadline so timeout tests
//            never oversleep. Models stragglers.
//   kHang  — the attempt blocks until the per-attempt deadline expires,
//            cancel_all() is called, or the service starts discarding,
//            then throws. Models a lost/looping node; this is the fault
//            only a deadline can absorb.
//   kNone  — pass through to the inner executor.
//
// The attempt number and deadline come from svc::current_exec_context(),
// published by the SimService worker loop; outside a service the
// defaults (attempt 0, no deadline) apply, so the wrapper also works
// standalone in unit tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/check.hpp"
#include "core/figures.hpp"
#include "svc/exec_context.hpp"
#include "svc/job_key.hpp"

namespace gpawfd::svc {

/// What FaultyExecutor throws for an injected failure. Derives from the
/// library Error so it propagates like any executor exception.
class FaultInjected : public Error {
 public:
  using Error::Error;
};

enum class FaultKind { kNone, kThrow, kDelay, kHang };

const char* to_string(FaultKind k);

/// The fault a specific key is subject to.
struct FaultRule {
  FaultKind kind = FaultKind::kNone;
  /// For kThrow/kHang: attempts 0..fail_attempts-1 fail, later attempts
  /// succeed. For kDelay: only those attempts are slowed. -1 = every
  /// attempt is affected (the fault is permanent).
  int fail_attempts = -1;
  /// kDelay: base added latency per affected attempt.
  double delay_seconds = 0;
  /// kDelay: extra deterministic per-(key, attempt) latency in
  /// [0, jitter_seconds).
  double jitter_seconds = 0;
};

/// Seeded plan: which keys fault, and how. Probabilities partition the
/// key space by hash (mix64(seed ^ key.hash())), so "30% of keys throw"
/// selects the *same* 30% on every run with the same seed.
struct FaultConfig {
  std::uint64_t seed = 0x5eedfa11ULL;
  double throw_probability = 0;
  double hang_probability = 0;
  double delay_probability = 0;
  /// Applied to every probabilistically selected rule (see FaultRule).
  int fail_attempts = -1;
  double delay_seconds = 0;
  double jitter_seconds = 0;
};

class FaultyExecutor {
 public:
  using Executor = std::function<core::SimResult(const core::SimJobSpec&)>;

  FaultyExecutor(Executor inner, FaultConfig config);

  /// The executor call: decide the key's rule, inject, delegate.
  core::SimResult operator()(const core::SimJobSpec& spec);

  /// The deterministic rule this plan assigns to `key` (explicit rules
  /// win over the seeded partition). Exposed so tests can predict the
  /// schedule instead of discovering it.
  FaultRule rule_for(const JobKey& key) const;

  /// Pin a rule for one key, overriding the seeded partition — the
  /// precision tool for single-branch tests.
  void set_rule(const JobKey& key, FaultRule rule);

  /// Release every hung attempt (they throw FaultInjected). Hangs also
  /// self-release on their attempt deadline or on service discard, so
  /// this is only needed when neither is configured.
  void cancel_all();

  // ---- injection accounting (relaxed atomics, like svc::Metrics) ------
  std::int64_t injected_throws() const {
    return injected_throws_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_delays() const {
    return injected_delays_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_hangs() const {
    return injected_hangs_.load(std::memory_order_relaxed);
  }
  std::int64_t passed_through() const {
    return passed_through_.load(std::memory_order_relaxed);
  }

  const FaultConfig& config() const { return config_; }

 private:
  /// Deterministic uniform in [0, 1) for (seed, key, stream).
  double unit_hash(std::uint64_t key_hash, std::uint64_t stream) const;
  void delay(const FaultRule& rule, const JobKey& key,
             const ExecContext& ctx);
  [[noreturn]] void hang(const ExecContext& ctx);

  Executor inner_;
  FaultConfig config_;

  mutable std::mutex mu_;  // guards overrides_ and the hang cv state
  std::unordered_map<JobKey, FaultRule, JobKey::Hasher> overrides_;
  std::condition_variable cv_;
  bool cancelled_ = false;

  std::atomic<std::int64_t> injected_throws_{0};
  std::atomic<std::int64_t> injected_delays_{0};
  std::atomic<std::int64_t> injected_hangs_{0};
  std::atomic<std::int64_t> passed_through_{0};
};

}  // namespace gpawfd::svc
