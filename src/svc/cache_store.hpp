// Persistent, crash-safe result store: an append-only record log
// mapping JobKey canonical strings to bit-exact SimResults (the shared
// core/result_codec encoding — the same 96 bytes a net kResult frame
// carries, so a wire reply *is* a serialized store entry). The paper
// keeps expensive grid work off the critical path; this keeps expensive
// simulations off the critical path of the *next process*: a bench/CI
// restart warm-loads the store instead of re-simulating.
//
// One record on disk (all little-endian):
//
//   0        4       5      6         8          16          24
//   ┌────────┬───────┬──────┬─────────┬──────────┬───────────┬
//   │ magic  │version│ type │reserved │ sequence │ write_time│
//   │ 4B     │ 1B    │ 1B   │ 2B      │ 8B       │ 8B (f64)  │
//   ┼────────┬─────────┬───────────┬───────┬──────┬──────────┤
//   │ cost   │ key_len │ value_len │ crc32 │ key… │ value…   │
//   │ 8B f64 │ 4B      │ 4B        │ 4B    │      │ (96B put)│
//   └────────┴─────────┴───────────┴───────┴──────┴──────────┘
//   24      32        36          40      44
//
// The CRC covers header bytes [0, 40) plus key plus value, so a torn
// write (crash mid-append) or any bit flip invalidates exactly the
// record it touched. Recovery scans forward and stops at the first
// record that fails any check (magic, version, type, bounds, sequence
// monotonicity, CRC): everything before it is recovered, everything
// from it on is dropped — with repair=true the file is physically
// truncated to the valid prefix so the next append continues cleanly.
// Later records supersede earlier ones for the same key, and tombstone
// records delete a key; when the superseded/tombstoned garbage exceeds
// a threshold, compaction rewrites the live set to a temp file and
// atomically renames it into place (original sequences and timestamps
// preserved).
//
// CacheStore itself is single-threaded by contract. The write-behind
// Persister below is the concurrency story: SimService::complete()
// enqueues into its bounded queue (drop-oldest backpressure — losing a
// cache entry costs one future re-simulation, blocking a worker costs
// latency now) and a dedicated thread drains it to the log, fsyncing at
// every drain and compacting when garbage accumulates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/result_codec.hpp"

namespace gpawfd::svc {

class Metrics;

inline constexpr std::uint32_t kStoreMagic = 0x53435047;  // "GPCS" on disk
inline constexpr std::uint8_t kStoreVersion = 1;
/// Header incl. the trailing CRC, excl. key/value bytes.
inline constexpr std::size_t kStoreHeaderBytes = 44;
/// Sanity bounds recovery enforces before trusting a length field; a
/// flipped bit in key_len must never make the scanner swallow the rest
/// of the log as one "record".
inline constexpr std::size_t kStoreMaxKeyBytes = 16 * 1024;

enum class RecordType : std::uint8_t {
  kPut = 1,        // value = encode_sim_result (kSimResultCodecBytes)
  kTombstone = 2,  // value empty; deletes the key
};

/// One recovered (or to-be-written) log record.
struct StoreRecord {
  std::string key;  // JobKey canonical string, opaque to the store
  core::SimResult result{};
  double cost_seconds = 0;  // measured cold cost (weights eviction)
  double write_time = 0;    // trace::unix_seconds() at production time
  std::uint64_t sequence = 0;
  RecordType type = RecordType::kPut;
};

/// A validated-but-undecoded record as recover_stream() emits it: the
/// value stays raw bytes so the consumer side of the startup double
/// buffer (decode + cache insert) overlaps the producer side (read +
/// CRC). Records arrive in log order, including superseded ones — the
/// consumer applies newest-wins (ResultCache::insert_warm/erase_warm).
struct RawStoreRecord {
  std::string key;
  std::vector<std::uint8_t> value;  // kSimResultCodecBytes for a put; empty
                                    // for a tombstone
  double cost_seconds = 0;
  double write_time = 0;
  std::uint64_t sequence = 0;
  RecordType type = RecordType::kPut;
};

struct RecoveryStats {
  std::int64_t records_scanned = 0;  // records that passed every check
  std::int64_t puts = 0;
  std::int64_t tombstones = 0;
  std::int64_t live = 0;             // puts surviving supersede/tombstone
  std::int64_t truncated_bytes = 0;  // torn/corrupt tail dropped
  bool truncated = false;
};

class CacheStore {
 public:
  /// The store file a directory-configured service uses, so two
  /// processes given the same --cache-dir agree on the path.
  static constexpr const char* kFileName = "results.gpcs";
  static std::string path_in(const std::string& dir);

  /// Opens (creating if absent) the log at `path`. recover() must run
  /// before the first append — it establishes the valid end of the log
  /// and the next sequence number.
  explicit CacheStore(std::string path);
  ~CacheStore();
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Scan the log from the start, stop at the first torn/corrupt
  /// record, and return the live set (sequence order). With repair=true
  /// (the writer's mode) the file is truncated to the valid prefix;
  /// repair=false is a read-only scan, safe on a file another process
  /// is appending to.
  std::vector<StoreRecord> recover(RecoveryStats* stats = nullptr,
                                   bool repair = true);

  /// Streaming flavour of recover(): reads the log in bounded chunks and
  /// invokes `emit` for every valid record *in log order* (no
  /// supersede/tombstone collapse — that is the consumer's job), with
  /// exactly the same validity checks and stop-at-first-bad-record
  /// contract. Establishes the writer state (live index, next sequence,
  /// end offset) and, with repair=true, truncates the torn tail — so
  /// appends may follow. Returns the offset just past the last valid
  /// record. recover() is implemented on top of this, so the recovery
  /// torture tests exercise this parser.
  std::uint64_t recover_stream(
      const std::function<void(RawStoreRecord&&)>& emit,
      RecoveryStats* stats = nullptr, bool repair = true);

  /// Append one record; returns the file offset just past it (a record
  /// boundary — the torture tests truncate at these and everywhere
  /// else). Durable only after sync().
  std::uint64_t append_put(const std::string& key,
                           const core::SimResult& result,
                           double cost_seconds, double write_time);
  std::uint64_t append_tombstone(const std::string& key, double write_time);

  /// One pre-encoded put for append_puts (value = encode_sim_result
  /// bytes).
  struct StorePut {
    std::string key;
    std::vector<std::uint8_t> value;
    double cost_seconds = 0;
    double write_time = 0;
  };
  /// Append every put as ONE contiguous write(2) — the write-behind
  /// drain's coalescing half (Persister::enqueue_batch's single notify
  /// is the other). Byte-identical on disk to calling append_put in a
  /// loop. Returns the offset just past the last record.
  std::uint64_t append_puts(const std::vector<StorePut>& puts);

  void sync();  // fsync the log

  // ---- compaction -----------------------------------------------------
  /// superseded + tombstoned records / total records (0 when empty).
  double garbage_ratio() const;
  /// Rewrite the live set when garbage_ratio() exceeds the threshold and
  /// the log holds at least `min_records`. Returns true if it compacted.
  bool maybe_compact(double garbage_threshold = 0.5,
                     std::int64_t min_records = 64);
  /// Unconditional rewrite: live records -> temp file -> fsync ->
  /// atomic rename over the log -> fsync the directory.
  bool compact();

  // ---- statistics -----------------------------------------------------
  const std::string& path() const { return path_; }
  /// True when `key` has a live (non-tombstoned, non-superseded) put.
  bool contains(const std::string& key) const { return live_.count(key) > 0; }
  std::int64_t total_records() const { return total_records_; }
  std::int64_t live_records() const {
    return static_cast<std::int64_t>(live_.size());
  }
  std::uint64_t next_sequence() const { return next_sequence_; }
  std::uint64_t size_bytes() const { return end_offset_; }
  std::int64_t compactions() const { return compactions_; }

 private:
  std::vector<std::uint8_t> encode_record(RecordType type,
                                          std::uint64_t sequence,
                                          double write_time,
                                          double cost_seconds,
                                          const std::string& key,
                                          const std::uint8_t* value,
                                          std::size_t value_len) const;
  std::uint64_t append_record(RecordType type, const std::string& key,
                              const std::uint8_t* value,
                              std::size_t value_len, double cost_seconds,
                              double write_time);
  void note_applied(RecordType type, const std::string& key,
                    std::uint64_t sequence);

  std::string path_;
  int fd_ = -1;
  bool recovered_ = false;
  std::uint64_t end_offset_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::int64_t total_records_ = 0;
  /// key -> sequence of its live put (absent = deleted/never written).
  std::unordered_map<std::string, std::uint64_t> live_;
  std::int64_t compactions_ = 0;
};

// ---- write-behind persister --------------------------------------------

struct PersisterConfig {
  /// Bounded queue between complete() and the log. When full the
  /// *oldest* pending entry is dropped (counted), never the newest —
  /// recency is what the next warm start wants — and never the caller's
  /// time: enqueue() does no I/O.
  std::size_t queue_capacity = 256;
  /// Compact after a flush when garbage exceeds this fraction (<= 0
  /// disables) and the log has at least compact_min_records records.
  double compact_garbage_threshold = 0.5;
  std::int64_t compact_min_records = 64;
  /// Test hook: runs on the persister thread just before each append
  /// (e.g. to gate writes and force the drop-oldest path determinately).
  std::function<void(const std::string& key)> on_write;
};

/// Owns a CacheStore plus the dedicated thread that drains completed
/// results into it, off the worker hot path. Counters are mirrored into
/// the service Metrics (when given) so they appear in counter_map() and
/// reconcile at quiescence: enqueued == written + dropped.
class Persister {
 public:
  /// One pending write-behind entry (the enqueue_batch unit).
  struct Write {
    std::string key;
    core::SimResult result;
    double cost_seconds = 0;
    double write_time = 0;
  };

  /// `store` must already be recovered — unless store_ready=false, in
  /// which case the owner recovers it concurrently (the overlapped warm
  /// load) and calls mark_ready(); until then the thread parks and
  /// enqueued entries wait in the bounded queue.
  Persister(std::unique_ptr<CacheStore> store, PersisterConfig config = {},
            Metrics* metrics = nullptr, bool store_ready = true);
  ~Persister();  // shutdown()
  Persister(const Persister&) = delete;
  Persister& operator=(const Persister&) = delete;

  /// Hand a completed result to the write-behind queue. Never blocks on
  /// I/O; drops the oldest pending entry when the queue is full. Safe
  /// from any thread; a no-op (counted as dropped) after shutdown().
  void enqueue(std::string key, const core::SimResult& result,
               double cost_seconds, double write_time);

  /// Batched enqueue: one lock acquisition and one thread wake for the
  /// whole vector (the service's per-batch amortization), with the same
  /// per-entry drop-oldest policy as enqueue().
  void enqueue_batch(std::vector<Write> writes);

  /// Store recovery (running on another thread) finished: start
  /// draining. No-op when constructed store_ready=true.
  void mark_ready();

  /// Block until everything enqueued so far is written and fsynced.
  void flush();
  /// Drain the queue, fsync, and stop the thread. Idempotent.
  void shutdown();

  const CacheStore& store() const { return *store_; }

  std::int64_t enqueued() const { return enqueued_.load(); }
  std::int64_t written() const { return written_.load(); }
  std::int64_t dropped() const { return dropped_.load(); }
  std::int64_t flushes() const { return flushes_.load(); }
  std::int64_t compactions() const { return compactions_.load(); }

 private:
  void loop();

  std::unique_ptr<CacheStore> store_;
  PersisterConfig config_;
  Metrics* metrics_;

  std::mutex mu_;
  std::condition_variable cv_;       // wakes the persister thread
  std::condition_variable idle_cv_;  // wakes flush() waiters
  std::deque<Write> queue_;
  bool ready_ = true;      // store recovered; appends are legal
  bool closed_ = false;
  bool draining_ = false;  // thread is between pop and post-drain sync

  std::atomic<std::int64_t> enqueued_{0};
  std::atomic<std::int64_t> written_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> flushes_{0};
  std::atomic<std::int64_t> compactions_{0};

  std::thread thread_;
};

}  // namespace gpawfd::svc
