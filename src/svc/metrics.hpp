// Service-level observability: monotonic counters, queue-depth
// high-water mark, and latency histograms (trace::LatencyHistogram) for
// every stage a request passes through. All recording paths are
// relaxed-atomic — cheap enough to leave on permanently, in the spirit
// of trace::CommStats. `snapshot()` renders a consistent-enough text
// block (counters are read once each; exactness across counters is not
// guaranteed while traffic is in flight, which is the standard contract
// for service metrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "trace/stats.hpp"

namespace gpawfd::svc {

class Metrics {
 public:
  // ---- request accounting (one increment per submit) ----------------
  std::atomic<std::int64_t> submitted{0};     // every submit() call
  std::atomic<std::int64_t> cache_hits{0};    // served from ResultCache
  std::atomic<std::int64_t> dedup_joined{0};  // attached to an in-flight run
  std::atomic<std::int64_t> accepted{0};      // enqueued as a new execution
  std::atomic<std::int64_t> rejected_queue_full{0};
  std::atomic<std::int64_t> rejected_shutdown{0};

  // ---- execution accounting ------------------------------------------
  // Job-level: every accepted job ends exactly one way, so
  //   accepted == executed + gave_up + cancelled
  // once the service is quiescent.
  std::atomic<std::int64_t> executed{0};   // jobs completed successfully
  std::atomic<std::int64_t> gave_up{0};    // attempt budget exhausted
  std::atomic<std::int64_t> cancelled{0};  // discarded by shutdown
  // Attempt-level: each executor call is classified exactly one way
  // (success / threw / exceeded its deadline), so
  //   exec_failures + timeouts == retries + gave_up + mid-retry cancels.
  std::atomic<std::int64_t> exec_failures{0};  // attempt threw in budget
  std::atomic<std::int64_t> timeouts{0};       // attempt exceeded deadline
  std::atomic<std::int64_t> retries{0};        // re-executions started
  // Dispatch-level: every job leaves the queue inside exactly one
  // dispatch unit — a pop_batch() batch, or a single pop()/lane pop
  // (counted as a batch of 1) — so
  //   batched_jobs == accepted
  // once a drained service is quiescent, and batched_jobs / batches is
  // the realized amortization factor (batch_size holds its histogram).
  std::atomic<std::int64_t> batches{0};       // dispatch units
  std::atomic<std::int64_t> batched_jobs{0};  // jobs across all units

  // ---- persistent cache store -----------------------------------------
  // Warm load (startup): every recovered live record is either loaded or
  // skipped (stale version / expired / already present), so
  //   store live records == warm_loaded + warm_skipped.
  // Write-behind (steady state): every completed result handed to the
  // persister is eventually written or dropped by backpressure, so
  //   persist_enqueued == persist_written + persist_dropped
  // once the service is quiescent (after shutdown or flush).
  std::atomic<std::int64_t> warm_loaded{0};
  std::atomic<std::int64_t> warm_skipped{0};
  // Peer cache-fill ingest (cluster replication): every received fill is
  // either accepted into the cache or rejected (stale version / expired /
  // in flight / equal-or-newer entry cached), so
  //   fills_received == fills_accepted + fills_rejected.
  std::atomic<std::int64_t> fills_received{0};
  std::atomic<std::int64_t> fills_accepted{0};
  std::atomic<std::int64_t> fills_rejected{0};
  std::atomic<std::int64_t> persist_enqueued{0};
  std::atomic<std::int64_t> persist_written{0};
  std::atomic<std::int64_t> persist_dropped{0};  // drop-oldest backpressure
  std::atomic<std::int64_t> persist_flushes{0};  // fsync barriers
  std::atomic<std::int64_t> persist_compactions{0};

  // ---- telemetry sink -------------------------------------------------
  // Periodic-flush accounting: every row the service hands to the
  // telemetry sink is eventually written or dropped by backpressure, so
  //   telemetry_rows == sink written + telemetry_dropped
  // once the sink is flushed and the service quiescent.
  std::atomic<std::int64_t> telemetry_rows{0};     // rows recorded
  std::atomic<std::int64_t> telemetry_dropped{0};  // drop-oldest backpressure
  std::atomic<std::int64_t> telemetry_flushes{0};  // periodic flush passes

  // ---- latency histograms --------------------------------------------
  trace::LatencyHistogram queue_wait;    // enqueue -> picked up by a worker
  trace::LatencyHistogram exec_time;     // successful executor run (cold)
  trace::LatencyHistogram attempt_time;  // every attempt, incl. failed ones
  trace::LatencyHistogram hit_time;      // submit() latency for cache hits
  trace::SizeHistogram batch_size;       // jobs per dispatch unit

  // ---- gauges ---------------------------------------------------------
  void note_queue_depth(std::int64_t depth) {
    std::int64_t seen = queue_depth_high_water_.load(std::memory_order_relaxed);
    while (depth > seen && !queue_depth_high_water_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
  std::int64_t queue_depth_high_water() const {
    return queue_depth_high_water_.load(std::memory_order_relaxed);
  }

  /// cache_hits / (cache_hits + misses); misses = joined + accepted.
  double hit_ratio() const;

  /// Multi-line human/machine-greppable text block (key: value lines),
  /// the exporter the examples and benches print.
  std::string snapshot(std::int64_t cache_size = -1,
                       std::int64_t cache_evictions = -1,
                       std::int64_t cache_expired = -1) const;

  /// Every monotonic counter by snapshot name — no histograms, no
  /// timings, so two runs of the same deterministic schedule compare
  /// equal (the fault tests' reproducibility check).
  std::map<std::string, std::int64_t> counter_map() const;

 private:
  std::atomic<std::int64_t> queue_depth_high_water_{0};
};

}  // namespace gpawfd::svc
