// Service-level observability: monotonic counters, queue-depth
// high-water mark, and latency histograms (trace::LatencyHistogram) for
// every stage a request passes through. All recording paths are
// relaxed-atomic — cheap enough to leave on permanently, in the spirit
// of trace::CommStats. `snapshot()` renders a consistent-enough text
// block (counters are read once each; exactness across counters is not
// guaranteed while traffic is in flight, which is the standard contract
// for service metrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "trace/stats.hpp"

namespace gpawfd::svc {

class Metrics {
 public:
  // ---- request accounting (one increment per submit) ----------------
  std::atomic<std::int64_t> submitted{0};     // every submit() call
  std::atomic<std::int64_t> cache_hits{0};    // served from ResultCache
  std::atomic<std::int64_t> dedup_joined{0};  // attached to an in-flight run
  std::atomic<std::int64_t> accepted{0};      // enqueued as a new execution
  std::atomic<std::int64_t> rejected_queue_full{0};
  std::atomic<std::int64_t> rejected_shutdown{0};

  // ---- execution accounting ------------------------------------------
  std::atomic<std::int64_t> executed{0};         // simulations actually run
  std::atomic<std::int64_t> exec_failures{0};    // executor threw
  std::atomic<std::int64_t> cancelled{0};        // queued but never run

  // ---- latency histograms --------------------------------------------
  trace::LatencyHistogram queue_wait;   // enqueue -> picked up by a worker
  trace::LatencyHistogram exec_time;    // executor run time (cold)
  trace::LatencyHistogram hit_time;     // submit() latency for cache hits

  // ---- gauges ---------------------------------------------------------
  void note_queue_depth(std::int64_t depth) {
    std::int64_t seen = queue_depth_high_water_.load(std::memory_order_relaxed);
    while (depth > seen && !queue_depth_high_water_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
  std::int64_t queue_depth_high_water() const {
    return queue_depth_high_water_.load(std::memory_order_relaxed);
  }

  /// cache_hits / (cache_hits + misses); misses = joined + accepted.
  double hit_ratio() const;

  /// Multi-line human/machine-greppable text block (key: value lines),
  /// the exporter the examples and benches print.
  std::string snapshot(std::int64_t cache_size = -1,
                       std::int64_t cache_evictions = -1) const;

 private:
  std::atomic<std::int64_t> queue_depth_high_water_{0};
};

}  // namespace gpawfd::svc
