#include "svc/result_cache.hpp"

#include <iterator>

#include "common/math.hpp"
#include "trace/stats.hpp"

namespace gpawfd::svc {

ResultCache::ResultCache(std::size_t capacity, int shards,
                         double ttl_seconds)
    : capacity_(capacity), ttl_seconds_(ttl_seconds) {
  GPAWFD_CHECK(capacity >= 1);
  GPAWFD_CHECK(shards >= 1);
  // More stripes than entries would leave stripes with capacity 0.
  if (static_cast<std::size_t>(shards) > capacity)
    shards = static_cast<int>(capacity);
  per_shard_capacity_ = static_cast<std::size_t>(
      ceil_div(static_cast<std::int64_t>(capacity), shards));
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

void ResultCache::expire_if_stale(Shard& sh, const JobKey& key) {
  if (ttl_seconds_ <= 0) return;
  auto it = sh.map.find(key);
  if (it == sh.map.end()) return;
  if (!is_expired(*it->second, trace::unix_seconds())) return;
  sh.lru.erase(it->second);
  sh.map.erase(it);
  expired_.fetch_add(1, std::memory_order_relaxed);
}

ResultCache::Lookup ResultCache::lookup_or_begin(const JobKey& key) {
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);
  expire_if_stale(sh, key);

  if (auto it = sh.map.find(key); it != sh.map.end()) {
    // Refresh LRU position, answer from cache.
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    std::promise<core::SimResult> ready;
    ready.set_value(it->second->result);
    return {Outcome::kHit, ready.get_future().share()};
  }

  if (auto it = sh.flights.find(key); it != sh.flights.end()) {
    joins_.fetch_add(1, std::memory_order_relaxed);
    return {Outcome::kJoined, it->second->future};
  }

  auto flight = std::make_shared<Flight>();
  flight->future = flight->promise.get_future().share();
  sh.flights.emplace(key, flight);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return {Outcome::kLeader, flight->future};
}

std::optional<core::SimResult> ResultCache::peek(const JobKey& key) {
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);
  expire_if_stale(sh, key);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) return std::nullopt;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ResultCache::insert_locked(Shard& sh, const JobKey& key,
                                const core::SimResult& result,
                                double cost_seconds, double write_time) {
  sh.lru.emplace_front(Entry{key, result, cost_seconds, write_time});
  sh.map.emplace(key, sh.lru.begin());
  while (sh.lru.size() > per_shard_capacity_) {
    // Cost-weighted eviction: among the kEvictionWindow entries at
    // the LRU end, evict the cheapest (ties resolved toward the
    // least recently used). Uniform costs therefore reduce to LRU.
    auto victim = std::prev(sh.lru.end());
    auto it = victim;
    for (std::size_t w = 1; w < kEvictionWindow && it != sh.lru.begin();
         ++w) {
      --it;
      if (it->cost_seconds < victim->cost_seconds) victim = it;
    }
    sh.map.erase(victim->key);
    sh.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::complete(const JobKey& key, const core::SimResult& result,
                           double cost_seconds) {
  Shard& sh = shard_of(key);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard lock(sh.mu);
    auto fit = sh.flights.find(key);
    GPAWFD_CHECK_MSG(fit != sh.flights.end(),
                     "complete() without a leader flight for " << key);
    flight = std::move(fit->second);
    sh.flights.erase(fit);

    if (sh.map.find(key) == sh.map.end())
      insert_locked(sh, key, result, cost_seconds, trace::unix_seconds());
  }
  // Wake waiters outside the stripe lock; continuations after the
  // promise so future-based observers never lag callback observers.
  flight->promise.set_value(result);
  for (Continuation& fn : flight->continuations) fn(&result, nullptr);
}

bool ResultCache::insert_warm(const JobKey& key,
                              const core::SimResult& result,
                              double cost_seconds, double write_time) {
  if (ttl_seconds_ > 0 &&
      trace::unix_seconds() - write_time >= ttl_seconds_)
    return false;  // expired on load
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);
  if (sh.flights.count(key)) return false;  // a live run will settle it
  if (auto it = sh.map.find(key); it != sh.map.end()) {
    if (it->second->write_time >= write_time) return false;
    // Newest wins: refresh the entry in place (and its LRU position).
    it->second->result = result;
    it->second->cost_seconds = cost_seconds;
    it->second->write_time = write_time;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return true;
  }
  insert_locked(sh, key, result, cost_seconds, write_time);
  return true;
}

bool ResultCache::erase_warm(const JobKey& key, double write_time) {
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  if (it->second->write_time > write_time) return false;  // entry is newer
  sh.lru.erase(it->second);
  sh.map.erase(it);
  return true;
}

void ResultCache::abort(const JobKey& key, std::exception_ptr error) {
  Shard& sh = shard_of(key);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard lock(sh.mu);
    auto fit = sh.flights.find(key);
    GPAWFD_CHECK_MSG(fit != sh.flights.end(),
                     "abort() without a leader flight for " << key);
    flight = std::move(fit->second);
    sh.flights.erase(fit);
  }
  flight->promise.set_exception(error);
  for (Continuation& fn : flight->continuations) fn(nullptr, error);
}

bool ResultCache::on_settled(const JobKey& key, Continuation fn) {
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);
  auto fit = sh.flights.find(key);
  if (fit == sh.flights.end()) return false;
  fit->second->continuations.push_back(std::move(fn));
  return true;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    n += sh->lru.size();
  }
  return n;
}

}  // namespace gpawfd::svc
