#include "svc/result_cache.hpp"

#include "common/math.hpp"

namespace gpawfd::svc {

ResultCache::ResultCache(std::size_t capacity, int shards)
    : capacity_(capacity) {
  GPAWFD_CHECK(capacity >= 1);
  GPAWFD_CHECK(shards >= 1);
  // More stripes than entries would leave stripes with capacity 0.
  if (static_cast<std::size_t>(shards) > capacity)
    shards = static_cast<int>(capacity);
  per_shard_capacity_ = static_cast<std::size_t>(
      ceil_div(static_cast<std::int64_t>(capacity), shards));
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Lookup ResultCache::lookup_or_begin(const JobKey& key) {
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);

  if (auto it = sh.map.find(key); it != sh.map.end()) {
    // Refresh LRU position, answer from cache.
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    std::promise<core::SimResult> ready;
    ready.set_value(it->second->second);
    return {Outcome::kHit, ready.get_future().share()};
  }

  if (auto it = sh.flights.find(key); it != sh.flights.end()) {
    joins_.fetch_add(1, std::memory_order_relaxed);
    return {Outcome::kJoined, it->second->future};
  }

  auto flight = std::make_shared<Flight>();
  flight->future = flight->promise.get_future().share();
  sh.flights.emplace(key, flight);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return {Outcome::kLeader, flight->future};
}

std::optional<core::SimResult> ResultCache::peek(const JobKey& key) {
  Shard& sh = shard_of(key);
  std::lock_guard lock(sh.mu);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) return std::nullopt;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::complete(const JobKey& key, const core::SimResult& result) {
  Shard& sh = shard_of(key);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard lock(sh.mu);
    auto fit = sh.flights.find(key);
    GPAWFD_CHECK_MSG(fit != sh.flights.end(),
                     "complete() without a leader flight for " << key);
    flight = std::move(fit->second);
    sh.flights.erase(fit);

    if (sh.map.find(key) == sh.map.end()) {
      sh.lru.emplace_front(key, result);
      sh.map.emplace(key, sh.lru.begin());
      while (sh.lru.size() > per_shard_capacity_) {
        sh.map.erase(sh.lru.back().first);
        sh.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Wake waiters outside the stripe lock.
  flight->promise.set_value(result);
}

void ResultCache::abort(const JobKey& key, std::exception_ptr error) {
  Shard& sh = shard_of(key);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard lock(sh.mu);
    auto fit = sh.flights.find(key);
    GPAWFD_CHECK_MSG(fit != sh.flights.end(),
                     "abort() without a leader flight for " << key);
    flight = std::move(fit->second);
    sh.flights.erase(fit);
  }
  flight->promise.set_exception(std::move(error));
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    n += sh->lru.size();
  }
  return n;
}

}  // namespace gpawfd::svc
