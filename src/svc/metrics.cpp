#include "svc/metrics.hpp"

#include <sstream>

#include "common/table.hpp"

namespace gpawfd::svc {

double Metrics::hit_ratio() const {
  const double hits =
      static_cast<double>(cache_hits.load(std::memory_order_relaxed));
  const double misses =
      static_cast<double>(dedup_joined.load(std::memory_order_relaxed) +
                          accepted.load(std::memory_order_relaxed));
  const double total = hits + misses;
  return total > 0 ? hits / total : 0.0;
}

std::string Metrics::snapshot(std::int64_t cache_size,
                              std::int64_t cache_evictions) const {
  std::ostringstream os;
  auto line = [&](const char* key, auto value) {
    os << key << ": " << value << "\n";
  };
  line("svc.submitted", submitted.load(std::memory_order_relaxed));
  line("svc.cache_hits", cache_hits.load(std::memory_order_relaxed));
  line("svc.dedup_joined", dedup_joined.load(std::memory_order_relaxed));
  line("svc.accepted", accepted.load(std::memory_order_relaxed));
  line("svc.rejected_queue_full",
       rejected_queue_full.load(std::memory_order_relaxed));
  line("svc.rejected_shutdown",
       rejected_shutdown.load(std::memory_order_relaxed));
  line("svc.executed", executed.load(std::memory_order_relaxed));
  line("svc.exec_failures", exec_failures.load(std::memory_order_relaxed));
  line("svc.cancelled", cancelled.load(std::memory_order_relaxed));
  line("svc.hit_ratio", fmt_fixed(hit_ratio(), 4));
  line("svc.queue_depth_high_water", queue_depth_high_water());
  if (cache_size >= 0) line("svc.cache_size", cache_size);
  if (cache_evictions >= 0) line("svc.cache_evictions", cache_evictions);
  auto hist = [&](const char* name, const trace::LatencyHistogram& h) {
    os << name << ": count=" << h.count() << " mean="
       << fmt_seconds(h.mean_seconds())
       << " p50=" << fmt_seconds(h.quantile(0.50))
       << " p99=" << fmt_seconds(h.quantile(0.99))
       << " max=" << fmt_seconds(h.max_seconds()) << "\n";
  };
  hist("svc.queue_wait", queue_wait);
  hist("svc.exec_time", exec_time);
  hist("svc.hit_time", hit_time);
  return os.str();
}

}  // namespace gpawfd::svc
