#include "svc/metrics.hpp"

#include <sstream>

#include "common/table.hpp"

namespace gpawfd::svc {

namespace {
/// One place enumerates the counters so snapshot() and counter_map()
/// can never drift apart.
template <typename Fn>
void for_each_counter(const Metrics& m, Fn&& fn) {
  auto get = [](const std::atomic<std::int64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  fn("svc.submitted", get(m.submitted));
  fn("svc.cache_hits", get(m.cache_hits));
  fn("svc.dedup_joined", get(m.dedup_joined));
  fn("svc.accepted", get(m.accepted));
  fn("svc.rejected_queue_full", get(m.rejected_queue_full));
  fn("svc.rejected_shutdown", get(m.rejected_shutdown));
  fn("svc.executed", get(m.executed));
  fn("svc.exec_failures", get(m.exec_failures));
  fn("svc.timeouts", get(m.timeouts));
  fn("svc.retries", get(m.retries));
  fn("svc.batches", get(m.batches));
  fn("svc.batched_jobs", get(m.batched_jobs));
  fn("svc.gave_up", get(m.gave_up));
  fn("svc.cancelled", get(m.cancelled));
  fn("svc.warm_loaded", get(m.warm_loaded));
  fn("svc.warm_skipped", get(m.warm_skipped));
  fn("svc.fills_received", get(m.fills_received));
  fn("svc.fills_accepted", get(m.fills_accepted));
  fn("svc.fills_rejected", get(m.fills_rejected));
  fn("svc.persist_enqueued", get(m.persist_enqueued));
  fn("svc.persist_written", get(m.persist_written));
  fn("svc.persist_dropped", get(m.persist_dropped));
  fn("svc.persist_flushes", get(m.persist_flushes));
  fn("svc.persist_compactions", get(m.persist_compactions));
  fn("svc.telemetry_rows", get(m.telemetry_rows));
  fn("svc.telemetry_dropped", get(m.telemetry_dropped));
  fn("svc.telemetry_flushes", get(m.telemetry_flushes));
}
}  // namespace

double Metrics::hit_ratio() const {
  const double hits =
      static_cast<double>(cache_hits.load(std::memory_order_relaxed));
  const double misses =
      static_cast<double>(dedup_joined.load(std::memory_order_relaxed) +
                          accepted.load(std::memory_order_relaxed));
  const double total = hits + misses;
  return total > 0 ? hits / total : 0.0;
}

std::map<std::string, std::int64_t> Metrics::counter_map() const {
  std::map<std::string, std::int64_t> out;
  for_each_counter(*this,
                   [&](const char* key, std::int64_t v) { out[key] = v; });
  return out;
}

std::string Metrics::snapshot(std::int64_t cache_size,
                              std::int64_t cache_evictions,
                              std::int64_t cache_expired) const {
  std::ostringstream os;
  auto line = [&](const char* key, auto value) {
    os << key << ": " << value << "\n";
  };
  for_each_counter(
      *this, [&](const char* key, std::int64_t v) { line(key, v); });
  line("svc.hit_ratio", fmt_fixed(hit_ratio(), 4));
  line("svc.queue_depth_high_water", queue_depth_high_water());
  if (cache_size >= 0) line("svc.cache_size", cache_size);
  if (cache_evictions >= 0) line("svc.cache_evictions", cache_evictions);
  if (cache_expired >= 0) line("svc.cache_expired", cache_expired);
  auto hist = [&](const char* name, const trace::LatencyHistogram& h) {
    os << name << ": count=" << h.count() << " mean="
       << fmt_seconds(h.mean_seconds())
       << " p50=" << fmt_seconds(h.quantile(0.50))
       << " p99=" << fmt_seconds(h.quantile(0.99))
       << " max=" << fmt_seconds(h.max_seconds()) << "\n";
  };
  hist("svc.queue_wait", queue_wait);
  hist("svc.exec_time", exec_time);
  hist("svc.attempt_time", attempt_time);
  hist("svc.hit_time", hit_time);
  os << "svc.batch_size: count=" << batch_size.count()
     << " mean=" << fmt_fixed(batch_size.mean(), 2)
     << " p50=" << batch_size.quantile(0.50)
     << " p99=" << batch_size.quantile(0.99)
     << " max=" << batch_size.max_value() << "\n";
  return os.str();
}

}  // namespace gpawfd::svc
