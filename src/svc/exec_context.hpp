// The per-attempt execution context a SimService worker publishes to the
// executor it is about to call. Executors run synchronously on a worker
// thread, so the service cannot preempt them; instead the worker exports
// its attempt number, per-attempt deadline, and a cancellation flag
// through a thread-local, and cooperative executors (the fault layer, a
// long-running simulation that wants to bail early) observe them. The
// default executor ignores the context entirely — publishing it costs
// two pointer-sized stores per attempt.
#pragma once

#include <atomic>

#include "trace/stats.hpp"

namespace gpawfd::svc {

struct ExecContext {
  /// 0-based attempt index of this execution within its job (0 = first
  /// try, 1 = first retry, ...).
  int attempt = 0;
  /// Per-attempt time budget. never() when the RetryPolicy has no
  /// timeout. An executor that outlives it is classified as timed out by
  /// the worker loop even if it eventually returns a result.
  trace::Deadline deadline;
  /// Set when the owning service is discarding work (shutdown with
  /// drain=false). Cooperative executors should unwind promptly.
  const std::atomic<bool>* cancel = nullptr;

  bool cancel_requested() const {
    return cancel != nullptr && cancel->load(std::memory_order_acquire);
  }
};

namespace detail {
inline thread_local ExecContext g_exec_context;
}  // namespace detail

/// The context of the innermost service attempt running on this thread.
/// Outside a worker it is the default (attempt 0, no deadline, no
/// cancel), so executors behave sanely when called directly.
inline const ExecContext& current_exec_context() {
  return detail::g_exec_context;
}

/// RAII publication: the worker loop installs the attempt's context for
/// exactly the duration of the executor call.
class ExecContextScope {
 public:
  explicit ExecContextScope(const ExecContext& ctx)
      : saved_(detail::g_exec_context) {
    detail::g_exec_context = ctx;
  }
  ~ExecContextScope() { detail::g_exec_context = saved_; }
  ExecContextScope(const ExecContextScope&) = delete;
  ExecContextScope& operator=(const ExecContextScope&) = delete;

 private:
  ExecContext saved_;
};

}  // namespace gpawfd::svc
