#include "svc/job_key.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/hash.hpp"
#include "sched/plan.hpp"

namespace gpawfd::svc {

namespace {

/// Doubles are encoded with 17 significant digits — enough to
/// round-trip an IEEE double exactly, so two machine configs that
/// differ in any bit of any constant get different keys.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Every MachineConfig field, in declaration order. A field added to
/// MachineConfig must be added here (and kVersion bumped) or two
/// different machines would share cache entries.
void append_machine(std::ostringstream& os, const bgsim::MachineConfig& m) {
  os << "cpn=" << m.cores_per_node << ";hz=" << fmt_double(m.cpu_hz)
     << ";peak=" << fmt_double(m.peak_flops_per_node)
     << ";membw=" << fmt_double(m.mem_bandwidth)
     << ";mem=" << m.main_memory_bytes
     << ";linkbw=" << fmt_double(m.link_bandwidth)
     << ";pkteff=" << fmt_double(m.packet_efficiency)
     << ";hop=" << m.hop_latency << ";inj=" << m.injection_latency
     << ";torusmin=" << m.torus_min_nodes
     << ";loopbw=" << fmt_double(m.loopback_bandwidth)
     << ";looplat=" << m.loopback_latency
     << ";mpicall=" << m.mpi_call_overhead
     << ";mpimult=" << m.mpi_multiple_overhead
     << ";mpiwait=" << m.mpi_wait_overhead << ";treelat=" << m.tree_latency
     << ";treebw=" << fmt_double(m.tree_bandwidth)
     << ";barlat=" << m.barrier_latency
     << ";coreflops=" << fmt_double(m.core_flops)
     << ";memcpybw=" << fmt_double(m.memcpy_bandwidth)
     << ";smp=" << fmt_double(m.smp_slowdown)
     << ";stencilbpp=" << fmt_double(m.stencil_bytes_per_point)
     << ";tbar=" << m.thread_barrier_cost
     << ";tspawn=" << m.thread_spawn_cost;
}

}  // namespace

JobKey JobKey::from_canonical(std::string canonical) {
  const std::uint64_t h = fnv1a(canonical);
  return JobKey(std::move(canonical), h);
}

std::string JobKey::version_prefix() {
  return "v" + std::to_string(kVersion) + "|";
}

bool JobKey::current_version(const std::string& canonical) {
  return canonical.rfind(version_prefix(), 0) == 0;
}

JobKey JobKey::of(const core::SimJobSpec& spec) {
  std::ostringstream os;
  os << "v" << kVersion << "|approach=" << static_cast<int>(spec.approach)
     << "|job{" << sched::canonical_string(spec.job) << "}|opt{"
     << sched::canonical_string(spec.opt) << "}|cores=" << spec.total_cores
     << "|cpn=" << spec.cores_per_node
     << "|cap=" << spec.scaled.grid_cap << "|machine{";
  append_machine(os, spec.machine);
  os << "}";
  std::string canonical = os.str();
  const std::uint64_t h = fnv1a(canonical);
  return JobKey(std::move(canonical), h);
}

}  // namespace gpawfd::svc
