// Bounded MPMC priority queue with explicit admission control. Producers
// either get the item in (kAccepted) or an immediate, reasoned refusal
// (kQueueFull / kClosed) — the queue never silently drops and, in the
// default reject policy, never blocks a producer: backpressure is a
// *signal* the caller can act on (shed load, retry with backoff), which
// is what a serving stack wants at saturation. A blocking push_wait() is
// provided for callers that prefer throttling to shedding.
//
// Three strict priority classes, FIFO within a class. Consumers block in
// pop() until an item arrives or the queue is closed *and* drained, so
// close() gives clean shutdown-with-drain semantics; drain_remaining()
// gives shutdown-with-discard.
//
// Batched consumption: pop_batch() drains up to max_n items of ONE
// priority class per wakeup, amortizing the lock/wake handshake the way
// the paper aggregates small messages above the bandwidth knee. The
// ramp variant grows the batch cap with observed class depth so a
// lightly loaded queue keeps single-item latency. An optional linger
// (interrupt-moderation style) lets a consumer that found a shallow
// queue wait a bounded time for a fuller batch — and pushes skip the
// wake entirely while a lingering consumer's target is unmet, so
// producers are not preempted once per item. pop_class() is the
// affinity lane: a consumer that only ever takes kInteractive items, so
// an interactive job never waits behind a forming batch.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace gpawfd::svc {

enum class Priority : int {
  kInteractive = 0,  // a user is waiting on this request
  kNormal = 1,       // default
  kBatch = 2,        // bulk/offline work, runs when nothing else is queued
};
inline constexpr int kPriorityClasses = 3;

enum class PushResult {
  kAccepted,
  kQueueFull,  // admission control: bounded and at capacity
  kClosed,     // shutdown in progress
};

inline const char* to_string(PushResult r) {
  switch (r) {
    case PushResult::kAccepted:
      return "accepted";
    case PushResult::kQueueFull:
      return "queue-full";
    case PushResult::kClosed:
      return "closed";
  }
  return "?";
}

template <typename T>
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {
    GPAWFD_CHECK(capacity >= 1);
  }

  /// Non-blocking admission: O(1) verdict under one lock.
  PushResult try_push(T item, Priority prio = Priority::kNormal) {
    Wake wake;
    {
      std::lock_guard lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (size_ >= capacity_) return PushResult::kQueueFull;
      classes_[static_cast<std::size_t>(prio)].push_back(std::move(item));
      ++size_;
      if (size_ > high_water_) high_water_ = size_;
      wake = wake_after_push();
    }
    notify_pop(wake);
    return PushResult::kAccepted;
  }

  /// Blocking admission: waits for space instead of rejecting (the
  /// throttling flavour of backpressure). Still refuses after close().
  PushResult push_wait(T item, Priority prio = Priority::kNormal) {
    Wake wake;
    {
      std::unique_lock lock(mu_);
      cv_push_.wait(lock, [&] { return closed_ || size_ < capacity_; });
      if (closed_) return PushResult::kClosed;
      classes_[static_cast<std::size_t>(prio)].push_back(std::move(item));
      ++size_;
      if (size_ > high_water_) high_water_ = size_;
      wake = wake_after_push();
    }
    notify_pop(wake);
    return PushResult::kAccepted;
  }

  /// Blocks until an item is available (highest priority class first,
  /// FIFO within a class) or the queue is closed and empty — the
  /// consumer's signal to exit its loop.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    ++plain_waiters_;
    cv_pop_.wait(lock, [&] { return closed_ || size_ > 0; });
    --plain_waiters_;
    if (size_ == 0) return std::nullopt;  // closed and drained
    for (auto& cls : classes_) {
      if (!cls.empty()) {
        T item = std::move(cls.front());
        cls.pop_front();
        --size_;
        lock.unlock();
        cv_push_.notify_one();
        return item;
      }
    }
    GPAWFD_CHECK_MSG(false, "size/classes bookkeeping out of sync");
    return std::nullopt;
  }

  /// Batched pop: blocks like pop(), then drains up to `max_n` items of
  /// the highest-priority non-empty class in ONE wakeup — one lock, one
  /// wake, one context switch amortized over the whole batch. Returns an
  /// empty vector only when the queue is closed and drained.
  ///
  /// Batches never mix priority classes, and kInteractive is never
  /// batched (cap 1): an interactive item's latency must not pay for its
  /// neighbours. With `ramp`, the effective cap follows observed class
  /// depth — ceil(depth/2), bounded by max_n — so at low load batches
  /// stay near 1 (no p50/p99 spike from waiting work piling onto one
  /// consumer) and only a genuinely deep backlog forms full batches.
  ///
  /// A non-zero `linger` is the NIC-interrupt-coalescing move: a
  /// consumer that woke to a queue shallower than max_n parks again for
  /// at most that long, waiting for a full batch to form. While it
  /// lingers, pushes below the target wake NOBODY — producers run
  /// uninterrupted (no per-item futex wake, no wakeup preemption) until
  /// the batch fills or the timer fires, which is where the amortization
  /// actually comes from on a busy box. Latency cost is bounded by
  /// `linger` and only paid when work is already queued behind more work.
  std::vector<T> pop_batch(
      std::size_t max_n, bool ramp = false,
      std::chrono::microseconds linger = std::chrono::microseconds(0)) {
    GPAWFD_CHECK(max_n >= 1);
    std::vector<T> out;
    std::size_t freed = 0;
    {
      std::unique_lock lock(mu_);
      ++plain_waiters_;
      cv_pop_.wait(lock, [&] { return closed_ || size_ > 0; });
      --plain_waiters_;
      if (size_ == 0) return out;  // closed and drained
      if (linger.count() > 0 && max_n > 1 && !closed_ && size_ < max_n &&
          classes_[static_cast<std::size_t>(Priority::kInteractive)]
              .empty()) {
        ++linger_waiters_;
        linger_target_ = max_n;
        // An interactive arrival aborts the linger: its latency must not
        // pay for a batch forming around it.
        cv_pop_.wait_for(lock, linger, [&] {
          return closed_ || size_ >= max_n ||
                 !classes_[static_cast<std::size_t>(Priority::kInteractive)]
                      .empty();
        });
        --linger_waiters_;
      }
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(kPriorityClasses); ++c) {
        auto& cls = classes_[c];
        if (cls.empty()) continue;
        std::size_t cap = max_n;
        if (c == static_cast<std::size_t>(Priority::kInteractive))
          cap = 1;
        else if (ramp)
          cap = std::min(max_n, (cls.size() + 1) / 2);
        const std::size_t n = std::min(cap, cls.size());
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          out.push_back(std::move(cls.front()));
          cls.pop_front();
        }
        size_ -= n;
        freed = n;
        break;
      }
    }
    if (freed > 1)
      cv_push_.notify_all();  // several slots opened for waiting producers
    else if (freed == 1)
      cv_push_.notify_one();
    return out;
  }

  /// Affinity-lane pop: blocks until an item of exactly `want` is
  /// available, ignoring other classes entirely. Returns nullopt once
  /// the queue is closed and *that class* is empty — remaining items of
  /// other classes are left for the general consumers to drain.
  std::optional<T> pop_class(Priority want) {
    auto& cls = classes_[static_cast<std::size_t>(want)];
    std::unique_lock lock(mu_);
    ++lane_waiters_;
    cv_pop_.wait(lock, [&] { return closed_ || !cls.empty(); });
    --lane_waiters_;
    if (cls.empty()) return std::nullopt;  // closed, lane drained
    T item = std::move(cls.front());
    cls.pop_front();
    --size_;
    lock.unlock();
    cv_push_.notify_one();
    return item;
  }

  /// Park the caller for up to `seconds` or until close(), whichever
  /// comes first; returns closed(). This is the deadline plumbing the
  /// service's retry backoff sits on: a worker sleeping out a backoff is
  /// woken the moment shutdown closes the queue, so no shutdown ever
  /// waits out a backoff schedule.
  bool wait_closed_for(double seconds) {
    std::unique_lock lock(mu_);
    // Dedicated cv: push's notify_one on cv_pop_ must never be stolen by
    // a backoff sleeper, or an item could sit unserved.
    cv_closed_.wait_for(
        lock, std::chrono::duration<double>(seconds > 0 ? seconds : 0),
        [&] { return closed_; });
    return closed_;
  }

  /// Stop admitting. Consumers keep draining; pop() returns nullopt once
  /// empty. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_pop_.notify_all();
    cv_push_.notify_all();
    cv_closed_.notify_all();
  }

  /// Remove and return everything still queued (for discard-style
  /// shutdown, so the owner can fail the associated requests).
  std::vector<T> drain_remaining() {
    std::vector<T> out;
    {
      std::lock_guard lock(mu_);
      out.reserve(size_);
      for (auto& cls : classes_) {
        for (auto& item : cls) out.push_back(std::move(item));
        cls.clear();
      }
      size_ = 0;
    }
    cv_push_.notify_all();
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return size_;
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t high_water() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }
  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  enum class Wake { kNone, kOne, kAll };

  /// Decide (under mu_) whom a push must wake. Three concerns meet here:
  /// (1) class-restricted waiters (pop_class) share cv_pop_, so a lone
  /// notify_one could land on a lane waiter whose predicate stays false —
  /// it re-sleeps and the item is stranded while a general consumer keeps
  /// waiting; broadcast whenever a lane waiter exists. (2) The same
  /// mis-delivery exists between plain and lingering waiters, so mixed
  /// waiter kinds also broadcast. (3) A lingering consumer alone is woken
  /// only when its batch target is met or an interactive item arrives —
  /// every other push is silent, which is the whole point of the linger.
  /// No waiters at all means no notify: waiters register under mu_ and
  /// re-check their predicate before sleeping, so nothing is lost.
  Wake wake_after_push() const {
    const bool interactive_pending =
        !classes_[static_cast<std::size_t>(Priority::kInteractive)].empty();
    if (lane_waiters_ > 0) return Wake::kAll;
    if (plain_waiters_ > 0)
      return linger_waiters_ > 0 ? Wake::kAll : Wake::kOne;
    if (linger_waiters_ > 0 &&
        (size_ >= linger_target_ || interactive_pending))
      return Wake::kOne;
    return Wake::kNone;
  }

  void notify_pop(Wake wake) {
    if (wake == Wake::kAll)
      cv_pop_.notify_all();
    else if (wake == Wake::kOne)
      cv_pop_.notify_one();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_pop_;     // consumers wait for items
  std::condition_variable cv_push_;    // push_wait producers wait for space
  std::condition_variable cv_closed_;  // backoff sleepers wait for close()
  std::deque<T> classes_[kPriorityClasses];
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  /// Consumers currently parked in pop_class(): pushes must broadcast
  /// while any exist (see wake_after_push) so no wake is wasted on the
  /// lane.
  std::size_t lane_waiters_ = 0;
  /// Consumers parked in pop()/pop_batch()'s arm wait.
  std::size_t plain_waiters_ = 0;
  /// Consumers parked in a pop_batch linger, and the batch size that
  /// releases them early (identical across workers of one service).
  std::size_t linger_waiters_ = 0;
  std::size_t linger_target_ = 0;
  bool closed_ = false;
};

}  // namespace gpawfd::svc
