// Bounded MPMC priority queue with explicit admission control. Producers
// either get the item in (kAccepted) or an immediate, reasoned refusal
// (kQueueFull / kClosed) — the queue never silently drops and, in the
// default reject policy, never blocks a producer: backpressure is a
// *signal* the caller can act on (shed load, retry with backoff), which
// is what a serving stack wants at saturation. A blocking push_wait() is
// provided for callers that prefer throttling to shedding.
//
// Three strict priority classes, FIFO within a class. Consumers block in
// pop() until an item arrives or the queue is closed *and* drained, so
// close() gives clean shutdown-with-drain semantics; drain_remaining()
// gives shutdown-with-discard.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace gpawfd::svc {

enum class Priority : int {
  kInteractive = 0,  // a user is waiting on this request
  kNormal = 1,       // default
  kBatch = 2,        // bulk/offline work, runs when nothing else is queued
};
inline constexpr int kPriorityClasses = 3;

enum class PushResult {
  kAccepted,
  kQueueFull,  // admission control: bounded and at capacity
  kClosed,     // shutdown in progress
};

inline const char* to_string(PushResult r) {
  switch (r) {
    case PushResult::kAccepted:
      return "accepted";
    case PushResult::kQueueFull:
      return "queue-full";
    case PushResult::kClosed:
      return "closed";
  }
  return "?";
}

template <typename T>
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {
    GPAWFD_CHECK(capacity >= 1);
  }

  /// Non-blocking admission: O(1) verdict under one lock.
  PushResult try_push(T item, Priority prio = Priority::kNormal) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (size_ >= capacity_) return PushResult::kQueueFull;
      classes_[static_cast<std::size_t>(prio)].push_back(std::move(item));
      ++size_;
      if (size_ > high_water_) high_water_ = size_;
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocking admission: waits for space instead of rejecting (the
  /// throttling flavour of backpressure). Still refuses after close().
  PushResult push_wait(T item, Priority prio = Priority::kNormal) {
    {
      std::unique_lock lock(mu_);
      cv_push_.wait(lock, [&] { return closed_ || size_ < capacity_; });
      if (closed_) return PushResult::kClosed;
      classes_[static_cast<std::size_t>(prio)].push_back(std::move(item));
      ++size_;
      if (size_ > high_water_) high_water_ = size_;
    }
    cv_pop_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks until an item is available (highest priority class first,
  /// FIFO within a class) or the queue is closed and empty — the
  /// consumer's signal to exit its loop.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_pop_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    for (auto& cls : classes_) {
      if (!cls.empty()) {
        T item = std::move(cls.front());
        cls.pop_front();
        --size_;
        lock.unlock();
        cv_push_.notify_one();
        return item;
      }
    }
    GPAWFD_CHECK_MSG(false, "size/classes bookkeeping out of sync");
    return std::nullopt;
  }

  /// Park the caller for up to `seconds` or until close(), whichever
  /// comes first; returns closed(). This is the deadline plumbing the
  /// service's retry backoff sits on: a worker sleeping out a backoff is
  /// woken the moment shutdown closes the queue, so no shutdown ever
  /// waits out a backoff schedule.
  bool wait_closed_for(double seconds) {
    std::unique_lock lock(mu_);
    // Dedicated cv: push's notify_one on cv_pop_ must never be stolen by
    // a backoff sleeper, or an item could sit unserved.
    cv_closed_.wait_for(
        lock, std::chrono::duration<double>(seconds > 0 ? seconds : 0),
        [&] { return closed_; });
    return closed_;
  }

  /// Stop admitting. Consumers keep draining; pop() returns nullopt once
  /// empty. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_pop_.notify_all();
    cv_push_.notify_all();
    cv_closed_.notify_all();
  }

  /// Remove and return everything still queued (for discard-style
  /// shutdown, so the owner can fail the associated requests).
  std::vector<T> drain_remaining() {
    std::vector<T> out;
    {
      std::lock_guard lock(mu_);
      out.reserve(size_);
      for (auto& cls : classes_) {
        for (auto& item : cls) out.push_back(std::move(item));
        cls.clear();
      }
      size_ = 0;
    }
    cv_push_.notify_all();
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return size_;
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t high_water() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }
  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_pop_;     // consumers wait for items
  std::condition_variable cv_push_;    // push_wait producers wait for space
  std::condition_variable cv_closed_;  // backoff sleepers wait for close()
  std::deque<T> classes_[kPriorityClasses];
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace gpawfd::svc
