#include "svc/fault.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/hash.hpp"

namespace gpawfd::svc {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kHang:
      return "hang";
  }
  return "?";
}

FaultyExecutor::FaultyExecutor(Executor inner, FaultConfig config)
    : inner_(std::move(inner)), config_(config) {
  GPAWFD_CHECK(inner_ != nullptr);
}

double FaultyExecutor::unit_hash(std::uint64_t key_hash,
                                 std::uint64_t stream) const {
  const std::uint64_t h =
      hash_combine(hash_combine(config_.seed, key_hash), stream);
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
}

FaultRule FaultyExecutor::rule_for(const JobKey& key) const {
  {
    std::lock_guard lock(mu_);
    auto it = overrides_.find(key);
    if (it != overrides_.end()) return it->second;
  }
  // Hash-partition the key space: one draw per key, walked through the
  // configured probability bands so a key lands in exactly one kind.
  const double u = unit_hash(key.hash(), /*stream=*/0);
  FaultRule rule;
  rule.fail_attempts = config_.fail_attempts;
  rule.delay_seconds = config_.delay_seconds;
  rule.jitter_seconds = config_.jitter_seconds;
  double band = config_.throw_probability;
  if (u < band) {
    rule.kind = FaultKind::kThrow;
    return rule;
  }
  band += config_.hang_probability;
  if (u < band) {
    rule.kind = FaultKind::kHang;
    return rule;
  }
  band += config_.delay_probability;
  if (u < band) {
    rule.kind = FaultKind::kDelay;
    return rule;
  }
  rule.kind = FaultKind::kNone;
  return rule;
}

void FaultyExecutor::set_rule(const JobKey& key, FaultRule rule) {
  std::lock_guard lock(mu_);
  overrides_[key] = rule;
}

void FaultyExecutor::cancel_all() {
  {
    std::lock_guard lock(mu_);
    cancelled_ = true;
  }
  cv_.notify_all();
}

void FaultyExecutor::delay(const FaultRule& rule, const JobKey& key,
                           const ExecContext& ctx) {
  injected_delays_.fetch_add(1, std::memory_order_relaxed);
  const double jitter =
      rule.jitter_seconds > 0
          ? rule.jitter_seconds *
                unit_hash(key.hash(),
                          /*stream=*/1 + static_cast<std::uint64_t>(
                                             ctx.attempt))
          : 0;
  double pause = rule.delay_seconds + jitter;
  // Never sleep much past the attempt deadline: the straggler has
  // already missed it, and the worker classifies on elapsed time.
  if (!ctx.deadline.is_never())
    pause = std::min(pause, ctx.deadline.remaining_seconds() + 1e-3);
  if (pause > 0)
    std::this_thread::sleep_for(std::chrono::duration<double>(pause));
}

void FaultyExecutor::hang(const ExecContext& ctx) {
  injected_hangs_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mu_);
  // Sliced waits: the context's cancel flag and the deadline have no cv
  // to notify this thread, so re-check a few hundred times a second.
  // Hangs model lost nodes — their release latency is not asserted on.
  while (!cancelled_ && !ctx.cancel_requested() && !ctx.deadline.expired())
    cv_.wait_for(lock, std::chrono::milliseconds(2));
  std::ostringstream what;
  what << "injected hang released ("
       << (cancelled_ ? "cancel_all"
                      : ctx.cancel_requested() ? "service discard"
                                               : "attempt deadline")
       << ")";
  // Deadline-released hangs must be *past* the deadline when the worker
  // measures elapsed time, so it classifies the attempt as timed out.
  lock.unlock();
  while (!ctx.deadline.is_never() && !ctx.deadline.expired())
    std::this_thread::yield();
  throw FaultInjected(what.str());
}

core::SimResult FaultyExecutor::operator()(const core::SimJobSpec& spec) {
  const JobKey key = JobKey::of(spec);
  const ExecContext& ctx = current_exec_context();
  const FaultRule rule = rule_for(key);
  const bool affected =
      rule.fail_attempts < 0 || ctx.attempt < rule.fail_attempts;
  if (affected) {
    switch (rule.kind) {
      case FaultKind::kNone:
        break;
      case FaultKind::kThrow: {
        injected_throws_.fetch_add(1, std::memory_order_relaxed);
        std::ostringstream what;
        what << "injected failure for " << key << " attempt " << ctx.attempt;
        throw FaultInjected(what.str());
      }
      case FaultKind::kDelay:
        delay(rule, key, ctx);
        break;
      case FaultKind::kHang:
        hang(ctx);  // never returns
    }
  }
  passed_through_.fetch_add(1, std::memory_order_relaxed);
  return inner_(spec);
}

}  // namespace gpawfd::svc
