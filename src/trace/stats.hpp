// Lightweight instrumentation: phase timers and communication counters.
// Used by the functional engine (host wall-clock) and mirrored by the
// simulator (virtual clock) so both report the same schema.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace gpawfd::trace {

/// Monotonic wall-clock seconds.
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Seconds since the Unix epoch — comparable *across processes and
/// restarts*, unlike now_seconds(). This is the clock persisted in cache
/// store records and checked by TTL expiry; never use it to measure
/// durations (it can jump on clock adjustment).
inline double unix_seconds() {
  using clock = std::chrono::system_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// An absolute instant on the now_seconds() clock, or never(). A small
/// value type threaded from owners (the service worker loop) into
/// cooperative code (executors, fault injection) so a time budget can be
/// observed without the owner being able to preempt the callee.
class Deadline {
 public:
  Deadline() = default;  // never expires
  static Deadline never() { return {}; }
  static Deadline at(double abs_seconds) {
    Deadline d;
    d.at_ = abs_seconds;
    return d;
  }
  static Deadline after(double seconds) { return at(now_seconds() + seconds); }

  bool is_never() const {
    return at_ == std::numeric_limits<double>::infinity();
  }
  bool expired() const { return !is_never() && now_seconds() >= at_; }
  /// Seconds until expiry (negative once expired, +inf when never).
  double remaining_seconds() const {
    return is_never() ? at_ : at_ - now_seconds();
  }
  double at_seconds() const { return at_; }

 private:
  double at_ = std::numeric_limits<double>::infinity();
};

/// Accumulates elapsed seconds per named phase. Thread-safe.
class PhaseTimers {
 public:
  class Scoped {
   public:
    Scoped(PhaseTimers& t, std::string phase)
        : timers_(t), phase_(std::move(phase)), start_(now_seconds()) {}
    ~Scoped() { timers_.add(phase_, now_seconds() - start_); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    PhaseTimers& timers_;
    std::string phase_;
    double start_;
  };

  void add(const std::string& phase, double seconds) {
    std::lock_guard lock(mu_);
    acc_[phase] += seconds;
  }
  double get(const std::string& phase) const {
    std::lock_guard lock(mu_);
    auto it = acc_.find(phase);
    return it == acc_.end() ? 0.0 : it->second;
  }
  std::map<std::string, double> snapshot() const {
    std::lock_guard lock(mu_);
    return acc_;
  }

  /// Work accounting alongside the time accounting: phases may record how
  /// many items (grid points, grids, bytes...) they processed so callers
  /// can report throughput, e.g. Mpts/s = count("compute") / get("compute")
  /// / 1e6.
  void add_count(const std::string& phase, std::int64_t items) {
    std::lock_guard lock(mu_);
    counts_[phase] += items;
  }
  std::int64_t get_count(const std::string& phase) const {
    std::lock_guard lock(mu_);
    auto it = counts_.find(phase);
    return it == counts_.end() ? 0 : it->second;
  }
  std::map<std::string, std::int64_t> count_snapshot() const {
    std::lock_guard lock(mu_);
    return counts_;
  }
  /// Items per second for a phase (0 when no time was recorded).
  double rate(const std::string& phase) const {
    std::lock_guard lock(mu_);
    auto ct = counts_.find(phase);
    auto tm = acc_.find(phase);
    if (ct == counts_.end() || tm == acc_.end() || tm->second <= 0.0)
      return 0.0;
    return static_cast<double>(ct->second) / tm->second;
  }

  void reset() {
    std::lock_guard lock(mu_);
    acc_.clear();
    counts_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> acc_;
  std::map<std::string, std::int64_t> counts_;
};

/// Fixed-bucket latency histogram: power-of-two buckets from 1 µs to
/// ~1 hour plus an underflow and an overflow bucket. Lock-free recording
/// (relaxed atomics — counts are statistics, not synchronization), so it
/// is safe on the hot path of a concurrent service. Quantiles are
/// bucket-upper-bound estimates, which is the usual contract for
/// fixed-bucket exporters.
class LatencyHistogram {
 public:
  /// 1 µs × 2^32 ≈ 71 min spans every latency a service op can see.
  static constexpr int kBuckets = 32;
  static constexpr double kFirstUpperSeconds = 1e-6;

  void record(double seconds) {
    buckets_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
    // Compare-and-swap max; contention is rare (only on new maxima).
    std::int64_t ns = to_ns(seconds);
    std::int64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::int64_t count() const {
    std::int64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  double total_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double max_seconds() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double mean_seconds() const {
    const std::int64_t n = count();
    return n > 0 ? total_seconds() / static_cast<double>(n) : 0.0;
  }

  /// Upper bound of the bucket holding the q-quantile observation
  /// (q in [0, 1]). Returns 0 when empty.
  double quantile(double q) const {
    const std::int64_t n = count();
    if (n == 0) return 0.0;
    std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets + 2; ++b) {
      seen += buckets_[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
      if (seen > rank) return upper_bound_seconds(b);
    }
    return upper_bound_seconds(kBuckets + 1);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

  /// Bucket index: 0 = underflow (< 1 µs), 1..kBuckets = power-of-two
  /// buckets, kBuckets+1 = overflow.
  static int bucket_of(double seconds) {
    if (!(seconds >= kFirstUpperSeconds)) return 0;  // also NaN/negative
    double upper = kFirstUpperSeconds;
    for (int b = 1; b <= kBuckets; ++b) {
      if (seconds <= upper) return b;
      upper *= 2;
    }
    return kBuckets + 1;
  }

  /// Inclusive upper edge of a bucket (infinity-ish for the overflow).
  static double upper_bound_seconds(int bucket) {
    if (bucket <= 0) return kFirstUpperSeconds;
    double upper = kFirstUpperSeconds;
    for (int b = 1; b < bucket; ++b) upper *= 2;
    return upper;
  }

 private:
  static std::int64_t to_ns(double seconds) {
    return seconds > 0 ? static_cast<std::int64_t>(seconds * 1e9) : 0;
  }

  std::array<std::atomic<std::int64_t>, kBuckets + 2> buckets_{};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Fixed-bucket histogram for small non-negative integer sizes (batch
/// sizes, fan-out counts): exact buckets for 0..kMaxExact plus one
/// overflow bucket. Lock-free recording like LatencyHistogram, and the
/// same quantile contract (bucket upper bound — exact for values within
/// the exact range, kMaxExact+1 for the overflow bucket).
class SizeHistogram {
 public:
  static constexpr std::int64_t kMaxExact = 64;

  void record(std::int64_t n) {
    if (n < 0) n = 0;
    const std::size_t idx =
        n <= kMaxExact ? static_cast<std::size_t>(n)
                       : static_cast<std::size_t>(kMaxExact) + 1;
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(n, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (n > seen &&
           !max_.compare_exchange_weak(seen, n, std::memory_order_relaxed)) {
    }
  }

  std::int64_t count() const {
    std::int64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  std::int64_t total() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const {
    const std::int64_t n = count();
    return n > 0 ? static_cast<double>(total()) / static_cast<double>(n)
                 : 0.0;
  }

  /// Size at the q-quantile (q in [0, 1]); kMaxExact + 1 stands in for
  /// anything in the overflow bucket. Returns 0 when empty.
  std::int64_t quantile(double q) const {
    const std::int64_t n = count();
    if (n == 0) return 0;
    std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    std::int64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > rank) return static_cast<std::int64_t>(b);
    }
    return kMaxExact + 1;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::int64_t>, kMaxExact + 2> buckets_{};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Communication accounting (per rank or per node, caller's choice).
struct CommStats {
  std::atomic<std::int64_t> bytes_sent{0};
  std::atomic<std::int64_t> bytes_received{0};
  std::atomic<std::int64_t> messages_sent{0};

  void count_send(std::int64_t bytes) {
    bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    messages_sent.fetch_add(1, std::memory_order_relaxed);
  }
  void count_recv(std::int64_t bytes) {
    bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  }
};

}  // namespace gpawfd::trace
