// Lightweight instrumentation: phase timers and communication counters.
// Used by the functional engine (host wall-clock) and mirrored by the
// simulator (virtual clock) so both report the same schema.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gpawfd::trace {

/// Monotonic wall-clock seconds.
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Accumulates elapsed seconds per named phase. Thread-safe.
class PhaseTimers {
 public:
  class Scoped {
   public:
    Scoped(PhaseTimers& t, std::string phase)
        : timers_(t), phase_(std::move(phase)), start_(now_seconds()) {}
    ~Scoped() { timers_.add(phase_, now_seconds() - start_); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    PhaseTimers& timers_;
    std::string phase_;
    double start_;
  };

  void add(const std::string& phase, double seconds) {
    std::lock_guard lock(mu_);
    acc_[phase] += seconds;
  }
  double get(const std::string& phase) const {
    std::lock_guard lock(mu_);
    auto it = acc_.find(phase);
    return it == acc_.end() ? 0.0 : it->second;
  }
  std::map<std::string, double> snapshot() const {
    std::lock_guard lock(mu_);
    return acc_;
  }
  void reset() {
    std::lock_guard lock(mu_);
    acc_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> acc_;
};

/// Communication accounting (per rank or per node, caller's choice).
struct CommStats {
  std::atomic<std::int64_t> bytes_sent{0};
  std::atomic<std::int64_t> bytes_received{0};
  std::atomic<std::int64_t> messages_sent{0};

  void count_send(std::int64_t bytes) {
    bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    messages_sent.fetch_add(1, std::memory_order_relaxed);
  }
  void count_recv(std::int64_t bytes) {
    bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  }
};

}  // namespace gpawfd::trace
