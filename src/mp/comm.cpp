#include "mp/comm.hpp"

#include <cstring>

namespace gpawfd::mp {

// Dissemination barrier: ceil(log2 p) rounds; rank r signals r+2^k and
// waits for r-2^k each round. No payload.
void Comm::barrier() {
  const int p = size();
  const int me = rank();
  std::byte token{0};
  for (int k = 1, round = 0; k < p; k <<= 1, ++round) {
    const int dst = (me + k) % p;
    const int src = (me - k + p) % p;
    const int tag = kCollectiveTagBase + round;
    Request s = isend({&token, 1}, dst, tag);
    Request r = irecv({&token, 1}, src, tag);
    wait(s);
    wait(r);
  }
}

// Binomial-tree broadcast rooted at `root` (canonical MPICH shape:
// receive from the parent across the lowest set bit of the virtual rank,
// then fan out over the remaining lower bits).
void Comm::bcast(std::span<std::byte> buf, int root) {
  const int p = size();
  GPAWFD_CHECK(root >= 0 && root < p);
  const int vrank = (rank() - root + p) % p;  // root maps to virtual 0
  const int tag = kCollectiveTagBase + 64;

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % p;
      recv(buf, parent, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int child_v = vrank + mask;
    if (child_v < p) send(buf, (child_v + root) % p, tag);
    mask >>= 1;
  }
}

// Binomial-tree reduction to `root` (sum of doubles).
void Comm::reduce_sum(std::span<const double> in, std::span<double> out,
                      int root) {
  const int p = size();
  GPAWFD_CHECK(root >= 0 && root < p);
  const int vrank = (rank() - root + p) % p;
  const int tag = kCollectiveTagBase + 128;

  std::vector<double> acc(in.begin(), in.end());
  std::vector<double> incoming(in.size());
  for (int mask = 1; mask < p; mask <<= 1) {
    if (vrank & mask) {
      const int parent = ((vrank & ~mask) + root) % p;
      send(std::as_bytes(std::span<const double>(acc)), parent, tag);
      break;
    }
    const int child_v = vrank | mask;
    if (child_v < p) {
      recv(std::as_writable_bytes(std::span<double>(incoming)),
           (child_v + root) % p, tag);
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += incoming[i];
    }
  }
  if (rank() == root) {
    GPAWFD_CHECK(out.size() == acc.size());
    std::memcpy(out.data(), acc.data(), acc.size() * sizeof(double));
  }
}

void Comm::allreduce_sum(std::span<const double> in, std::span<double> out) {
  GPAWFD_CHECK(in.size() == out.size());
  reduce_sum(in, out, 0);
  bcast(std::as_writable_bytes(out), 0);
}

// Ring allgather: p-1 steps, each rank forwards the block it received in
// the previous step.
void Comm::allgather(std::span<const std::byte> in, std::span<std::byte> out) {
  const int p = size();
  const int me = rank();
  const std::size_t blk = in.size();
  GPAWFD_CHECK(out.size() == blk * static_cast<std::size_t>(p));
  std::memcpy(out.data() + blk * static_cast<std::size_t>(me), in.data(), blk);
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  const int tag = kCollectiveTagBase + 192;
  for (int step = 0; step < p - 1; ++step) {
    // Block that originated at (me - step) moves to the right neighbour.
    const int send_owner = (me - step + p) % p;
    const int recv_owner = (me - step - 1 + 2 * p) % p;
    Request r = irecv(out.subspan(blk * static_cast<std::size_t>(recv_owner), blk),
                      left, tag + step);
    send(out.subspan(blk * static_cast<std::size_t>(send_owner), blk), right,
         tag + step);
    wait(r);
  }
}

}  // namespace gpawfd::mp
