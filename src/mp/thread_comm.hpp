// In-process message passing: every rank is a host thread, messages move
// through per-rank mailboxes with MPI-style (source, tag) FIFO matching.
// This is the functional transport — it moves real bytes, so the whole
// distributed engine can be validated numerically on one machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "mp/comm.hpp"
#include "trace/stats.hpp"

namespace gpawfd::mp {

namespace detail {

struct ReqState {
  std::mutex* mu = nullptr;              // owning mailbox mutex
  std::condition_variable* cv = nullptr; // owning mailbox cv
  std::atomic<bool> done{false};
  std::span<std::byte> recv_buf;  // valid for pending receives
};

struct Envelope {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

struct PendingRecv {
  int src;
  int tag;
  std::shared_ptr<ReqState> state;
};

/// One rank's incoming-message queue. Unexpected messages and pending
/// receives are matched in FIFO order, as MPI requires.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Envelope> unexpected;
  std::deque<PendingRecv> pending;
};

}  // namespace detail

class ThreadWorld;

/// Communicator endpoint for one rank of a ThreadWorld.
class ThreadComm final : public Comm {
 public:
  int rank() const override { return rank_; }
  int size() const override;

  Request isend(std::span<const std::byte> buf, int dst, int tag) override;
  Request irecv(std::span<std::byte> buf, int src, int tag) override;
  void wait(Request& req) override;

  ThreadMode thread_mode() const;
  /// Bytes/messages this rank has sent (for the Fig. 6 right axis).
  const trace::CommStats& stats() const { return stats_; }

 private:
  friend class ThreadWorld;
  ThreadComm(ThreadWorld& world, int rank) : world_(&world), rank_(rank) {}

  void check_thread_mode() const;

  ThreadWorld* world_;
  int rank_;
  trace::CommStats stats_;
  mutable std::thread::id bound_thread_{};  // SINGLE-mode enforcement
};

/// A fixed-size set of ranks living in one process. Construct, then call
/// run() with the per-rank main function; run() joins all rank threads.
class ThreadWorld {
 public:
  explicit ThreadWorld(int nranks, ThreadMode mode = ThreadMode::kMultiple);

  int size() const { return static_cast<int>(comms_.size()); }
  ThreadMode thread_mode() const { return mode_; }

  /// Access a rank's communicator (valid for the lifetime of the world).
  ThreadComm& comm(int rank);

  /// Spawn one thread per rank running fn(comm) and join them all.
  /// Exceptions thrown by rank functions are rethrown (first one wins).
  void run(const std::function<void(ThreadComm&)>& fn);

 private:
  friend class ThreadComm;
  detail::Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  ThreadMode mode_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<ThreadComm>> comms_;
};

}  // namespace gpawfd::mp
