#include "mp/cart.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpawfd::mp {

CartTopology CartTopology::identity(Vec3 dims, std::array<bool, 3> periodic) {
  std::vector<int> map(static_cast<std::size_t>(dims.product()));
  for (std::size_t i = 0; i < map.size(); ++i) map[i] = static_cast<int>(i);
  return with_mapping(dims, periodic, std::move(map));
}

CartTopology CartTopology::with_mapping(Vec3 dims,
                                        std::array<bool, 3> periodic,
                                        std::vector<int> cart_to_rank) {
  GPAWFD_CHECK(dims.min() >= 1);
  GPAWFD_CHECK(std::ssize(cart_to_rank) == dims.product());
  CartTopology t;
  t.dims_ = dims;
  t.periodic_ = periodic;
  t.rank_to_cart_.assign(cart_to_rank.size(), -1);
  for (std::size_t i = 0; i < cart_to_rank.size(); ++i) {
    const int r = cart_to_rank[i];
    GPAWFD_CHECK_MSG(r >= 0 && r < std::ssize(cart_to_rank),
                     "mapping entry out of range: " << r);
    GPAWFD_CHECK_MSG(t.rank_to_cart_[static_cast<std::size_t>(r)] == -1,
                     "mapping is not a permutation (rank " << r
                                                           << " repeated)");
    t.rank_to_cart_[static_cast<std::size_t>(r)] = static_cast<int>(i);
  }
  t.cart_to_rank_ = std::move(cart_to_rank);
  return t;
}

int CartTopology::rank_at(Vec3 coords) const {
  GPAWFD_CHECK(in_bounds(coords, dims_));
  return cart_to_rank_[static_cast<std::size_t>(linear_index(coords, dims_))];
}

Vec3 CartTopology::coords_of_rank(int rank) const {
  GPAWFD_CHECK(rank >= 0 && rank < size());
  return delinearize(rank_to_cart_[static_cast<std::size_t>(rank)], dims_);
}

int CartTopology::shifted_rank(int rank, int dim, int disp) const {
  Vec3 c = coords_of_rank(rank);
  const std::int64_t extent = dims_[dim];
  std::int64_t v = c[dim] + disp;
  if (periodic_[static_cast<std::size_t>(dim)]) {
    v = ((v % extent) + extent) % extent;
  } else if (v < 0 || v >= extent) {
    return -1;  // MPI_PROC_NULL
  }
  c[dim] = v;
  return rank_at(c);
}

}  // namespace gpawfd::mp
