// Cartesian process topology — the library's MPI_Cart_create.
//
// BGP's MPI reorders ranks so that neighbouring processes of a 3-D
// cartesian communicator land on neighbouring torus nodes; the paper uses
// this in every experiment. The topology here is a pure mapping object:
// a (px, py, pz) grid of processes, periodicity flags, and a permutation
// cart-index -> communicator rank. The identity permutation models an
// unmapped (naive) layout; the simulator installs a torus-matched
// permutation (and the ablation benchmark compares the two).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/vec3.hpp"

namespace gpawfd::mp {

class CartTopology {
 public:
  /// Identity placement: cart index == rank (the order processes happen
  /// to be started in, i.e. no topology knowledge).
  static CartTopology identity(Vec3 dims,
                               std::array<bool, 3> periodic = {true, true,
                                                               true});

  /// Custom placement: `cart_to_rank[linear cart index] = rank`.
  /// Must be a permutation of 0..dims.product()-1.
  static CartTopology with_mapping(Vec3 dims, std::array<bool, 3> periodic,
                                   std::vector<int> cart_to_rank);

  Vec3 dims() const { return dims_; }
  bool periodic(int dim) const { return periodic_[static_cast<std::size_t>(dim)]; }
  int size() const { return static_cast<int>(cart_to_rank_.size()); }

  int rank_at(Vec3 coords) const;
  Vec3 coords_of_rank(int rank) const;

  /// Rank displaced by `disp` along `dim` from `rank`'s position, with
  /// periodic wrap; returns -1 when the displacement leaves a
  /// non-periodic boundary (MPI_PROC_NULL).
  int shifted_rank(int rank, int dim, int disp) const;

 private:
  CartTopology() = default;
  Vec3 dims_;
  std::array<bool, 3> periodic_{};
  std::vector<int> cart_to_rank_;
  std::vector<int> rank_to_cart_;  // inverse permutation
};

}  // namespace gpawfd::mp
