#include "mp/thread_comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>

namespace gpawfd::mp {

using detail::Envelope;
using detail::Mailbox;
using detail::PendingRecv;
using detail::ReqState;

ThreadWorld::ThreadWorld(int nranks, ThreadMode mode) : mode_(mode) {
  GPAWFD_CHECK(nranks >= 1);
  mailboxes_.reserve(nranks);
  comms_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::unique_ptr<ThreadComm>(new ThreadComm(*this, r)));
  }
}

ThreadComm& ThreadWorld::comm(int rank) {
  GPAWFD_CHECK(rank >= 0 && rank < size());
  return *comms_[rank];
}

void ThreadWorld::run(const std::function<void(ThreadComm&)>& fn) {
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;
  threads.reserve(comms_.size());
  for (auto& c : comms_) {
    threads.emplace_back([&, comm_ptr = c.get()] {
      try {
        fn(*comm_ptr);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

int ThreadComm::size() const { return world_->size(); }

ThreadMode ThreadComm::thread_mode() const { return world_->thread_mode(); }

void ThreadComm::check_thread_mode() const {
  if (world_->thread_mode() == ThreadMode::kMultiple) return;
  // SINGLE: every call on this rank must come from one thread.
  const auto self = std::this_thread::get_id();
  if (bound_thread_ == std::thread::id{}) {
    bound_thread_ = self;
  } else {
    GPAWFD_CHECK_MSG(bound_thread_ == self,
                     "rank " << rank_
                             << ": concurrent communication in SINGLE "
                                "thread mode");
  }
}

Request ThreadComm::isend(std::span<const std::byte> buf, int dst, int tag) {
  check_thread_mode();
  GPAWFD_CHECK(dst >= 0 && dst < size());
  stats_.count_send(std::ssize(buf));

  Mailbox& box = world_->mailbox(dst);
  Envelope env{rank_, tag, std::vector<std::byte>(buf.begin(), buf.end())};

  std::unique_lock lock(box.mu);
  // Match a pending receive first (FIFO), otherwise park as unexpected.
  auto it = std::find_if(box.pending.begin(), box.pending.end(),
                         [&](const PendingRecv& p) {
                           return p.src == rank_ && p.tag == tag;
                         });
  if (it != box.pending.end()) {
    GPAWFD_CHECK_MSG(it->state->recv_buf.size() >= env.payload.size(),
                     "receive buffer too small: " << it->state->recv_buf.size()
                                                  << " < "
                                                  << env.payload.size());
    std::memcpy(it->state->recv_buf.data(), env.payload.data(),
                env.payload.size());
    it->state->done.store(true, std::memory_order_release);
    box.pending.erase(it);
    lock.unlock();
    box.cv.notify_all();
  } else {
    box.unexpected.push_back(std::move(env));
  }

  // Buffered (eager) send: complete immediately.
  auto state = std::make_shared<ReqState>();
  state->done.store(true, std::memory_order_relaxed);
  return Request(std::move(state));
}

Request ThreadComm::irecv(std::span<std::byte> buf, int src, int tag) {
  check_thread_mode();
  GPAWFD_CHECK(src >= 0 && src < size());

  Mailbox& box = world_->mailbox(rank_);
  auto state = std::make_shared<ReqState>();
  state->mu = &box.mu;
  state->cv = &box.cv;

  std::lock_guard lock(box.mu);
  auto it = std::find_if(
      box.unexpected.begin(), box.unexpected.end(),
      [&](const Envelope& e) { return e.src == src && e.tag == tag; });
  if (it != box.unexpected.end()) {
    GPAWFD_CHECK_MSG(buf.size() >= it->payload.size(),
                     "receive buffer too small: " << buf.size() << " < "
                                                  << it->payload.size());
    std::memcpy(buf.data(), it->payload.data(), it->payload.size());
    stats_.count_recv(std::ssize(it->payload));
    box.unexpected.erase(it);
    state->done.store(true, std::memory_order_release);
  } else {
    state->recv_buf = buf;
    stats_.count_recv(std::ssize(buf));
    box.pending.push_back(PendingRecv{src, tag, state});
  }
  return Request(std::move(state));
}

void ThreadComm::wait(Request& req) {
  if (!req.valid()) return;
  ReqState* s = req.state();
  if (s->done.load(std::memory_order_acquire)) return;
  GPAWFD_CHECK(s->mu != nullptr);
  std::unique_lock lock(*s->mu);
  s->cv->wait(lock, [&] { return s->done.load(std::memory_order_acquire); });
}

}  // namespace gpawfd::mp
