// Message-passing interface of the library — the MPI-shaped API the
// distributed finite-difference engine is written against.
//
// Two implementations exist:
//   * mp::ThreadComm — ranks are host threads exchanging real bytes
//     through in-process mailboxes (functional / correctness mode).
//   * bgsim::SimComm — the same operations on the Blue Gene/P simulator
//     advancing virtual time (performance mode; coroutine-based, so it
//     exposes awaitable variants rather than this blocking interface).
//
// Thread modes mirror MPI-2: SINGLE promises only one thread of a rank
// calls into the library (BGP's cheap mode), MULTIPLE allows any thread
// at any time at the price of internal locking (what Hybrid multiple
// needs, and what Hybrid master-only avoids).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace gpawfd::mp {

enum class ThreadMode { kSingle, kMultiple };

namespace detail {
struct ReqState;
}

/// Handle to a pending non-blocking operation. Cheap to copy; completed
/// requests are inert.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::ReqState> s) : state_(std::move(s)) {}
  bool valid() const { return state_ != nullptr; }
  detail::ReqState* state() const { return state_.get(); }

 private:
  std::shared_ptr<detail::ReqState> state_;
};

/// Abstract communicator over a fixed set of ranks.
class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Non-blocking buffered send: the payload is copied out before return,
  /// so `buf` may be reused immediately (matches how the engine packs a
  /// fresh face buffer per batch; BGP's DMA engine likewise progresses
  /// the transfer without CPU involvement).
  virtual Request isend(std::span<const std::byte> buf, int dst, int tag) = 0;

  /// Non-blocking receive into `buf`, matched on (src, tag) in FIFO order.
  virtual Request irecv(std::span<std::byte> buf, int src, int tag) = 0;

  virtual void wait(Request& req) = 0;

  void wait_all(std::span<Request> reqs) {
    for (auto& r : reqs) wait(r);
  }

  void send(std::span<const std::byte> buf, int dst, int tag) {
    Request r = isend(buf, dst, tag);
    wait(r);
  }
  void recv(std::span<std::byte> buf, int src, int tag) {
    Request r = irecv(buf, src, tag);
    wait(r);
  }

  // ---- Collectives (generic tree/dissemination algorithms built on the
  // point-to-point layer; the simulator overrides these with its model of
  // BGP's dedicated collective and barrier networks). Collective calls
  // must be made by every rank, with matching arguments, and use the
  // reserved tag space below.

  virtual void barrier();
  virtual void bcast(std::span<std::byte> buf, int root);
  virtual void reduce_sum(std::span<const double> in, std::span<double> out,
                          int root);
  virtual void allreduce_sum(std::span<const double> in,
                             std::span<double> out);
  double allreduce_sum(double v) {
    double out = 0;
    allreduce_sum({&v, 1}, {&out, 1});
    return out;
  }
  /// Gathers `in` (same size on every rank) into `out` ordered by rank.
  virtual void allgather(std::span<const std::byte> in,
                         std::span<std::byte> out);

 protected:
  /// Tags >= kCollectiveTagBase are reserved for collectives.
  static constexpr int kCollectiveTagBase = 1 << 28;
};

/// Typed convenience wrappers.
template <typename T>
std::span<const std::byte> as_bytes_of(std::span<const T> s) {
  return std::as_bytes(s);
}
template <typename T>
std::span<std::byte> as_writable_bytes_of(std::span<T> s) {
  return std::as_writable_bytes(s);
}

}  // namespace gpawfd::mp
