// Stencil kernels: a reference implementation (used as ground truth in
// tests), the original scalar pointer kernel (kept selectable for
// benchmarking), and the vectorized, cache-blocked fast path that every
// caller gets by default. All kernels operate on ghost-extended arrays
// whose ghosts have already been filled by the halo exchange (or by
// local_periodic_fill / fill_ghosts).
//
// Fast-path structure:
//   - One row primitive sweeps the contiguous z-direction with the
//     portable SIMD pack (common/simd.hpp), radius-1/2 term counts baked
//     in at compile time, any radius via a runtime term loop.
//   - An epilogue functor decides what happens to the stencil value per
//     point: plain store (apply), rhs - value (fused residual), or the
//     full weighted-Jacobi update (fused jacobi_step — apply + update in
//     ONE sweep, halving the memory traffic of the old two-pass form).
//   - Rows are visited in y/z tiles sized so the (2r+1) planes a sweep
//     touches stay cache-resident while x streams (see Tiling).
//   - std::complex<double> grids reuse the double kernels unchanged:
//     every coefficient is real, so a complex array is just interleaved
//     double lanes with doubled strides.
//
// The input and output grids are always two separate arrays — GPAW
// guarantees this, which is what makes the computation order irrelevant
// and the operation embarrassingly parallel within a sub-grid.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <utility>

#include "common/simd.hpp"
#include "grid/array3d.hpp"
#include "stencil/coeffs.hpp"

// The scalar baseline kernels are compiled with the compiler's
// auto-vectorizer off (GCC) so the measured scalar-vs-SIMD speedup
// isolates explicit vectorization — the baseline models GPAW's plain C
// kernel, which the PPC450 compilers did not auto-vectorize.
#if defined(__GNUC__) && !defined(__clang__)
#define GPAWFD_NO_AUTOVEC \
  __attribute__((optimize("no-tree-loop-vectorize,no-tree-slp-vectorize")))
#else
#define GPAWFD_NO_AUTOVEC
#endif

namespace gpawfd::stencil {

/// Ground-truth kernel: direct transcription of the paper's formula.
template <typename T>
void apply_reference(const grid::Array3D<T>& in, grid::Array3D<T>& out,
                     const Coeffs& c) {
  GPAWFD_CHECK(in.shape() == out.shape());
  GPAWFD_CHECK(in.ghost() >= c.radius);
  const Vec3 n = in.shape();
  for (std::int64_t x = 0; x < n.x; ++x)
    for (std::int64_t y = 0; y < n.y; ++y)
      for (std::int64_t z = 0; z < n.z; ++z) {
        T acc = static_cast<T>(c.center) * in.at(x, y, z);
        for (int k = 1; k <= c.radius; ++k) {
          acc += static_cast<T>(c.axis[0][k - 1]) *
                 (in.at(x - k, y, z) + in.at(x + k, y, z));
          acc += static_cast<T>(c.axis[1][k - 1]) *
                 (in.at(x, y - k, z) + in.at(x, y + k, z));
          acc += static_cast<T>(c.axis[2][k - 1]) *
                 (in.at(x, y, z - k) + in.at(x, y, z + k));
        }
        out.at(x, y, z) = acc;
      }
}

/// y/z tile extents of the blocked fast path. A sweep at x touches the
/// (2r+1) x-planes [x-r, x+r]; tiling y and (for very long rows) z keeps
/// that working set — (2r+1) * ty * tz * 8 bytes — inside L2 while x
/// streams, so each plane loaded from memory is reused 2r+1 times.
/// `tz` is counted in doubles and must stay a multiple of 2 so a
/// complex<double> element is never split across chunks.
struct Tiling {
  std::int64_t ty = 32;    // rows per y-tile
  std::int64_t tz = 2048;  // doubles per z-chunk (16 KiB rows cap)
};

inline constexpr Tiling kDefaultTiling{};

/// Instruction set the kernels were compiled for ("avx2", "sse2",
/// "neon", "scalar").
inline const char* kernel_isa() { return simd::isa_name(); }

namespace detail {

template <typename T>
inline constexpr std::int64_t kDoublesPer = sizeof(T) / sizeof(double);

inline const double* as_doubles(const double* p) { return p; }
inline double* as_doubles(double* p) { return p; }
inline const double* as_doubles(const std::complex<double>* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* as_doubles(std::complex<double>* p) {
  return reinterpret_cast<double*>(p);
}

/// Stencil flattened to double-lane terms: value(z) = center*p[z] +
/// sum_k coef[k] * (p[z - off[k]] + p[z + off[k]]), offsets in doubles.
struct RowTerms {
  double center = 0;
  std::array<double, 3 * kMaxRadius> coef{};
  std::array<std::int64_t, 3 * kMaxRadius> off{};
  int nterms = 0;
};

inline RowTerms make_row_terms(const Coeffs& c, std::int64_t stride_x,
                               std::int64_t stride_y, std::int64_t scale) {
  RowTerms t;
  t.center = c.center;
  for (int k = 1; k <= c.radius; ++k) {
    t.coef[static_cast<std::size_t>(t.nterms)] = c.axis[0][k - 1];
    t.off[static_cast<std::size_t>(t.nterms++)] = k * stride_x * scale;
    t.coef[static_cast<std::size_t>(t.nterms)] = c.axis[1][k - 1];
    t.off[static_cast<std::size_t>(t.nterms++)] = k * stride_y * scale;
    t.coef[static_cast<std::size_t>(t.nterms)] = c.axis[2][k - 1];
    t.off[static_cast<std::size_t>(t.nterms++)] = k * scale;
  }
  return t;
}

// Epilogues: what to do with the stencil value of each point. `q`, `b`,
// `u` are row base pointers (same row offset as the stencil input).

// Epilogues receive the stencil value `a` and the already-loaded centre
// input value `u` of the point, so no epilogue reloads the input row.

/// out = A u  (plain apply).
struct StoreEpi {
  double* __restrict q;
  void vec(std::int64_t z, simd::VecD a, simd::VecD) const { a.store(q + z); }
  void scalar(std::int64_t z, double a, double) const { q[z] = a; }
};

/// out = b - A u  (fused residual).
struct ResidualEpi {
  const double* __restrict b;
  double* __restrict q;
  void vec(std::int64_t z, simd::VecD a, simd::VecD) const {
    (simd::VecD::load(b + z) - a).store(q + z);
  }
  void scalar(std::int64_t z, double a, double) const { q[z] = b[z] - a; }
};

/// out = u + w * (b - A u - shift*u)  with  w = omega / (center + shift):
/// one damped Jacobi step of (A + shift I) u = b, fused into the sweep.
struct JacobiEpi {
  const double* __restrict b;
  double* __restrict q;
  double w;
  double shift;
  void vec(std::int64_t z, simd::VecD a, simd::VecD vu) const {
    const simd::VecD resid = simd::VecD::load(b + z) - a -
                             simd::VecD::broadcast(shift) * vu;
    simd::fmadd(simd::VecD::broadcast(w), resid, vu).store(q + z);
  }
  void scalar(std::int64_t z, double a, double u) const {
    q[z] = u + w * (b[z] - a - shift * u);
  }
};

#if defined(__GNUC__) || defined(__clang__)
#define GPAWFD_FORCEINLINE [[gnu::always_inline]] inline
#else
#define GPAWFD_FORCEINLINE inline
#endif

/// One vector of output: stencil value of lanes [z, z+kW) with the term
/// count unrolled by fold expression. Forced inline — if this lands
/// out of line the per-iteration state round-trips through memory and
/// the kernel loses ~2x.
template <class Epi, std::size_t... K>
GPAWFD_FORCEINLINE void row_body(const double* __restrict p, std::int64_t z,
                                 simd::VecD vc, const std::int64_t* off,
                                 const simd::VecD* vco, const Epi& epi,
                                 std::index_sequence<K...>) {
  using simd::VecD;
  const VecD vp = VecD::load(p + z);
  // Two accumulators (even/odd terms) so the multiply-add chain is not
  // one serial latency chain of sizeof...(K) additions.
  VecD acc0 = vc * vp;
  VecD acc1 = VecD::zero();
  (((K % 2 == 0 ? acc0 : acc1) = simd::fmadd(
        vco[K], VecD::load(p + z - off[K]) + VecD::load(p + z + off[K]),
        K % 2 == 0 ? acc0 : acc1)),
   ...);
  epi.vec(z, acc0 + acc1, vp);
}

/// Core row sweep over `nd` double lanes, vectorized along z. NT > 0
/// bakes the term count in at compile time (radius-1/2 specializations:
/// the term loop fully unrolls and the coefficient broadcasts hoist out
/// of the z-loop); NT == 0 reads t.nterms at runtime (any radius).
template <int NT, class Epi>
inline void row_stencil(const double* __restrict p, std::int64_t nd,
                        const RowTerms& t, const Epi& epi) {
  using simd::VecD;
  constexpr int kW = VecD::kWidth;
  constexpr int kCap = NT > 0 ? NT : 3 * kMaxRadius;
  const int nt = NT > 0 ? NT : t.nterms;
  // Copy the terms into locals before the loop: the epilogue's output
  // stores cannot alias function-local state, so the broadcasts and
  // offsets stay in registers. Read through `t` they would be reloaded
  // from memory after every store (the compiler must assume the store
  // may hit them).
  std::int64_t off[kCap];
  double co[kCap];
  VecD vco[kCap];
  for (int k = 0; k < nt; ++k) {
    off[k] = t.off[static_cast<std::size_t>(k)];
    co[k] = t.coef[static_cast<std::size_t>(k)];
    vco[k] = VecD::broadcast(co[k]);
  }
  const double center = t.center;
  const VecD vc = VecD::broadcast(center);
  std::int64_t z = 0;
  if constexpr (NT > 0) {
    // Fold-expression unroll: NT is a template argument, so the term
    // updates expand to straight-line code (a `for (k < NT)` loop is not
    // reliably unrolled at -O2 and re-reads off[]/vco[] each iteration).
    for (; z + kW <= nd; z += kW)
      row_body(p, z, vc, off, vco, epi,
               std::make_index_sequence<static_cast<std::size_t>(NT)>{});
  } else {
    for (; z + kW <= nd; z += kW) {
      const VecD vp = VecD::load(p + z);
      VecD acc = vc * vp;
      for (int k = 0; k < nt; ++k)
        acc = simd::fmadd(
            vco[k], VecD::load(p + z - off[k]) + VecD::load(p + z + off[k]),
            acc);
      epi.vec(z, acc, vp);
    }
  }
  for (; z < nd; ++z) {
    const double pz = p[z];
    double acc = center * pz;
    for (int k = 0; k < nt; ++k)
      acc += co[k] * (p[z - off[k]] + p[z + off[k]]);
    epi.scalar(z, acc, pz);
  }
}

/// Tiled sweep over the x-slab [x_begin, x_end): visits every interior
/// row chunk once, in y/z tiles, and calls make_epi(row_offset_in_doubles)
/// to build the per-row epilogue.
template <typename T, class MakeEpi>
inline void sweep_slab(const grid::Array3D<T>& in, const Coeffs& c,
                       std::int64_t x_begin, std::int64_t x_end, Tiling tl,
                       const MakeEpi& make_epi) {
  const Vec3 n = in.shape();
  const std::int64_t scale = kDoublesPer<T>;
  const std::int64_t sx = in.stride_x() * scale;
  const std::int64_t sy = in.stride_y() * scale;
  const RowTerms t = make_row_terms(c, in.stride_x(), in.stride_y(), scale);
  const double* src = as_doubles(in.interior());
  const std::int64_t ndz = n.z * scale;
  const std::int64_t ty = std::max<std::int64_t>(1, tl.ty);
  const std::int64_t tz =
      std::max<std::int64_t>(scale, tl.tz / scale * scale);
  for (std::int64_t y0 = 0; y0 < n.y; y0 += ty) {
    const std::int64_t y1 = std::min(n.y, y0 + ty);
    for (std::int64_t z0 = 0; z0 < ndz; z0 += tz) {
      const std::int64_t len = std::min(tz, ndz - z0);
      for (std::int64_t x = x_begin; x < x_end; ++x) {
        for (std::int64_t y = y0; y < y1; ++y) {
          const std::int64_t row = x * sx + y * sy + z0;
          const auto epi = make_epi(row);
          switch (c.radius) {
            case 1:
              row_stencil<3>(src + row, len, t, epi);
              break;
            case 2:
              row_stencil<6>(src + row, len, t, epi);
              break;
            default:
              row_stencil<0>(src + row, len, t, epi);
          }
        }
      }
    }
  }
}

template <typename T>
inline void check_pair(const grid::Array3D<T>& in, const grid::Array3D<T>& out,
                       const Coeffs& c) {
  GPAWFD_CHECK(in.shape() == out.shape());
  GPAWFD_CHECK(in.ghost() >= c.radius);
  GPAWFD_CHECK(in.storage_shape() == out.storage_shape());
}

}  // namespace detail

/// Fast kernel over an x-slab [x_begin, x_end) of the interior:
/// vectorized along z, y/z-tiled. Splitting over x-slabs is how the
/// hybrid master-only approach divides one grid across the four cores of
/// a node.
template <typename T>
void apply_slab(const grid::Array3D<T>& in, grid::Array3D<T>& out,
                const Coeffs& c, std::int64_t x_begin, std::int64_t x_end,
                Tiling tl = kDefaultTiling) {
  detail::check_pair(in, out, c);
  GPAWFD_CHECK(0 <= x_begin && x_begin <= x_end && x_end <= in.shape().x);
  double* dst = detail::as_doubles(out.interior());
  detail::sweep_slab(in, c, x_begin, x_end, tl, [&](std::int64_t row) {
    return detail::StoreEpi{dst + row};
  });
}

/// Fast kernel over the full interior.
template <typename T>
void apply(const grid::Array3D<T>& in, grid::Array3D<T>& out,
           const Coeffs& c) {
  apply_slab(in, out, c, 0, in.shape().x);
}

/// The original scalar pointer kernel with a contiguous inner z-loop
/// (the shape of GPAW's C kernel) — kept selectable so benchmarks can
/// report the SIMD/tiled speedup against it. Compiled with the
/// auto-vectorizer off (see GPAWFD_NO_AUTOVEC) so it stays a true scalar
/// baseline.
template <typename T>
GPAWFD_NO_AUTOVEC void apply_slab_scalar(const grid::Array3D<T>& in,
                                         grid::Array3D<T>& out,
                                         const Coeffs& c, std::int64_t x_begin,
                                         std::int64_t x_end) {
  detail::check_pair(in, out, c);
  GPAWFD_CHECK(0 <= x_begin && x_begin <= x_end && x_end <= in.shape().x);
  const Vec3 n = in.shape();
  const std::int64_t sx = in.stride_x();
  const std::int64_t sy = in.stride_y();
  const T* __restrict__ src = in.interior();
  T* __restrict__ dst = out.interior();
  const int r = c.radius;
  for (std::int64_t x = x_begin; x < x_end; ++x) {
    for (std::int64_t y = 0; y < n.y; ++y) {
      const std::int64_t row = x * sx + y * sy;
      const T* __restrict__ p = src + row;
      T* __restrict__ q = dst + row;
      switch (r) {
        case 1:
          for (std::int64_t z = 0; z < n.z; ++z) {
            q[z] = static_cast<T>(c.center) * p[z] +
                   static_cast<T>(c.axis[0][0]) * (p[z - sx] + p[z + sx]) +
                   static_cast<T>(c.axis[1][0]) * (p[z - sy] + p[z + sy]) +
                   static_cast<T>(c.axis[2][0]) * (p[z - 1] + p[z + 1]);
          }
          break;
        case 2:
          // The paper's 13-point stencil, fully unrolled.
          for (std::int64_t z = 0; z < n.z; ++z) {
            q[z] =
                static_cast<T>(c.center) * p[z] +
                static_cast<T>(c.axis[0][0]) * (p[z - sx] + p[z + sx]) +
                static_cast<T>(c.axis[0][1]) *
                    (p[z - 2 * sx] + p[z + 2 * sx]) +
                static_cast<T>(c.axis[1][0]) * (p[z - sy] + p[z + sy]) +
                static_cast<T>(c.axis[1][1]) *
                    (p[z - 2 * sy] + p[z + 2 * sy]) +
                static_cast<T>(c.axis[2][0]) * (p[z - 1] + p[z + 1]) +
                static_cast<T>(c.axis[2][1]) * (p[z - 2] + p[z + 2]);
          }
          break;
        default:
          for (std::int64_t z = 0; z < n.z; ++z) {
            T acc = static_cast<T>(c.center) * p[z];
            for (int k = 1; k <= r; ++k) {
              acc += static_cast<T>(c.axis[0][k - 1]) *
                     (p[z - k * sx] + p[z + k * sx]);
              acc += static_cast<T>(c.axis[1][k - 1]) *
                     (p[z - k * sy] + p[z + k * sy]);
              acc += static_cast<T>(c.axis[2][k - 1]) * (p[z - k] + p[z + k]);
            }
            q[z] = acc;
          }
      }
    }
  }
}

/// Scalar kernel over the full interior (benchmark baseline).
template <typename T>
void apply_scalar(const grid::Array3D<T>& in, grid::Array3D<T>& out,
                  const Coeffs& c) {
  apply_slab_scalar(in, out, c, 0, in.shape().x);
}

namespace detail {

template <typename T>
inline void check_triple(const grid::Array3D<T>& u_in,
                         const grid::Array3D<T>& b,
                         const grid::Array3D<T>& u_out, const Coeffs& c,
                         double shift) {
  check_pair(u_in, u_out, c);
  GPAWFD_CHECK(u_in.shape() == b.shape());
  GPAWFD_CHECK(u_in.storage_shape() == b.storage_shape());
  GPAWFD_CHECK(c.center + shift != 0.0);
}

}  // namespace detail

/// One weighted-Jacobi relaxation step for  (A + shift I) u = b  where A
/// is the stencil, over the x-slab [x_begin, x_end):
///   u_out = u_in + omega * (b - A u_in - shift*u_in) / (center + shift).
/// Fused: the stencil value feeds the update inside one sweep, so each
/// grid is streamed once instead of twice. `u_in` must have filled
/// ghosts; shift = 0 recovers the plain Poisson relaxation.
template <typename T>
void jacobi_step_slab(const grid::Array3D<T>& u_in, const grid::Array3D<T>& b,
                      grid::Array3D<T>& u_out, const Coeffs& c, double omega,
                      double shift, std::int64_t x_begin, std::int64_t x_end,
                      Tiling tl = kDefaultTiling) {
  detail::check_triple(u_in, b, u_out, c, shift);
  GPAWFD_CHECK(0 <= x_begin && x_begin <= x_end && x_end <= u_in.shape().x);
  const double w = omega / (c.center + shift);
  const double* bb = detail::as_doubles(b.interior());
  double* qb = detail::as_doubles(u_out.interior());
  detail::sweep_slab(u_in, c, x_begin, x_end, tl, [&](std::int64_t row) {
    return detail::JacobiEpi{bb + row, qb + row, w, shift};
  });
}

/// Fused weighted-Jacobi step over the full interior.
template <typename T>
void jacobi_step(const grid::Array3D<T>& u_in, const grid::Array3D<T>& b,
                 grid::Array3D<T>& u_out, const Coeffs& c, double omega,
                 double shift = 0.0) {
  jacobi_step_slab(u_in, b, u_out, c, omega, shift, 0, u_in.shape().x);
}

/// Unfused baseline: fast apply, then a separate raw-strided update pass
/// (no .at() triple-indexing). Kept so benchmarks can report the fusion
/// speedup; numerics match jacobi_step.
template <typename T>
void jacobi_step_unfused(const grid::Array3D<T>& u_in,
                         const grid::Array3D<T>& b, grid::Array3D<T>& u_out,
                         const Coeffs& c, double omega, double shift = 0.0) {
  detail::check_triple(u_in, b, u_out, c, shift);
  apply(u_in, u_out, c);  // u_out = A u_in
  using simd::VecD;
  const Vec3 n = u_in.shape();
  const std::int64_t scale = detail::kDoublesPer<T>;
  const std::int64_t sx = u_in.stride_x() * scale;
  const std::int64_t sy = u_in.stride_y() * scale;
  const std::int64_t nd = n.z * scale;
  const double w = omega / (c.center + shift);
  const double* ub = detail::as_doubles(u_in.interior());
  const double* bb = detail::as_doubles(b.interior());
  double* qb = detail::as_doubles(u_out.interior());
  const VecD vw = VecD::broadcast(w);
  const VecD vs = VecD::broadcast(shift);
  for (std::int64_t x = 0; x < n.x; ++x) {
    for (std::int64_t y = 0; y < n.y; ++y) {
      const std::int64_t row = x * sx + y * sy;
      const double* __restrict u = ub + row;
      const double* __restrict rhs = bb + row;
      double* __restrict q = qb + row;
      std::int64_t z = 0;
      for (; z + VecD::kWidth <= nd; z += VecD::kWidth) {
        const VecD vu = VecD::load(u + z);
        const VecD resid = VecD::load(rhs + z) - VecD::load(q + z) - vs * vu;
        simd::fmadd(vw, resid, vu).store(q + z);
      }
      for (; z < nd; ++z) q[z] = u[z] + w * (rhs[z] - q[z] - shift * u[z]);
    }
  }
}

/// Fused residual over an x-slab: out = rhs - A u, one sweep.
template <typename T>
void residual_slab(const grid::Array3D<T>& u, const grid::Array3D<T>& rhs,
                   grid::Array3D<T>& out, const Coeffs& c,
                   std::int64_t x_begin, std::int64_t x_end,
                   Tiling tl = kDefaultTiling) {
  detail::check_pair(u, out, c);
  GPAWFD_CHECK(u.shape() == rhs.shape());
  GPAWFD_CHECK(u.storage_shape() == rhs.storage_shape());
  GPAWFD_CHECK(0 <= x_begin && x_begin <= x_end && x_end <= u.shape().x);
  const double* bb = detail::as_doubles(rhs.interior());
  double* qb = detail::as_doubles(out.interior());
  detail::sweep_slab(u, c, x_begin, x_end, tl, [&](std::int64_t row) {
    return detail::ResidualEpi{bb + row, qb + row};
  });
}

/// Fused residual over the full interior: out = rhs - A u.
template <typename T>
void residual(const grid::Array3D<T>& u, const grid::Array3D<T>& rhs,
              grid::Array3D<T>& out, const Coeffs& c) {
  residual_slab(u, rhs, out, c, 0, u.shape().x);
}

}  // namespace gpawfd::stencil
