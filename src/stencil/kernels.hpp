// Stencil kernels: a reference implementation (used as ground truth in
// tests) and an optimized pointer/stride kernel with a contiguous inner
// z-loop (the shape of GPAW's C kernel). Both operate on ghost-extended
// arrays whose ghosts have already been filled by the halo exchange (or
// by local_periodic_fill / fill_ghosts).
//
// The input and output grids are always two separate arrays — GPAW
// guarantees this, which is what makes the computation order irrelevant
// and the operation embarrassingly parallel within a sub-grid.
#pragma once

#include <complex>

#include "grid/array3d.hpp"
#include "stencil/coeffs.hpp"

namespace gpawfd::stencil {

/// Ground-truth kernel: direct transcription of the paper's formula.
template <typename T>
void apply_reference(const grid::Array3D<T>& in, grid::Array3D<T>& out,
                     const Coeffs& c) {
  GPAWFD_CHECK(in.shape() == out.shape());
  GPAWFD_CHECK(in.ghost() >= c.radius);
  const Vec3 n = in.shape();
  for (std::int64_t x = 0; x < n.x; ++x)
    for (std::int64_t y = 0; y < n.y; ++y)
      for (std::int64_t z = 0; z < n.z; ++z) {
        T acc = static_cast<T>(c.center) * in.at(x, y, z);
        for (int k = 1; k <= c.radius; ++k) {
          acc += static_cast<T>(c.axis[0][k - 1]) *
                 (in.at(x - k, y, z) + in.at(x + k, y, z));
          acc += static_cast<T>(c.axis[1][k - 1]) *
                 (in.at(x, y - k, z) + in.at(x, y + k, z));
          acc += static_cast<T>(c.axis[2][k - 1]) *
                 (in.at(x, y, z - k) + in.at(x, y, z + k));
        }
        out.at(x, y, z) = acc;
      }
}

/// Optimized kernel over an x-slab [x_begin, x_end) of the interior.
/// Splitting over x-slabs is how the hybrid master-only approach divides
/// one grid across the four cores of a node.
template <typename T>
void apply_slab(const grid::Array3D<T>& in, grid::Array3D<T>& out,
                const Coeffs& c, std::int64_t x_begin, std::int64_t x_end) {
  GPAWFD_CHECK(in.shape() == out.shape());
  GPAWFD_CHECK(in.ghost() >= c.radius);
  GPAWFD_CHECK(in.storage_shape() == out.storage_shape());
  GPAWFD_CHECK(0 <= x_begin && x_begin <= x_end && x_end <= in.shape().x);
  const Vec3 n = in.shape();
  const std::int64_t sx = in.stride_x();
  const std::int64_t sy = in.stride_y();
  const T* __restrict__ src = in.interior();
  T* __restrict__ dst = out.interior();
  const int r = c.radius;
  for (std::int64_t x = x_begin; x < x_end; ++x) {
    for (std::int64_t y = 0; y < n.y; ++y) {
      const std::int64_t row = x * sx + y * sy;
      const T* __restrict__ p = src + row;
      T* __restrict__ q = dst + row;
      switch (r) {
        case 1:
          for (std::int64_t z = 0; z < n.z; ++z) {
            q[z] = static_cast<T>(c.center) * p[z] +
                   static_cast<T>(c.axis[0][0]) * (p[z - sx] + p[z + sx]) +
                   static_cast<T>(c.axis[1][0]) * (p[z - sy] + p[z + sy]) +
                   static_cast<T>(c.axis[2][0]) * (p[z - 1] + p[z + 1]);
          }
          break;
        case 2:
          // The paper's 13-point stencil, fully unrolled.
          for (std::int64_t z = 0; z < n.z; ++z) {
            q[z] =
                static_cast<T>(c.center) * p[z] +
                static_cast<T>(c.axis[0][0]) * (p[z - sx] + p[z + sx]) +
                static_cast<T>(c.axis[0][1]) *
                    (p[z - 2 * sx] + p[z + 2 * sx]) +
                static_cast<T>(c.axis[1][0]) * (p[z - sy] + p[z + sy]) +
                static_cast<T>(c.axis[1][1]) *
                    (p[z - 2 * sy] + p[z + 2 * sy]) +
                static_cast<T>(c.axis[2][0]) * (p[z - 1] + p[z + 1]) +
                static_cast<T>(c.axis[2][1]) * (p[z - 2] + p[z + 2]);
          }
          break;
        default:
          for (std::int64_t z = 0; z < n.z; ++z) {
            T acc = static_cast<T>(c.center) * p[z];
            for (int k = 1; k <= r; ++k) {
              acc += static_cast<T>(c.axis[0][k - 1]) *
                     (p[z - k * sx] + p[z + k * sx]);
              acc += static_cast<T>(c.axis[1][k - 1]) *
                     (p[z - k * sy] + p[z + k * sy]);
              acc += static_cast<T>(c.axis[2][k - 1]) * (p[z - k] + p[z + k]);
            }
            q[z] = acc;
          }
      }
    }
  }
}

/// Optimized kernel over the full interior.
template <typename T>
void apply(const grid::Array3D<T>& in, grid::Array3D<T>& out,
           const Coeffs& c) {
  apply_slab(in, out, c, 0, in.shape().x);
}

/// One weighted-Jacobi relaxation step for  A u = b  where A is the
/// stencil: u_out = u_in + omega * (b - A u_in) / (-center).
/// Used by the Poisson solver; `u_in` must have filled ghosts.
template <typename T>
void jacobi_step(const grid::Array3D<T>& u_in, const grid::Array3D<T>& b,
                 grid::Array3D<T>& u_out, const Coeffs& c, double omega) {
  GPAWFD_CHECK(u_in.shape() == b.shape());
  GPAWFD_CHECK(u_in.shape() == u_out.shape());
  GPAWFD_CHECK(c.center != 0.0);
  apply(u_in, u_out, c);  // u_out = A u_in
  const Vec3 n = u_in.shape();
  const double inv_diag = 1.0 / c.center;
  for (std::int64_t x = 0; x < n.x; ++x)
    for (std::int64_t y = 0; y < n.y; ++y)
      for (std::int64_t z = 0; z < n.z; ++z) {
        const T resid = b.at(x, y, z) - u_out.at(x, y, z);
        u_out.at(x, y, z) =
            u_in.at(x, y, z) + static_cast<T>(omega * inv_diag) * resid;
      }
}

}  // namespace gpawfd::stencil
