// Finite-difference stencil coefficients.
//
// The paper's operator is the 13-point stencil: a linear combination of a
// point, its two nearest neighbours in all six directions, and itself —
// i.e. a radius-2 central-difference approximation applied independently
// along each axis (A' = C1*A + C2*A[x-1] + ... + C13*A[z+2]).
// The canonical instance in GPAW is the 4th-order Laplacian; we also
// provide radius 1 (2nd order), radius 3 (6th order) and radius 4
// (8th order) for the kernel sweep benchmarks, plus fully custom
// coefficients.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"
#include "common/vec3.hpp"

namespace gpawfd::stencil {

inline constexpr int kMaxRadius = 4;

/// Axis-separable symmetric stencil: result(p) = center*A(p) +
/// sum_d sum_{k=1..radius} axis[d][k-1] * (A(p + k e_d) + A(p - k e_d)).
struct Coeffs {
  int radius = 2;
  double center = 0.0;
  // axis[d][k-1] is the coefficient of the k-th neighbour along axis d
  // (same on both sides: central differences are symmetric).
  std::array<std::array<double, kMaxRadius>, 3> axis{};

  int points() const { return 1 + 6 * radius; }

  /// Central-difference Laplacian with per-axis grid spacing `h` and
  /// accuracy order 2*radius.
  static Coeffs laplacian(int radius, Vec3 h_num = {1, 1, 1},
                          double h_scale = 1.0);

  /// Laplacian with real-valued spacings.
  static Coeffs laplacian_spacing(int radius, double hx, double hy,
                                  double hz);
};

/// Standard central second-derivative weights (unit spacing).
/// Index 0 is the center weight, index k the weight of the ±k neighbour.
inline std::array<double, kMaxRadius + 1> second_derivative_weights(
    int radius) {
  GPAWFD_CHECK(radius >= 1 && radius <= kMaxRadius);
  switch (radius) {
    case 1:
      return {-2.0, 1.0, 0.0, 0.0, 0.0};
    case 2:
      return {-5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0, 0.0, 0.0};
    case 3:
      return {-49.0 / 18.0, 3.0 / 2.0, -3.0 / 20.0, 1.0 / 90.0, 0.0};
    default:
      return {-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0,
              -1.0 / 560.0};
  }
}

inline Coeffs Coeffs::laplacian_spacing(int radius, double hx, double hy,
                                        double hz) {
  GPAWFD_CHECK(hx > 0 && hy > 0 && hz > 0);
  const auto w = second_derivative_weights(radius);
  Coeffs c;
  c.radius = radius;
  const double inv2[3] = {1.0 / (hx * hx), 1.0 / (hy * hy),
                          1.0 / (hz * hz)};
  c.center = w[0] * (inv2[0] + inv2[1] + inv2[2]);
  for (int d = 0; d < 3; ++d)
    for (int k = 1; k <= radius; ++k) c.axis[d][k - 1] = w[k] * inv2[d];
  return c;
}

inline Coeffs Coeffs::laplacian(int radius, Vec3 h_num, double h_scale) {
  return laplacian_spacing(radius, static_cast<double>(h_num.x) * h_scale,
                           static_cast<double>(h_num.y) * h_scale,
                           static_cast<double>(h_num.z) * h_scale);
}

/// Flops per point for an axis-separable stencil of this radius:
/// one multiply per coefficient application plus the adds combining them.
/// (1 + 6r multiplies, 6r adds for the +k/-k pairs pre-added — we count
/// the conventional 2 flops per stencil term minus one.)
inline std::int64_t flops_per_point(const Coeffs& c) {
  const std::int64_t terms = 1 + 6 * static_cast<std::int64_t>(c.radius);
  return 2 * terms - 1;
}

}  // namespace gpawfd::stencil
