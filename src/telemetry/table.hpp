// The bench trajectory store: an append-only table file of typed
// telemetry rows (`run_id`, wall-clock, source, metric key, value,
// tags). Where BENCH_*.json is one JSON object per run and
// svc::Metrics::snapshot() is a point-in-time text block, this file is
// the *series*: every bench, scenario, and service run appends rows to
// the same table, and scripts/trajectory_report renders per-run series
// (throughput, p50/p99, hit ratio, Mpts/s) across PRs — the
// measure-then-decide discipline the source paper applies to kernel
// selection, applied to this repo's own performance.
//
// The framing reuses the CacheStore discipline verbatim — a 44-byte
// little-endian header with magic/version/CRC32, forward-scan recovery
// that stops at the first torn or corrupt record, and
// atomic-rename compaction — because that discipline already survives
// the failure model that matters here: a bench SIGKILLed mid-run must
// leave a table whose fully-flushed rows all recover.
//
// One row on disk (all little-endian):
//
//   0        4       5      6         8          16         24
//   ┌────────┬───────┬──────┬─────────┬──────────┬──────────┬
//   │ magic  │version│ type │reserved │ sequence │ time     │
//   │ 4B     │ 1B    │ 1B   │ 2B      │ 8B       │ 8B (f64) │
//   ┼────────┬────────────┬────────────┬─────────┬──────────┤
//   │ value  │ run_id_len │ source_len │ key_len │ tags_len │
//   │ 8B f64 │ 2B         │ 2B         │ 2B      │ 2B       │
//   ┼────────┬────────┬─────────┬───────┬────────┴──────────┘
//   │ crc32  │ run_id…│ source… │ key…  │ tags…
//   │ 4B     │        │         │       │
//   └────────┴────────┴─────────┴───────┘
//   40       44
//
// The CRC covers header bytes [0, 40) plus the four string fields, so a
// torn write or any bit flip invalidates exactly the row it touched;
// recovery keeps everything before it. "Compaction" here is retention:
// the table keeps the newest N distinct run_ids and rewrites the rest
// away (tmp + fsync + rename + dir fsync, sequences preserved), so a
// long-lived trajectory file does not grow without bound.
//
// TelemetryTable is single-threaded by contract; the TelemetrySink
// (sink.hpp) owns the concurrency story.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

namespace gpawfd::telemetry {

inline constexpr std::uint32_t kTableMagic = 0x54545047;  // "GPTT" on disk
inline constexpr std::uint8_t kTableVersion = 1;
/// Header incl. the trailing CRC, excl. the string payload.
inline constexpr std::size_t kRowHeaderBytes = 44;
/// Sanity bound recovery enforces on every string length field before
/// trusting it; a flipped bit in a length must never make the scanner
/// swallow the rest of the table as one "row".
inline constexpr std::size_t kMaxFieldBytes = 4 * 1024;

enum class RowType : std::uint8_t {
  kRow = 1,  // the only row type in v1
};

/// One telemetry row. `sequence` is assigned by the table on append
/// (whatever the caller set is ignored) and strictly increases across
/// process lifetimes, so recovery can reject replayed/corrupt tails.
struct TelemetryRow {
  std::string run_id;  // one trajectory point (a PR, a CI run, a host)
  std::string source;  // producer ("bench.svc_service", "svc", ...)
  std::string key;     // metric key ("throughput_rps", "svc.executed")
  std::string tags;    // free-form "k=v,k=v"; "" when untagged
  double value = 0;
  double time = 0;  // trace::unix_seconds() at production time
  std::uint64_t sequence = 0;
};

struct TableRecoveryStats {
  std::int64_t rows_scanned = 0;     // rows that passed every check
  std::int64_t runs = 0;             // distinct run_ids among them
  std::int64_t truncated_bytes = 0;  // torn/corrupt tail dropped
  bool truncated = false;
};

class TelemetryTable {
 public:
  /// The table file a directory-configured producer uses, so every
  /// process given the same --telemetry-dir agrees on the path.
  static constexpr const char* kFileName = "telemetry.gptt";
  static std::string path_in(const std::string& dir);

  /// Opens (creating if absent) the table at `path`. recover() must run
  /// before the first append — it establishes the valid end of the file
  /// and the next sequence number.
  explicit TelemetryTable(std::string path);
  ~TelemetryTable();
  TelemetryTable(const TelemetryTable&) = delete;
  TelemetryTable& operator=(const TelemetryTable&) = delete;

  /// Scan from the start, stop at the first torn/corrupt row, return
  /// every valid row in log order. With repair=true (the writer's mode)
  /// the file is truncated to the valid prefix; repair=false is a
  /// read-only scan, safe on a file another process is appending to.
  std::vector<TelemetryRow> recover(TableRecoveryStats* stats = nullptr,
                                    bool repair = true);

  /// Streaming flavour: bounded-chunk forward scan invoking `emit` for
  /// every valid row in log order, same checks and stop-at-first-bad-row
  /// contract as recover() (which is implemented on top of this, so the
  /// recovery torture tests exercise this parser). Establishes the
  /// writer state; returns the offset just past the last valid row.
  std::uint64_t recover_stream(
      const std::function<void(TelemetryRow&&)>& emit,
      TableRecoveryStats* stats = nullptr, bool repair = true);

  /// Append one row (sequence assigned here); returns the file offset
  /// just past it — a row boundary, where the torture tests truncate.
  /// Durable only after sync().
  std::uint64_t append_row(const TelemetryRow& row);
  /// Append every row as ONE contiguous write(2) — the sink drain's
  /// coalescing half. Byte-identical on disk to append_row in a loop.
  std::uint64_t append_rows(const std::vector<TelemetryRow>& rows);

  void sync();  // fsync the table

  // ---- retention compaction -------------------------------------------
  /// Rewrite the table keeping only rows whose run_id is among the
  /// newest `keep_runs` distinct run_ids (first-appearance order), via
  /// temp file -> fsync -> atomic rename -> dir fsync. Sequences and
  /// times are preserved. Returns true when it rewrote anything.
  bool compact_keep_runs(int keep_runs);
  /// compact_keep_runs(max_runs) when the table holds more than
  /// `max_runs` distinct runs and at least `min_rows` rows.
  bool maybe_compact(int max_runs, std::int64_t min_rows = 4096);

  // ---- statistics -----------------------------------------------------
  const std::string& path() const { return path_; }
  std::int64_t total_rows() const { return total_rows_; }
  std::uint64_t next_sequence() const { return next_sequence_; }
  std::uint64_t size_bytes() const { return end_offset_; }
  /// Distinct run_ids in first-appearance order.
  const std::vector<std::string>& runs() const { return runs_; }
  std::int64_t compactions() const { return compactions_; }

 private:
  std::vector<std::uint8_t> encode_row(std::uint64_t sequence,
                                       const TelemetryRow& row) const;
  void note_run(const std::string& run_id);

  std::string path_;
  int fd_ = -1;
  bool recovered_ = false;
  std::uint64_t end_offset_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::int64_t total_rows_ = 0;
  std::vector<std::string> runs_;  // first-appearance order
  std::unordered_set<std::string> run_set_;
  std::int64_t compactions_ = 0;
};

}  // namespace gpawfd::telemetry
