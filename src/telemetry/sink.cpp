#include "telemetry/sink.hpp"

#include <utility>

#include "common/check.hpp"
#include "trace/stats.hpp"

namespace gpawfd::telemetry {

TelemetrySink::TelemetrySink(std::string path, std::string run_id,
                             SinkConfig config)
    : table_(std::make_unique<TelemetryTable>(std::move(path))),
      run_id_(std::move(run_id)),
      config_(std::move(config)) {
  GPAWFD_CHECK(!run_id_.empty());
  GPAWFD_CHECK(config_.queue_capacity >= 1);
  // Recover synchronously before the writer starts: a table left torn by
  // a SIGKILL is repaired here, so the first append lands on the valid
  // prefix. Rows themselves are not replayed into memory — the table is
  // append-only history, not a cache.
  table_->recover_stream([](TelemetryRow&&) {}, nullptr, /*repair=*/true);
  thread_ = std::thread(&TelemetrySink::loop, this);
}

TelemetrySink::~TelemetrySink() { shutdown(); }

std::shared_ptr<TelemetrySink> TelemetrySink::open_in(const std::string& dir,
                                                      std::string run_id,
                                                      SinkConfig config) {
  return std::make_shared<TelemetrySink>(TelemetryTable::path_in(dir),
                                         std::move(run_id), std::move(config));
}

bool TelemetrySink::record(const std::string& source, const std::string& key,
                           double value, const std::string& tags) {
  TelemetryRow row;
  row.run_id = run_id_;
  row.source = source;
  row.key = key;
  row.tags = tags;
  row.value = value;
  row.time = trace::unix_seconds();

  std::lock_guard lock(mu_);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  // After shutdown (or when bumping the oldest out of a full queue) an
  // entry is dropped, keeping recorded == written + dropped exact.
  bool dropped = false;
  if (closed_ || queue_.size() >= config_.queue_capacity) {
    if (!closed_) queue_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped = true;
    if (closed_) return false;
  }
  queue_.push_back(std::move(row));
  cv_.notify_one();
  return !dropped;
}

void TelemetrySink::loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return;  // closed and fully drained (and synced)
    draining_ = true;
    while (!queue_.empty()) {
      // Swap the whole backlog out and land it as ONE contiguous append:
      // per-row write(2) syscalls and lock round-trips collapse into one
      // of each per drain swap. Rows recorded while we write go out on
      // the next swap; the fsync below still waits for an empty queue.
      std::vector<TelemetryRow> batch;
      batch.reserve(queue_.size());
      for (auto& row : queue_) batch.push_back(std::move(row));
      queue_.clear();
      lk.unlock();
      if (config_.on_write) config_.on_write(batch.front());
      table_->append_rows(batch);
      written_.fetch_add(static_cast<std::int64_t>(batch.size()),
                         std::memory_order_relaxed);
      lk.lock();
    }
    // Queue drained: the durability point — one fsync per drain, not per
    // row — and the retention moment (still on this thread, so the table
    // stays single-threaded).
    lk.unlock();
    table_->sync();
    flushes_.fetch_add(1, std::memory_order_relaxed);
    if (config_.compact_max_runs > 0 &&
        table_->maybe_compact(config_.compact_max_runs,
                              config_.compact_min_rows))
      compactions_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
    draining_ = false;
    idle_cv_.notify_all();
    if (closed_ && queue_.empty()) return;
  }
}

void TelemetrySink::flush() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && !draining_; });
}

void TelemetrySink::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (closed_ && !thread_.joinable()) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace gpawfd::telemetry
