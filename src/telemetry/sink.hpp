// The async telemetry sink: producers on any thread call record() and
// a dedicated writer thread drains the bounded queue into the
// TelemetryTable — the gacspp COutput buffered-writer pattern with the
// CacheStore Persister's exact backpressure contract. record() never
// blocks on I/O; when the queue is full the *oldest* pending row is
// dropped (counted — recorded == written + dropped reconciles at
// quiescence), because telemetry must never add latency to the thing it
// measures. Each drain swap lands as one contiguous append + one fsync.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/table.hpp"

namespace gpawfd::telemetry {

struct SinkConfig {
  /// Bounded queue between record() and the table. When full the oldest
  /// pending row is dropped (counted), never the newest — the freshest
  /// sample is the one the trajectory wants — and never the caller's
  /// time: record() does no I/O.
  std::size_t queue_capacity = 1024;
  /// Retention: after a flush, keep only the newest `compact_max_runs`
  /// distinct run_ids when the table holds more than that many runs and
  /// at least compact_min_rows rows (<= 0 disables).
  int compact_max_runs = 0;
  std::int64_t compact_min_rows = 4096;
  /// Test hook: runs on the writer thread just before each append batch
  /// (e.g. to gate writes and force the drop-oldest path determinately).
  std::function<void(const TelemetryRow& first)> on_write;
};

/// Owns a TelemetryTable plus the dedicated thread that drains rows
/// into it. Construction opens the table and runs recovery (repair=true)
/// synchronously, so a sink on a SIGKILLed table starts from the valid
/// prefix; then the writer thread starts.
class TelemetrySink {
 public:
  /// Every row this sink records carries `run_id`.
  TelemetrySink(std::string path, std::string run_id, SinkConfig config = {});
  ~TelemetrySink();  // shutdown()
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Convenience: sink on TelemetryTable::path_in(dir).
  static std::shared_ptr<TelemetrySink> open_in(const std::string& dir,
                                                std::string run_id,
                                                SinkConfig config = {});

  /// Queue one row (stamped with unix wall-clock now). Safe from any
  /// thread; never blocks on I/O. Returns false when the enqueue caused
  /// a drop — the oldest pending row when full, this row after
  /// shutdown().
  bool record(const std::string& source, const std::string& key, double value,
              const std::string& tags = {});

  /// Block until everything recorded so far is written and fsynced.
  void flush();
  /// Drain the queue, fsync, and stop the thread. Idempotent.
  void shutdown();

  const std::string& run_id() const { return run_id_; }
  const TelemetryTable& table() const { return *table_; }

  std::int64_t recorded() const { return recorded_.load(); }
  std::int64_t written() const { return written_.load(); }
  std::int64_t dropped() const { return dropped_.load(); }
  std::int64_t flushes() const { return flushes_.load(); }
  std::int64_t compactions() const { return compactions_.load(); }

 private:
  void loop();

  std::unique_ptr<TelemetryTable> table_;
  std::string run_id_;
  SinkConfig config_;

  std::mutex mu_;
  std::condition_variable cv_;       // wakes the writer thread
  std::condition_variable idle_cv_;  // wakes flush() waiters
  std::deque<TelemetryRow> queue_;
  bool closed_ = false;
  bool draining_ = false;  // thread is between pop and post-drain sync

  std::atomic<std::int64_t> recorded_{0};
  std::atomic<std::int64_t> written_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> flushes_{0};
  std::atomic<std::int64_t> compactions_{0};

  std::thread thread_;
};

}  // namespace gpawfd::telemetry
