#include "telemetry/table.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/result_codec.hpp"

namespace gpawfd::telemetry {

namespace {

/// Offset of the CRC field inside the header: the CRC covers everything
/// before it (plus the string payload), never itself.
constexpr std::size_t kCrcOffset = kRowHeaderBytes - 4;

void write_all(int fd, const std::uint8_t* p, std::size_t n,
               std::uint64_t offset) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      GPAWFD_CHECK_MSG(false, "telemetry table write failed: "
                                  << std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<std::uint64_t>(w);
  }
}

/// Durability of a rename needs the *directory* entry flushed too;
/// best-effort (not every filesystem lets you fsync a directory).
void sync_parent_dir(const std::string& path) {
  auto slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

bool field_ok(const std::string& s) { return s.size() <= kMaxFieldBytes; }

}  // namespace

std::string TelemetryTable::path_in(const std::string& dir) {
  if (dir.empty() || dir.back() == '/') return dir + kFileName;
  return dir + "/" + kFileName;
}

TelemetryTable::TelemetryTable(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  GPAWFD_CHECK_MSG(fd_ >= 0, "cannot open telemetry table "
                                 << path_ << ": " << std::strerror(errno));
}

TelemetryTable::~TelemetryTable() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> TelemetryTable::encode_row(
    std::uint64_t sequence, const TelemetryRow& row) const {
  std::vector<std::uint8_t> out;
  out.reserve(kRowHeaderBytes + row.run_id.size() + row.source.size() +
              row.key.size() + row.tags.size());
  core::append_u32(out, kTableMagic);
  out.push_back(kTableVersion);
  out.push_back(static_cast<std::uint8_t>(RowType::kRow));
  out.push_back(0);  // reserved
  out.push_back(0);
  core::append_u64(out, sequence);
  core::append_double(out, row.time);
  core::append_double(out, row.value);
  auto len16 = [&](const std::string& s) {
    out.push_back(static_cast<std::uint8_t>(s.size() & 0xff));
    out.push_back(static_cast<std::uint8_t>((s.size() >> 8) & 0xff));
  };
  len16(row.run_id);
  len16(row.source);
  len16(row.key);
  len16(row.tags);
  std::uint32_t crc = crc32(out.data(), kCrcOffset);
  crc = crc32(row.run_id.data(), row.run_id.size(), crc);
  crc = crc32(row.source.data(), row.source.size(), crc);
  crc = crc32(row.key.data(), row.key.size(), crc);
  crc = crc32(row.tags.data(), row.tags.size(), crc);
  core::append_u32(out, crc);
  out.insert(out.end(), row.run_id.begin(), row.run_id.end());
  out.insert(out.end(), row.source.begin(), row.source.end());
  out.insert(out.end(), row.key.begin(), row.key.end());
  out.insert(out.end(), row.tags.begin(), row.tags.end());
  return out;
}

std::uint64_t TelemetryTable::append_row(const TelemetryRow& row) {
  GPAWFD_CHECK_MSG(recovered_,
                   "TelemetryTable::recover() must run before appends");
  GPAWFD_CHECK_MSG(!row.run_id.empty() && !row.source.empty() &&
                       !row.key.empty(),
                   "telemetry row run_id/source/key must be non-empty");
  GPAWFD_CHECK_MSG(field_ok(row.run_id) && field_ok(row.source) &&
                       field_ok(row.key) && field_ok(row.tags),
                   "telemetry row field exceeds " << kMaxFieldBytes
                                                  << " bytes");
  const std::uint64_t seq = next_sequence_;
  std::vector<std::uint8_t> buf = encode_row(seq, row);
  write_all(fd_, buf.data(), buf.size(), end_offset_);
  end_offset_ += buf.size();
  next_sequence_ = seq + 1;
  ++total_rows_;
  note_run(row.run_id);
  return end_offset_;
}

std::uint64_t TelemetryTable::append_rows(
    const std::vector<TelemetryRow>& rows) {
  GPAWFD_CHECK_MSG(recovered_,
                   "TelemetryTable::recover() must run before appends");
  if (rows.empty()) return end_offset_;
  std::vector<std::uint8_t> buf;
  for (const TelemetryRow& row : rows) {
    GPAWFD_CHECK_MSG(!row.run_id.empty() && !row.source.empty() &&
                         !row.key.empty(),
                     "telemetry row run_id/source/key must be non-empty");
    GPAWFD_CHECK_MSG(field_ok(row.run_id) && field_ok(row.source) &&
                         field_ok(row.key) && field_ok(row.tags),
                     "telemetry row field exceeds " << kMaxFieldBytes
                                                    << " bytes");
    const std::vector<std::uint8_t> rec = encode_row(next_sequence_, row);
    buf.insert(buf.end(), rec.begin(), rec.end());
    ++next_sequence_;
  }
  write_all(fd_, buf.data(), buf.size(), end_offset_);
  end_offset_ += buf.size();
  for (const TelemetryRow& row : rows) {
    ++total_rows_;
    note_run(row.run_id);
  }
  return end_offset_;
}

void TelemetryTable::sync() {
  GPAWFD_CHECK_MSG(::fsync(fd_) == 0,
                   "telemetry table fsync failed: " << std::strerror(errno));
}

void TelemetryTable::note_run(const std::string& run_id) {
  if (run_set_.insert(run_id).second) runs_.push_back(run_id);
}

std::uint64_t TelemetryTable::recover_stream(
    const std::function<void(TelemetryRow&&)>& emit, TableRecoveryStats* stats,
    bool repair) {
  struct stat st;
  GPAWFD_CHECK_MSG(::fstat(fd_, &st) == 0,
                   "telemetry table fstat failed: " << std::strerror(errno));
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  // Chunked forward scan, same shape as CacheStore::recover_stream:
  // accept rows until the first one that fails any structural or
  // integrity check, then stop — nothing past a bad row can be trusted
  // (its length fields might be the corruption).
  constexpr std::size_t kChunkBytes = 256 * 1024;
  std::vector<std::uint8_t> buf;
  std::size_t start = 0;        // parse cursor within buf
  std::uint64_t file_pos = 0;   // next byte to pread
  std::uint64_t valid_end = 0;  // offset just past the last good row
  bool eof = false;
  bool short_read = false;  // concurrently truncated under us

  // Ensure `need` unparsed bytes are buffered; false on (effective) EOF.
  auto refill = [&](std::size_t need) {
    while (!eof && buf.size() - start < need) {
      if (start > 0) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(start));
        start = 0;
      }
      if (file_pos >= file_size) {
        eof = true;
        break;
      }
      const std::size_t want = std::max(kChunkBytes, need);
      const std::size_t to_read = static_cast<std::size_t>(
          std::min<std::uint64_t>(want, file_size - file_pos));
      const std::size_t old = buf.size();
      buf.resize(old + to_read);
      std::size_t got = 0;
      while (got < to_read) {
        ssize_t r = ::pread(fd_, buf.data() + old + got, to_read - got,
                            static_cast<off_t>(file_pos + got));
        if (r < 0 && errno == EINTR) continue;
        GPAWFD_CHECK_MSG(
            r >= 0, "telemetry table read failed: " << std::strerror(errno));
        if (r == 0) {  // concurrently truncated; treat the rest as torn
          eof = short_read = true;
          break;
        }
        got += static_cast<std::size_t>(r);
      }
      buf.resize(old + got);
      file_pos += got;
      if (file_pos >= file_size) eof = true;
    }
    return buf.size() - start >= need;
  };

  auto read_u16 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8);
  };

  std::int64_t scanned = 0;
  std::uint64_t last_seq = 0;
  std::vector<std::string> runs;
  std::unordered_set<std::string> run_set;
  for (;;) {
    if (!refill(kRowHeaderBytes)) break;
    const std::uint8_t* h = buf.data() + start;
    if (core::read_u32(h) != kTableMagic) break;
    if (h[4] != kTableVersion) break;
    if (h[5] != static_cast<std::uint8_t>(RowType::kRow)) break;
    const std::uint64_t seq = core::read_u64(h + 8);
    const double time = core::read_double(h + 16);
    const double value = core::read_double(h + 24);
    const std::uint32_t run_len = read_u16(h + 32);
    const std::uint32_t source_len = read_u16(h + 34);
    const std::uint32_t key_len = read_u16(h + 36);
    const std::uint32_t tags_len = read_u16(h + 38);
    if (run_len == 0 || run_len > kMaxFieldBytes) break;
    if (source_len == 0 || source_len > kMaxFieldBytes) break;
    if (key_len == 0 || key_len > kMaxFieldBytes) break;
    if (tags_len > kMaxFieldBytes) break;
    const std::size_t payload = run_len + source_len + key_len + tags_len;
    const std::size_t total = kRowHeaderBytes + payload;
    if (!refill(total)) break;  // torn tail: row extends past EOF
    h = buf.data() + start;     // refill may have compacted/reallocated
    std::uint32_t crc = crc32(h, kCrcOffset);
    crc = crc32(h + kRowHeaderBytes, payload, crc);
    if (crc != core::read_u32(h + kCrcOffset)) break;
    if (seq <= last_seq) break;  // sequences are strictly increasing

    TelemetryRow row;
    const char* p = reinterpret_cast<const char*>(h + kRowHeaderBytes);
    row.run_id.assign(p, run_len);
    row.source.assign(p + run_len, source_len);
    row.key.assign(p + run_len + source_len, key_len);
    row.tags.assign(p + run_len + source_len + key_len, tags_len);
    row.value = value;
    row.time = time;
    row.sequence = seq;
    if (run_set.insert(row.run_id).second) runs.push_back(row.run_id);
    emit(std::move(row));
    ++scanned;
    last_seq = seq;
    start += total;
    valid_end += total;
  }

  const std::uint64_t avail = short_read ? file_pos : file_size;
  if (stats) {
    stats->rows_scanned = scanned;
    stats->runs = static_cast<std::int64_t>(runs.size());
    stats->truncated_bytes = static_cast<std::int64_t>(avail - valid_end);
    stats->truncated = avail != valid_end;
  }

  // Establish (or re-establish) the writer state from the valid prefix.
  runs_ = std::move(runs);
  run_set_ = std::move(run_set);
  total_rows_ = scanned;
  next_sequence_ = last_seq + 1;
  end_offset_ = valid_end;
  recovered_ = true;

  if (repair && valid_end < file_size) {
    GPAWFD_CHECK_MSG(
        ::ftruncate(fd_, static_cast<off_t>(valid_end)) == 0,
        "telemetry table truncate failed: " << std::strerror(errno));
    sync();
  }
  return valid_end;
}

std::vector<TelemetryRow> TelemetryTable::recover(TableRecoveryStats* stats,
                                                  bool repair) {
  std::vector<TelemetryRow> rows;
  recover_stream([&](TelemetryRow&& row) { rows.push_back(std::move(row)); },
                 stats, repair);
  return rows;
}

bool TelemetryTable::compact_keep_runs(int keep_runs) {
  GPAWFD_CHECK_MSG(recovered_,
                   "TelemetryTable::recover() must run before compaction");
  GPAWFD_CHECK(keep_runs >= 1);
  if (static_cast<int>(runs_.size()) <= keep_runs) return false;

  // Runs are recorded in first-appearance order, so the newest N are the
  // tail of runs_. Re-read the survivors from disk (the in-memory state
  // only holds run ids, not rows). The file is ours alone here: the sink
  // thread is the only writer and it is the caller.
  std::unordered_set<std::string> keep;
  for (std::size_t i = runs_.size() - static_cast<std::size_t>(keep_runs);
       i < runs_.size(); ++i)
    keep.insert(runs_[i]);
  std::vector<TelemetryRow> survivors;
  recover_stream(
      [&](TelemetryRow&& row) {
        if (keep.count(row.run_id)) survivors.push_back(std::move(row));
      },
      nullptr, /*repair=*/false);
  const std::uint64_t keep_next_seq = next_sequence_;

  const std::string tmp = path_ + ".compact";
  int tfd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  GPAWFD_CHECK_MSG(tfd >= 0,
                   "cannot open " << tmp << ": " << std::strerror(errno));
  std::uint64_t offset = 0;
  for (const TelemetryRow& row : survivors) {
    std::vector<std::uint8_t> buf = encode_row(row.sequence, row);
    write_all(tfd, buf.data(), buf.size(), offset);
    offset += buf.size();
  }
  GPAWFD_CHECK_MSG(::fsync(tfd) == 0,
                   "compaction fsync failed: " << std::strerror(errno));
  ::close(tfd);
  GPAWFD_CHECK_MSG(::rename(tmp.c_str(), path_.c_str()) == 0,
                   "compaction rename failed: " << std::strerror(errno));
  sync_parent_dir(path_);

  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  GPAWFD_CHECK_MSG(fd_ >= 0, "cannot reopen compacted table "
                                 << path_ << ": " << std::strerror(errno));
  runs_.clear();
  run_set_.clear();
  for (const TelemetryRow& row : survivors) note_run(row.run_id);
  total_rows_ = static_cast<std::int64_t>(survivors.size());
  next_sequence_ = keep_next_seq;  // never reuse a sequence number
  end_offset_ = offset;
  ++compactions_;
  return true;
}

bool TelemetryTable::maybe_compact(int max_runs, std::int64_t min_rows) {
  if (max_runs <= 0) return false;
  if (total_rows_ < min_rows) return false;
  if (static_cast<int>(runs_.size()) <= max_runs) return false;
  return compact_keep_runs(max_runs);
}

}  // namespace gpawfd::telemetry
