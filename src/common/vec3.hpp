// Small fixed 3-component integer vector used for grid shapes, process
// grids, torus coordinates and offsets.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>

#include "common/check.hpp"

namespace gpawfd {

/// Integer 3-vector (x, y, z). Components are 64-bit so products of grid
/// extents never overflow.
struct Vec3 {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;

  constexpr Vec3() = default;
  constexpr Vec3(std::int64_t x_, std::int64_t y_, std::int64_t z_)
      : x(x_), y(y_), z(z_) {}
  /// Cubic shape n × n × n.
  static constexpr Vec3 cube(std::int64_t n) { return {n, n, n}; }

  constexpr std::int64_t& operator[](int d) {
    GPAWFD_ASSERT(d >= 0 && d < 3);
    return d == 0 ? x : (d == 1 ? y : z);
  }
  constexpr std::int64_t operator[](int d) const {
    GPAWFD_ASSERT(d >= 0 && d < 3);
    return d == 0 ? x : (d == 1 ? y : z);
  }

  constexpr std::int64_t product() const { return x * y * z; }
  constexpr std::int64_t min() const {
    return std::min(x, std::min(y, z));
  }
  constexpr std::int64_t max() const {
    return std::max(x, std::max(y, z));
  }

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, std::int64_t s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr Vec3 operator*(std::int64_t s, Vec3 a) { return a * s; }
  /// Component-wise product.
  friend constexpr Vec3 operator*(Vec3 a, Vec3 b) {
    return {a.x * b.x, a.y * b.y, a.z * b.z};
  }
  /// Component-wise (truncating) division.
  friend constexpr Vec3 operator/(Vec3 a, Vec3 b) {
    return {a.x / b.x, a.y / b.y, a.z / b.z};
  }
  friend constexpr bool operator==(Vec3 a, Vec3 b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  friend constexpr bool operator!=(Vec3 a, Vec3 b) { return !(a == b); }

  friend std::ostream& operator<<(std::ostream& os, Vec3 v) {
    return os << '(' << v.x << ',' << v.y << ',' << v.z << ')';
  }
};

/// True if every component of `a` is within [0, hi) component-wise.
constexpr bool in_bounds(Vec3 a, Vec3 hi) {
  return a.x >= 0 && a.y >= 0 && a.z >= 0 && a.x < hi.x && a.y < hi.y &&
         a.z < hi.z;
}

/// Row-major linear index of point `p` in a box of shape `shape`.
constexpr std::int64_t linear_index(Vec3 p, Vec3 shape) {
  GPAWFD_ASSERT(in_bounds(p, shape));
  return (p.x * shape.y + p.y) * shape.z + p.z;
}

/// Inverse of linear_index.
constexpr Vec3 delinearize(std::int64_t i, Vec3 shape) {
  GPAWFD_ASSERT(i >= 0 && i < shape.product());
  const std::int64_t z = i % shape.z;
  const std::int64_t y = (i / shape.z) % shape.y;
  const std::int64_t x = i / (shape.z * shape.y);
  return {x, y, z};
}

}  // namespace gpawfd
