// Portable double-precision SIMD pack, compile-time dispatched: AVX2 on
// x86 with -mavx2/-march=native, SSE2 on any x86-64, NEON on aarch64,
// and a transparent scalar fallback elsewhere. One ISA is selected per
// translation unit at compile time — there is no runtime dispatch, so
// the kernels inline down to straight vector code.
//
// The pack only models what the stencil/numerics kernels need: unaligned
// load/store, broadcast, +, -, *, fused multiply-add and a horizontal
// sum. Complex<double> grids ride on the same pack because every stencil
// coefficient is real: a complex array is processed as interleaved
// double lanes with doubled strides.
#pragma once

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define GPAWFD_SIMD_ISA_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define GPAWFD_SIMD_ISA_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define GPAWFD_SIMD_ISA_NEON 1
#else
#define GPAWFD_SIMD_ISA_SCALAR 1
#endif

namespace gpawfd::simd {

#if defined(GPAWFD_SIMD_ISA_AVX2)

struct VecD {
  static constexpr int kWidth = 4;
  __m256d v;

  static VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
};

/// a*b + c (single-rounded when the target has FMA, e.g. -march=native).
inline VecD fmadd(VecD a, VecD b, VecD c) {
#if defined(__FMA__)
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
  return a * b + c;
#endif
}

inline double hsum(VecD a) {
  __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swap));
}

inline constexpr const char* kIsaName = "avx2";

#elif defined(GPAWFD_SIMD_ISA_SSE2)

struct VecD {
  static constexpr int kWidth = 2;
  __m128d v;

  static VecD load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecD broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecD zero() { return {_mm_setzero_pd()}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
};

inline VecD fmadd(VecD a, VecD b, VecD c) { return a * b + c; }

inline double hsum(VecD a) {
  const __m128d swap = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(_mm_add_sd(a.v, swap));
}

inline constexpr const char* kIsaName = "sse2";

#elif defined(GPAWFD_SIMD_ISA_NEON)

struct VecD {
  static constexpr int kWidth = 2;
  float64x2_t v;

  static VecD load(const double* p) { return {vld1q_f64(p)}; }
  static VecD broadcast(double x) { return {vdupq_n_f64(x)}; }
  static VecD zero() { return {vdupq_n_f64(0.0)}; }
  void store(double* p) const { vst1q_f64(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
};

inline VecD fmadd(VecD a, VecD b, VecD c) { return {vfmaq_f64(c.v, a.v, b.v)}; }

inline double hsum(VecD a) { return vaddvq_f64(a.v); }

inline constexpr const char* kIsaName = "neon";

#else  // scalar fallback

struct VecD {
  static constexpr int kWidth = 1;
  double v;

  static VecD load(const double* p) { return {*p}; }
  static VecD broadcast(double x) { return {x}; }
  static VecD zero() { return {0.0}; }
  void store(double* p) const { *p = v; }

  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
};

inline VecD fmadd(VecD a, VecD b, VecD c) { return {a.v * b.v + c.v}; }

inline double hsum(VecD a) { return a.v; }

inline constexpr const char* kIsaName = "scalar";

#endif

/// Number of doubles processed per vector op on this build.
inline constexpr int kWidth = VecD::kWidth;

/// Name of the instruction set the pack compiled down to.
inline constexpr const char* isa_name() { return kIsaName; }

}  // namespace gpawfd::simd
