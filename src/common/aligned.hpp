// Cache-line / SIMD aligned storage for grid data.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace gpawfd {

inline constexpr std::size_t kGridAlignment = 64;  // one cache line

/// Minimal aligned allocator so grid buffers start on cache-line
/// boundaries (matters for the blocked stencil kernel and for avoiding
/// false sharing between worker threads writing adjacent sub-blocks).
template <typename T, std::size_t Align = kGridAlignment>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Align parameter defeats allocator_traits' default rebind
  // detection; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace gpawfd
