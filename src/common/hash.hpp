// Hashing helpers shared by the service layer's job keys and any future
// content-addressed caches. Stable across runs (never address-based) so
// hashes can be logged, compared between processes, and used as cache
// keys in serialized form.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace gpawfd {

/// FNV-1a 64-bit over a byte range. Deterministic and
/// platform-independent for the same bytes.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer — a cheap high-quality bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold `value` into `seed` (boost-style hash_combine with a 64-bit
/// mixer). Order-sensitive: combining a, b differs from b, a.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte
/// range — the integrity check of the persistent cache store's record
/// log. Detects every single-bit flip and every burst up to 32 bits,
/// which is exactly the torn-write / bit-rot model the store recovers
/// from. Chainable: pass a previous crc32 as `seed` to extend it.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gpawfd
