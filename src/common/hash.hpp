// Hashing helpers shared by the service layer's job keys and any future
// content-addressed caches. Stable across runs (never address-based) so
// hashes can be logged, compared between processes, and used as cache
// keys in serialized form.
#pragma once

#include <cstdint>
#include <string_view>

namespace gpawfd {

/// FNV-1a 64-bit over a byte range. Deterministic and
/// platform-independent for the same bytes.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer — a cheap high-quality bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold `value` into `seed` (boost-style hash_combine with a 64-bit
/// mixer). Order-sensitive: combining a, b differs from b, a.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

}  // namespace gpawfd
