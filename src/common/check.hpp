// Error handling primitives used across the library.
//
// GPAWFD_CHECK is always on (input validation / invariant enforcement on
// public boundaries); GPAWFD_ASSERT compiles out in NDEBUG builds and is
// used for internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpawfd {

/// Exception type thrown by all library precondition / invariant failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace gpawfd

#define GPAWFD_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::gpawfd::detail::fail("CHECK", #expr, __FILE__, __LINE__, {});   \
  } while (0)

#define GPAWFD_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::gpawfd::detail::fail("CHECK", #expr, __FILE__, __LINE__,        \
                             os_.str());                                \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define GPAWFD_ASSERT(expr) ((void)0)
#else
#define GPAWFD_ASSERT(expr)                                             \
  do {                                                                  \
    if (!(expr))                                                        \
      ::gpawfd::detail::fail("ASSERT", #expr, __FILE__, __LINE__, {});  \
  } while (0)
#endif
