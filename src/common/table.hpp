// Fixed-width text table used by the benchmark harnesses to print the
// rows/series that correspond to the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpawfd {

/// A simple right-aligned text table with a header row. Cells are strings;
/// numeric formatting is the caller's concern (see fmt_* helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column padding to `os`.
  void print(std::ostream& os) const;
  /// Render as CSV (no padding) to `os`.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// value with fixed decimals, e.g. fmt_fixed(3.14159, 2) == "3.14".
std::string fmt_fixed(double v, int decimals);
/// engineering-style seconds: "9.13 ms", "4.2 s", "812 us".
std::string fmt_seconds(double seconds);
/// bytes with binary-ish scaling the paper uses: "1.2 MB", "512 KB".
std::string fmt_bytes(double bytes);
/// bandwidth "374.1 MB/s".
std::string fmt_bandwidth(double bytes_per_second);

}  // namespace gpawfd
