// Minimal command-line flag parser for the example/driver binaries:
// --name=value or --name value, plus boolean --flag. Unknown flags are
// errors (typos should not silently run the wrong experiment).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace gpawfd {

class CliParser {
 public:
  /// Declare a flag with a default and a help line; returns *this for
  /// chaining.
  CliParser& flag(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv; throws Error on unknown or malformed flags. A lone
  /// `--help` sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_; }
  std::string usage(const std::string& program) const;

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  /// get_int with an inclusive range check; the error names the flag and
  /// the accepted range ("--batch-max must be in [1, 4096], got 0").
  std::int64_t get_int_in(const std::string& name, std::int64_t lo,
                          std::int64_t hi) const;
  /// get_double with an inclusive range check (e.g. fault rates in [0, 1]).
  double get_double_in(const std::string& name, double lo, double hi) const;
  bool is_set(const std::string& name) const;  // explicitly on the command line

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace gpawfd
