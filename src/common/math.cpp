#include "common/math.hpp"

#include <algorithm>

namespace gpawfd {

std::vector<std::int64_t> divisors(std::int64_t n) {
  GPAWFD_CHECK(n >= 1);
  std::vector<std::int64_t> out;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      out.push_back(d);
      if (d != n / d) out.push_back(n / d);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Vec3> factor_triples(std::int64_t n) {
  GPAWFD_CHECK(n >= 1);
  std::vector<Vec3> out;
  for (std::int64_t a : divisors(n)) {
    const std::int64_t rest = n / a;
    for (std::int64_t b : divisors(rest)) {
      out.push_back({a, b, rest / b});
    }
  }
  return out;
}

}  // namespace gpawfd
