#include "common/cli.hpp"

#include <charconv>
#include <sstream>

namespace gpawfd {

CliParser& CliParser::flag(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  GPAWFD_CHECK_MSG(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = Spec{default_value, help};
  order_.push_back(name);
  return *this;
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    GPAWFD_CHECK_MSG(arg.rfind("--", 0) == 0,
                     "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const bool has_next = i + 1 < argc &&
                            std::string(argv[i + 1]).rfind("--", 0) != 0;
      if (has_next) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    GPAWFD_CHECK_MSG(specs_.count(name), "unknown flag --" << name);
    values_[name] = value;
  }
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Spec& s = specs_.at(name);
    os << "  --" << name;
    if (!s.default_value.empty()) os << " (default: " << s.default_value << ")";
    os << "\n      " << s.help << "\n";
  }
  return os.str();
}

std::string CliParser::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  auto spec = specs_.find(name);
  GPAWFD_CHECK_MSG(spec != specs_.end(), "undeclared flag --" << name);
  return spec->second.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::int64_t out = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  GPAWFD_CHECK_MSG(ec == std::errc{} && p == v.data() + v.size(),
                   "--" << name << " expects an integer, got '" << v << "'");
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    GPAWFD_CHECK(pos == v.size());
    return out;
  } catch (const std::exception&) {
    GPAWFD_CHECK_MSG(false,
                     "--" << name << " expects a number, got '" << v << "'");
  }
  return 0;
}

std::int64_t CliParser::get_int_in(const std::string& name, std::int64_t lo,
                                   std::int64_t hi) const {
  const std::int64_t v = get_int(name);
  GPAWFD_CHECK_MSG(v >= lo && v <= hi, "--" << name << " must be in [" << lo
                                            << ", " << hi << "], got " << v);
  return v;
}

double CliParser::get_double_in(const std::string& name, double lo,
                                double hi) const {
  const double v = get_double(name);
  GPAWFD_CHECK_MSG(v >= lo && v <= hi, "--" << name << " must be in [" << lo
                                            << ", " << hi << "], got " << v);
  return v;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  GPAWFD_CHECK_MSG(false, "--" << name << " expects a boolean, got '" << v
                               << "'");
  return false;
}

bool CliParser::is_set(const std::string& name) const {
  return values_.count(name) != 0;
}

}  // namespace gpawfd
