// Small integer-math helpers shared by the decomposition and batching
// logic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/vec3.hpp"

namespace gpawfd {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  GPAWFD_ASSERT(b > 0);
  return (a + b - 1) / b;
}

constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

constexpr bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

constexpr int ilog2(std::int64_t v) {
  GPAWFD_ASSERT(v > 0);
  int l = 0;
  while (v >>= 1) ++l;
  return l;
}

/// All ordered factor triples (a, b, c) with a*b*c == n.
std::vector<Vec3> factor_triples(std::int64_t n);

/// Positive divisors of n in ascending order.
std::vector<std::int64_t> divisors(std::int64_t n);

}  // namespace gpawfd
