#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace gpawfd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GPAWFD_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GPAWFD_CHECK_MSG(cells.size() == header_.size(),
                   "row has " << cells.size() << " cells, header has "
                              << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_seconds(double seconds) {
  const double a = std::fabs(seconds);
  if (a >= 1.0) return fmt_fixed(seconds, 2) + " s";
  if (a >= 1e-3) return fmt_fixed(seconds * 1e3, 2) + " ms";
  if (a >= 1e-6) return fmt_fixed(seconds * 1e6, 2) + " us";
  return fmt_fixed(seconds * 1e9, 1) + " ns";
}

std::string fmt_bytes(double bytes) {
  const double a = std::fabs(bytes);
  if (a >= 1e9) return fmt_fixed(bytes / 1e9, 2) + " GB";
  if (a >= 1e6) return fmt_fixed(bytes / 1e6, 2) + " MB";
  if (a >= 1e3) return fmt_fixed(bytes / 1e3, 2) + " KB";
  return fmt_fixed(bytes, 0) + " B";
}

std::string fmt_bandwidth(double bytes_per_second) {
  return fmt_fixed(bytes_per_second / 1e6, 1) + " MB/s";
}

}  // namespace gpawfd
