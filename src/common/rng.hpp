// Deterministic pseudo-random numbers for tests, examples and workload
// generators. SplitMix64: tiny, fast, reproducible across platforms
// (unlike std::mt19937 distributions, whose output is implementation
// defined for floating point).
#pragma once

#include <cstdint>

namespace gpawfd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace gpawfd
