#include "grid/decomposition.hpp"

#include <limits>

#include "common/check.hpp"
#include "common/math.hpp"

namespace gpawfd::grid {

Decomposition::Decomposition(Vec3 gshape, Vec3 pgrid, int ghost)
    : gshape_(gshape), pgrid_(pgrid), ghost_(ghost) {
  GPAWFD_CHECK(gshape.min() >= 1);
  GPAWFD_CHECK(pgrid.min() >= 1);
  GPAWFD_CHECK(ghost >= 0);
  for (int d = 0; d < 3; ++d)
    GPAWFD_CHECK_MSG(gshape[d] / pgrid[d] >= std::max<std::int64_t>(1, ghost),
                     "dimension " << d << ": local extent "
                                  << gshape[d] / pgrid[d]
                                  << " smaller than ghost width " << ghost);
}

Decomposition Decomposition::best(Vec3 gshape, std::int64_t ranks,
                                  int ghost) {
  GPAWFD_CHECK(ranks >= 1);
  const std::int64_t kInvalid = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_cost = kInvalid;
  Vec3 best_pg{0, 0, 0};
  for (Vec3 pg : factor_triples(ranks)) {
    bool ok = true;
    for (int d = 0; d < 3; ++d)
      if (gshape[d] / pg[d] < std::max<std::int64_t>(1, ghost)) ok = false;
    if (!ok) continue;
    const Decomposition cand(gshape, pg, ghost);
    const std::int64_t cost = cand.aggregate_surface();
    // Tie-break toward balanced process grids (smaller max extent).
    if (cost < best_cost ||
        (cost == best_cost && pg.max() < best_pg.max())) {
      best_cost = cost;
      best_pg = pg;
    }
  }
  GPAWFD_CHECK_MSG(best_cost != kInvalid,
                   "no factorization of " << ranks << " ranks fits grid "
                                          << gshape << " with ghost "
                                          << ghost);
  return Decomposition(gshape, best_pg, ghost);
}

Vec3 Decomposition::coords_of(std::int64_t rank) const {
  GPAWFD_CHECK(rank >= 0 && rank < ranks());
  return delinearize(rank, pgrid_);
}

std::int64_t Decomposition::rank_of(Vec3 coords) const {
  return linear_index(coords, pgrid_);
}

Box3 Decomposition::local_box(Vec3 coords) const {
  GPAWFD_CHECK(in_bounds(coords, pgrid_));
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    const std::int64_t base = gshape_[d] / pgrid_[d];
    const std::int64_t rem = gshape_[d] % pgrid_[d];
    // First `rem` processes get one extra point.
    const std::int64_t c = coords[d];
    b.lo[d] = c * base + std::min(c, rem);
    b.hi[d] = b.lo[d] + base + (c < rem ? 1 : 0);
  }
  return b;
}

Vec3 Decomposition::neighbor(Vec3 coords, int dim, int side) const {
  Vec3 n = coords;
  n[dim] += (side == 0 ? -1 : 1);
  n[dim] = (n[dim] + pgrid_[dim]) % pgrid_[dim];
  return n;
}

std::int64_t Decomposition::send_bytes(Vec3 coords,
                                       std::int64_t elem_bytes) const {
  const Vec3 n = local_box(coords).shape();
  std::int64_t pts = 0;
  for (int d = 0; d < 3; ++d) {
    std::int64_t cross = 1;
    for (int e = 0; e < 3; ++e)
      if (e != d) cross *= n[e];
    // Two faces per dimension, ghost-thick each; with one process in a
    // dimension and periodic boundary the exchange degenerates to a local
    // copy, which costs no network bytes.
    if (pgrid_[d] > 1) pts += 2 * ghost_ * cross;
  }
  return pts * elem_bytes;
}

std::int64_t Decomposition::aggregate_surface() const {
  std::int64_t total = 0;
  for (std::int64_t r = 0; r < ranks(); ++r)
    total += send_bytes(coords_of(r), 1);
  return total;
}

}  // namespace gpawfd::grid
