// Axis-aligned integer boxes (half-open) describing sub-domains of a
// global real-space grid.
#pragma once

#include "common/vec3.hpp"

namespace gpawfd::grid {

/// Half-open box [lo, hi) in global grid coordinates.
struct Box3 {
  Vec3 lo;
  Vec3 hi;

  constexpr Vec3 shape() const { return hi - lo; }
  constexpr std::int64_t volume() const { return shape().product(); }
  constexpr bool empty() const {
    return hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z;
  }
  constexpr bool contains(Vec3 p) const {
    return p.x >= lo.x && p.y >= lo.y && p.z >= lo.z && p.x < hi.x &&
           p.y < hi.y && p.z < hi.z;
  }

  friend constexpr bool operator==(const Box3& a, const Box3& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  /// Intersection (may be empty).
  friend constexpr Box3 intersect(const Box3& a, const Box3& b) {
    Box3 r;
    for (int d = 0; d < 3; ++d) {
      r.lo[d] = std::max(a.lo[d], b.lo[d]);
      r.hi[d] = std::min(a.hi[d], b.hi[d]);
      if (r.hi[d] < r.lo[d]) r.hi[d] = r.lo[d];
    }
    return r;
  }
};

}  // namespace gpawfd::grid
