// Ghost-extended 3-D array: the in-memory representation of one
// (sub-)grid in GPAW. The interior has shape `n`; each face carries a
// ghost (halo) layer of width `g` holding copies of the neighbouring
// sub-grid's surface points (or boundary values).
//
// Interior points are addressed with indices in [0, n); ghost points with
// indices in [-g, 0) and [n, n+g). Storage is row-major (x slowest, z
// fastest, matching the paper's C implementation) and 64-byte aligned.
#pragma once

#include <algorithm>
#include <complex>
#include <cstring>
#include <span>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/vec3.hpp"

namespace gpawfd::grid {

template <typename T>
class Array3D {
 public:
  using value_type = T;

  Array3D() = default;

  /// Interior shape `n`, ghost width `g` (same on every face).
  Array3D(Vec3 n, int g) : n_(n), g_(g) {
    GPAWFD_CHECK(n.x >= 1 && n.y >= 1 && n.z >= 1);
    GPAWFD_CHECK(g >= 0);
    stor_ = n + Vec3::cube(2 * g);
    data_.assign(static_cast<std::size_t>(stor_.product()), T{});
  }

  Vec3 shape() const { return n_; }
  int ghost() const { return g_; }
  /// Shape including ghost layers.
  Vec3 storage_shape() const { return stor_; }
  std::int64_t interior_points() const { return n_.product(); }

  /// Interior- (and ghost-) indexed access; (0,0,0) is the first interior
  /// point, negative indices address ghosts.
  T& at(std::int64_t x, std::int64_t y, std::int64_t z) {
    return data_[offset(x, y, z)];
  }
  const T& at(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return data_[offset(x, y, z)];
  }
  T& at(Vec3 p) { return at(p.x, p.y, p.z); }
  const T& at(Vec3 p) const { return at(p.x, p.y, p.z); }

  /// Raw pointer to the first interior point (for kernels). Strides are
  /// those of storage_shape().
  T* interior() { return data_.data() + offset(0, 0, 0); }
  const T* interior() const { return data_.data() + offset(0, 0, 0); }

  std::int64_t stride_x() const { return stor_.y * stor_.z; }
  std::int64_t stride_y() const { return stor_.z; }

  std::span<T> raw() { return {data_.data(), data_.size()}; }
  std::span<const T> raw() const { return {data_.data(), data_.size()}; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Overwrite every ghost point with `v` (e.g. 0 for a finite /
  /// zero-boundary system).
  void fill_ghosts(T v) {
    for_each_storage([&](Vec3 p, T& cell) {
      const Vec3 q = p - Vec3::cube(g_);
      if (!in_bounds(q, n_)) cell = v;
    });
  }

  /// Apply f(interior_index, value&) over interior points.
  template <typename F>
  void for_each_interior(F&& f) {
    for (std::int64_t x = 0; x < n_.x; ++x)
      for (std::int64_t y = 0; y < n_.y; ++y)
        for (std::int64_t z = 0; z < n_.z; ++z) f(Vec3{x, y, z}, at(x, y, z));
  }
  template <typename F>
  void for_each_interior(F&& f) const {
    for (std::int64_t x = 0; x < n_.x; ++x)
      for (std::int64_t y = 0; y < n_.y; ++y)
        for (std::int64_t z = 0; z < n_.z; ++z) f(Vec3{x, y, z}, at(x, y, z));
  }

 private:
  template <typename F>
  void for_each_storage(F&& f) {
    for (std::int64_t x = 0; x < stor_.x; ++x)
      for (std::int64_t y = 0; y < stor_.y; ++y)
        for (std::int64_t z = 0; z < stor_.z; ++z)
          f(Vec3{x, y, z}, data_[(x * stor_.y + y) * stor_.z + z]);
  }

  std::int64_t offset(std::int64_t x, std::int64_t y, std::int64_t z) const {
    GPAWFD_ASSERT(x >= -g_ && x < n_.x + g_);
    GPAWFD_ASSERT(y >= -g_ && y < n_.y + g_);
    GPAWFD_ASSERT(z >= -g_ && z < n_.z + g_);
    return ((x + g_) * stor_.y + (y + g_)) * stor_.z + (z + g_);
  }

  Vec3 n_;
  Vec3 stor_;
  int g_ = 0;
  AlignedVector<T> data_;
};

/// Direction of a face: dimension 0..2, side 0 (low) or 1 (high).
struct Face {
  int dim;
  int side;
};

/// The six faces in the fixed exchange order (x-, x+, y-, y+, z-, z+).
inline constexpr Face kFaces[6] = {{0, 0}, {0, 1}, {1, 0},
                                   {1, 1}, {2, 0}, {2, 1}};

/// Number of points in one face slab (ghost-width thick cross-section).
template <typename T>
std::int64_t face_points(const Array3D<T>& a, int dim) {
  const Vec3 n = a.shape();
  std::int64_t cross = 1;
  for (int d = 0; d < 3; ++d)
    if (d != dim) cross *= n[d];
  return cross * a.ghost();
}

// Face codecs. Halo exchange sends the *interior* slab adjacent to a face
// to the neighbour on that side, which stores it into its ghost slab on
// the opposite side. The 13-point stencil only reaches axis-aligned
// neighbours, so edge/corner ghosts are never read and faces cover only
// the interior cross-section.

/// Copy the interior boundary slab at (dim, side) into `out`
/// (size face_points). Layout: slab-major in the ghost direction.
template <typename T>
void pack_face(const Array3D<T>& a, Face f, std::span<T> out) {
  const Vec3 n = a.shape();
  const int g = a.ghost();
  GPAWFD_CHECK(std::ssize(out) == face_points(a, f.dim));
  std::int64_t k = 0;
  Vec3 lo{0, 0, 0}, hi = n;
  if (f.side == 0)
    hi[f.dim] = g;
  else
    lo[f.dim] = n[f.dim] - g;
  for (std::int64_t x = lo.x; x < hi.x; ++x)
    for (std::int64_t y = lo.y; y < hi.y; ++y)
      for (std::int64_t z = lo.z; z < hi.z; ++z) out[k++] = a.at(x, y, z);
}

/// Store a received slab into the ghost layer at (dim, side).
template <typename T>
void unpack_ghost(Array3D<T>& a, Face f, std::span<const T> in) {
  const Vec3 n = a.shape();
  const int g = a.ghost();
  GPAWFD_CHECK(std::ssize(in) == face_points(a, f.dim));
  std::int64_t k = 0;
  Vec3 lo{0, 0, 0}, hi = n;
  if (f.side == 0) {
    lo[f.dim] = -g;
    hi[f.dim] = 0;
  } else {
    lo[f.dim] = n[f.dim];
    hi[f.dim] = n[f.dim] + g;
  }
  for (std::int64_t x = lo.x; x < hi.x; ++x)
    for (std::int64_t y = lo.y; y < hi.y; ++y)
      for (std::int64_t z = lo.z; z < hi.z; ++z) a.at(x, y, z) = in[k++];
}

/// Single-domain periodic boundary: copy the opposing interior slab into
/// each ghost layer (what the distributed exchange degenerates to on one
/// rank with periodic boundary conditions).
template <typename T>
void local_periodic_fill(Array3D<T>& a) {
  AlignedVector<T> buf;
  for (Face f : kFaces) {
    buf.resize(static_cast<std::size_t>(face_points(a, f.dim)));
    pack_face(a, Face{f.dim, 1 - f.side}, std::span<T>(buf.data(), buf.size()));
    unpack_ghost(a, f, std::span<const T>(buf.data(), buf.size()));
  }
}

}  // namespace gpawfd::grid
