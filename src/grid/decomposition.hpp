// Domain decomposition of the global real-space grid over MPI processes.
//
// GPAW divides *every* grid into the same quadrilaterals, one per MPI
// process (every process owns the same subset of every grid — required by
// e.g. wave-function orthogonalization). Absent a user-defined
// decomposition it picks the process grid minimizing the aggregated
// surface of the sub-grids, which minimizes halo-exchange volume.
#pragma once

#include <vector>

#include "common/vec3.hpp"
#include "grid/box.hpp"

namespace gpawfd::grid {

/// A process grid (px, py, pz) together with the global grid it divides.
class Decomposition {
 public:
  /// Explicit (user-defined) process grid.
  Decomposition(Vec3 gshape, Vec3 pgrid, int ghost);

  /// Pick the process grid for `ranks` processes that minimizes the
  /// aggregated halo surface, subject to every local extent being at
  /// least `ghost` points (a sub-grid must fully contain its neighbour's
  /// ghost needs). Throws if no factorization satisfies the constraint.
  static Decomposition best(Vec3 gshape, std::int64_t ranks, int ghost);

  Vec3 global_shape() const { return gshape_; }
  Vec3 process_grid() const { return pgrid_; }
  int ghost() const { return ghost_; }
  std::int64_t ranks() const { return pgrid_.product(); }

  /// Cartesian coordinates of `rank` (row-major rank order before any
  /// topology reorder).
  Vec3 coords_of(std::int64_t rank) const;
  std::int64_t rank_of(Vec3 coords) const;

  /// Sub-domain owned by the process at `coords`. Remainder points are
  /// spread over the leading processes in each dimension.
  Box3 local_box(Vec3 coords) const;
  Box3 local_box_of_rank(std::int64_t rank) const { return local_box(coords_of(rank)); }

  /// Neighbour coordinates across face (dim, side) with periodic wrap.
  Vec3 neighbor(Vec3 coords, int dim, int side) const;

  /// Total halo points exchanged per grid per sweep, summed over all
  /// processes and both directions (the quantity GPAW minimizes).
  std::int64_t aggregate_surface() const;

  /// Halo bytes one process at `coords` sends per grid per sweep
  /// (6 faces, ghost-thick, element size `elem_bytes`).
  std::int64_t send_bytes(Vec3 coords, std::int64_t elem_bytes) const;

 private:
  Vec3 gshape_;
  Vec3 pgrid_;
  int ghost_;
};

}  // namespace gpawfd::grid
