#include "gpaw/wavefunctions.hpp"

#include <cmath>
#include <cstring>

#include "common/aligned.hpp"
#include "common/simd.hpp"

namespace gpawfd::gpaw {

namespace {

/// Band-tile edge of the blocked overlap assembly: 2 * kBandTile rows of
/// a typical sub-grid (~0.5-2 KiB each) stay L1-resident while the tile
/// pair's kBandTile^2 dot products consume them.
constexpr int kBandTile = 8;

double dot_rows(const double* __restrict a, const double* __restrict b,
                std::int64_t n) {
  using simd::VecD;
  VecD acc = VecD::zero();
  std::int64_t z = 0;
  for (; z + VecD::kWidth <= n; z += VecD::kWidth)
    acc = simd::fmadd(VecD::load(a + z), VecD::load(b + z), acc);
  double s = simd::hsum(acc);
  for (; z < n; ++z) s += a[z] * b[z];
  return s;
}

double hash_value(std::uint64_t seed, int band, Vec3 p) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(band) * 0x9e3779b97f4a7c15ULL);
  z ^= static_cast<std::uint64_t>(p.x) + (z << 6) + (z >> 2);
  z ^= static_cast<std::uint64_t>(p.y) + (z << 6) + (z >> 2);
  z ^= static_cast<std::uint64_t>(p.z) + (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}
}  // namespace

void WaveFunctions::randomize(std::uint64_t seed) {
  for (int b = 0; b < nbands(); ++b) {
    domain_->fill(band(b),
                  [&](Vec3 p) { return hash_value(seed, b, p); });
  }
}

DenseMatrix overlap_matrix(const Domain& d,
                           std::span<const grid::Array3D<double>> a,
                           std::span<const grid::Array3D<double>> b,
                           bool symmetric) {
  const int na = static_cast<int>(a.size());
  const int nb = static_cast<int>(b.size());
  GPAWFD_CHECK(na >= 1 && nb >= 1);
  GPAWFD_CHECK(!symmetric || na == nb);
  for (const auto& f : a) GPAWFD_CHECK(f.shape() == d.box().shape());
  for (const auto& f : b) GPAWFD_CHECK(f.shape() == d.box().shape());
  for (const auto& f : a)
    GPAWFD_CHECK(f.storage_shape() == a[0].storage_shape());
  for (const auto& f : b)
    GPAWFD_CHECK(f.storage_shape() == a[0].storage_shape());

  const Vec3 n = d.box().shape();
  const std::int64_t sx = a[0].stride_x();
  const std::int64_t sy = a[0].stride_y();
  std::vector<double> local(static_cast<std::size_t>(na) *
                                static_cast<std::size_t>(nb),
                            0.0);
  for (int ib = 0; ib < na; ib += kBandTile) {
    const int ie = std::min(na, ib + kBandTile);
    for (int jb = symmetric ? ib : 0; jb < nb; jb += kBandTile) {
      const int je = std::min(nb, jb + kBandTile);
      for (std::int64_t x = 0; x < n.x; ++x) {
        for (std::int64_t y = 0; y < n.y; ++y) {
          const std::int64_t row = x * sx + y * sy;
          for (int i = ib; i < ie; ++i) {
            const double* pa =
                a[static_cast<std::size_t>(i)].interior() + row;
            const int j0 = (symmetric && jb == ib) ? i : jb;
            for (int j = j0; j < je; ++j)
              local[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(nb) +
                    static_cast<std::size_t>(j)] +=
                  dot_rows(pa,
                           b[static_cast<std::size_t>(j)].interior() + row,
                           n.z);
          }
        }
      }
    }
  }
  std::vector<double> global(local.size());
  d.comm().allreduce_sum(local, global);

  DenseMatrix s(na, nb);
  for (int i = 0; i < na; ++i)
    for (int j = symmetric ? i : 0; j < nb; ++j) {
      const double v = global[static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(nb) +
                              static_cast<std::size_t>(j)] *
                       d.dv();
      s(i, j) = v;
      if (symmetric) s(j, i) = v;
    }
  return s;
}

DenseMatrix WaveFunctions::overlap() const {
  return overlap_matrix(*domain_, bands_, bands_, /*symmetric=*/true);
}

void WaveFunctions::rotate(const DenseMatrix& u) {
  const int n = nbands();
  GPAWFD_CHECK(u.rows() == n && u.cols() == n);
  // Rotate row-wise: gather one contiguous z-row of every band into a
  // cache-resident block, then new[j] = sum_i old[i]*u(i,j) as a chain of
  // vectorizable axpys over that block (the old point-wise form made n^2
  // strided single-element accesses per grid point).
  const Vec3 shape = domain_->box().shape();
  const std::int64_t sx = bands_[0].stride_x();
  const std::int64_t sy = bands_[0].stride_y();
  const std::int64_t nz = shape.z;
  AlignedVector<double> old(static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(nz));
  for (std::int64_t x = 0; x < shape.x; ++x) {
    for (std::int64_t y = 0; y < shape.y; ++y) {
      const std::int64_t row = x * sx + y * sy;
      for (int i = 0; i < n; ++i)
        std::memcpy(old.data() + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(nz),
                    band(i).interior() + row,
                    static_cast<std::size_t>(nz) * sizeof(double));
      for (int j = 0; j < n; ++j) {
        double* __restrict q = band(j).interior() + row;
        const double* __restrict p0 = old.data();
        const double u0 = u(0, j);
        for (std::int64_t z = 0; z < nz; ++z) q[z] = u0 * p0[z];
        for (int i = 1; i < n; ++i) {
          const double uij = u(i, j);
          const double* __restrict pi =
              old.data() + static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(nz);
          for (std::int64_t z = 0; z < nz; ++z) q[z] += uij * pi[z];
        }
      }
    }
  }
}

void WaveFunctions::gram_schmidt() {
  const int n = nbands();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      const double proj = domain_->dot(band(j), band(i));
      Domain::axpy(-proj, band(j), band(i));
    }
    const double nrm = domain_->norm(band(i));
    GPAWFD_CHECK_MSG(nrm > 1e-14, "linearly dependent band " << i);
    Domain::scale(band(i), 1.0 / nrm);
  }
}

void WaveFunctions::cholesky_orthonormalize() {
  const DenseMatrix s = overlap();
  const DenseMatrix l = cholesky(s);
  // psi <- psi * L^-T  makes the new overlap the identity.
  const DenseMatrix linv = invert_lower(l);
  rotate(linv.transposed());
}

}  // namespace gpawfd::gpaw
