#include "gpaw/wavefunctions.hpp"

#include <cmath>

namespace gpawfd::gpaw {

namespace {
double hash_value(std::uint64_t seed, int band, Vec3 p) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(band) * 0x9e3779b97f4a7c15ULL);
  z ^= static_cast<std::uint64_t>(p.x) + (z << 6) + (z >> 2);
  z ^= static_cast<std::uint64_t>(p.y) + (z << 6) + (z >> 2);
  z ^= static_cast<std::uint64_t>(p.z) + (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}
}  // namespace

void WaveFunctions::randomize(std::uint64_t seed) {
  for (int b = 0; b < nbands(); ++b) {
    domain_->fill(band(b),
                  [&](Vec3 p) { return hash_value(seed, b, p); });
  }
}

DenseMatrix WaveFunctions::overlap() const {
  const int n = nbands();
  // Local partial sums of the upper triangle, then one allreduce.
  std::vector<double> partial(static_cast<std::size_t>(n * (n + 1) / 2), 0.0);
  std::size_t k = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j, ++k) {
      double s = 0;
      const auto& a = band(i);
      const auto& b = band(j);
      a.for_each_interior(
          [&](Vec3 p, const double& v) { s += v * b.at(p); });
      partial[k] = s;
    }
  }
  std::vector<double> global(partial.size());
  domain_->comm().allreduce_sum(partial, global);

  DenseMatrix s(n, n);
  k = 0;
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j, ++k) {
      s(i, j) = global[k] * domain_->dv();
      s(j, i) = s(i, j);
    }
  return s;
}

void WaveFunctions::rotate(const DenseMatrix& u) {
  const int n = nbands();
  GPAWFD_CHECK(u.rows() == n && u.cols() == n);
  // Rotate point-wise: for every grid point, new[j] = sum_i old[i]*u(i,j).
  std::vector<double> old(static_cast<std::size_t>(n));
  const Vec3 shape = domain_->box().shape();
  for (std::int64_t x = 0; x < shape.x; ++x)
    for (std::int64_t y = 0; y < shape.y; ++y)
      for (std::int64_t z = 0; z < shape.z; ++z) {
        for (int i = 0; i < n; ++i) old[static_cast<std::size_t>(i)] = band(i).at(x, y, z);
        for (int j = 0; j < n; ++j) {
          double acc = 0;
          for (int i = 0; i < n; ++i)
            acc += old[static_cast<std::size_t>(i)] * u(i, j);
          band(j).at(x, y, z) = acc;
        }
      }
}

void WaveFunctions::gram_schmidt() {
  const int n = nbands();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      const double proj = domain_->dot(band(j), band(i));
      Domain::axpy(-proj, band(j), band(i));
    }
    const double nrm = domain_->norm(band(i));
    GPAWFD_CHECK_MSG(nrm > 1e-14, "linearly dependent band " << i);
    Domain::scale(band(i), 1.0 / nrm);
  }
}

void WaveFunctions::cholesky_orthonormalize() {
  const DenseMatrix s = overlap();
  const DenseMatrix l = cholesky(s);
  // psi <- psi * L^-T  makes the new overlap the identity.
  const DenseMatrix linv = invert_lower(l);
  rotate(linv.transposed());
}

}  // namespace gpawfd::gpaw
