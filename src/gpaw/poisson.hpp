// Real-space Poisson solver: del^2 phi = -4 pi rho on the distributed
// grid, solved by weighted Jacobi relaxation with the finite-difference
// Laplacian — every iteration is one distributed FD operation, i.e. the
// paper's kernel applied to the electron density's grid.
//
// With periodic boundaries the Laplacian is singular (constants are in
// its null space): the right-hand side is made charge-neutral and the
// solution is pinned to zero mean, the standard jellium convention.
#pragma once

#include <memory>

#include "core/engine.hpp"
#include "gpaw/domain.hpp"
#include "stencil/kernels.hpp"

namespace gpawfd::gpaw {

struct PoissonOptions {
  double omega = 2.0 / 3.0;  // weighted-Jacobi damping
  int max_iterations = 20'000;
  double tolerance = 1e-8;   // relative residual ||r|| / ||b||
};

struct PoissonResult {
  int iterations = 0;
  double relative_residual = 0;
  bool converged = false;
};

class PoissonSolver {
 public:
  using Options = PoissonOptions;
  using Result = PoissonResult;

  explicit PoissonSolver(const Domain& domain, Options options = {})
      : domain_(&domain), opt_(options) {
    sched::JobConfig job;
    job.grid_shape = domain.global_shape();
    job.ngrids = 1;
    job.ghost = domain.ghost();
    job.periodic = domain.periodic();
    plan_ = std::make_unique<sched::RunPlan>(sched::RunPlan::make(
        sched::Approach::kFlatOptimized, job, sched::Optimizations::all_on(1),
        domain.comm().size(), /*cores_per_node=*/1));
    lap_ = stencil::Coeffs::laplacian_spacing(domain.ghost(),
                                              domain.spacing(),
                                              domain.spacing(),
                                              domain.spacing());
    engine_ = std::make_unique<core::DistributedFd<double>>(domain.comm(),
                                                            *plan_, lap_);
  }

  const stencil::Coeffs& laplacian() const { return lap_; }

  /// Solve del^2 phi = -4 pi rho. `phi` is both the initial guess and
  /// the result.
  Result solve(grid::Array3D<double>& phi,
               const grid::Array3D<double>& rho) {
    GPAWFD_CHECK(phi.shape() == domain_->box().shape());
    GPAWFD_CHECK(rho.shape() == domain_->box().shape());

    // b = -4 pi rho, neutralized for periodic solvability.
    grid::Array3D<double> b = domain_->make_field();
    b.for_each_interior([&](Vec3 p, double& v) {
      v = -4.0 * std::numbers::pi * rho.at(p);
    });
    if (domain_->periodic()) domain_->shift(b, -domain_->mean(b));
    const double bnorm = std::max(domain_->norm(b), 1e-300);

    // Two alternating buffers driven through the distributed FD engine.
    std::vector<grid::Array3D<double>> cur(1), next(1);
    cur[0] = std::move(phi);
    next[0] = domain_->make_field();
    const double inv_diag = 1.0 / lap_.center;

    Result res;
    for (res.iterations = 0; res.iterations < opt_.max_iterations;
         ++res.iterations) {
      engine_->apply_all(cur, next);  // halo exchange + next = Lap(cur)
      double local_r2 = 0;
      next[0].for_each_interior([&](Vec3 p, double& v) {
        const double r = b.at(p) - v;  // residual of A u = b
        local_r2 += r * r;
        v = cur[0].at(p) + opt_.omega * inv_diag * r;
      });
      if (domain_->periodic())
        domain_->shift(next[0], -domain_->mean(next[0]));
      std::swap(cur, next);

      res.relative_residual =
          std::sqrt(domain_->comm().allreduce_sum(local_r2) *
                    domain_->dv()) /
          bnorm;
      if (res.relative_residual < opt_.tolerance) {
        res.converged = true;
        ++res.iterations;
        break;
      }
    }
    phi = std::move(cur[0]);
    return res;
  }

 private:
  const Domain* domain_;
  Options opt_;
  stencil::Coeffs lap_;
  std::unique_ptr<sched::RunPlan> plan_;
  std::unique_ptr<core::DistributedFd<double>> engine_;
};

}  // namespace gpawfd::gpaw
