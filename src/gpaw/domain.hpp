// The distributed real-space domain of a mini-GPAW calculation: a global
// uniform grid decomposed over the communicator exactly like GPAW
// decomposes every real-space grid (same subset of every grid on every
// rank), plus the distributed field algebra built on it.
#pragma once

#include <vector>

#include "grid/array3d.hpp"
#include "grid/decomposition.hpp"
#include "mp/comm.hpp"

namespace gpawfd::gpaw {

class Domain {
 public:
  /// Decompose `gshape` (grid spacing `h`, ghost width `ghost`) over all
  /// ranks of `comm`, minimizing the aggregated halo surface.
  Domain(mp::Comm& comm, Vec3 gshape, double h, int ghost = 2,
         bool periodic = true)
      : comm_(&comm),
        decomp_(grid::Decomposition::best(gshape, comm.size(), ghost)),
        coords_(decomp_.coords_of(comm.rank())),
        box_(decomp_.local_box(coords_)),
        h_(h),
        ghost_(ghost),
        periodic_(periodic) {
    GPAWFD_CHECK(h > 0);
  }

  mp::Comm& comm() const { return *comm_; }
  const grid::Decomposition& decomp() const { return decomp_; }
  Vec3 coords() const { return coords_; }
  const grid::Box3& box() const { return box_; }
  Vec3 global_shape() const { return decomp_.global_shape(); }
  double spacing() const { return h_; }
  int ghost() const { return ghost_; }
  bool periodic() const { return periodic_; }
  /// Volume element of one grid point.
  double dv() const { return h_ * h_ * h_; }

  /// A zero-initialized local field (this rank's part of one global grid).
  grid::Array3D<double> make_field() const {
    return grid::Array3D<double>(box_.shape(), ghost_);
  }

  /// Fill a field from a function of the *global* point coordinate
  /// (in grid units).
  template <typename F>
  void fill(grid::Array3D<double>& f, F&& fn) const {
    GPAWFD_CHECK(f.shape() == box_.shape());
    f.for_each_interior(
        [&](Vec3 p, double& v) { v = fn(box_.lo + p); });
  }

  // ---- Distributed field algebra --------------------------------------

  /// Global inner product <a|b> = sum a*b*dv (one allreduce).
  double dot(const grid::Array3D<double>& a,
             const grid::Array3D<double>& b) const {
    GPAWFD_CHECK(a.shape() == box_.shape() && b.shape() == box_.shape());
    double local = 0;
    a.for_each_interior(
        [&](Vec3 p, const double& v) { local += v * b.at(p); });
    return comm_->allreduce_sum(local) * dv();
  }

  double norm(const grid::Array3D<double>& a) const {
    return std::sqrt(dot(a, a));
  }

  /// Global sum of a field (integral / dv).
  double sum(const grid::Array3D<double>& a) const {
    double local = 0;
    a.for_each_interior([&](Vec3, const double& v) { local += v; });
    return comm_->allreduce_sum(local);
  }

  /// Global mean value.
  double mean(const grid::Array3D<double>& a) const {
    return sum(a) / static_cast<double>(global_shape().product());
  }

  /// y += alpha * x (local, no communication).
  static void axpy(double alpha, const grid::Array3D<double>& x,
                   grid::Array3D<double>& y) {
    GPAWFD_CHECK(x.shape() == y.shape());
    y.for_each_interior(
        [&](Vec3 p, double& v) { v += alpha * x.at(p); });
  }

  static void scale(grid::Array3D<double>& x, double s) {
    x.for_each_interior([&](Vec3, double& v) { v *= s; });
  }

  void shift(grid::Array3D<double>& x, double c) const {
    x.for_each_interior([&](Vec3, double& v) { v += c; });
  }

 private:
  mp::Comm* comm_;
  grid::Decomposition decomp_;
  Vec3 coords_;
  grid::Box3 box_;
  double h_;
  int ghost_;
  bool periodic_;
};

}  // namespace gpawfd::gpaw
