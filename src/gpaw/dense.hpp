// Small dense-matrix kernels used by the electronic-structure layer:
// band-by-band overlap/Hamiltonian matrices are tiny (nbands x nbands),
// so a straightforward self-contained implementation is appropriate —
// Cholesky factorization, triangular solves, symmetric eigen-
// decomposition (cyclic Jacobi) and matrix products.
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace gpawfd::gpaw {

/// Dense row-major n x n (or m x n) matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    GPAWFD_CHECK(rows >= 0 && cols >= 0);
  }

  static DenseMatrix identity(int n) {
    DenseMatrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    GPAWFD_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  double operator()(int r, int c) const {
    GPAWFD_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  DenseMatrix transposed() const {
    DenseMatrix t(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
      for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
    GPAWFD_CHECK(a.cols_ == b.rows_);
    DenseMatrix out(a.rows_, b.cols_);
    for (int i = 0; i < a.rows_; ++i)
      for (int k = 0; k < a.cols_; ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        for (int j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
      }
    return out;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// In-place lower Cholesky factor of a symmetric positive-definite
/// matrix: returns L with A = L L^T. Throws on a non-SPD input.
DenseMatrix cholesky(const DenseMatrix& a);

/// Solve L x = b (forward substitution) for lower-triangular L.
std::vector<double> solve_lower(const DenseMatrix& l,
                                std::vector<double> b);

/// Inverse of a lower-triangular matrix.
DenseMatrix invert_lower(const DenseMatrix& l);

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi
/// rotation method: A = V diag(w) V^T, eigenvalues ascending.
struct EigenResult {
  std::vector<double> values;
  DenseMatrix vectors;  // column j is the eigenvector of values[j]
};
EigenResult jacobi_eigensolver(DenseMatrix a, int max_sweeps = 64,
                               double tol = 1e-13);

}  // namespace gpawfd::gpaw
