// RMM-DIIS eigensolver — the residual-minimization scheme production
// GPAW uses for the Kohn-Sham states. Per outer iteration:
//
//   1. Rayleigh-Ritz (orthonormalize + subspace diagonalization).
//   2. Per band: residual R = H psi - lambda psi; precondition
//      (a few damped Jacobi sweeps of the kinetic operator, GPAW-style);
//      take the residual-minimizing step
//         psi <- psi + alpha * K R,  alpha = -<R, dR> / <dR, dR>
//      where dR is the residual change of a unit trial step.
//
// Compared to the Chebyshev filter (eigensolver.hpp) it needs fewer
// H applications per iteration but more iterations; both are provided
// because the paper's workload — FD stencils over thousands of grids —
// is exactly what these solvers generate.
#pragma once

#include "gpaw/eigensolver.hpp"
#include "gpaw/hamiltonian.hpp"
#include "gpaw/wavefunctions.hpp"

namespace gpawfd::gpaw {

struct RmmDiisOptions {
  int max_iterations = 100;
  double tolerance = 1e-8;     // max |eigenvalue change|
  int precondition_sweeps = 2; // Jacobi sweeps on the kinetic operator
  double precondition_shift = 0.5;
  /// Chebyshev-filtered iterations to seed the subspace near the lowest
  /// states before refining. Residual minimization converges to the
  /// eigenvectors *nearest* its starting subspace, so — like production
  /// GPAW, which seeds from an LCAO guess — it must not start from pure
  /// noise.
  int seed_iterations = 4;
};

struct RmmDiisResult {
  std::vector<double> eigenvalues;
  std::vector<double> residual_norms;
  int iterations = 0;
  bool converged = false;
};

namespace detail {

/// GPAW-style kinetic preconditioner: approximately solve
/// (T + shift) x = r with a few damped Jacobi sweeps, smoothing the
/// high-frequency error the residual is dominated by. Communication-free
/// (zero ghosts): a local smoother is exactly what a preconditioner may
/// be. Each sweep is one fused jacobi_step of the shifted operator
/// (stencil + update in a single pass over the grid).
inline void precondition(const Domain& d, const stencil::Coeffs& kinetic,
                         double shift, int sweeps,
                         const grid::Array3D<double>& r,
                         grid::Array3D<double>& x,
                         grid::Array3D<double>& scratch) {
  x.fill(0.0);
  for (int s = 0; s < sweeps; ++s) {
    x.fill_ghosts(0.0);
    stencil::jacobi_step(x, r, scratch, kinetic, 0.7, shift);
    std::swap(x, scratch);
  }
  (void)d;
}

}  // namespace detail

inline RmmDiisResult rmm_diis_solve(Hamiltonian& h, WaveFunctions& wfs,
                                    RmmDiisOptions opt = {}) {
  const Domain& d = wfs.domain();
  const int n = wfs.nbands();

  auto make_set = [&](int count) {
    std::vector<grid::Array3D<double>> s(static_cast<std::size_t>(count));
    for (auto& f : s) f = d.make_field();
    return s;
  };
  auto hpsi = make_set(n);
  grid::Array3D<double> pr = d.make_field();       // preconditioned residual
  grid::Array3D<double> scratch = d.make_field();
  auto trial = make_set(n);                        // K R per band
  auto htrial = make_set(n);

  RmmDiisResult res;
  res.eigenvalues.assign(static_cast<std::size_t>(n), 1e300);
  res.residual_norms.assign(static_cast<std::size_t>(n), 1e300);
  wfs.cholesky_orthonormalize();

  if (opt.seed_iterations > 0) {
    EigensolverOptions seed;
    seed.max_iterations = opt.seed_iterations;
    seed.tolerance = 0;  // always run the full seeding budget
    solve_lowest_eigenstates(h, wfs, seed);
  }

  for (res.iterations = 1; res.iterations <= opt.max_iterations;
       ++res.iterations) {
    // Rayleigh-Ritz. Blocked assembly + one allreduce (the per-pair
    // d.dot form costs n^2 allreduces and streams each grid n times).
    h.apply(wfs.storage(), hpsi);
    const DenseMatrix hsub =
        overlap_matrix(d, wfs.storage(), hpsi, /*symmetric=*/true);
    const EigenResult eig = jacobi_eigensolver(hsub);
    wfs.rotate(eig.vectors);

    double delta = 0;
    for (int b = 0; b < n; ++b)
      delta = std::max(delta,
                       std::fabs(eig.values[static_cast<std::size_t>(b)] -
                                 res.eigenvalues[static_cast<std::size_t>(b)]));
    res.eigenvalues = eig.values;
    if (delta < opt.tolerance) {
      res.converged = true;
      break;
    }

    // Residual step per band. One batched H application computes the
    // residual change of every band's trial direction.
    h.apply(wfs.storage(), hpsi);
    for (int b = 0; b < n; ++b) {
      const double lambda = res.eigenvalues[static_cast<std::size_t>(b)];
      // R = H psi - lambda psi (stored into hpsi in place).
      auto& r = hpsi[static_cast<std::size_t>(b)];
      const auto& psi = wfs.band(b);
      r.for_each_interior(
          [&](Vec3 p, double& v) { v -= lambda * psi.at(p); });
      res.residual_norms[static_cast<std::size_t>(b)] = d.norm(r);
      detail::precondition(d, h.kinetic_coeffs(), opt.precondition_shift,
                           opt.precondition_sweeps, r, pr, scratch);
      trial[static_cast<std::size_t>(b)]
          .for_each_interior([&](Vec3 p, double& v) { v = pr.at(p); });
    }
    h.apply(trial, htrial);
    for (int b = 0; b < n; ++b) {
      const double lambda = res.eigenvalues[static_cast<std::size_t>(b)];
      // dR = (H - lambda) K R; optimal step alpha = -<R,dR>/<dR,dR>.
      auto& dr = htrial[static_cast<std::size_t>(b)];
      const auto& kr = trial[static_cast<std::size_t>(b)];
      dr.for_each_interior(
          [&](Vec3 p, double& v) { v -= lambda * kr.at(p); });
      const double num = d.dot(hpsi[static_cast<std::size_t>(b)], dr);
      const double den = d.dot(dr, dr);
      const double alpha = den > 1e-300 ? -num / den : 0.0;
      Domain::axpy(alpha, kr, wfs.band(b));
    }
    wfs.cholesky_orthonormalize();
  }
  return res;
}

}  // namespace gpawfd::gpaw
