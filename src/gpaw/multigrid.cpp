#include "gpaw/multigrid.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace gpawfd::gpaw {

MultigridPoissonSolver::Level::Level(grid::Decomposition d, Vec3 c,
                                     double spacing, mp::Comm& comm,
                                     int tag_base)
    : decomp(std::move(d)),
      coords(c),
      box(decomp.local_box(c)),
      h(spacing),
      lap(stencil::Coeffs::laplacian_spacing(decomp.ghost(), spacing,
                                             spacing, spacing)),
      u(box.shape(), decomp.ghost()),
      rhs(box.shape(), decomp.ghost()),
      work(box.shape(), decomp.ghost()) {
  halo = std::make_unique<core::HaloExchanger<double>>(
      comm, decomp, coords, core::face_neighbors(decomp, coords),
      /*periodic=*/true, tag_base);
}

MultigridPoissonSolver::MultigridPoissonSolver(const Domain& domain,
                                               MultigridOptions opt)
    : domain_(&domain), opt_(opt) {
  GPAWFD_CHECK_MSG(domain.periodic(),
                   "multigrid solver currently requires periodic boundaries");
  const Vec3 pgrid = domain.decomp().process_grid();
  Vec3 shape = domain.global_shape();
  double h = domain.spacing();
  int level = 0;
  for (;;) {
    grid::Decomposition d(shape, pgrid, domain.ghost());
    levels_.push_back(std::make_unique<Level>(
        std::move(d), domain.coords(), h, domain.comm(), level * 64));
    // Coarsen while every extent stays aligned with the process grid and
    // the local boxes stay big enough.
    bool can_coarsen = true;
    for (int dim = 0; dim < 3; ++dim) {
      if (shape[dim] % (2 * pgrid[dim]) != 0) can_coarsen = false;
      if (shape[dim] / (2 * pgrid[dim]) < opt_.min_local_extent)
        can_coarsen = false;
    }
    if (!can_coarsen) break;
    shape = shape / Vec3{2, 2, 2};
    h *= 2.0;
    ++level;
  }
}

void MultigridPoissonSolver::exchange(Level& lvl, grid::Array3D<double>& f) {
  grid::Array3D<double>* one[1] = {&f};
  lvl.halo->begin(std::span<grid::Array3D<double>* const>(one, 1), 0);
  lvl.halo->finish(std::span<grid::Array3D<double>* const>(one, 1), 0);
}

void MultigridPoissonSolver::smooth(Level& lvl, int sweeps) {
  for (int s = 0; s < sweeps; ++s) {
    exchange(lvl, lvl.u);
    stencil::jacobi_step(lvl.u, lvl.rhs, lvl.work, lvl.lap, opt_.omega);
    std::swap(lvl.u, lvl.work);
  }
}

void MultigridPoissonSolver::residual(Level& lvl) {
  // Fused: work = rhs - A u in one sweep (the old form applied the
  // stencil and then made a second full pass to subtract).
  exchange(lvl, lvl.u);
  stencil::residual(lvl.u, lvl.rhs, lvl.work, lvl.lap);
}

void MultigridPoissonSolver::restrict_to(Level& fine, Level& coarse) {
  // Full weighting: 1-D weights (1/4, 1/2, 1/4) in each dimension,
  // separably: the nine (x, y) fine rows around a coarse row are combined
  // once into a contiguous buffer (vectorizable axpys over raw strided
  // pointers), then the z-weights read that buffer — 9 row passes + a
  // cheap gather instead of 27 triple-indexed loads per coarse point.
  exchange(fine, fine.work);
  const Vec3 nc = coarse.box.shape();
  const std::int64_t fsx = fine.work.stride_x();
  const std::int64_t fsy = fine.work.stride_y();
  const double* fw = fine.work.interior();
  const std::int64_t csx = coarse.rhs.stride_x();
  const std::int64_t csy = coarse.rhs.stride_y();
  double* cr = coarse.rhs.interior();
  // buf[i] = xy-combined fine value at z = i - 1 (z = -1 is the ghost).
  const std::int64_t len = 2 * nc.z + 1;
  std::vector<double> buf(static_cast<std::size_t>(len));
  constexpr double kW1d[3] = {0.25, 0.5, 0.25};
  for (std::int64_t X = 0; X < nc.x; ++X) {
    for (std::int64_t Y = 0; Y < nc.y; ++Y) {
      const double* base = fw + 2 * X * fsx + 2 * Y * fsy - 1;
      double* __restrict acc = buf.data();
      std::fill(buf.begin(), buf.end(), 0.0);
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          const double w = kW1d[dx + 1] * kW1d[dy + 1];
          const double* __restrict row = base + dx * fsx + dy * fsy;
          for (std::int64_t i = 0; i < len; ++i) acc[i] += w * row[i];
        }
      }
      double* __restrict out = cr + X * csx + Y * csy;
      for (std::int64_t Z = 0; Z < nc.z; ++Z)
        out[Z] = 0.25 * acc[2 * Z] + 0.5 * acc[2 * Z + 1] +
                 0.25 * acc[2 * Z + 2];
    }
  }
  coarse.u.fill(0.0);
}

void MultigridPoissonSolver::prolong_add(Level& coarse, Level& fine) {
  exchange(coarse, coarse.u);
  const Vec3 nf = fine.box.shape();
  for (std::int64_t x = 0; x < nf.x; ++x) {
    const std::int64_t X = x / 2;
    const bool ox = (x % 2) != 0;
    for (std::int64_t y = 0; y < nf.y; ++y) {
      const std::int64_t Y = y / 2;
      const bool oy = (y % 2) != 0;
      for (std::int64_t z = 0; z < nf.z; ++z) {
        const std::int64_t Z = z / 2;
        const bool oz = (z % 2) != 0;
        double v = 0;
        for (int dx = 0; dx <= (ox ? 1 : 0); ++dx)
          for (int dy = 0; dy <= (oy ? 1 : 0); ++dy)
            for (int dz = 0; dz <= (oz ? 1 : 0); ++dz)
              v += coarse.u.at(X + dx, Y + dy, Z + dz);
        v /= static_cast<double>((ox ? 2 : 1) * (oy ? 2 : 1) * (oz ? 2 : 1));
        fine.u.at(x, y, z) += v;
      }
    }
  }
}

double MultigridPoissonSolver::global_norm(const Level& /*lvl*/,
                                           const grid::Array3D<double>& f) {
  double local = 0;
  f.for_each_interior([&](Vec3, const double& v) { local += v * v; });
  return std::sqrt(domain_->comm().allreduce_sum(local));
}

void MultigridPoissonSolver::remove_mean(Level& lvl,
                                         grid::Array3D<double>& f) {
  double local = 0;
  f.for_each_interior([&](Vec3, const double& v) { local += v; });
  const double mean =
      domain_->comm().allreduce_sum(local) /
      static_cast<double>(lvl.decomp.global_shape().product());
  f.for_each_interior([&](Vec3, double& v) { v -= mean; });
}

void MultigridPoissonSolver::vcycle(std::size_t l) {
  Level& lvl = *levels_[l];
  if (l + 1 == levels_.size()) {
    smooth(lvl, opt_.coarse_sweeps);
    return;
  }
  smooth(lvl, opt_.pre_smooth);
  residual(lvl);
  restrict_to(lvl, *levels_[l + 1]);
  vcycle(l + 1);
  prolong_add(*levels_[l + 1], lvl);
  smooth(lvl, opt_.post_smooth);
}

MultigridResult MultigridPoissonSolver::solve(
    grid::Array3D<double>& phi, const grid::Array3D<double>& rho) {
  Level& top = *levels_[0];
  GPAWFD_CHECK(phi.shape() == top.box.shape());
  GPAWFD_CHECK(rho.shape() == top.box.shape());

  top.rhs.for_each_interior([&](Vec3 p, double& v) {
    v = -4.0 * std::numbers::pi * rho.at(p);
  });
  remove_mean(top, top.rhs);
  const double bnorm = std::max(global_norm(top, top.rhs), 1e-300);
  top.u.for_each_interior([&](Vec3 p, double& v) { v = phi.at(p); });

  MultigridResult res;
  for (res.cycles = 1; res.cycles <= opt_.max_cycles; ++res.cycles) {
    vcycle(0);
    remove_mean(top, top.u);
    residual(top);
    res.relative_residual = global_norm(top, top.work) / bnorm;
    if (res.relative_residual < opt_.tolerance) {
      res.converged = true;
      break;
    }
  }
  phi.for_each_interior([&](Vec3 p, double& v) { v = top.u.at(p); });
  return res;
}

}  // namespace gpawfd::gpaw
