// Lowest-eigenstate solver: Chebyshev-filtered subspace iteration with
// Rayleigh-Ritz — the scheme used by real-space electronic-structure
// codes (PARSEC/ChASE style). Plain (shifted) subspace iteration crawls
// on grid Hamiltonians because the kinetic spectral radius ~1/h^2 dwarfs
// the gaps between the lowest states; a degree-m Chebyshev polynomial
// that damps the unwanted interval [a, b] amplifies the wanted states by
// cosh(m*acosh(|t|)) instead and converges in tens of outer iterations.
//
//   repeat:  Rayleigh-Ritz  (orthonormalize, H-subspace, rotate)
//            filter: psi <- T_m( (H - c I)/e ) psi   with [a,b] mapped
//                    to [-1,1], a = largest Ritz value, b = upper bound
#pragma once

#include "gpaw/hamiltonian.hpp"
#include "gpaw/wavefunctions.hpp"

namespace gpawfd::gpaw {

struct EigensolverOptions {
  int max_iterations = 100;  // outer (filter + Rayleigh-Ritz) iterations
  int chebyshev_degree = 8;  // 1 recovers plain shifted subspace iteration
  /// Convergence: max |change of eigenvalue| between outer iterations.
  double tolerance = 1e-8;
};

struct EigensolverResult {
  std::vector<double> eigenvalues;
  int iterations = 0;
  bool converged = false;
};

namespace detail {

/// psi <- T_m((H - c)/e) psi via the three-term recurrence. Bands are
/// renormalized afterwards (the filter amplifies the lowest states by
/// orders of magnitude, which would wreck the overlap's conditioning).
inline void chebyshev_filter(Hamiltonian& h, WaveFunctions& wfs, int degree,
                             double a, double b) {
  GPAWFD_CHECK(degree >= 1);
  GPAWFD_CHECK(a < b);
  const Domain& d = wfs.domain();
  const double e = (b - a) / 2.0;
  const double c = (b + a) / 2.0;
  const int n = wfs.nbands();

  auto make_set = [&] {
    std::vector<grid::Array3D<double>> s(static_cast<std::size_t>(n));
    for (auto& f : s) f = d.make_field();
    return s;
  };
  std::vector<grid::Array3D<double>> hx = make_set();
  std::vector<grid::Array3D<double>> prev = make_set();

  // X1 = (H X0 - c X0) / e; keep X0 in `prev`.
  h.apply(wfs.storage(), hx);
  for (int i = 0; i < n; ++i) {
    auto& p = wfs.band(i);
    auto& pr = prev[static_cast<std::size_t>(i)];
    const auto& hp = hx[static_cast<std::size_t>(i)];
    p.for_each_interior([&](Vec3 q, double& v) {
      pr.at(q) = v;
      v = (hp.at(q) - c * v) / e;
    });
  }
  // Xj = (2/e)(H X_{j-1} - c X_{j-1}) - X_{j-2}.
  for (int j = 2; j <= degree; ++j) {
    h.apply(wfs.storage(), hx);
    for (int i = 0; i < n; ++i) {
      auto& p = wfs.band(i);
      auto& pr = prev[static_cast<std::size_t>(i)];
      const auto& hp = hx[static_cast<std::size_t>(i)];
      p.for_each_interior([&](Vec3 q, double& v) {
        const double next = 2.0 * (hp.at(q) - c * v) / e - pr.at(q);
        pr.at(q) = v;
        v = next;
      });
    }
  }
  for (int i = 0; i < n; ++i) {
    const double nrm = d.norm(wfs.band(i));
    if (nrm > 0) Domain::scale(wfs.band(i), 1.0 / nrm);
  }
}

}  // namespace detail

/// Drive `wfs` (pre-initialized, e.g. randomized) to the lowest
/// eigenstates of `h`. On return the bands are orthonormal Ritz vectors.
inline EigensolverResult solve_lowest_eigenstates(
    Hamiltonian& h, WaveFunctions& wfs, EigensolverOptions opt = {}) {
  const Domain& domain = wfs.domain();
  const int n = wfs.nbands();
  const double upper = h.spectral_upper_bound() + 1e-3;

  std::vector<grid::Array3D<double>> hpsi(static_cast<std::size_t>(n));
  for (auto& f : hpsi) f = domain.make_field();

  EigensolverResult res;
  res.eigenvalues.assign(static_cast<std::size_t>(n), 1e300);
  wfs.cholesky_orthonormalize();

  for (res.iterations = 1; res.iterations <= opt.max_iterations;
       ++res.iterations) {
    // Rayleigh-Ritz in the current subspace: blocked overlap assembly
    // with one allreduce instead of n^2 per-pair dots.
    h.apply(wfs.storage(), hpsi);
    const DenseMatrix hsub =
        overlap_matrix(domain, wfs.storage(), hpsi, /*symmetric=*/true);
    const EigenResult eig = jacobi_eigensolver(hsub);
    wfs.rotate(eig.vectors);

    double delta = 0;
    for (int b = 0; b < n; ++b)
      delta = std::max(delta,
                       std::fabs(eig.values[static_cast<std::size_t>(b)] -
                                 res.eigenvalues[static_cast<std::size_t>(b)]));
    res.eigenvalues = eig.values;
    if (delta < opt.tolerance) {
      res.converged = true;
      break;
    }

    // Damp everything above the current Ritz block.
    double a = res.eigenvalues.back();
    const double width = upper - a;
    GPAWFD_CHECK_MSG(width > 0, "filter window collapsed");
    a += 0.01 * width;  // keep the top Ritz value just inside the pass band
    detail::chebyshev_filter(h, wfs, opt.chebyshev_degree, a, upper);
    wfs.cholesky_orthonormalize();
  }
  return res;
}

}  // namespace gpawfd::gpaw
