#include "gpaw/dense.hpp"

#include <algorithm>
#include <numeric>

namespace gpawfd::gpaw {

DenseMatrix cholesky(const DenseMatrix& a) {
  GPAWFD_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  DenseMatrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    GPAWFD_CHECK_MSG(d > 0.0, "matrix not positive definite at pivot " << j);
    l(j, j) = std::sqrt(d);
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

std::vector<double> solve_lower(const DenseMatrix& l, std::vector<double> b) {
  const int n = l.rows();
  GPAWFD_CHECK(l.cols() == n && std::ssize(b) == n);
  for (int i = 0; i < n; ++i) {
    double s = b[static_cast<std::size_t>(i)];
    for (int k = 0; k < i; ++k) s -= l(i, k) * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  return b;
}

DenseMatrix invert_lower(const DenseMatrix& l) {
  const int n = l.rows();
  GPAWFD_CHECK(l.cols() == n);
  DenseMatrix inv(n, n);
  for (int col = 0; col < n; ++col) {
    std::vector<double> e(static_cast<std::size_t>(n), 0.0);
    e[static_cast<std::size_t>(col)] = 1.0;
    const auto x = solve_lower(l, std::move(e));
    for (int row = 0; row < n; ++row)
      inv(row, col) = x[static_cast<std::size_t>(row)];
  }
  return inv;
}

EigenResult jacobi_eigensolver(DenseMatrix a, int max_sweeps, double tol) {
  GPAWFD_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  DenseMatrix v = DenseMatrix::identity(n);

  auto off_norm = [&] {
    double s = 0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol; ++sweep) {
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // A <- J^T A J with the (p, q) rotation J.
        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return a(x, x) < a(y, y); });
  EigenResult res;
  res.values.resize(static_cast<std::size_t>(n));
  res.vectors = DenseMatrix(n, n);
  for (int j = 0; j < n; ++j) {
    res.values[static_cast<std::size_t>(j)] =
        a(order[static_cast<std::size_t>(j)], order[static_cast<std::size_t>(j)]);
    for (int i = 0; i < n; ++i)
      res.vectors(i, j) = v(i, order[static_cast<std::size_t>(j)]);
  }
  return res;
}

}  // namespace gpawfd::gpaw
