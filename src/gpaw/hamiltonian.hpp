// The grid Hamiltonian H = -1/2 del^2 + V(r) applied to whole
// wave-function sets. The kinetic term is exactly the paper's workload:
// the distributed 13-point finite-difference stencil applied to every
// grid in the set through the DistributedFd engine (batched, overlapped).
#pragma once

#include <memory>

#include "core/engine.hpp"
#include "gpaw/domain.hpp"

namespace gpawfd::gpaw {

class Hamiltonian {
 public:
  /// `potential` is this rank's part of V(r); `nbands` fixes the set
  /// size the engine is planned for. `opt` controls the section V
  /// optimizations used for the halo exchange (defaults to all on).
  Hamiltonian(const Domain& domain, grid::Array3D<double> potential,
              int nbands,
              sched::Optimizations opt = sched::Optimizations::all_on(8))
      : domain_(&domain), potential_(std::move(potential)) {
    GPAWFD_CHECK(potential_.shape() == domain.box().shape());
    sched::JobConfig job;
    job.grid_shape = domain.global_shape();
    job.ngrids = nbands;
    job.ghost = domain.ghost();
    job.periodic = domain.periodic();
    plan_ = std::make_unique<sched::RunPlan>(sched::RunPlan::make(
        sched::Approach::kFlatOptimized, job, opt, domain.comm().size(),
        /*cores_per_node=*/1));
    // Kinetic operator: -1/2 * Laplacian at the domain's grid spacing.
    stencil::Coeffs lap = stencil::Coeffs::laplacian_spacing(
        domain.ghost(), domain.spacing(), domain.spacing(),
        domain.spacing());
    kinetic_ = lap;
    kinetic_.center *= -0.5;
    for (auto& axis : kinetic_.axis)
      for (double& c : axis) c *= -0.5;
    engine_ = std::make_unique<core::DistributedFd<double>>(domain.comm(),
                                                            *plan_, kinetic_);
  }

  const stencil::Coeffs& kinetic_coeffs() const { return kinetic_; }
  const grid::Array3D<double>& potential() const { return potential_; }

  /// hpsi[b] = H psi[b] for every band. psi ghosts are clobbered by the
  /// halo exchange.
  void apply(std::vector<grid::Array3D<double>>& psi,
             std::vector<grid::Array3D<double>>& hpsi) {
    GPAWFD_CHECK(psi.size() == hpsi.size());
    engine_->apply_all(psi, hpsi);  // kinetic part, batched + overlapped
    for (std::size_t b = 0; b < psi.size(); ++b) {
      auto& h = hpsi[b];
      const auto& p = psi[b];
      h.for_each_interior([&](Vec3 q, double& v) {
        v += potential_.at(q) * p.at(q);
      });
    }
  }

  /// Upper bound on the largest eigenvalue (Gershgorin on the stencil
  /// plus the potential maximum) — used to shift the spectrum so that
  /// subspace iteration converges to the *lowest* states.
  double spectral_upper_bound() const {
    double radius = 0;
    for (const auto& axis : kinetic_.axis)
      for (double c : axis) radius += 2.0 * std::fabs(c);
    double vmax_local = -1e300;
    potential_.for_each_interior(
        [&](Vec3, const double& v) { vmax_local = std::max(vmax_local, v); });
    // Global max via allgather (the collective layer only sums).
    std::vector<double> all(static_cast<std::size_t>(domain_->comm().size()));
    domain_->comm().allgather(
        std::as_bytes(std::span<const double>(&vmax_local, 1)),
        std::as_writable_bytes(std::span<double>(all)));
    double vmax = -1e300;
    for (double v : all) vmax = std::max(vmax, v);
    return kinetic_.center + radius + vmax;
  }

 private:
  const Domain* domain_;
  grid::Array3D<double> potential_;
  stencil::Coeffs kinetic_;
  std::unique_ptr<sched::RunPlan> plan_;
  std::unique_ptr<core::DistributedFd<double>> engine_;
};

}  // namespace gpawfd::gpaw
