// Wave-function sets and their orthonormalization.
//
// GPAW keeps thousands of wave functions, all decomposed identically —
// orthogonalization needs the same subset of *every* grid on every rank
// (the constraint that rules out the sub-group partitioning of section
// VII). Overlap matrices are assembled with one allreduce; rotations are
// rank-local.
#pragma once

#include <span>
#include <vector>

#include "gpaw/dense.hpp"
#include "gpaw/domain.hpp"

namespace gpawfd::gpaw {

/// Cache-blocked distributed overlap assembly: S(i, j) = <a_i | b_j> =
/// sum a_i * b_j * dv for every pair, with ONE allreduce of the whole
/// matrix (the naive per-pair form costs n^2 allreduces). Bands are
/// visited in tiles so each grid row is streamed once for a whole tile's
/// worth of SIMD dot products instead of once per pair. With
/// `symmetric` (valid when <a_i|b_j> == <a_j|b_i>, e.g. b = a or
/// b = H a with Hermitian H) only the upper triangle is computed and
/// mirrored. All fields must share the domain's shape and ghost width.
DenseMatrix overlap_matrix(const Domain& d,
                           std::span<const grid::Array3D<double>> a,
                           std::span<const grid::Array3D<double>> b,
                           bool symmetric);

class WaveFunctions {
 public:
  WaveFunctions(const Domain& domain, int nbands)
      : domain_(&domain), bands_(static_cast<std::size_t>(nbands)) {
    GPAWFD_CHECK(nbands >= 1);
    for (auto& b : bands_) b = domain.make_field();
  }

  int nbands() const { return static_cast<int>(bands_.size()); }
  const Domain& domain() const { return *domain_; }
  grid::Array3D<double>& band(int i) {
    return bands_[static_cast<std::size_t>(i)];
  }
  const grid::Array3D<double>& band(int i) const {
    return bands_[static_cast<std::size_t>(i)];
  }
  std::vector<grid::Array3D<double>>& storage() { return bands_; }

  /// Deterministic pseudo-random initialization (consistent across any
  /// decomposition: values depend on global coordinates only).
  void randomize(std::uint64_t seed);

  /// Overlap matrix S_ij = <psi_i | psi_j> (blocked assembly, one
  /// allreduce).
  DenseMatrix overlap() const;

  /// In-place rotation psi_j <- sum_i psi_i * u(i, j).
  void rotate(const DenseMatrix& u);

  /// Modified Gram-Schmidt orthonormalization (n^2 distributed dots).
  void gram_schmidt();

  /// Cholesky (Loewdin-style) orthonormalization: S = L L^T,
  /// psi <- psi L^-T. One overlap allreduce + local rotation; this is
  /// how GPAW actually orthonormalizes large band counts.
  void cholesky_orthonormalize();

 private:
  const Domain* domain_;
  std::vector<grid::Array3D<double>> bands_;
};

}  // namespace gpawfd::gpaw
