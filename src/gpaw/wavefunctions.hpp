// Wave-function sets and their orthonormalization.
//
// GPAW keeps thousands of wave functions, all decomposed identically —
// orthogonalization needs the same subset of *every* grid on every rank
// (the constraint that rules out the sub-group partitioning of section
// VII). Overlap matrices are assembled with one allreduce; rotations are
// rank-local.
#pragma once

#include <vector>

#include "gpaw/dense.hpp"
#include "gpaw/domain.hpp"

namespace gpawfd::gpaw {

class WaveFunctions {
 public:
  WaveFunctions(const Domain& domain, int nbands)
      : domain_(&domain), bands_(static_cast<std::size_t>(nbands)) {
    GPAWFD_CHECK(nbands >= 1);
    for (auto& b : bands_) b = domain.make_field();
  }

  int nbands() const { return static_cast<int>(bands_.size()); }
  const Domain& domain() const { return *domain_; }
  grid::Array3D<double>& band(int i) {
    return bands_[static_cast<std::size_t>(i)];
  }
  const grid::Array3D<double>& band(int i) const {
    return bands_[static_cast<std::size_t>(i)];
  }
  std::vector<grid::Array3D<double>>& storage() { return bands_; }

  /// Deterministic pseudo-random initialization (consistent across any
  /// decomposition: values depend on global coordinates only).
  void randomize(std::uint64_t seed);

  /// Overlap matrix S_ij = <psi_i | psi_j> (one allreduce of n^2/2 sums).
  DenseMatrix overlap() const;

  /// In-place rotation psi_j <- sum_i psi_i * u(i, j).
  void rotate(const DenseMatrix& u);

  /// Modified Gram-Schmidt orthonormalization (n^2 distributed dots).
  void gram_schmidt();

  /// Cholesky (Loewdin-style) orthonormalization: S = L L^T,
  /// psi <- psi L^-T. One overlap allreduce + local rotation; this is
  /// how GPAW actually orthonormalizes large band counts.
  void cholesky_orthonormalize();

 private:
  const Domain* domain_;
  std::vector<grid::Array3D<double>> bands_;
};

}  // namespace gpawfd::gpaw
