// Self-consistent field loop (Hartree level): the full mini-GPAW
// calculation. Iterates
//
//   H[rho] = T + V_ext + V_H[rho]   ->  lowest states (Chebyshev solver)
//   rho'   = sum_b f_b |psi_b|^2    ->  linear mixing
//   V_H    = Poisson(rho)           (multigrid)
//
// until the density stops changing. Exchange-correlation is omitted —
// the paper's workload only needs the grid operations, and Hartree
// theory exercises every one of them: the FD stencil on every band, the
// Poisson solve on the density, distributed inner products and
// orthonormalization.
#pragma once

#include "gpaw/eigensolver.hpp"
#include "gpaw/multigrid.hpp"

namespace gpawfd::gpaw {

struct ScfOptions {
  int max_scf_iterations = 50;
  double density_tolerance = 1e-6;  // ||rho' - rho|| * dv
  double mixing = 0.3;              // linear density mixing factor
  EigensolverOptions eigensolver;
  MultigridOptions poisson;
};

struct ScfResult {
  std::vector<double> eigenvalues;
  /// Band-structure energy sum_b f_b eps_b minus the Hartree double
  /// counting 1/2 int VH rho — the Hartree total energy (no XC).
  double total_energy = 0;
  double density_change = 0;
  int iterations = 0;
  bool converged = false;
};

class ScfLoop {
 public:
  /// `occupations[b]`: electrons in band b (e.g. 2.0 for a closed shell).
  ScfLoop(const Domain& domain, grid::Array3D<double> external_potential,
          std::vector<double> occupations, ScfOptions opt = {})
      : domain_(&domain),
        vext_(std::move(external_potential)),
        occ_(std::move(occupations)),
        opt_(opt),
        poisson_(domain, opt.poisson) {
    GPAWFD_CHECK(!occ_.empty());
    GPAWFD_CHECK(vext_.shape() == domain.box().shape());
  }

  ScfResult run(WaveFunctions& wfs) {
    const Domain& d = *domain_;
    const int n = wfs.nbands();
    GPAWFD_CHECK(std::ssize(occ_) == n);

    grid::Array3D<double> rho = d.make_field();
    grid::Array3D<double> rho_new = d.make_field();
    grid::Array3D<double> vh = d.make_field();

    ScfResult res;
    for (res.iterations = 1; res.iterations <= opt_.max_scf_iterations;
         ++res.iterations) {
      // Effective potential and eigenstates.
      grid::Array3D<double> veff = d.make_field();
      veff.for_each_interior(
          [&](Vec3 p, double& v) { v = vext_.at(p) + vh.at(p); });
      Hamiltonian h(d, std::move(veff), n);
      const auto eres = solve_lowest_eigenstates(h, wfs, opt_.eigensolver);
      res.eigenvalues = eres.eigenvalues;

      // New density.
      rho_new.fill(0.0);
      for (int b = 0; b < n; ++b) {
        const double f = occ_[static_cast<std::size_t>(b)];
        const auto& psi = wfs.band(b);
        rho_new.for_each_interior(
            [&](Vec3 p, double& v) { v += f * psi.at(p) * psi.at(p); });
      }

      // Convergence on the density change.
      double local = 0;
      rho_new.for_each_interior([&](Vec3 p, const double& v) {
        const double diff = v - rho.at(p);
        local += diff * diff;
      });
      res.density_change =
          std::sqrt(d.comm().allreduce_sum(local) * d.dv());

      // Mix and re-solve the Hartree potential.
      rho.for_each_interior([&](Vec3 p, double& v) {
        v = (1.0 - opt_.mixing) * v + opt_.mixing * rho_new.at(p);
      });
      const auto pres = poisson_.solve(vh, rho);
      GPAWFD_CHECK_MSG(pres.converged, "Hartree Poisson solve stalled");

      if (res.density_change < opt_.density_tolerance) {
        res.converged = true;
        break;
      }
    }

    // Hartree total energy: sum f_b eps_b - 1/2 int VH rho.
    double band_energy = 0;
    for (int b = 0; b < n; ++b)
      band_energy += occ_[static_cast<std::size_t>(b)] *
                     res.eigenvalues[static_cast<std::size_t>(b)];
    res.total_energy = band_energy - 0.5 * d.dot(vh, rho);
    return res;
  }

 private:
  const Domain* domain_;
  grid::Array3D<double> vext_;
  std::vector<double> occ_;
  ScfOptions opt_;
  MultigridPoissonSolver poisson_;
};

}  // namespace gpawfd::gpaw
