// Geometric multigrid Poisson solver — what production GPAW actually
// uses for the Hartree potential. V-cycles over a hierarchy of
// distributed grids: weighted-Jacobi smoothing (each sweep is one
// distributed FD operation), full-weighting restriction, trilinear
// prolongation, and a Jacobi-saturated coarsest level.
//
// Every level keeps the finest level's process grid, so restriction and
// prolongation are rank-local (only halo exchanges communicate) — the
// same design choice real-space DFT codes make.
#pragma once

#include <memory>
#include <vector>

#include "core/halo.hpp"
#include "gpaw/domain.hpp"
#include "stencil/kernels.hpp"

namespace gpawfd::gpaw {

struct MultigridOptions {
  // Defaults tuned for the 4th-order 13-point Laplacian, whose
  // high-frequency smoothing under point-Jacobi is weaker than the
  // classic 7-point operator's (hence 3 sweeps and omega 0.8).
  int pre_smooth = 3;        // Jacobi sweeps before coarsening
  int post_smooth = 3;       // ... and after prolongation
  int coarse_sweeps = 50;    // Jacobi sweeps on the coarsest level
  double omega = 0.8;        // Jacobi damping
  int max_cycles = 60;
  double tolerance = 1e-8;   // relative residual on the finest level
  /// Stop coarsening when a local extent would drop below this.
  std::int64_t min_local_extent = 2;
};

struct MultigridResult {
  int cycles = 0;
  double relative_residual = 0;
  bool converged = false;
};

/// del^2 phi = -4 pi rho on the domain's grid (periodic). `phi` is both
/// initial guess and result.
class MultigridPoissonSolver {
 public:
  MultigridPoissonSolver(const Domain& domain, MultigridOptions opt = {});

  int levels() const { return static_cast<int>(levels_.size()); }

  MultigridResult solve(grid::Array3D<double>& phi,
                        const grid::Array3D<double>& rho);

 private:
  struct Level {
    grid::Decomposition decomp;
    Vec3 coords;
    grid::Box3 box;
    double h;
    stencil::Coeffs lap;
    std::unique_ptr<core::HaloExchanger<double>> halo;
    // Work fields (u, rhs, and a scratch for A*u / residual).
    grid::Array3D<double> u, rhs, work;

    Level(grid::Decomposition d, Vec3 c, double spacing, mp::Comm& comm,
          int tag_base);
  };

  void exchange(Level& lvl, grid::Array3D<double>& f);
  void smooth(Level& lvl, int sweeps);
  /// work = rhs - A u (with fresh halos on u and on the result).
  void residual(Level& lvl);
  void restrict_to(Level& fine, Level& coarse);
  void prolong_add(Level& coarse, Level& fine);
  void vcycle(std::size_t l);
  double global_norm(const Level& lvl, const grid::Array3D<double>& f);
  void remove_mean(Level& lvl, grid::Array3D<double>& f);

  const Domain* domain_;
  MultigridOptions opt_;
  std::vector<std::unique_ptr<Level>> levels_;
};

}  // namespace gpawfd::gpaw
