// net::Client: the remote counterpart of svc::SimService::submit. A
// client owns one TCP connection (plus a reader thread demultiplexing
// replies by request id), offers a synchronous submit() that retries
// across reconnects — safe because the server deduplicates by JobKey,
// so a resent request joins the original flight instead of recomputing —
// and an async submit_async() returning a std::future for pipelined
// submission over the same connection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace gpawfd::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Extra connection attempts a synchronous submit()/ping() makes after
  /// a kConnectionLost failure (0 disables reconnecting). Each retry
  /// backs off a little longer so a restarting server gets to rebind.
  int max_reconnect_attempts = 3;
  double reconnect_backoff_seconds = 0.05;
  /// Cap on requests outstanding on the connection at once (the
  /// pipelining window). When full, start_request blocks the submitter
  /// until a reply frees a slot — self-throttling, so an unbounded
  /// submit_async loop cannot run the server into its per-connection
  /// in-flight ceiling (which replies kOverloaded). 0 = unbounded.
  std::size_t pipeline_window = 0;
  /// After a failed dial, further requests within this window fail
  /// kConnectionLost immediately instead of re-dialing — so N threads
  /// hammering a down backend produce one TCP SYN per window, not a
  /// reconnect storm, and a backend marked down then recovered is
  /// re-dialed lazily by the first request past the holddown. 0 (the
  /// default) dials on every request, the original behaviour.
  double reconnect_holddown_seconds = 0;
};

class Client {
 public:
  /// Lazy: no connection is made until the first request (so a client
  /// can be built before its server, and survives server restarts).
  explicit Client(ClientConfig config);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submit and wait. Throws RpcError carrying the wire status on any
  /// failure; reconnects and resends on connection loss (idempotent:
  /// the request is the JobKey itself).
  core::SimResult submit(const core::SimJobSpec& spec,
                         svc::Priority priority = svc::Priority::kNormal);

  /// Single-attempt pipelined submit: the future resolves when the reply
  /// frame lands (RpcError inside the future on failure). Throws only
  /// when the connection cannot be established or the write fails.
  std::future<core::SimResult> submit_async(
      const core::SimJobSpec& spec,
      svc::Priority priority = svc::Priority::kNormal);

  /// submit_async for a caller that already holds the canonical JobKey
  /// string (the router's forward path: no spec parse, no re-encode —
  /// the payload travels through opaque).
  std::future<core::SimResult> submit_canonical_async(
      const std::string& canonical,
      svc::Priority priority = svc::Priority::kNormal);

  /// Push one cache entry to the peer (kFill). The future resolves on
  /// the peer's ack (an empty SimResult) and may be dropped by callers
  /// that fire and forget — an unobserved ack just retires the pending
  /// slot when it lands.
  std::future<core::SimResult> fill_async(const FillRecord& record);

  /// Liveness round-trip (kPing/kPong), with the same reconnect policy
  /// as submit().
  void ping();

  /// Single-attempt ping that reports instead of throwing — the health
  /// checker's probe (no retries, no backoff sleep on the caller).
  bool try_ping() noexcept;

  /// Shut the connection down and join the reader. Outstanding futures
  /// fail with kConnectionLost. Idempotent; the next request reconnects.
  void close();

  bool connected() const;
  std::int64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  std::int64_t requests_sent() const {
    return requests_sent_.load(std::memory_order_relaxed);
  }
  /// TCP dials actually attempted (successful or not) — what the
  /// reconnect-storm test bounds under a holddown.
  std::int64_t connect_attempts() const {
    return connect_attempts_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    std::promise<core::SimResult> promise;
  };

  /// Ensure a live connection, register a pending slot, write one frame.
  /// Caller supplies the frame given the assigned request id.
  std::future<core::SimResult> start_request(
      const std::function<std::vector<std::uint8_t>(std::uint64_t)>&
          make_frame);
  /// Run `attempt` with the sync retry-on-connection-loss policy.
  core::SimResult with_retries(
      const std::function<std::future<core::SimResult>()>& attempt);
  void ensure_connected();  // caller holds connect_mu_
  void reader_loop(int fd);
  void fail_all_pending(const std::string& why);

  ClientConfig config_;
  /// Serializes connect/reconnect/close transitions (never held by the
  /// reader thread, so joining under it cannot deadlock).
  std::mutex connect_mu_;
  /// Guards sock identity, pending_, next_id_, connected_.
  mutable std::mutex mu_;
  /// Signalled whenever pending_ shrinks or the connection drops; what
  /// a full pipeline window waits on.
  std::condition_variable window_cv_;
  /// Serializes frame writes so pipelined submits never interleave bytes.
  std::mutex write_mu_;
  Socket sock_;
  bool connected_ = false;
  bool ever_connected_ = false;
  std::map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::uint64_t next_id_ = 1;
  std::thread reader_;
  /// Monotonic time of the last failed dial; only touched under
  /// connect_mu_. 0 = no failure on record (holddown inactive).
  double last_dial_failure_ = 0;
  std::atomic<std::int64_t> reconnects_{0};
  std::atomic<std::int64_t> requests_sent_{0};
  std::atomic<std::int64_t> connect_attempts_{0};
};

}  // namespace gpawfd::net
