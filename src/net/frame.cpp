#include "net/frame.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "svc/job_key.hpp"

namespace gpawfd::net {

// The little-endian primitives and the SimResult codec live in
// core/result_codec.cpp (shared with svc::CacheStore).

// ---- frame encoding ----------------------------------------------------

std::vector<std::uint8_t> encode_frame(const FrameHeader& header,
                                       const std::uint8_t* payload,
                                       std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload_len);
  append_u32(out, kMagic);
  out.push_back(header.version);
  out.push_back(static_cast<std::uint8_t>(header.type));
  out.push_back(static_cast<std::uint8_t>(header.status));
  out.push_back(header.flags);
  append_u64(out, header.request_id);
  append_u32(out, static_cast<std::uint32_t>(payload_len));
  out.insert(out.end(), payload, payload + payload_len);
  return out;
}

std::vector<std::uint8_t> make_submit_frame(std::uint64_t request_id,
                                            const std::string& canonical,
                                            svc::Priority priority) {
  FrameHeader h;
  h.type = FrameType::kSubmit;
  h.flags = static_cast<std::uint8_t>(priority);
  h.request_id = request_id;
  return encode_frame(
      h, reinterpret_cast<const std::uint8_t*>(canonical.data()),
      canonical.size());
}

std::vector<std::uint8_t> make_result_frame(std::uint64_t request_id,
                                            const core::SimResult& result) {
  FrameHeader h;
  h.type = FrameType::kResult;
  h.request_id = request_id;
  const std::vector<std::uint8_t> payload = encode_sim_result(result);
  return encode_frame(h, payload.data(), payload.size());
}

std::vector<std::uint8_t> make_error_frame(std::uint64_t request_id,
                                           WireStatus status,
                                           const std::string& message) {
  FrameHeader h;
  h.type = FrameType::kError;
  h.status = status;
  h.request_id = request_id;
  return encode_frame(
      h, reinterpret_cast<const std::uint8_t*>(message.data()),
      message.size());
}

std::vector<std::uint8_t> make_control_frame(FrameType type,
                                             std::uint64_t request_id) {
  FrameHeader h;
  h.type = type;
  h.request_id = request_id;
  return encode_frame(h, nullptr, 0);
}

std::vector<std::uint8_t> make_fill_frame(std::uint64_t request_id,
                                          const FillRecord& record) {
  FrameHeader h;
  h.type = FrameType::kFill;
  h.request_id = request_id;
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + record.key.size() + 16 + kSimResultWireBytes);
  append_u32(payload, static_cast<std::uint32_t>(record.key.size()));
  payload.insert(payload.end(), record.key.begin(), record.key.end());
  append_double(payload, record.cost_seconds);
  append_double(payload, record.write_time);
  const std::vector<std::uint8_t> value = encode_sim_result(record.result);
  payload.insert(payload.end(), value.begin(), value.end());
  return encode_frame(h, payload.data(), payload.size());
}

FillRecord decode_fill_payload(const std::uint8_t* data, std::size_t len) {
  GPAWFD_CHECK_MSG(len >= 4, "fill payload truncated before key length");
  const std::uint32_t key_len = read_u32(data);
  GPAWFD_CHECK_MSG(key_len > 0, "fill payload with empty key");
  const std::size_t want = 4 + std::size_t{key_len} + 16 + kSimResultWireBytes;
  GPAWFD_CHECK_MSG(len == want, "fill payload is " << len << " bytes, key of "
                                                  << key_len << " needs "
                                                  << want);
  FillRecord record;
  record.key.assign(reinterpret_cast<const char*>(data + 4), key_len);
  record.cost_seconds = read_double(data + 4 + key_len);
  record.write_time = read_double(data + 4 + key_len + 8);
  record.result =
      decode_sim_result(data + 4 + key_len + 16, kSimResultWireBytes);
  return record;
}

svc::Priority priority_of_flags(std::uint8_t flags) {
  return flags < svc::kPriorityClasses ? static_cast<svc::Priority>(flags)
                                       : svc::Priority::kNormal;
}

// ---- incremental decoding ----------------------------------------------

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // stream is dead; don't grow the buffer
  // Reclaim the consumed prefix before appending so a long-lived
  // connection's buffer stays bounded by one frame plus one read.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Result FrameDecoder::next() {
  if (poisoned_) return poison_;
  Result r;
  if (buf_.size() - pos_ < kHeaderBytes) return r;  // kNeedMore

  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t magic = read_u32(p);
  FrameHeader h;
  h.version = p[4];
  h.type = static_cast<FrameType>(p[5]);
  h.status = static_cast<WireStatus>(p[6]);
  h.flags = p[7];
  h.request_id = read_u64(p + 8);
  h.payload_len = read_u32(p + 16);

  auto poison = [&](WireStatus status, std::string what, bool header_valid) {
    poisoned_ = true;
    poison_.status = Status::kError;
    poison_.error = std::move(what);
    poison_.error_status = status;
    poison_.header_valid = header_valid;
    poison_.frame.header = h;
    return poison_;
  };

  if (magic != kMagic)
    return poison(WireStatus::kBadRequest, "bad magic", false);
  if (h.version != kWireVersion)
    return poison(WireStatus::kBadRequest,
                  "unsupported wire version " + std::to_string(h.version),
                  false);
  if (h.payload_len > max_frame_bytes_)
    return poison(WireStatus::kFrameTooLarge,
                  "frame payload of " + std::to_string(h.payload_len) +
                      " bytes exceeds the " +
                      std::to_string(max_frame_bytes_) + "-byte limit",
                  true);

  if (buf_.size() - pos_ < kHeaderBytes + h.payload_len) return r;

  r.status = Status::kFrame;
  r.frame.header = h;
  r.frame.payload.assign(p + kHeaderBytes, p + kHeaderBytes + h.payload_len);
  pos_ += kHeaderBytes + h.payload_len;
  return r;
}

// ---- canonical job-spec parser ----------------------------------------

namespace {

/// Strict left-to-right cursor over the canonical encoding. Numeric
/// fields are read with strtoll/strtod, which round-trip the %.17g
/// doubles the encoder writes exactly.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  void expect(const char* lit) {
    const std::size_t n = std::strlen(lit);
    GPAWFD_CHECK_MSG(s_.compare(pos_, n, lit) == 0,
                     "canonical spec: expected \"" << lit << "\" at offset "
                                                   << pos_);
    pos_ += n;
  }

  std::int64_t integer() {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const long long v = std::strtoll(begin, &end, 10);
    GPAWFD_CHECK_MSG(end != begin,
                     "canonical spec: expected integer at offset " << pos_);
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  double floating() {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    GPAWFD_CHECK_MSG(end != begin,
                     "canonical spec: expected number at offset " << pos_);
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  bool boolean() {
    const std::int64_t v = integer();
    GPAWFD_CHECK_MSG(v == 0 || v == 1,
                     "canonical spec: boolean must be 0/1, got " << v);
    return v != 0;
  }

  bool done() const { return pos_ == s_.size(); }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Admission bounds: a remote client must not be able to queue a job
/// whose mere planning (decomposition, batching) is a denial of service.
/// Generous relative to everything the paper runs (144^3 grids, 16384
/// cores) but finite.
void check_admissible(const core::SimJobSpec& spec) {
  auto in = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return v >= lo && v <= hi;
  };
  GPAWFD_CHECK_MSG(in(spec.job.grid_shape.x, 1, 4096) &&
                       in(spec.job.grid_shape.y, 1, 4096) &&
                       in(spec.job.grid_shape.z, 1, 4096),
                   "grid shape out of admissible range");
  GPAWFD_CHECK_MSG(in(spec.job.ngrids, 1, 1 << 20), "ngrids out of range");
  GPAWFD_CHECK_MSG(in(spec.job.ghost, 1, 8), "ghost out of range");
  GPAWFD_CHECK_MSG(in(spec.job.elem_bytes, 1, 64), "elem_bytes out of range");
  GPAWFD_CHECK_MSG(in(spec.job.iterations, 1, 100000),
                   "iterations out of range");
  GPAWFD_CHECK_MSG(in(spec.total_cores, 1, 1 << 24),
                   "total_cores out of range");
  GPAWFD_CHECK_MSG(in(spec.cores_per_node, 1, 1024),
                   "cores_per_node out of range");
  GPAWFD_CHECK_MSG(in(spec.scaled.grid_cap, 1, 1 << 20),
                   "grid_cap out of range");
}

}  // namespace

core::SimJobSpec parse_job_spec(const std::string& canonical) {
  Cursor c(canonical);
  core::SimJobSpec spec;

  c.expect("v");
  const std::int64_t version = c.integer();
  GPAWFD_CHECK_MSG(version == svc::JobKey::kVersion,
                   "canonical spec version " << version << ", this server "
                                             << "speaks v"
                                             << svc::JobKey::kVersion);

  c.expect("|approach=");
  const std::int64_t approach = c.integer();
  GPAWFD_CHECK_MSG(
      approach >= 0 &&
          approach <=
              static_cast<std::int64_t>(
                  sched::Approach::kFlatOptimizedSubgroups),
      "unknown approach " << approach);
  spec.approach = static_cast<sched::Approach>(approach);

  c.expect("|job{shape=");
  spec.job.grid_shape.x = c.integer();
  c.expect("x");
  spec.job.grid_shape.y = c.integer();
  c.expect("x");
  spec.job.grid_shape.z = c.integer();
  c.expect(";ngrids=");
  spec.job.ngrids = static_cast<int>(c.integer());
  c.expect(";ghost=");
  spec.job.ghost = static_cast<int>(c.integer());
  c.expect(";elem_bytes=");
  spec.job.elem_bytes = static_cast<int>(c.integer());
  c.expect(";iterations=");
  spec.job.iterations = static_cast<int>(c.integer());
  c.expect(";periodic=");
  spec.job.periodic = c.boolean();

  c.expect("}|opt{tridim=");
  spec.opt.nonblocking_tridim = c.boolean();
  c.expect(";batch=");
  spec.opt.batch_size = static_cast<int>(c.integer());
  c.expect(";dbuf=");
  spec.opt.double_buffering = c.boolean();
  c.expect(";ramp=");
  spec.opt.ramp_up = c.boolean();
  c.expect(";map=");
  spec.opt.topology_mapping = c.boolean();

  c.expect("}|cores=");
  spec.total_cores = static_cast<int>(c.integer());
  c.expect("|cpn=");
  spec.cores_per_node = static_cast<int>(c.integer());
  c.expect("|cap=");
  spec.scaled.grid_cap = static_cast<int>(c.integer());

  bgsim::MachineConfig& m = spec.machine;
  c.expect("|machine{cpn=");
  m.cores_per_node = static_cast<int>(c.integer());
  c.expect(";hz=");
  m.cpu_hz = c.floating();
  c.expect(";peak=");
  m.peak_flops_per_node = c.floating();
  c.expect(";membw=");
  m.mem_bandwidth = c.floating();
  c.expect(";mem=");
  m.main_memory_bytes = c.integer();
  c.expect(";linkbw=");
  m.link_bandwidth = c.floating();
  c.expect(";pkteff=");
  m.packet_efficiency = c.floating();
  c.expect(";hop=");
  m.hop_latency = c.integer();
  c.expect(";inj=");
  m.injection_latency = c.integer();
  c.expect(";torusmin=");
  m.torus_min_nodes = static_cast<int>(c.integer());
  c.expect(";loopbw=");
  m.loopback_bandwidth = c.floating();
  c.expect(";looplat=");
  m.loopback_latency = c.integer();
  c.expect(";mpicall=");
  m.mpi_call_overhead = c.integer();
  c.expect(";mpimult=");
  m.mpi_multiple_overhead = c.integer();
  c.expect(";mpiwait=");
  m.mpi_wait_overhead = c.integer();
  c.expect(";treelat=");
  m.tree_latency = c.integer();
  c.expect(";treebw=");
  m.tree_bandwidth = c.floating();
  c.expect(";barlat=");
  m.barrier_latency = c.integer();
  c.expect(";coreflops=");
  m.core_flops = c.floating();
  c.expect(";memcpybw=");
  m.memcpy_bandwidth = c.floating();
  c.expect(";smp=");
  m.smp_slowdown = c.floating();
  c.expect(";stencilbpp=");
  m.stencil_bytes_per_point = c.floating();
  c.expect(";tbar=");
  m.thread_barrier_cost = c.integer();
  c.expect(";tspawn=");
  m.thread_spawn_cost = c.integer();
  c.expect("}");
  GPAWFD_CHECK_MSG(c.done(), "canonical spec: trailing bytes after }");

  // The decisive check: re-canonicalizing the parsed spec must reproduce
  // the request byte-for-byte. Any drift between this parser and the
  // JobKey encoder — or any sneaky non-canonical numeral ("01", "1e0") —
  // is a bad request, never a silently different simulation.
  const svc::JobKey key = svc::JobKey::of(spec);
  GPAWFD_CHECK_MSG(key.canonical() == canonical,
                   "canonical spec does not round-trip: re-encoded as "
                       << key.canonical());
  check_admissible(spec);
  return spec;
}

}  // namespace gpawfd::net
