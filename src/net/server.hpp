// net::Server: the RPC front-end. A single poll(2)-driven thread owns
// an acceptor plus one state machine per connection — non-blocking
// reads feeding a FrameDecoder (partial-frame reassembly), a write
// queue with backpressure (POLLOUT only while bytes are pending), idle
// timeouts, and admission limits (max frame size, max in-flight
// requests per connection, max connections).
//
// What a decoded request *means* is delegated to a RequestHandler: the
// default ServiceHandler bridges onto svc::SimService::submit_then (a
// submit frame parses its JobKey canonical string back into a
// SimJobSpec; the reply is built from the ticket continuation on the
// worker thread that settles the flight), while the cluster router
// implements the same interface by forwarding to backends. Either way
// the reply travels back to the poll loop through a completion queue
// and a wake pipe. Terminal ServiceError::reason()s map onto distinct
// wire status codes (net::wire_status_of), so remote clients see
// exactly the failure taxonomy in-process callers get.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "svc/service.hpp"

namespace gpawfd::net {

/// What the poll loop delegates decoded requests to. Implementations
/// must invoke `done` exactly once per request — synchronously on the
/// poll thread or later from any other thread; the completion is
/// marshalled back to the loop either way. On kOk the payload is the
/// reply body (an encoded SimResult for submits, empty for fill acks);
/// on any other status it is a human-readable message.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  using Done = std::function<void(WireStatus, std::vector<std::uint8_t>)>;

  /// A kSubmit frame: `canonical` is the JobKey canonical string as it
  /// came off the wire (unparsed — a forwarding handler never needs
  /// the spec), `priority` the decoded flags byte.
  virtual void handle_submit(std::string canonical, svc::Priority priority,
                             Done done) = 0;
  /// A kFill frame (peer cache-fill push). Default: refuse politely —
  /// only handlers that opt into replication accept fills.
  virtual void handle_fill(FillRecord record, Done done);
};

/// The single-node handler: parse the canonical spec (decisively — see
/// parse_job_spec), submit through SimService::submit_then, ingest
/// fills into the service's warm cache. `service` must outlive it.
class ServiceHandler : public RequestHandler {
 public:
  explicit ServiceHandler(svc::SimService& service) : service_(service) {}
  void handle_submit(std::string canonical, svc::Priority priority,
                     Done done) override;
  void handle_fill(FillRecord record, Done done) override;

 private:
  svc::SimService& service_;
};

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read back via Server::port()).
  std::uint16_t port = 0;
  /// Largest accepted frame payload; larger submits are refused with
  /// kFrameTooLarge and the connection is closed (the stream cannot be
  /// resynchronized past an unread payload).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection in-flight request ceiling; excess submits are
  /// answered kOverloaded without touching the service.
  int max_inflight_per_conn = 64;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 256;
  /// Connections with no traffic and nothing in flight for this long
  /// are closed. <= 0 disables the timeout.
  double idle_timeout_seconds = 60.0;
};

/// Server-wide wire counters, svc::Metrics-style: relaxed atomics,
/// a text snapshot(), and a reconciling counter_map() — at quiescence
/// requests + fills == replies (summed over every status, acked fills
/// reply kOk), frames_in == requests + pings + fills, and accepted ==
/// closed + active connections.
class ServerMetrics {
 public:
  std::atomic<std::int64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_closed{0};
  std::atomic<std::int64_t> connections_refused{0};  // max_connections hit
  std::atomic<std::int64_t> idle_closed{0};
  std::atomic<std::int64_t> bytes_in{0};
  std::atomic<std::int64_t> bytes_out{0};
  std::atomic<std::int64_t> frames_in{0};
  std::atomic<std::int64_t> frames_out{0};
  std::atomic<std::int64_t> frame_errors{0};  // protocol violations
  std::atomic<std::int64_t> requests{0};      // submit frames admitted
  std::atomic<std::int64_t> pings{0};
  std::atomic<std::int64_t> fills{0};  // peer cache-fill frames admitted
  /// writev(2) calls that moved bytes: queued frames coalesce into one
  /// vectored write per flush cycle, so frames_out / flushes is the
  /// realized reply-coalescing factor (≈1 for strict request-reply
  /// traffic, >1 under pipelining; partial writes can push it below 1).
  std::atomic<std::int64_t> flushes{0};
  /// Replies by wire status, indexed by WireStatus.
  std::atomic<std::int64_t> replies_by_status[kWireStatusCount] = {};

  std::int64_t replies(WireStatus s) const {
    return replies_by_status[static_cast<int>(s)].load(
        std::memory_order_relaxed);
  }
  std::int64_t replies_total() const;

  /// Every counter by snapshot name (replies keyed per status), the
  /// deterministic comparison surface the tests and the operator view
  /// share.
  std::map<std::string, std::int64_t> counter_map() const;
  /// Multi-line "key: value" text block, svc::Metrics::snapshot-style.
  std::string snapshot() const;
};

class Server {
 public:
  /// Binds, then serves on a background thread until stop()/destruction.
  /// `handler` must outlive the server. Throws Error when the port
  /// cannot be bound.
  explicit Server(RequestHandler& handler, ServerConfig config = {});
  /// Convenience: serve `service` through an owned ServiceHandler (the
  /// single-node sim_server shape). `service` must outlive the server.
  explicit Server(svc::SimService& service, ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral one when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, close every connection, join the loop thread.
  /// Replies still in flight inside the service are dropped (the
  /// continuation outlives the server safely and lands in a detached
  /// completion queue). Idempotent.
  void stop();

  const ServerMetrics& metrics() const { return metrics_; }
  std::string metrics_snapshot() const { return metrics_.snapshot(); }
  int active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  Server(std::unique_ptr<ServiceHandler> owned, ServerConfig config);

  struct Conn;
  /// A settled request on its way back to the poll loop. Built on the
  /// worker thread, drained by the loop on a wake-pipe byte.
  struct Reply {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    WireStatus status = WireStatus::kOk;
    std::vector<std::uint8_t> payload;  // result bytes or error message
    bool is_ack = false;  // kOk reply leaves as kPong (fill ack), not kResult
  };
  /// Shared with in-flight continuations so a continuation that fires
  /// after stop() writes into a detached queue instead of freed memory.
  struct Completions {
    std::mutex mu;
    std::vector<Reply> replies;
    int wake_fd = -1;  // write end of the wake pipe; -1 once stopped
    void push(Reply reply);
  };

  /// Hand a request to the handler with a Done that marshals the reply
  /// into the completion queue (safe past conn and server teardown).
  void dispatch(Conn& conn, std::uint64_t request_id, bool is_ack,
                const std::function<void(RequestHandler::Done)>& invoke);
  void loop();
  void accept_new();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void handle_frame(Conn& conn, Frame frame);
  /// Queue a frame; bytes leave in the next flush_conn (end of the read
  /// burst, end of the completion drain, or POLLOUT), coalesced with
  /// every other queued frame into one vectored write.
  void enqueue_frame(Conn& conn, std::vector<std::uint8_t> bytes);
  /// Write as much of the outq as the socket accepts, many frames per
  /// writev(2). Stops on EAGAIN (POLLOUT re-arms) or socket death.
  void flush_conn(Conn& conn);
  void send_error(Conn& conn, std::uint64_t request_id, WireStatus status,
                  const std::string& message);
  void drain_completions();
  /// Erase the connection if it is dead or has finished flushing its
  /// close — the only place a Conn is destroyed while handlers may still
  /// hold references up the stack.
  void reap(std::uint64_t id);
  void close_conn(std::uint64_t id);
  void sweep_idle(double now);

  /// Set only by the SimService convenience constructor; handler_ then
  /// points at it.
  std::unique_ptr<ServiceHandler> owned_handler_;
  RequestHandler& handler_;
  ServerConfig config_;
  ServerMetrics metrics_;
  Socket listener_;
  std::uint16_t port_ = 0;
  Socket wake_read_;
  std::shared_ptr<Completions> completions_;
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<int> active_connections_{0};
  std::atomic<bool> running_{true};
  std::once_flag stop_once_;
  std::thread thread_;
};

}  // namespace gpawfd::net
