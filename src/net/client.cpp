#include "net/client.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "svc/job_key.hpp"
#include "trace/stats.hpp"

namespace gpawfd::net {

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() { close(); }

bool Client::connected() const {
  std::lock_guard lock(mu_);
  return connected_;
}

core::SimResult Client::submit(const core::SimJobSpec& spec,
                               svc::Priority priority) {
  const std::string canonical = svc::JobKey::of(spec).canonical();
  return with_retries([&] {
    return start_request([&](std::uint64_t id) {
      return make_submit_frame(id, canonical, priority);
    });
  });
}

std::future<core::SimResult> Client::submit_async(const core::SimJobSpec& spec,
                                                  svc::Priority priority) {
  const std::string canonical = svc::JobKey::of(spec).canonical();
  return start_request([&](std::uint64_t id) {
    return make_submit_frame(id, canonical, priority);
  });
}

std::future<core::SimResult> Client::submit_canonical_async(
    const std::string& canonical, svc::Priority priority) {
  return start_request([&](std::uint64_t id) {
    return make_submit_frame(id, canonical, priority);
  });
}

std::future<core::SimResult> Client::fill_async(const FillRecord& record) {
  return start_request(
      [&](std::uint64_t id) { return make_fill_frame(id, record); });
}

void Client::ping() {
  with_retries([&] {
    return start_request([&](std::uint64_t id) {
      return make_control_frame(FrameType::kPing, id);
    });
  });
}

bool Client::try_ping() noexcept {
  try {
    start_request([&](std::uint64_t id) {
      return make_control_frame(FrameType::kPing, id);
    }).get();
    return true;
  } catch (...) {
    return false;
  }
}

core::SimResult Client::with_retries(
    const std::function<std::future<core::SimResult>()>& attempt) {
  const int attempts = 1 + std::max(0, config_.max_reconnect_attempts);
  for (int a = 0;; ++a) {
    try {
      return attempt().get();
    } catch (const RpcError& e) {
      if (e.status() != WireStatus::kConnectionLost || a + 1 >= attempts)
        throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          config_.reconnect_backoff_seconds * (a + 1)));
    }
  }
}

std::future<core::SimResult> Client::start_request(
    const std::function<std::vector<std::uint8_t>(std::uint64_t)>&
        make_frame) {
  std::lock_guard connect_lock(connect_mu_);
  ensure_connected();

  auto pending = std::make_shared<Pending>();
  std::uint64_t id;
  int fd;
  {
    std::unique_lock lock(mu_);
    if (config_.pipeline_window > 0) {
      // Self-throttle: wait for a reply to free a slot. A dropped
      // connection also releases the wait.
      window_cv_.wait(lock, [&] {
        return pending_.size() < config_.pipeline_window || !connected_;
      });
    }
    // Fail fast if the connection died (it can drop during the window
    // wait, or between ensure_connected and here). Registering now
    // would be a leak: the reader has already swept pending_ and
    // exited, and the first write to a freshly dead socket usually
    // lands in the TCP buffer — nothing would ever fail the future.
    // Observing connected_ under mu_ makes this airtight: the reader
    // clears connected_ before it sweeps, so a pending registered
    // while connected_ is still true is always swept.
    if (!connected_)
      throw RpcError("connection lost before send",
                     WireStatus::kConnectionLost);
    id = next_id_++;
    fd = sock_.fd();
    pending_.emplace(id, pending);
  }
  std::future<core::SimResult> future = pending->promise.get_future();

  const std::vector<std::uint8_t> bytes = make_frame(id);
  bool ok;
  {
    std::lock_guard write_lock(write_mu_);
    ok = write_fully(fd, bytes.data(), bytes.size());
  }
  if (!ok) {
    bool ours;
    {
      std::lock_guard lock(mu_);
      ours = pending_.erase(id) > 0;  // the reader may have failed it first
      connected_ = false;
    }
    window_cv_.notify_all();
    sock_.shutdown_both();  // wake the reader; join happens on reconnect
    if (ours)
      throw RpcError("write failed: connection lost",
                     WireStatus::kConnectionLost);
    return future;  // already failed with kConnectionLost by the reader
  }
  requests_sent_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Client::ensure_connected() {
  {
    std::lock_guard lock(mu_);
    if (connected_) return;
  }
  // The previous reader (if any) has seen EOF/shutdown and is exiting;
  // join it before the socket it reads from is replaced.
  if (reader_.joinable()) reader_.join();

  // Holddown: while the last dial's failure is fresh, fail fast without
  // touching the network. Serialized under connect_mu_, so exactly one
  // caller per window pays the SYN; everyone else gets the cached
  // verdict (and the first caller past the window re-dials lazily).
  if (config_.reconnect_holddown_seconds > 0 && last_dial_failure_ > 0 &&
      trace::now_seconds() - last_dial_failure_ <
          config_.reconnect_holddown_seconds)
    throw RpcError("connect suppressed: holddown after failed dial",
                   WireStatus::kConnectionLost);

  Socket sock;
  connect_attempts_.fetch_add(1, std::memory_order_relaxed);
  try {
    sock = Socket::connect_to(config_.host, config_.port);
  } catch (const Error& e) {
    last_dial_failure_ = trace::now_seconds();
    throw RpcError(std::string("connect failed: ") + e.what(),
                   WireStatus::kConnectionLost);
  }
  last_dial_failure_ = 0;
  sock.set_nodelay(true);
  int fd;
  {
    std::lock_guard lock(mu_);
    sock_ = std::move(sock);
    fd = sock_.fd();
    connected_ = true;
    if (ever_connected_) reconnects_.fetch_add(1, std::memory_order_relaxed);
    ever_connected_ = true;
  }
  reader_ = std::thread([this, fd] { reader_loop(fd); });
}

void Client::reader_loop(int fd) {
  FrameDecoder decoder(config_.max_frame_bytes);
  std::uint8_t buf[4096];
  bool protocol_ok = true;
  while (protocol_ok) {
    const IoResult r = read_some(fd, buf, sizeof buf);
    if (r.status != IoStatus::kOk) break;
    decoder.feed(buf, r.n);
    for (;;) {
      FrameDecoder::Result res = decoder.next();
      if (res.status == FrameDecoder::Status::kNeedMore) break;
      if (res.status == FrameDecoder::Status::kError) {
        protocol_ok = false;  // unsyncable stream: treat as a dead link
        break;
      }
      std::shared_ptr<Pending> pending;
      {
        std::lock_guard lock(mu_);
        auto it = pending_.find(res.frame.header.request_id);
        if (it != pending_.end()) {
          pending = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (!pending) continue;  // late reply for an abandoned request
      window_cv_.notify_one();  // a pipeline-window slot just freed
      switch (res.frame.header.type) {
        case FrameType::kResult:
          try {
            pending->promise.set_value(decode_sim_result(
                res.frame.payload.data(), res.frame.payload.size()));
          } catch (...) {
            pending->promise.set_exception(std::current_exception());
          }
          break;
        case FrameType::kError:
          pending->promise.set_exception(std::make_exception_ptr(RpcError(
              std::string(res.frame.payload.begin(), res.frame.payload.end()),
              res.frame.header.status)));
          break;
        case FrameType::kPong:
          pending->promise.set_value(core::SimResult{});
          break;
        default:
          pending->promise.set_exception(std::make_exception_ptr(
              RpcError("unexpected frame type from server",
                       WireStatus::kInternal)));
          break;
      }
    }
  }
  {
    std::lock_guard lock(mu_);
    connected_ = false;
  }
  fail_all_pending("connection lost before reply");
}

void Client::fail_all_pending(const std::string& why) {
  std::map<std::uint64_t, std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard lock(mu_);
    orphans.swap(pending_);
  }
  for (auto& [id, pending] : orphans)
    pending->promise.set_exception(
        std::make_exception_ptr(RpcError(why, WireStatus::kConnectionLost)));
  window_cv_.notify_all();
}

void Client::close() {
  std::lock_guard connect_lock(connect_mu_);
  {
    std::lock_guard lock(mu_);
    connected_ = false;
  }
  window_cv_.notify_all();
  sock_.shutdown_both();
  if (reader_.joinable()) reader_.join();
  sock_.close();
}

}  // namespace gpawfd::net
