// The wire-visible failure taxonomy of the RPC front-end. Every terminal
// svc::ErrorReason maps onto a distinct status code (verified by test),
// so a remote client can branch on exactly the causes an in-process
// caller of SimService sees, plus the protocol-level causes only a wire
// can produce (malformed request, oversized frame, connection loss).
#pragma once

#include <cstdint>

#include "svc/service.hpp"

namespace gpawfd::net {

enum class WireStatus : std::uint8_t {
  kOk = 0,

  // ---- service outcomes (1:1 with svc::ErrorReason) ------------------
  kCancelled = 1,          // discarded by shutdown(drain=false)
  kExecutorFailed = 2,     // executor threw, no retries allowed
  kTimedOut = 3,           // final attempt exceeded its deadline
  kGaveUp = 4,             // retry budget exhausted
  kRejectedQueueFull = 5,  // admission control shed the request
  kRejectedShutdown = 6,   // service no longer accepts work

  // ---- protocol / transport outcomes ----------------------------------
  kBadRequest = 7,     // payload did not parse as a canonical job spec
  kFrameTooLarge = 8,  // payload_len exceeded the advertised frame limit
  kOverloaded = 9,     // per-connection in-flight admission limit hit
  kInternal = 10,      // unclassified server-side failure
  /// Client-side synthetic status, never sent on the wire: the
  /// connection died (or could not be established) before a reply.
  kConnectionLost = 11,
};

inline constexpr int kWireStatusCount = 12;

inline const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kCancelled:
      return "cancelled";
    case WireStatus::kExecutorFailed:
      return "executor-failed";
    case WireStatus::kTimedOut:
      return "timed-out";
    case WireStatus::kGaveUp:
      return "gave-up";
    case WireStatus::kRejectedQueueFull:
      return "rejected-queue-full";
    case WireStatus::kRejectedShutdown:
      return "rejected-shutdown";
    case WireStatus::kBadRequest:
      return "bad-request";
    case WireStatus::kFrameTooLarge:
      return "frame-too-large";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kInternal:
      return "internal";
    case WireStatus::kConnectionLost:
      return "connection-lost";
  }
  return "?";
}

/// The server-side mapping: what a terminal ServiceError becomes on the
/// wire. Total and injective over the reasons a completed request can
/// carry (kUnknown, the only non-distinct case, folds into kInternal).
inline WireStatus wire_status_of(svc::ErrorReason r) {
  switch (r) {
    case svc::ErrorReason::kCancelled:
      return WireStatus::kCancelled;
    case svc::ErrorReason::kExecutorFailed:
      return WireStatus::kExecutorFailed;
    case svc::ErrorReason::kTimedOut:
      return WireStatus::kTimedOut;
    case svc::ErrorReason::kGaveUp:
      return WireStatus::kGaveUp;
    case svc::ErrorReason::kRejectedQueueFull:
      return WireStatus::kRejectedQueueFull;
    case svc::ErrorReason::kRejectedShutdown:
      return WireStatus::kRejectedShutdown;
    case svc::ErrorReason::kUnknown:
      return WireStatus::kInternal;
  }
  return WireStatus::kInternal;
}

/// Thrown by net::Client when a request fails: carries the wire status
/// so remote callers branch on the same taxonomy ServiceError::reason()
/// gives in-process callers.
class RpcError : public Error {
 public:
  RpcError(const std::string& what, WireStatus status)
      : Error(what), status_(status) {}
  WireStatus status() const { return status_; }

 private:
  WireStatus status_;
};

}  // namespace gpawfd::net
