#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <fcntl.h>
#include <sstream>
#include <vector>

#include "trace/stats.hpp"

namespace gpawfd::net {

// ---- request handlers --------------------------------------------------

void RequestHandler::handle_fill(FillRecord record, Done done) {
  (void)record;
  const std::string what = "this endpoint does not accept cache fills";
  done(WireStatus::kBadRequest,
       std::vector<std::uint8_t>(what.begin(), what.end()));
}

void ServiceHandler::handle_submit(std::string canonical,
                                   svc::Priority priority, Done done) {
  core::SimJobSpec spec;
  try {
    spec = parse_job_spec(canonical);
  } catch (const Error& e) {
    const std::string what = e.what();
    done(WireStatus::kBadRequest,
         std::vector<std::uint8_t>(what.begin(), what.end()));
    return;
  }
  service_.submit_then(
      spec, priority,
      [done = std::move(done)](const core::SimResult* result,
                               std::exception_ptr error) {
        if (result != nullptr) {
          done(WireStatus::kOk, encode_sim_result(*result));
          return;
        }
        std::string what = "unknown failure";
        WireStatus status = WireStatus::kInternal;
        try {
          std::rethrow_exception(error);
        } catch (const svc::ServiceError& e) {
          status = wire_status_of(e.reason());
          what = e.what();
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        done(status, std::vector<std::uint8_t>(what.begin(), what.end()));
      });
}

void ServiceHandler::handle_fill(FillRecord record, Done done) {
  // Best-effort by design: a fill the cache refuses (stale version,
  // expired, lost to a fresher entry) still acks kOk — the pusher has
  // nothing useful to do with the distinction, and the counters on this
  // side (svc.fills_*) carry the observability.
  service_.ingest_fill(record.key, record.result, record.cost_seconds,
                       record.write_time);
  done(WireStatus::kOk, {});
}

// ---- metrics -----------------------------------------------------------

std::int64_t ServerMetrics::replies_total() const {
  std::int64_t n = 0;
  for (const auto& c : replies_by_status)
    n += c.load(std::memory_order_relaxed);
  return n;
}

std::map<std::string, std::int64_t> ServerMetrics::counter_map() const {
  auto get = [](const std::atomic<std::int64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  std::map<std::string, std::int64_t> out;
  out["net.connections_accepted"] = get(connections_accepted);
  out["net.connections_closed"] = get(connections_closed);
  out["net.connections_refused"] = get(connections_refused);
  out["net.idle_closed"] = get(idle_closed);
  out["net.bytes_in"] = get(bytes_in);
  out["net.bytes_out"] = get(bytes_out);
  out["net.frames_in"] = get(frames_in);
  out["net.frames_out"] = get(frames_out);
  out["net.frame_errors"] = get(frame_errors);
  out["net.requests"] = get(requests);
  out["net.pings"] = get(pings);
  out["net.fills"] = get(fills);
  out["net.flushes"] = get(flushes);
  for (int s = 0; s < kWireStatusCount; ++s)
    out[std::string("net.replies.") +
        to_string(static_cast<WireStatus>(s))] =
        get(replies_by_status[s]);
  return out;
}

std::string ServerMetrics::snapshot() const {
  std::ostringstream os;
  for (const auto& [key, value] : counter_map())
    os << key << ": " << value << "\n";
  return os.str();
}

// ---- connection state machine -----------------------------------------

struct Server::Conn {
  Conn(std::uint64_t id_, Socket sock_, std::size_t max_frame_bytes)
      : id(id_), sock(std::move(sock_)), decoder(max_frame_bytes) {}

  std::uint64_t id;
  Socket sock;
  FrameDecoder decoder;
  /// Pending output, oldest first; out_offset is the progress into the
  /// front buffer (partial writes under backpressure).
  std::deque<std::vector<std::uint8_t>> outq;
  std::size_t out_offset = 0;
  int inflight = 0;
  double last_active = 0;
  bool closing = false;  // flush outq, then close (protocol error path)
  bool dead = false;     // close now (EOF / socket error)
};

void Server::Completions::push(Reply reply) {
  std::lock_guard lock(mu);
  if (wake_fd < 0) return;  // server stopped; drop the reply
  replies.push_back(std::move(reply));
  const std::uint8_t byte = 1;
  // A full pipe just means a wake-up is already pending.
  (void)!::write(wake_fd, &byte, 1);
}

// ---- lifecycle ---------------------------------------------------------

Server::Server(RequestHandler& handler, ServerConfig config)
    : handler_(handler), config_(std::move(config)) {
  listener_ = Socket::listen_on(config_.port);
  port_ = listener_.local_port();
  listener_.set_nonblocking(true);

  int pipe_fds[2];
  GPAWFD_CHECK_MSG(::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) == 0,
                   "pipe2() failed");
  wake_read_ = Socket(pipe_fds[0]);
  completions_ = std::make_shared<Completions>();
  completions_->wake_fd = pipe_fds[1];

  thread_ = std::thread([this] { loop(); });
}

Server::Server(std::unique_ptr<ServiceHandler> owned, ServerConfig config)
    : Server(*owned, std::move(config)) {
  owned_handler_ = std::move(owned);
}

Server::Server(svc::SimService& service, ServerConfig config)
    : Server(std::make_unique<ServiceHandler>(service), std::move(config)) {}

Server::~Server() { stop(); }

void Server::stop() {
  std::call_once(stop_once_, [&] {
    running_.store(false, std::memory_order_release);
    int wake_fd;
    {
      std::lock_guard lock(completions_->mu);
      wake_fd = completions_->wake_fd;
      completions_->wake_fd = -1;  // late continuations now drop replies
    }
    if (wake_fd >= 0) {
      const std::uint8_t byte = 0;
      (void)!::write(wake_fd, &byte, 1);
    }
    if (thread_.joinable()) thread_.join();
    if (wake_fd >= 0) ::close(wake_fd);
    // Connections still in the kernel accept backlog (the loop never got
    // to them) are reset by closing the listener; accepted ones were
    // closed by the loop's exit path.
    listener_.close();
  });
}

// ---- event loop --------------------------------------------------------

void Server::loop() {
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;
    fds.reserve(2 + conns_.size());
    ids.reserve(conns_.size());
    fds.push_back({wake_read_.fd(), POLLIN, 0});
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn->outq.empty()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
      ids.push_back(id);
    }

    // Bounded tick so idle sweeping and shutdown stay responsive even on
    // a silent socket set.
    ::poll(fds.data(), fds.size(), 50);
    if (!running_.load(std::memory_order_acquire)) break;

    if (fds[0].revents & POLLIN) drain_completions();
    if (fds[1].revents & POLLIN) accept_new();

    for (std::size_t i = 0; i < ids.size(); ++i) {
      const short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      auto it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      if (revents & POLLIN) handle_readable(*it->second);
      reap(ids[i]);
      it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      if (revents & POLLOUT) handle_writable(*it->second);
      reap(ids[i]);
      it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) close_conn(ids[i]);
    }

    sweep_idle(trace::now_seconds());
  }
  conns_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
}

void Server::accept_new() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: back to poll
    }
    Socket sock(fd);
    if (active_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      metrics_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      continue;  // RAII closes the socket: hard admission at the door
    }
    sock.set_nonblocking(true);
    sock.set_nodelay(true);
    const std::uint64_t id = next_conn_id_++;
    auto conn =
        std::make_unique<Conn>(id, std::move(sock), config_.max_frame_bytes);
    conn->last_active = trace::now_seconds();
    conns_.emplace(id, std::move(conn));
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_readable(Conn& conn) {
  std::uint8_t buf[4096];
  for (;;) {
    const IoResult r = read_some(conn.sock.fd(), buf, sizeof buf);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) {
      conn.dead = true;
      break;
    }
    metrics_.bytes_in.fetch_add(static_cast<std::int64_t>(r.n),
                                std::memory_order_relaxed);
    conn.last_active = trace::now_seconds();
    conn.decoder.feed(buf, r.n);

    while (!conn.closing && !conn.dead) {
      FrameDecoder::Result res = conn.decoder.next();
      if (res.status == FrameDecoder::Status::kNeedMore) break;
      if (res.status == FrameDecoder::Status::kError) {
        metrics_.frame_errors.fetch_add(1, std::memory_order_relaxed);
        // When the header was readable the peer gets told why before the
        // close; a garbage header gets no reply (nothing to address it
        // to).
        if (res.header_valid)
          send_error(conn, res.frame.header.request_id, res.error_status,
                     res.error);
        conn.closing = true;
        break;
      }
      metrics_.frames_in.fetch_add(1, std::memory_order_relaxed);
      handle_frame(conn, std::move(res.frame));
    }
  }
  // One flush for the whole read burst: every reply the burst produced
  // directly (pongs, protocol errors) leaves in one writev instead of
  // one write(2) per frame. Submit replies travel via the completion
  // queue and coalesce in drain_completions.
  if (!conn.dead) flush_conn(conn);
  // Reaping (dead, or closing with the outq flushed) happens in the
  // poll loop, never here: handle_frame callers still hold the Conn.
}

void Server::dispatch(
    Conn& conn, std::uint64_t request_id, bool is_ack,
    const std::function<void(RequestHandler::Done)>& invoke) {
  ++conn.inflight;
  // The Done callback runs on whichever thread settles the request; it
  // owns only the detached completion queue, so it stays safe past conn
  // teardown and even past server teardown.
  auto completions = completions_;
  const std::uint64_t conn_id = conn.id;
  invoke([completions, conn_id, request_id, is_ack](
             WireStatus status, std::vector<std::uint8_t> payload) {
    Reply reply;
    reply.conn_id = conn_id;
    reply.request_id = request_id;
    reply.status = status;
    reply.payload = std::move(payload);
    reply.is_ack = is_ack;
    completions->push(std::move(reply));
  });
}

void Server::handle_frame(Conn& conn, Frame frame) {
  switch (frame.header.type) {
    case FrameType::kSubmit: {
      metrics_.requests.fetch_add(1, std::memory_order_relaxed);
      if (conn.inflight >= config_.max_inflight_per_conn) {
        send_error(conn, frame.header.request_id, WireStatus::kOverloaded,
                   "connection already has " +
                       std::to_string(conn.inflight) +
                       " requests in flight");
        return;
      }
      std::string canonical(frame.payload.begin(), frame.payload.end());
      const svc::Priority priority = priority_of_flags(frame.header.flags);
      dispatch(conn, frame.header.request_id, /*is_ack=*/false,
               [&](RequestHandler::Done done) {
                 handler_.handle_submit(std::move(canonical), priority,
                                        std::move(done));
               });
      return;
    }
    case FrameType::kFill: {
      metrics_.fills.fetch_add(1, std::memory_order_relaxed);
      if (conn.inflight >= config_.max_inflight_per_conn) {
        send_error(conn, frame.header.request_id, WireStatus::kOverloaded,
                   "connection already has " +
                       std::to_string(conn.inflight) +
                       " requests in flight");
        return;
      }
      FillRecord record;
      try {
        record =
            decode_fill_payload(frame.payload.data(), frame.payload.size());
      } catch (const Error& e) {
        send_error(conn, frame.header.request_id, WireStatus::kBadRequest,
                   e.what());
        return;
      }
      dispatch(conn, frame.header.request_id, /*is_ack=*/true,
               [&](RequestHandler::Done done) {
                 handler_.handle_fill(std::move(record), std::move(done));
               });
      return;
    }
    case FrameType::kPing:
      metrics_.pings.fetch_add(1, std::memory_order_relaxed);
      metrics_.frames_out.fetch_add(1, std::memory_order_relaxed);
      enqueue_frame(conn, make_control_frame(FrameType::kPong,
                                             frame.header.request_id));
      return;
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kPong:
      break;  // only servers send these; receiving one is a violation
  }
  metrics_.frame_errors.fetch_add(1, std::memory_order_relaxed);
  conn.closing = true;
}

void Server::send_error(Conn& conn, std::uint64_t request_id,
                        WireStatus status, const std::string& message) {
  metrics_.replies_by_status[static_cast<int>(status)].fetch_add(
      1, std::memory_order_relaxed);
  metrics_.frames_out.fetch_add(1, std::memory_order_relaxed);
  enqueue_frame(conn, make_error_frame(request_id, status, message));
}

void Server::drain_completions() {
  std::uint8_t scratch[64];
  while (read_some(wake_read_.fd(), scratch, sizeof scratch).status ==
         IoStatus::kOk) {
  }
  std::vector<Reply> replies;
  {
    std::lock_guard lock(completions_->mu);
    replies.swap(completions_->replies);
  }
  // Build every reply frame first, then flush each touched connection
  // exactly once: a pipelining client's N replies leave in one writev
  // instead of N write(2)s (the message-aggregation move, applied to
  // the response path).
  std::vector<std::uint64_t> touched;
  for (Reply& reply : replies) {
    auto it = conns_.find(reply.conn_id);
    if (it == conns_.end()) continue;  // connection died before the reply
    Conn& conn = *it->second;
    --conn.inflight;
    conn.last_active = trace::now_seconds();
    metrics_.replies_by_status[static_cast<int>(reply.status)].fetch_add(
        1, std::memory_order_relaxed);
    metrics_.frames_out.fetch_add(1, std::memory_order_relaxed);
    FrameHeader h;
    h.type = reply.status != WireStatus::kOk ? FrameType::kError
             : reply.is_ack                  ? FrameType::kPong
                                             : FrameType::kResult;
    h.status = reply.status;
    h.request_id = reply.request_id;
    enqueue_frame(conn,
                  encode_frame(h, reply.payload.data(), reply.payload.size()));
    touched.push_back(reply.conn_id);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint64_t id : touched) {
    if (auto it = conns_.find(id); it != conns_.end())
      flush_conn(*it->second);
    reap(id);
  }
}

void Server::enqueue_frame(Conn& conn, std::vector<std::uint8_t> bytes) {
  conn.outq.push_back(std::move(bytes));
}

void Server::handle_writable(Conn& conn) { flush_conn(conn); }

void Server::flush_conn(Conn& conn) {
  // Vectored flush: up to kFlushIovecs queued frames per writev(2).
  // The kernel sees one contiguous byte stream either way; what changes
  // is syscalls per reply burst (counted in metrics_.flushes).
  constexpr std::size_t kFlushIovecs = 64;
  while (!conn.outq.empty()) {
    std::array<iovec, kFlushIovecs> iov;
    std::size_t n = 0;
    for (auto it = conn.outq.begin();
         it != conn.outq.end() && n < iov.size(); ++it, ++n) {
      const std::size_t off = n == 0 ? conn.out_offset : 0;
      iov[n].iov_base = it->data() + off;
      iov[n].iov_len = it->size() - off;
    }
    const ssize_t w =
        ::writev(conn.sock.fd(), iov.data(), static_cast<int>(n));
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;  // backpressure: POLLOUT re-arms while outq is non-empty
      // Only flag it: callers may still hold the Conn reference, so the
      // poll loop (via reap) is the single place a Conn dies.
      conn.dead = true;
      return;
    }
    metrics_.flushes.fetch_add(1, std::memory_order_relaxed);
    metrics_.bytes_out.fetch_add(static_cast<std::int64_t>(w),
                                 std::memory_order_relaxed);
    // Retire fully written buffers; remember progress into a partial one.
    std::size_t left = static_cast<std::size_t>(w);
    while (left > 0) {
      const std::size_t avail = conn.outq.front().size() - conn.out_offset;
      if (left < avail) {
        conn.out_offset += left;
        break;
      }
      left -= avail;
      conn.outq.pop_front();
      conn.out_offset = 0;
    }
  }
}

void Server::reap(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const Conn& conn = *it->second;
  if (conn.dead || (conn.closing && conn.outq.empty())) close_conn(id);
}

void Server::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  conns_.erase(it);
  metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::sweep_idle(double now) {
  if (config_.idle_timeout_seconds <= 0) return;
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && conn->outq.empty() &&
        now - conn->last_active > config_.idle_timeout_seconds)
      idle.push_back(id);
  }
  for (const std::uint64_t id : idle) {
    metrics_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    close_conn(id);
  }
}

}  // namespace gpawfd::net
