#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace gpawfd::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::listen_on(std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket()");
  const int one = 1;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
    throw_errno("setsockopt(SO_REUSEADDR)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0)
    throw_errno("bind(port " + std::to_string(port) + ")");
  if (::listen(s.fd(), backlog) != 0) throw_errno("listen()");
  return s;
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  GPAWFD_CHECK_MSG(::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) == 1,
                   "not an IPv4 address: " << host);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket()");
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0)
    throw_errno("connect(" + ip + ":" + std::to_string(port) + ")");
  return s;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  GPAWFD_CHECK(flags >= 0);
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  GPAWFD_CHECK(::fcntl(fd_, F_SETFL, want) == 0);
}

void Socket::set_nodelay(bool on) {
  const int v = on ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  GPAWFD_CHECK(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  return ntohs(addr.sin_port);
}

IoResult read_some(int fd, std::uint8_t* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r > 0) return {IoStatus::kOk, static_cast<std::size_t>(r)};
    if (r == 0) return {IoStatus::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

IoResult write_some(int fd, const std::uint8_t* buf, std::size_t n) {
#ifdef MSG_NOSIGNAL
  constexpr int kFlags = MSG_NOSIGNAL;  // EPIPE instead of SIGPIPE
#else
  constexpr int kFlags = 0;
#endif
  for (;;) {
    const ssize_t r = ::send(fd, buf, n, kFlags);
    if (r >= 0) return {IoStatus::kOk, static_cast<std::size_t>(r)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

bool write_fully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const IoResult r = write_some(fd, buf + sent, n - sent);
    if (r.status == IoStatus::kOk) {
      sent += r.n;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) continue;  // blocking fd: rare
    return false;
  }
  return true;
}

}  // namespace gpawfd::net
