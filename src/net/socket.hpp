// Thin RAII layer over POSIX TCP sockets: just enough for the RPC
// front-end (listen/accept/connect, non-blocking mode, EINTR-safe
// partial reads/writes with a would-block verdict) without pulling a
// networking framework into the tree. IPv4 only — the serving plane of a
// machine-room simulator, not a general transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpawfd::net {

enum class IoStatus {
  kOk,          // n bytes transferred (n may be 0 for a 0-byte request)
  kWouldBlock,  // non-blocking fd had nothing to give / no room
  kEof,         // orderly remote close (reads only)
  kError,       // errno-level failure; the connection is dead
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t n = 0;
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  /// Bind + listen on `port` (0 = ephemeral; read back via local_port),
  /// SO_REUSEADDR so a restarted server rebinds immediately. Throws
  /// Error on failure.
  static Socket listen_on(std::uint16_t port, int backlog = 64);

  /// Blocking connect to a dotted-quad IPv4 address ("localhost" maps to
  /// 127.0.0.1). Throws Error on failure.
  static Socket connect_to(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Release ownership without closing.
  int release();
  void close();

  void set_nonblocking(bool on);
  void set_nodelay(bool on);
  /// Wake a thread blocked in read() on this fd (both directions).
  void shutdown_both();
  std::uint16_t local_port() const;

 private:
  int fd_ = -1;
};

/// One read(2)/send(2), EINTR-retried, SIGPIPE-suppressed.
IoResult read_some(int fd, std::uint8_t* buf, std::size_t n);
IoResult write_some(int fd, const std::uint8_t* buf, std::size_t n);

/// Write all `n` bytes to a blocking fd; false when the connection died.
bool write_fully(int fd, const std::uint8_t* buf, std::size_t n);

}  // namespace gpawfd::net
