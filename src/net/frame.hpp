// Length-prefixed binary framing for the RPC front-end. One frame is
//
//   magic(4) | version(1) | type(1) | status(1) | flags(1) |
//   request_id(8) | payload_len(4) | payload...
//
// all little-endian, 20 header bytes. Submit requests carry the
// svc::JobKey canonical string as payload (the key is already a stable,
// versioned serialization of the whole SimJobSpec) with the priority
// class in `flags`; result responses carry a fixed-width binary
// SimResult; error responses carry a WireStatus in `status` plus a
// human-readable message payload. FrameDecoder reassembles frames from
// an arbitrary byte stream (torn reads, many frames per read) and
// enforces the max-frame admission limit before buffering a payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/figures.hpp"
#include "core/result_codec.hpp"
#include "net/wire_status.hpp"

namespace gpawfd::net {

inline constexpr std::uint32_t kMagic = 0x46575047;  // "GPWF" on the wire
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kDefaultMaxFrameBytes = 64 * 1024;

enum class FrameType : std::uint8_t {
  kSubmit = 1,  // payload: JobKey canonical string; flags: priority
  kResult = 2,  // payload: binary SimResult; status: kOk
  kError = 3,   // payload: message; status: the WireStatus
  kPing = 4,    // payload: empty
  kPong = 5,    // payload: empty; also acks a kFill
  kFill = 6,    // payload: FillRecord (peer cache-fill push)
};

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kPing;
  WireStatus status = WireStatus::kOk;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// ---- little-endian primitives -----------------------------------------
// One implementation in core/result_codec.hpp, shared with the
// persistent cache store; re-exported here so wire code keeps reading
// as net:: throughout.

using core::append_u32;
using core::append_u64;
using core::append_double;
using core::read_u32;
using core::read_u64;
using core::read_double;

// ---- frame encoding ----------------------------------------------------

/// Header + payload as one contiguous wire-ready byte string.
std::vector<std::uint8_t> encode_frame(const FrameHeader& header,
                                       const std::uint8_t* payload,
                                       std::size_t payload_len);

std::vector<std::uint8_t> make_submit_frame(std::uint64_t request_id,
                                            const std::string& canonical,
                                            svc::Priority priority);
std::vector<std::uint8_t> make_result_frame(std::uint64_t request_id,
                                            const core::SimResult& result);
std::vector<std::uint8_t> make_error_frame(std::uint64_t request_id,
                                           WireStatus status,
                                           const std::string& message);
std::vector<std::uint8_t> make_control_frame(FrameType type,
                                             std::uint64_t request_id);

// ---- peer cache-fill ----------------------------------------------------

/// One pushed cache entry: the receiving node ingests it exactly as it
/// would a warm-loaded store record (ResultCache::insert_warm semantics,
/// newest-wins by write_time). The value bytes are the shared
/// core/result_codec encoding, so a fill payload *is* a CacheStore
/// record body — the replication path reuses the persistence codec.
struct FillRecord {
  std::string key;  // JobKey canonical string
  core::SimResult result{};
  double cost_seconds = 0;  // measured cold cost (weights eviction)
  double write_time = 0;    // trace::unix_seconds() at production time
};

/// Fill payload: key_len(4) | key | cost(8,f64) | write_time(8,f64) |
/// value (kSimResultWireBytes), all little-endian.
std::vector<std::uint8_t> make_fill_frame(std::uint64_t request_id,
                                          const FillRecord& record);
/// Strict inverse of make_fill_frame's payload: lengths must account
/// for every byte (no trailing garbage) and the key must be non-empty
/// and bounded. Throws Error on any violation.
FillRecord decode_fill_payload(const std::uint8_t* data, std::size_t len);

/// Priority class carried in a submit frame's flags byte; out-of-range
/// values clamp to kNormal (a forward-compatibility valve, not an error).
svc::Priority priority_of_flags(std::uint8_t flags);

// ---- incremental decoding ----------------------------------------------

/// Reassembles frames from a TCP byte stream. feed() appends whatever
/// the socket produced; next() pops at most one complete frame per call.
/// Protocol errors (bad magic/version, oversized frame) are sticky: the
/// stream cannot be resynchronized, so the connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Status {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // `frame` holds the next decoded frame
    kError,     // protocol violation; see error/error_status
  };

  struct Result {
    Status status = Status::kNeedMore;
    Frame frame;
    /// On kError: what went wrong, and the reply status the server
    /// should send before closing (when the header was readable,
    /// `frame.header` carries the offending request id).
    std::string error;
    WireStatus error_status = WireStatus::kBadRequest;
    bool header_valid = false;
  };

  void feed(const std::uint8_t* data, std::size_t n);
  Result next();

  std::size_t buffered_bytes() const { return buf_.size() - pos_; }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  Result poison_;
};

// ---- payload codecs ----------------------------------------------------

/// Fixed-width binary SimResult: 12 little-endian 8-byte fields (doubles
/// bit-exact via their IEEE-754 representation), so a result round-trips
/// the wire identical to the last bit. The codec itself lives in
/// core/result_codec.{hpp,cpp} — the same bytes the persistent cache
/// store (src/svc/cache_store) writes to disk, so a kResult reply *is* a
/// serialized store entry.
inline constexpr std::size_t kSimResultWireBytes = core::kSimResultCodecBytes;

using core::encode_sim_result;
using core::decode_sim_result;

/// Parse a svc::JobKey canonical string back into the SimJobSpec it
/// encodes — the server side of a submit payload. Strict: the parsed
/// spec is re-canonicalized and must reproduce the input byte-for-byte
/// (so any parser/encoder drift, wrong version, or trailing garbage is a
/// bad request, never a silently different simulation), and the decoded
/// fields must pass basic admission bounds (a remote client cannot ask
/// a worker to chew on a petabyte grid). Throws Error on any violation.
core::SimJobSpec parse_job_spec(const std::string& canonical);

}  // namespace gpawfd::net
