#include "sched/plan.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/math.hpp"

namespace gpawfd::sched {

std::string to_string(Approach a) {
  switch (a) {
    case Approach::kFlatOriginal:
      return "Flat original";
    case Approach::kFlatOptimized:
      return "Flat optimized";
    case Approach::kHybridMultiple:
      return "Hybrid multiple";
    case Approach::kHybridMasterOnly:
      return "Hybrid master-only";
    case Approach::kFlatOptimizedSubgroups:
      return "Flat optimized (sub-groups)";
  }
  return "?";
}

bool satisfies_same_subset_requirement(Approach a) {
  return a != Approach::kFlatOptimizedSubgroups;
}

std::string canonical_string(const JobConfig& job) {
  std::ostringstream os;
  os << "shape=" << job.grid_shape.x << 'x' << job.grid_shape.y << 'x'
     << job.grid_shape.z << ";ngrids=" << job.ngrids
     << ";ghost=" << job.ghost << ";elem_bytes=" << job.elem_bytes
     << ";iterations=" << job.iterations
     << ";periodic=" << (job.periodic ? 1 : 0);
  return os.str();
}

std::string canonical_string(const Optimizations& opt) {
  std::ostringstream os;
  os << "tridim=" << (opt.nonblocking_tridim ? 1 : 0)
     << ";batch=" << opt.batch_size
     << ";dbuf=" << (opt.double_buffering ? 1 : 0)
     << ";ramp=" << (opt.ramp_up ? 1 : 0)
     << ";map=" << (opt.topology_mapping ? 1 : 0);
  return os.str();
}

std::vector<int> make_batches(int grids, int batch_size, bool ramp_up) {
  GPAWFD_CHECK(grids >= 0);
  GPAWFD_CHECK(batch_size >= 1);
  std::vector<int> out;
  int remaining = grids;
  // Ramp-up: halve the first batch so the first compute can start after
  // only half a batch of un-overlappable exchange (section V). Applied
  // whenever a full batch would otherwise be the opening message —
  // including the grids == batch_size case, where it is the only source
  // of overlap at all.
  if (ramp_up && batch_size > 1 && remaining >= batch_size) {
    const int first = batch_size / 2;
    out.push_back(first);
    remaining -= first;
  }
  while (remaining > 0) {
    const int b = remaining < batch_size ? remaining : batch_size;
    out.push_back(b);
    remaining -= b;
  }
  return out;
}

RunPlan RunPlan::make(Approach approach, const JobConfig& job,
                      const Optimizations& opt, int total_cores,
                      int cores_per_node) {
  GPAWFD_CHECK(total_cores >= 1);
  GPAWFD_CHECK(cores_per_node >= 1);
  GPAWFD_CHECK(job.ngrids >= 1);
  GPAWFD_CHECK(job.iterations >= 1);
  GPAWFD_CHECK(job.ghost >= 1);

  const bool multi_node = total_cores > cores_per_node;
  const bool hybrid = approach == Approach::kHybridMultiple ||
                      approach == Approach::kHybridMasterOnly;
  const bool subgroups = approach == Approach::kFlatOptimizedSubgroups;
  if ((hybrid || subgroups) && multi_node) {
    GPAWFD_CHECK_MSG(total_cores % cores_per_node == 0,
                     "hybrid approaches need whole nodes, got "
                         << total_cores << " cores");
  }
  const int nodes =
      multi_node ? total_cores / cores_per_node : 1;

  int nranks, threads, decomp_ranks;
  if (hybrid) {
    nranks = nodes;
    threads = total_cores / nranks;
    decomp_ranks = nranks;
  } else if (subgroups) {
    nranks = total_cores;
    threads = 1;
    // Each rank only partitions its sub-group's grids node-deep.
    decomp_ranks = nodes;
  } else {
    nranks = total_cores;
    threads = 1;
    decomp_ranks = nranks;
  }

  auto decomp = grid::Decomposition::best(job.grid_shape, decomp_ranks,
                                          job.ghost);
  return RunPlan(approach, job, opt, total_cores, cores_per_node, nranks,
                 threads, std::move(decomp));
}

std::vector<int> RunPlan::grids_of_stream(int rank, int stream) const {
  GPAWFD_CHECK(rank >= 0 && rank < nranks_);
  GPAWFD_CHECK(stream >= 0 && stream < comm_streams_per_rank());
  std::vector<int> out;
  if (approach_ == Approach::kHybridMultiple) {
    // Whole grids distributed round-robin over the rank's threads.
    for (int g = stream; g < job_.ngrids; g += threads_per_rank_)
      out.push_back(g);
  } else if (approach_ == Approach::kFlatOptimizedSubgroups) {
    // Whole grids distributed round-robin over the node's ranks.
    const int ranks_per_cell = nranks_ / decomp_.ranks();
    const int sub = rank % ranks_per_cell;
    for (int g = sub; g < job_.ngrids; g += ranks_per_cell) out.push_back(g);
  } else {
    out.resize(static_cast<std::size_t>(job_.ngrids));
    for (int g = 0; g < job_.ngrids; ++g)
      out[static_cast<std::size_t>(g)] = g;
  }
  return out;
}

std::vector<int> RunPlan::batches_of_stream(int rank, int stream) const {
  const auto grids = grids_of_stream(rank, stream);
  return make_batches(static_cast<int>(grids.size()), opt_.batch_size,
                      opt_.ramp_up && opt_.double_buffering);
}

Vec3 RunPlan::coords_of_rank(int rank) const {
  GPAWFD_CHECK(rank >= 0 && rank < nranks_);
  if (approach_ == Approach::kFlatOptimizedSubgroups) {
    // Several ranks (one per core of a node) share each decomposition cell.
    const int ranks_per_cell = nranks_ / decomp_.ranks();
    return decomp_.coords_of(rank / ranks_per_cell);
  }
  return decomp_.coords_of(rank);
}

std::int64_t RunPlan::face_bytes_per_grid(Vec3 coords, int dim) const {
  const Vec3 n = decomp_.local_box(coords).shape();
  std::int64_t cross = 1;
  for (int d = 0; d < 3; ++d)
    if (d != dim) cross *= n[d];
  return cross * job_.ghost * job_.elem_bytes;
}

std::int64_t RunPlan::points_per_grid(Vec3 coords) const {
  return decomp_.local_box(coords).volume();
}

}  // namespace gpawfd::sched
