// Run planning shared by the functional (real data) and simulated
// (virtual time) executors. Everything here is pure decision logic —
// which processes exist, who owns which grids, how grids are chunked
// into batches, how many bytes each face message carries — so that both
// executors provably execute the same communication pattern.
#pragma once

#include <string>
#include <vector>

#include "common/vec3.hpp"
#include "grid/decomposition.hpp"

namespace gpawfd::sched {

/// The four programming approaches of the paper (section VI) plus the
/// section VII ablation variant.
enum class Approach {
  /// Original GPAW: one rank per core (virtual mode), blocking
  /// dimension-serialized exchange, no batching, no double buffering.
  kFlatOriginal,
  /// One rank per core plus all section V optimizations.
  kFlatOptimized,
  /// One rank per node, one communicating thread per core, grids
  /// distributed whole across threads (MPI MULTIPLE).
  kHybridMultiple,
  /// One rank per node, only the master thread communicates (MPI
  /// SINGLE); every grid's computation is split across the cores with a
  /// thread barrier per batch.
  kHybridMasterOnly,
  /// Section VII experiment: flat optimized, but the grids are statically
  /// divided into cores_per_node sub-groups so each rank partitions its
  /// sub-group's grids only node-deep. Performance-identical to
  /// kHybridMultiple; breaks GPAW's same-subset requirement.
  kFlatOptimizedSubgroups,
};

std::string to_string(Approach a);

/// Is this approach allowed in a real GPAW run? (The sub-group variant
/// violates the every-rank-owns-the-same-subset-of-every-grid invariant
/// that orthogonalization needs.)
bool satisfies_same_subset_requirement(Approach a);

/// The workload: how GPAW exercises the finite-difference operation.
struct JobConfig {
  Vec3 grid_shape = Vec3::cube(144);  // one real-space grid
  int ngrids = 32;                    // wave functions in flight
  int ghost = 2;                      // stencil radius (13-point: 2)
  int elem_bytes = 8;                 // real grids; 16 for complex
  int iterations = 1;                 // FD sweeps over every grid
  bool periodic = true;

  friend bool operator==(const JobConfig&, const JobConfig&) = default;
};

/// Canonical single-line encoding of a JobConfig: every field, in
/// declaration order, unambiguously delimited. Two configs encode
/// equally iff they are equal — the service layer's cache keys
/// (svc::JobKey) are built from these strings.
std::string canonical_string(const JobConfig& job);

/// Section V optimizations, individually toggleable for the ablations.
struct Optimizations {
  /// Exchange all three dimensions concurrently (vs one at a time,
  /// blocking, like the original).
  bool nonblocking_tridim = true;
  /// Pack `batch_size` grids' halos into each message.
  int batch_size = 1;
  /// Overlap batch k's computation with batch k+1's exchange.
  bool double_buffering = true;
  /// Halve the first batch so double buffering has work sooner.
  bool ramp_up = true;
  /// Map the process grid onto the torus (MPI_Cart_create reorder).
  bool topology_mapping = true;

  static Optimizations all_on(int batch) {
    Optimizations o;
    o.batch_size = batch;
    return o;
  }
  static Optimizations original() {
    return Optimizations{.nonblocking_tridim = false,
                         .batch_size = 1,
                         .double_buffering = false,
                         .ramp_up = false,
                         .topology_mapping = true};
  }

  friend bool operator==(const Optimizations&, const Optimizations&) = default;
};

/// Canonical single-line encoding of an Optimizations toggle set (see
/// canonical_string(JobConfig) for the contract).
std::string canonical_string(const Optimizations& opt);

/// Split `grids` items into batches of at most `batch_size`, optionally
/// halving the first batch (the paper's ramp-up). Sizes sum to `grids`.
std::vector<int> make_batches(int grids, int batch_size, bool ramp_up);

/// A fully resolved run: machine slice + approach + workload.
class RunPlan {
 public:
  static RunPlan make(Approach approach, const JobConfig& job,
                      const Optimizations& opt, int total_cores,
                      int cores_per_node = 4);

  Approach approach() const { return approach_; }
  const JobConfig& job() const { return job_; }
  const Optimizations& opt() const { return opt_; }
  int total_cores() const { return total_cores_; }
  int cores_per_node() const { return cores_per_node_; }
  int nodes() const { return total_cores_ / cores_per_node_; }

  /// MPI ranks in the run.
  int nranks() const { return nranks_; }
  /// Threads per rank (1 for flat approaches).
  int threads_per_rank() const { return threads_per_rank_; }
  /// Independent communication streams per rank (one per thread for
  /// hybrid multiple, otherwise one).
  int comm_streams_per_rank() const {
    return approach_ == Approach::kHybridMultiple ? threads_per_rank_ : 1;
  }

  /// How every real-space grid is domain-decomposed.
  const grid::Decomposition& decomp() const { return decomp_; }

  /// Grids whose halo exchange flows through a given comm stream of a
  /// rank, in processing order. Streams are per-thread in hybrid
  /// multiple (grid ids g with g % threads == stream) and per-sub-group
  /// in the sub-group ablation; otherwise all grids.
  std::vector<int> grids_of_stream(int rank, int stream) const;

  /// Batch sizes for one stream (applies batching + ramp-up config).
  std::vector<int> batches_of_stream(int rank, int stream) const;

  /// Decomposition coordinates of a rank (cart coords, before any
  /// physical reorder).
  Vec3 coords_of_rank(int rank) const;

  /// Face message payload in bytes for one grid, for the rank at
  /// `coords`, along `dim` (both sides are symmetric).
  std::int64_t face_bytes_per_grid(Vec3 coords, int dim) const;

  /// Local interior points of one grid on a rank.
  std::int64_t points_per_grid(Vec3 coords) const;

  /// True when a dimension actually needs network exchange (more than
  /// one process along it).
  bool dim_needs_exchange(int dim) const {
    return decomp_.process_grid()[dim] > 1;
  }

 private:
  RunPlan(Approach approach, JobConfig job, Optimizations opt,
          int total_cores, int cores_per_node, int nranks,
          int threads_per_rank, grid::Decomposition decomp)
      : approach_(approach),
        job_(job),
        opt_(opt),
        total_cores_(total_cores),
        cores_per_node_(cores_per_node),
        nranks_(nranks),
        threads_per_rank_(threads_per_rank),
        decomp_(std::move(decomp)) {}

  Approach approach_;
  JobConfig job_;
  Optimizations opt_;
  int total_cores_;
  int cores_per_node_;
  int nranks_;
  int threads_per_rank_;
  grid::Decomposition decomp_;
};

}  // namespace gpawfd::sched
