#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md): configure, build, and run the full ctest
# suite. Pass --tsan to run the same thing under ThreadSanitizer in a
# separate build tree (build-tsan/), which race-checks the concurrent
# service layer (svc_stress_test, mp_stress_test) for real.
#
#   scripts/tier1.sh            # the ROADMAP tier-1 line
#   scripts/tier1.sh --tsan     # + TSAN build of the concurrency tests
#   scripts/tier1.sh --native   # host-tuned build (-march=native) in
#                               # build-native/: the SIMD kernels compile
#                               # to AVX2/FMA and the same suite must pass
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_tier1() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "${1:-}" == "--native" ]]; then
  run_tier1 build-native -DGPAWFD_NATIVE=ON
elif [[ "${1:-}" == "--tsan" ]]; then
  # Only the concurrency-heavy suites need the (slow) TSAN pass.
  cmake -B build-tsan -S . -DGPAWFD_TSAN=ON
  cmake --build build-tsan -j "$JOBS" --target svc_stress_test svc_test \
    worker_pool_test mp_stress_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Svc|WorkerPool|MpStress|JobQueue|ResultCache'
else
  run_tier1 build
fi
