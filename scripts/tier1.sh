#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md): configure, build, and run the full ctest
# suite. Pass --tsan to run the same thing under ThreadSanitizer in a
# separate build tree (build-tsan/), which race-checks the concurrent
# service layer (svc_stress_test incl. the chaos soak, svc_fault_test,
# mp_stress_test) for real. Pass --stress to run only the `stress`-
# labelled soak suites with many more chaos rounds — the nightly lane,
# kept out of tier-1 so the default stays fast.
#
#   scripts/tier1.sh            # the ROADMAP tier-1 line
#   scripts/tier1.sh --tsan     # + TSAN build of the concurrency tests
#   scripts/tier1.sh --stress   # long soak: ctest -L stress, more rounds
#   scripts/tier1.sh --persist  # crash + restart round-trip over the
#                               # persistent result store (SIGKILL the
#                               # server, restart, require 0 re-runs)
#   scripts/tier1.sh --cluster  # sharded-cluster failover: router + 3
#                               # backends, SIGKILL one mid-load, require
#                               # zero lost jobs and >= 1 failover retry
#                               # (scripts/cluster_harness.sh), then the
#                               # node-kill scenario SLO-gated through
#                               # scenario_runner
#   scripts/tier1.sh --native   # host-tuned build (-march=native) in
#                               # build-native/: the SIMD kernels compile
#                               # to AVX2/FMA and the same suite must pass
#   scripts/tier1.sh --bench-smoke  # abbreviated service + wire benches
#                               # (--smoke: completeness gates only, perf
#                               # frontier gates reported but not
#                               # enforced), emitting BENCH_svc.json and
#                               # BENCH_net.json for CI artifact upload
#   scripts/tier1.sh --scenario-smoke  # declarative workload scenarios:
#                               # run the checked-in smoke and fault-storm
#                               # scenarios through scenario_runner, SLO
#                               # assertions enforced, emitting
#                               # SCENARIO_*.json for CI artifact upload
#   scripts/tier1.sh --trajectory  # telemetry pipeline end to end: smoke
#                               # benches + scenario streamed into
#                               # telemetry-out/telemetry.gptt, a SIGKILL
#                               # mid-run must leave a decodable table,
#                               # scripts/trajectory_report renders the
#                               # series and gates it against the
#                               # committed TRAJECTORY.json — and the
#                               # gate must provably fire on an injected
#                               # 2x p99 degradation
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_tier1() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "${1:-}" == "--native" ]]; then
  run_tier1 build-native -DGPAWFD_NATIVE=ON
elif [[ "${1:-}" == "--tsan" ]]; then
  # Only the concurrency-heavy suites need the (slow) TSAN pass. The net
  # loopback tests ride along: poll loop vs worker continuations vs
  # client reader is exactly the cross-thread surface TSAN is for.
  # tsan.supp silences the known uninstrumented-libstdc++ exception_ptr
  # refcount false positive (see the comment in that file).
  cmake -B build-tsan -S . -DGPAWFD_TSAN=ON
  cmake --build build-tsan -j "$JOBS" --target svc_stress_test svc_test \
    svc_fault_test worker_pool_test mp_stress_test net_test \
    cache_store_test cluster_test telemetry_test
  TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp ${TSAN_OPTIONS:-}" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Svc|RetryPolicy|FaultPlan|WorkerPool|MpStress|JobQueue|ResultCache|Loopback|Frame\.|Codec|WireStatus|CacheStore|Persister|SimServicePersist|HashRing|Router|Telemetry'
elif [[ "${1:-}" == "--stress" ]]; then
  # Nightly soak lane: only the `stress`-labelled suites, run much longer
  # (GPAWFD_CHAOS_ROUNDS multiplies the chaos soak's fault schedules).
  # cache_store_test rides along: its every-byte-offset truncation and
  # bit-flip torture loops carry the stress label too.
  cmake -B build -S .
  cmake --build build -j "$JOBS" \
    --target svc_stress_test mp_stress_test cache_store_test \
    telemetry_test scenario_soak_test
  GPAWFD_CHAOS_ROUNDS="${GPAWFD_CHAOS_ROUNDS:-20}" \
    ctest --test-dir build --output-on-failure -j "$JOBS" -L stress
elif [[ "${1:-}" == "--bench-smoke" ]]; then
  # Abbreviated bench lane: small request counts, every phase exercised,
  # JSON emitted for artifact upload. --smoke keeps the completeness
  # gates (all requests answered, faults absorbed, warm restart free)
  # but does not enforce the perf-frontier gates — a loaded CI box must
  # not fail tier-1 on a noisy throughput ratio.
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target svc_service net_rpc
  ./build/bench/svc_service --smoke --json BENCH_svc.json
  ./build/bench/net_rpc --smoke --json BENCH_net.json
elif [[ "${1:-}" == "--scenario-smoke" ]]; then
  # Scenario lane: the checked-in declarative workloads, SLO-gated.
  # scenario_runner exits nonzero when any assertion fails, so this lane
  # IS the gate; the JSON reports are uploaded as CI artifacts.
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target scenario_runner
  ./build/examples/scenario_runner --scenario=scenarios/smoke.json \
    --report=SCENARIO_smoke.json
  ./build/examples/scenario_runner --scenario=scenarios/fault_storm.json \
    --report=SCENARIO_fault_storm.json
elif [[ "${1:-}" == "--trajectory" ]]; then
  # Telemetry trajectory lane. Every producer layer streams into one
  # run-scoped table, then the pure-python reader (no build needed on
  # the read side) renders the per-PR series and gates it against the
  # committed baseline. The committed thresholds are deliberately
  # generous (TRAJECTORY.json carries them per metric) so a loaded
  # runner cannot flake tier-1 on wall-clock noise; --inject proves the
  # gate is live, not vacuously green.
  cmake -B build -S .
  cmake --build build -j "$JOBS" \
    --target svc_service net_rpc scenario_runner sim_server
  scripts/trajectory_report selfcheck
  RUN_ID="${GPAWFD_RUN_ID:-ci}"
  rm -rf telemetry-out telemetry-crash
  ./build/bench/svc_service --smoke --json BENCH_svc.json \
    --telemetry-dir telemetry-out --run-id "$RUN_ID"
  ./build/bench/net_rpc --smoke --json BENCH_net.json \
    --telemetry-dir telemetry-out --run-id "$RUN_ID"
  ./build/examples/scenario_runner --scenario=scenarios/smoke.json \
    --telemetry-dir=telemetry-out --run-id="$RUN_ID"
  # Crash survival: SIGKILL a serving process mid-run; the forward-scan
  # recovery must still decode every fully-flushed row (a non-empty
  # render — trajectory_report exits 1 on an empty series).
  ./build/examples/sim_server --clients=8 --requests=500 \
    --telemetry-dir=telemetry-crash --telemetry-period-ms=50 \
    --run-id="$RUN_ID-crash" >/dev/null 2>&1 &
  SRV=$!
  sleep 1
  kill -9 "$SRV" 2>/dev/null || true
  wait "$SRV" 2>/dev/null || true
  scripts/trajectory_report render telemetry-crash/telemetry.gptt
  scripts/trajectory_report render telemetry-out/telemetry.gptt \
    --json TRAJECTORY_report.json
  scripts/trajectory_report gate telemetry-out/telemetry.gptt \
    --baseline TRAJECTORY.json --allow-missing
  # The gate must FAIL on a synthetic 2x p99 regression — exit 0 here
  # would mean the lane can never catch anything.
  if scripts/trajectory_report gate telemetry-out/telemetry.gptt \
      --baseline TRAJECTORY.json --allow-missing --inject 'p99:2.0'; then
    echo "trajectory gate did not fire on injected 2x p99" >&2
    exit 1
  fi
  echo "trajectory lane OK (gate live, crash table decodable)"
elif [[ "${1:-}" == "--cluster" ]]; then
  # Cluster failover lane: the kill-one-of-three shell harness over real
  # processes, then the declarative node-kill scenario (in-process
  # cluster stack, SLO assertions enforced; the JSON report is a CI
  # artifact).
  cmake -B build -S .
  cmake --build build -j "$JOBS" \
    --target sim_server sim_client cluster_router scenario_runner
  scripts/cluster_harness.sh
  ./build/examples/scenario_runner --scenario=scenarios/node_kill.json \
    --report=SCENARIO_node_kill.json
elif [[ "${1:-}" == "--persist" ]]; then
  # Persistence round-trip: fill a store over TCP, SIGKILL the server,
  # restart it on the same directory, and require the replayed sweep to
  # execute zero simulations (see scripts/persist_roundtrip.sh).
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target sim_server sim_client
  scripts/persist_roundtrip.sh
else
  run_tier1 build
fi
