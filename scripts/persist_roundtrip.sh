#!/usr/bin/env bash
# Kill-and-restart persistence round-trip (the --persist lane of
# scripts/tier1.sh): start sim_server --listen with a persistent result
# store, fill it over TCP with sim_client, SIGKILL the server (a real
# crash: no shutdown hook, no final flush), restart it on the same
# directory, and replay the identical sweep. The round trip passes only
# if the restarted server warm-loads the crashed process's results and
# answers the whole second sweep without running a single simulation.
#
#   scripts/persist_roundtrip.sh                 # uses build/
#   BUILD_DIR=build-native scripts/persist_roundtrip.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD_DIR:-build}"
SERVER="$BUILD/examples/sim_server"
CLIENT="$BUILD/examples/sim_client"
[[ -x "$SERVER" && -x "$CLIENT" ]] || {
  echo "persist_roundtrip: build $SERVER and $CLIENT first" >&2
  exit 2
}

WORK="$(mktemp -d "${TMPDIR:-/tmp}/gpawfd_persist.XXXXXX")"
CACHE="$WORK/cache"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# A small sweep: 4 distinct jobs, enough requests that both runs hammer
# the same keys repeatedly (exercising hits, not just fills).
SWEEP=(--clients=2 --jobs=4 --requests=8 --edge=24 --cores=16)

start_server() {  # $1 = log file; sets SERVER_PID and PORT
  "$SERVER" --listen --port=0 --workers=2 --cache-dir="$CACHE" >"$1" 2>&1 &
  SERVER_PID=$!
  PORT=""
  local i
  for i in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\),.*/\1/p' "$1")"
    [[ -n "$PORT" ]] && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "persist_roundtrip: server died at startup; log:" >&2
      cat "$1" >&2
      exit 1
    }
    sleep 0.1
  done
  echo "persist_roundtrip: no port in $1" >&2
  exit 1
}

table_value() {  # $1 = log file, $2 = row label -> last integer on the row
  grep -F "$2" "$1" | grep -o '[0-9]\+' | tail -1
}

echo "== run 1: cold server, fill the store over TCP =="
start_server "$WORK/server1.log"
"$CLIENT" --port="$PORT" "${SWEEP[@]}" >"$WORK/client1.log" 2>&1

# Let the write-behind persister drain + fsync, then crash the server:
# SIGKILL means no destructor runs — recovery alone must carry the store.
sleep 2
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[[ -s "$CACHE/results.gpcs" ]] || {
  echo "FAIL: store file missing or empty after the first run" >&2
  exit 1
}

echo "== run 2: restart on the same store, replay the sweep =="
start_server "$WORK/server2.log"
WARM="$(sed -n 's/.*warm-loaded \([0-9]*\) results.*/\1/p' "$WORK/server2.log")"
"$CLIENT" --port="$PORT" "${SWEEP[@]}" >"$WORK/client2.log" 2>&1
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

EXECUTED="$(table_value "$WORK/server2.log" "simulations actually run")"
COMPLETED="$(table_value "$WORK/client2.log" "completed")"

echo "warm-loaded at restart:      ${WARM:-?}"
echo "second-run replies:          ${COMPLETED:-?}"
echo "second-run simulations run:  ${EXECUTED:-?}"

FAIL=0
[[ -n "$WARM" && "$WARM" -ge 1 ]] || {
  echo "FAIL: restarted server warm-loaded nothing" >&2; FAIL=1; }
[[ -n "$COMPLETED" && "$COMPLETED" -ge 1 ]] || {
  echo "FAIL: second sweep completed no requests" >&2; FAIL=1; }
[[ "$EXECUTED" == "0" ]] || {
  echo "FAIL: restarted server re-ran $EXECUTED simulations" >&2; FAIL=1; }
if [[ "$FAIL" != 0 ]]; then
  echo "---- server2.log ----" >&2; cat "$WORK/server2.log" >&2
  exit 1
fi
echo "OK: crash + restart served the entire sweep from the warm store"
