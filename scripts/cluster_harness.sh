#!/usr/bin/env bash
# Kill-one-of-three cluster failover harness (the --cluster lane of
# scripts/tier1.sh): boot three sim_server backends and a cluster_router
# in front of them, drive a sustained pipelined sim_client load through
# the router, SIGKILL one backend mid-load (a real node death: no
# shutdown hook, in-flight replies drop on the floor), and require a
# perfect ledger at the end — every request answered kOk, zero give-ups,
# and the router metrics proving at least one job actually failed over
# onto a replica (cluster.retried >= 1, cluster.marked_down >= 1).
#
#   scripts/cluster_harness.sh                 # uses build/
#   BUILD_DIR=build-native scripts/cluster_harness.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD_DIR:-build}"
SERVER="$BUILD/examples/sim_server"
ROUTER="$BUILD/examples/cluster_router"
CLIENT="$BUILD/examples/sim_client"
[[ -x "$SERVER" && -x "$ROUTER" && -x "$CLIENT" ]] || {
  echo "cluster_harness: build $SERVER, $ROUTER and $CLIENT first" >&2
  exit 2
}

WORK="$(mktemp -d "${TMPDIR:-/tmp}/gpawfd_cluster.XXXXXX")"
PIDS=()
cleanup() {
  local pid
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {  # $1 = log file, $2 = process name -> echoes the port
  local i port
  for i in $(seq 1 100); do
    port="$(sed -n 's/.*listening on port \([0-9]*\),.*/\1/p' "$1")"
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  echo "cluster_harness: no port from $2 in $1" >&2
  cat "$1" >&2
  exit 1
}

metric() {  # $1 = metrics file, $2 = counter name -> its value
  sed -n "s/^$2: \([0-9-]*\)$/\1/p" "$1"
}

echo "== boot: 3 backends + router =="
BACKEND_PIDS=()
BACKEND_PORTS=()
for i in 0 1 2; do
  "$SERVER" --listen --port=0 --workers=2 >"$WORK/backend$i.log" 2>&1 &
  BACKEND_PIDS+=($!)
  PIDS+=($!)
  disown $!  # no job-control obituary when the SIGKILL lands
done
for i in 0 1 2; do
  BACKEND_PORTS+=("$(wait_port "$WORK/backend$i.log" "backend $i")")
done

METRICS="$WORK/router_metrics.txt"
"$ROUTER" --port=0 \
  --backends="$(IFS=,; echo "${BACKEND_PORTS[*]}")" \
  --retries=4 --backoff-ms=2 --health-period-ms=50 --fail-threshold=2 \
  --stable-ring \
  --metrics-out="$METRICS" >"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
ROUTER_PORT="$(wait_port "$WORK/router.log" "router")"
echo "backends on ${BACKEND_PORTS[*]}, router on $ROUTER_PORT"

echo "== load: 4 clients x 2000 requests, SIGKILL backend 1 mid-flight =="
CLIENTS=4
REQUESTS=2000
"$CLIENT" --port="$ROUTER_PORT" --clients="$CLIENTS" --jobs=8 \
  --requests="$REQUESTS" --pipeline=8 --edge=32 --cores=64 \
  >"$WORK/client.log" 2>&1 &
CLIENT_PID=$!
PIDS+=("$CLIENT_PID")

# Kill while the load is provably in flight: shortly after the client
# starts, not after fixed setup sleeps (the whole run takes under two
# seconds on a fast box — a late kill tests nothing).
sleep 0.25
kill -9 "${BACKEND_PIDS[1]}"
echo "backend 1 (port ${BACKEND_PORTS[1]}) SIGKILLed"

CLIENT_RC=0
wait "$CLIENT_PID" || CLIENT_RC=$?

# Graceful router stop writes the metrics snapshot file.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" 2>/dev/null || true

EXPECTED=$((CLIENTS * REQUESTS))
COMPLETED="$(grep -F "completed" "$WORK/client.log" | grep -o '[0-9]\+' \
  | tail -1)"
RETRIED="$(metric "$METRICS" "cluster.retried")"
MARKED_DOWN="$(metric "$METRICS" "cluster.marked_down")"
GAVE_UP="$(metric "$METRICS" "cluster.gave_up")"
ROUTER_OK="$(metric "$METRICS" "cluster.ok")"
FILLS="$(metric "$METRICS" "cluster.fills_sent")"

echo "client completed:        ${COMPLETED:-?} / $EXPECTED"
echo "router ok:               ${ROUTER_OK:-?}"
echo "router retried:          ${RETRIED:-?}"
echo "router marked_down:      ${MARKED_DOWN:-?}"
echo "router gave_up:          ${GAVE_UP:-?}"
echo "router fills_sent:       ${FILLS:-?}"

FAIL=0
[[ "$CLIENT_RC" == 0 ]] || {
  echo "FAIL: sim_client exited $CLIENT_RC" >&2; FAIL=1; }
[[ "${COMPLETED:-0}" == "$EXPECTED" ]] || {
  echo "FAIL: lost jobs — completed ${COMPLETED:-0} of $EXPECTED" >&2
  FAIL=1; }
! grep -q "failed:" "$WORK/client.log" || {
  echo "FAIL: client saw failed requests:" >&2
  grep "failed:" "$WORK/client.log" >&2
  FAIL=1; }
[[ -n "$GAVE_UP" && "$GAVE_UP" == 0 ]] || {
  echo "FAIL: router gave up on ${GAVE_UP:-?} jobs" >&2; FAIL=1; }
[[ -n "$RETRIED" && "$RETRIED" -ge 1 ]] || {
  echo "FAIL: no job retried onto a replica — the kill missed the load" >&2
  FAIL=1; }
[[ -n "$MARKED_DOWN" && "$MARKED_DOWN" -ge 1 ]] || {
  echo "FAIL: the dead backend was never marked down" >&2; FAIL=1; }
[[ -n "$FILLS" && "$FILLS" -ge 1 ]] || {
  echo "FAIL: no peer cache-fill was pushed" >&2; FAIL=1; }
if [[ "$FAIL" != 0 ]]; then
  echo "---- router.log ----" >&2; cat "$WORK/router.log" >&2
  echo "---- client.log ----" >&2; cat "$WORK/client.log" >&2
  exit 1
fi
echo "OK: one of three backends died mid-load and every job still landed"
