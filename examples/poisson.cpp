// Solving the Poisson equation for a charge distribution — one of the
// two GPAW workloads the paper's finite-difference operation serves
// (the other being the Kohn-Sham equation; see electronic_structure.cpp).
//
// A neutral pair of Gaussian charges in a periodic box: solve
// del^2 phi = -4 pi rho with the distributed weighted-Jacobi solver and
// compare the dipole potential against the expected sign structure.
#include <cmath>
#include <iostream>
#include <numbers>

#include "common/table.hpp"
#include "gpaw/multigrid.hpp"
#include "gpaw/poisson.hpp"
#include "mp/thread_comm.hpp"

int main() {
  using namespace gpawfd;
  using gpaw::Domain;
  using gpaw::PoissonSolver;

  const int n = 32;
  const double L = 16.0;
  const double h = L / n;

  std::cout << "gpawfd poisson example: neutral Gaussian pair in a "
            << n << "^3 periodic box (h = " << h << ")\n";

  mp::ThreadWorld world(8);
  world.run([&](mp::ThreadComm& comm) {
    Domain d(comm, Vec3::cube(n), h);

    // rho = g+(r - r1) - g-(r - r2), sigma = 1.2 grid spacings.
    const double sigma = 1.2;
    const Vec3 c1{n / 4, n / 2, n / 2}, c2{3 * n / 4, n / 2, n / 2};
    auto gaussian = [&](Vec3 p, Vec3 c) {
      double r2 = 0;
      for (int k = 0; k < 3; ++k) {
        // periodic minimum-image distance in grid units
        double dk = static_cast<double>(p[k] - c[k]);
        if (dk > n / 2.0) dk -= n;
        if (dk < -n / 2.0) dk += n;
        r2 += dk * dk * h * h;
      }
      const double s = sigma * h;
      return std::exp(-r2 / (2 * s * s)) /
             std::pow(2 * std::numbers::pi * s * s, 1.5);
    };
    auto rho = d.make_field();
    d.fill(rho, [&](Vec3 p) { return gaussian(p, c1) - gaussian(p, c2); });

    // Solve twice: plain weighted Jacobi (thousands of sweeps) and the
    // geometric multigrid GPAW actually uses (a handful of V-cycles).
    auto phi_j = d.make_field();
    PoissonSolver::Options opt;
    opt.tolerance = 1e-8;
    PoissonSolver jacobi(d, opt);
    const auto res = jacobi.solve(phi_j, rho);

    auto phi = d.make_field();
    gpaw::MultigridOptions mg_opt;
    mg_opt.tolerance = 1e-8;
    gpaw::MultigridPoissonSolver mg(d, mg_opt);
    const auto mg_res = mg.solve(phi, rho);

    // Probe the potential at the two charge centres (whichever rank owns
    // them) and reduce to rank 0.
    double probe[2] = {0, 0};
    if (d.box().contains(c1)) probe[0] = phi.at(c1 - d.box().lo);
    if (d.box().contains(c2)) probe[1] = phi.at(c2 - d.box().lo);
    double global[2];
    comm.allreduce_sum(probe, global);

    // Agreement between the two solvers.
    double max_diff_local = 0;
    phi.for_each_interior([&](Vec3 p, double& v) {
      max_diff_local = std::max(max_diff_local, std::fabs(v - phi_j.at(p)));
    });
    std::vector<double> diffs(static_cast<std::size_t>(comm.size()));
    comm.allgather(std::as_bytes(std::span<const double>(&max_diff_local, 1)),
                   std::as_writable_bytes(std::span<double>(diffs)));

    if (comm.rank() == 0) {
      double max_diff = 0;
      for (double v : diffs) max_diff = std::max(max_diff, v);
      std::cout << "  weighted Jacobi: " << (res.converged ? "converged" : "FAILED")
                << " in " << res.iterations << " sweeps (residual "
                << res.relative_residual << ")\n"
                << "  multigrid:       " << (mg_res.converged ? "converged" : "FAILED")
                << " in " << mg_res.cycles << " V-cycles of "
                << mg.levels() << " levels (residual "
                << mg_res.relative_residual << ")\n"
                << "  solver agreement (max |diff|): " << max_diff << "\n"
                << "  phi at +q centre: " << fmt_fixed(global[0], 4)
                << "  (positive charge -> positive potential)\n"
                << "  phi at -q centre: " << fmt_fixed(global[1], 4) << "\n"
                << "  antisymmetry |phi1 + phi2|: "
                << std::fabs(global[0] + global[1]) << "\n";
    }
  });
  return 0;
}
