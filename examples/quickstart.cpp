// Quickstart: apply the distributed 13-point finite-difference stencil
// to a set of real-space grids with the hybrid-multiple approach, verify
// the result against a sequential reference, and print what moved where.
//
// This is the paper's core operation end-to-end on your machine: 2 MPI
// "ranks" (threads in-process) x 4 communicating worker threads each,
// halos batched and double-buffered.
#include <atomic>
#include <iostream>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"

int main() {
  using namespace gpawfd;
  using sched::Approach;
  using sched::JobConfig;
  using sched::Optimizations;

  // The workload: 8 grids of 32^3, periodic boundaries, radius-2 stencil.
  JobConfig job;
  job.grid_shape = Vec3::cube(32);
  job.ngrids = 8;
  job.ghost = 2;

  // Hybrid multiple on 8 "cores" = 2 ranks x 4 threads.
  const auto plan = sched::RunPlan::make(Approach::kHybridMultiple, job,
                                         Optimizations::all_on(2), 8, 4);
  const auto coeffs = stencil::Coeffs::laplacian(2);

  std::cout << "gpawfd quickstart\n"
            << "  grids:      " << job.ngrids << " x " << job.grid_shape
            << "\n"
            << "  approach:   " << to_string(plan.approach()) << "\n"
            << "  ranks:      " << plan.nranks() << " x "
            << plan.threads_per_rank() << " threads\n"
            << "  decomposed: " << plan.decomp().process_grid()
            << " process grid, local box "
            << plan.decomp().local_box({0, 0, 0}).shape() << "\n";

  mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
  std::atomic<std::int64_t> bytes{0};
  std::atomic<int> mismatches{0};

  world.run([&](mp::ThreadComm& comm) {
    core::DistributedFd<double> engine(comm, plan, coeffs);
    const grid::Box3 box = plan.decomp().local_box(engine.coords());

    // Each rank fills its sub-grids from the global coordinates.
    const auto n = static_cast<std::size_t>(job.ngrids);
    std::vector<grid::Array3D<double>> in(n), out(n);
    for (std::size_t g = 0; g < n; ++g) {
      in[g] = grid::Array3D<double>(box.shape(), job.ghost);
      out[g] = grid::Array3D<double>(box.shape(), job.ghost);
      core::testing::fill_local(in[g], box, static_cast<int>(g));
    }

    engine.apply_all(in, out);  // halo exchange + stencil, all approaches
    bytes += comm.stats().bytes_sent.load();

    // Verify against the sequential ground truth.
    for (std::size_t g = 0; g < n; ++g) {
      const auto expected = core::testing::sequential_reference<double>(
          job.grid_shape, job.ghost, static_cast<int>(g), coeffs, true);
      out[g].for_each_interior([&](Vec3 p, double& v) {
        if (std::abs(v - expected.at(box.lo + p)) > 1e-12) ++mismatches;
      });
    }
  });

  std::cout << "  halo bytes: " << fmt_bytes(static_cast<double>(bytes.load()))
            << " exchanged\n"
            << "  verified:   "
            << (mismatches.load() == 0 ? "all points match the sequential reference"
                                       : "MISMATCH!")
            << "\n";
  return mismatches.load() == 0 ? 0 : 1;
}
