// sim_server: the simulated machine room as a service. By default M
// client threads fire requests over K distinct experiment configurations
// at svc::SimService in-process; the service schedules them on a bounded
// priority queue, runs each distinct simulation exactly once
// (single-flight), serves every repeat from the LRU result cache, and
// meters the whole thing.
//
// With --listen the same service is exposed over TCP through net::Server
// instead: remote sim_client processes submit JobKey canonical strings
// and get binary SimResults back. The server runs until --duration-s
// elapses (0 = until SIGINT/SIGTERM) and then prints the wire-visible
// totals — every reply tallied per WireStatus — next to the service
// metrics.
//
// Pass --fault-rate/--fault-delay-rate/--fault-hang-rate to stand a
// seeded svc::FaultyExecutor between the service and the simulator and
// watch the retry policy (--retries/--backoff-ms/--timeout-ms) absorb
// the injected failures; terminal failures are tallied by
// ServiceError::reason() (and, under --listen, show up remotely as the
// matching wire statuses).
//
// Pass --cache-dir to make the result cache persistent: results are
// written behind to an append-only store in that directory and warm-load
// the cache on the next start, so a restarted (even SIGKILLed) server
// answers repeat requests without re-simulating. --cache-ttl-s bounds
// how stale a served result may be, across restarts.
//
// Pass --batch-max (with --batch-ramp / --batch-linger-us) to let each
// worker wakeup drain several same-priority jobs as one dispatch unit;
// the exit tally then reports dispatches and the realized jobs-per-
// dispatch amortization. --warm-block=false serves immediately while the
// warm-load fills the cache in the background.
//
//   ./sim_server                          # 8 clients x 6 distinct jobs
//   ./sim_server --clients=32 --requests=64 --queue-capacity=16
//   ./sim_server --fault-rate=0.3 --retries=3 --timeout-ms=50
//   ./sim_server --batch-max=32 --batch-linger-us=300 --batch-ramp=false
//   ./sim_server --listen --port=7450     # serve RPC until Ctrl-C
//   ./sim_server --listen --cache-dir=/tmp/simcache   # warm restarts
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "net/server.hpp"
#include "svc/fault.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

// Serve RPC until the duration elapses or a signal lands, then print
// the wire-visible totals: every reply the server sent, tallied by
// WireStatus — the remote view of the failure taxonomy.
int run_listen_mode(gpawfd::svc::SimService& service,
                    const gpawfd::CliParser& cli) {
  using namespace gpawfd;

  net::ServerConfig scfg;
  scfg.port = static_cast<std::uint16_t>(cli.get_int("port"));
  scfg.max_inflight_per_conn = static_cast<int>(cli.get_int("max-inflight"));
  scfg.max_connections = static_cast<int>(cli.get_int("max-connections"));
  scfg.idle_timeout_seconds = cli.get_double("idle-timeout-s");
  net::Server server(service, scfg);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const double duration = cli.get_double("duration-s");
  std::cout << "sim_server: listening on port " << server.port() << ", "
            << service.workers() << " workers";
  if (duration > 0)
    std::cout << ", serving for " << fmt_seconds(duration);
  else
    std::cout << ", until SIGINT/SIGTERM";
  std::cout << "\n" << std::flush;

  const double t0 = trace::now_seconds();
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (duration > 0 && trace::now_seconds() - t0 >= duration) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  const double wall = trace::now_seconds() - t0;

  const net::ServerMetrics& m = server.metrics();
  Table t({"", "value"});
  t.add_row({"wall time", fmt_seconds(wall)});
  t.add_row({"connections accepted",
             std::to_string(m.connections_accepted.load())});
  t.add_row({"connections refused",
             std::to_string(m.connections_refused.load())});
  t.add_row({"idle closed", std::to_string(m.idle_closed.load())});
  t.add_row({"submits", std::to_string(m.requests.load())});
  t.add_row({"pings", std::to_string(m.pings.load())});
  t.add_row({"replies (all statuses)", std::to_string(m.replies_total())});
  for (int s = 0; s < net::kWireStatusCount; ++s) {
    const auto status = static_cast<net::WireStatus>(s);
    if (m.replies(status) == 0) continue;
    t.add_row({std::string("replied: ") + net::to_string(status),
               std::to_string(m.replies(status))});
  }
  t.add_row({"bytes in", std::to_string(m.bytes_in.load())});
  t.add_row({"bytes out", std::to_string(m.bytes_out.load())});
  t.add_row({"simulations actually run",
             std::to_string(service.metrics().executed.load())});
  t.add_row({"cache hit ratio",
             fmt_fixed(100 * service.metrics().hit_ratio(), 1) + "%"});
  if (cli.get_int("batch-max") > 1) {
    const auto& sm = service.metrics();
    const std::int64_t dispatches = sm.batches.load();
    t.add_row({"batch dispatches", std::to_string(dispatches)});
    t.add_row({"jobs per dispatch",
               fmt_fixed(dispatches > 0
                             ? static_cast<double>(sm.batched_jobs.load()) /
                                   static_cast<double>(dispatches)
                             : 0.0,
                         2)});
  }
  if (svc::Persister* p = service.persister()) {
    p->flush();  // settle the write-behind queue before reading counters
    service.wait_warm_loaded();
    t.add_row({"results persisted", std::to_string(p->written())});
    t.add_row({"persist drops", std::to_string(p->dropped())});
    t.add_row({"warm-loaded at start",
               std::to_string(service.metrics().warm_loaded.load())});
  }
  std::cout << "\n";
  t.print(std::cout);

  std::cout << "\nwire metrics snapshot:\n" << m.snapshot();
  std::cout << "\nservice metrics snapshot:\n" << service.metrics_snapshot();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd;

  CliParser cli;
  cli.flag("clients", "8", "concurrent client threads")
      .flag("jobs", "6", "distinct experiment configurations")
      .flag("requests", "32", "requests per client")
      .flag("workers", "0", "executor threads (0 = hardware)")
      .flag("queue-capacity", "64", "bounded queue admission limit")
      .flag("cache-capacity", "128", "cached SimResults")
      .flag("cores", "256", "simulated cores of the smallest job")
      .flag("edge", "48", "grid edge of every job (edge^3)")
      .flag("block", "false", "block producers when full (vs reject)")
      .flag("fault-rate", "0", "probability a job key throws when run")
      .flag("fault-delay-rate", "0", "probability a job key straggles")
      .flag("fault-hang-rate", "0", "probability a job key hangs")
      .flag("fault-delay-ms", "20", "straggler pause in milliseconds")
      .flag("fault-fail-attempts", "-1",
            "faulty attempts per key before it recovers (-1 = forever)")
      .flag("fault-seed", "42", "seed of the deterministic fault plan")
      .flag("retries", "1", "attempts per job (RetryPolicy::max_attempts)")
      .flag("backoff-ms", "1", "initial retry backoff in milliseconds")
      .flag("timeout-ms", "0", "per-attempt timeout (0 = none)")
      .flag("listen", "false", "serve over TCP (net::Server) instead of "
            "running the in-process client swarm")
      .flag("port", "0", "--listen TCP port (0 = ephemeral, printed)")
      .flag("duration-s", "0", "--listen serving time (0 = until signal)")
      .flag("max-inflight", "64", "--listen per-connection request limit")
      .flag("max-connections", "256", "--listen connection limit")
      .flag("idle-timeout-s", "60", "--listen idle connection timeout")
      .flag("cache-dir", "", "persistent result store directory "
            "(empty = in-memory cache only)")
      .flag("cache-ttl-s", "0", "cached result TTL in seconds (0 = never "
            "expires; enforced across restarts)")
      .flag("batch-max", "1", "jobs a worker wakeup drains as one unit "
            "(1 = classic one-job dispatch)")
      .flag("batch-ramp", "true", "grow the batch cap with queue depth "
            "instead of always forming full batches")
      .flag("batch-linger-us", "0", "microseconds a short batch waits to "
            "fill before dispatching (0 = immediately)")
      .flag("warm-block", "true", "wait for the --cache-dir warm-load to "
            "finish before serving (false = serve immediately, warm-load "
            "fills the cache in the background)")
      .flag("telemetry-dir", "", "stream periodic counter/gauge rows into "
            "<dir>/telemetry.gptt (empty = off)")
      .flag("telemetry-period-ms", "1000", "milliseconds between telemetry "
            "flush passes")
      .flag("run-id", "", "trajectory point id for telemetry rows "
            "(default: $GPAWFD_RUN_ID, else \"local\")");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  int clients, njobs, requests;
  svc::ServiceConfig cfg;
  svc::FaultConfig fault_cfg;
  try {
    clients = static_cast<int>(cli.get_int_in("clients", 1, 4096));
    njobs = static_cast<int>(cli.get_int_in("jobs", 1, 1 << 20));
    requests = static_cast<int>(cli.get_int_in("requests", 1, 1 << 30));
    (void)cli.get_int_in("edge", 1, 4096);
    (void)cli.get_int_in("cores", 1, 1 << 24);

    cfg.workers = static_cast<int>(cli.get_int_in("workers", 0, 4096));
    cfg.queue_capacity =
        static_cast<std::size_t>(cli.get_int_in("queue-capacity", 1, 1 << 24));
    cfg.cache_capacity =
        static_cast<std::size_t>(cli.get_int_in("cache-capacity", 1, 1 << 24));
    cfg.block_when_full = cli.get_bool("block");
    cfg.retry.max_attempts =
        static_cast<int>(cli.get_int_in("retries", 1, 1000));
    cfg.retry.initial_backoff_seconds =
        cli.get_double_in("backoff-ms", 0, 1e7) / 1e3;
    cfg.retry.attempt_timeout_seconds =
        cli.get_double_in("timeout-ms", 0, 1e9) / 1e3;
    cfg.cache_dir = cli.get("cache-dir");
    cfg.cache_ttl_seconds = cli.get_double_in("cache-ttl-s", 0, 1e12);
    cfg.batch_max =
        static_cast<std::size_t>(cli.get_int_in("batch-max", 1, 1 << 20));
    cfg.batch_ramp = cli.get_bool("batch-ramp");
    cfg.batch_linger_us =
        static_cast<long>(cli.get_int_in("batch-linger-us", 0, 10'000'000));

    // With any fault probability set, stand a seeded FaultyExecutor
    // between the service and the simulator: same seed, same failure
    // schedule.
    fault_cfg.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed"));
    fault_cfg.throw_probability = cli.get_double_in("fault-rate", 0, 1);
    fault_cfg.delay_probability = cli.get_double_in("fault-delay-rate", 0, 1);
    fault_cfg.hang_probability = cli.get_double_in("fault-hang-rate", 0, 1);
    fault_cfg.delay_seconds =
        cli.get_double_in("fault-delay-ms", 0, 1e7) / 1e3;
    fault_cfg.fail_attempts = static_cast<int>(
        cli.get_int_in("fault-fail-attempts", -1, 1 << 20));
    cfg.telemetry_period_seconds =
        cli.get_double_in("telemetry-period-ms", 1, 1e7) / 1e3;
    const std::string telemetry_dir = cli.get("telemetry-dir");
    if (!telemetry_dir.empty()) {
      std::string run_id = cli.get("run-id");
      if (run_id.empty())
        if (const char* env = std::getenv("GPAWFD_RUN_ID")) run_id = env;
      if (run_id.empty()) run_id = "local";
      std::filesystem::create_directories(telemetry_dir);
      cfg.telemetry = telemetry::TelemetrySink::open_in(telemetry_dir, run_id);
    }
    if (cli.get_bool("listen")) {
      (void)cli.get_int_in("port", 0, 65535);
      (void)cli.get_int_in("max-inflight", 1, 1 << 20);
      (void)cli.get_int_in("max-connections", 1, 1 << 20);
      (void)cli.get_double_in("duration-s", 0, 1e9);
      (void)cli.get_double_in("idle-timeout-s", 0, 1e9);
    }
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const bool inject_faults = fault_cfg.throw_probability > 0 ||
                             fault_cfg.delay_probability > 0 ||
                             fault_cfg.hang_probability > 0;
  std::shared_ptr<svc::FaultyExecutor> faulty;
  if (inject_faults) {
    faulty = std::make_shared<svc::FaultyExecutor>(core::simulate_job,
                                                   fault_cfg);
    cfg.executor = [faulty](const core::SimJobSpec& s) { return (*faulty)(s); };
  }
  svc::SimService service(cfg);
  // The warm-load runs on background threads (double-buffered reader +
  // decoder); by default block until it finishes so repeat requests are
  // guaranteed to hit the warmed cache from the first submit on.
  if (!cfg.cache_dir.empty()) {
    if (cli.get_bool("warm-block")) {
      service.wait_warm_loaded();
      std::cout << "cache store: " << cfg.cache_dir << " (warm-loaded "
                << service.metrics().warm_loaded.load()
                << " results, skipped "
                << service.metrics().warm_skipped.load() << ")\n";
    } else {
      std::cout << "cache store: " << cfg.cache_dir
                << " (warm-loading in background)\n";
    }
  }

  if (cfg.telemetry)
    std::cout << "telemetry: " << cfg.telemetry->table().path() << " (run "
              << cfg.telemetry->run_id() << ", every "
              << fmt_seconds(cfg.telemetry_period_seconds) << ")\n";

  if (cli.get_bool("listen")) return run_listen_mode(service, cli);

  // K distinct experiments: the four approaches cycled over growing
  // machine slices — the request mix a parameter sweep would produce.
  const sched::Approach approaches[] = {
      sched::Approach::kFlatOriginal, sched::Approach::kFlatOptimized,
      sched::Approach::kHybridMultiple, sched::Approach::kHybridMasterOnly};
  auto spec_of = [&](int job_id) {
    core::SimJobSpec spec;
    spec.approach = approaches[static_cast<std::size_t>(job_id) % 4];
    spec.job.grid_shape = Vec3::cube(cli.get_int("edge"));
    spec.job.ngrids = 32;
    spec.opt = spec.approach == sched::Approach::kFlatOriginal
                   ? sched::Optimizations::original()
                   : sched::Optimizations::all_on(4);
    spec.total_cores =
        static_cast<int>(cli.get_int("cores")) << (job_id / 4);
    return spec;
  };

  std::cout << "sim_server: " << clients << " clients x " << requests
            << " requests over " << njobs << " distinct jobs, "
            << service.workers() << " workers, queue bound "
            << cfg.queue_capacity << " ("
            << (cfg.block_when_full ? "throttle" : "shed") << " when full)\n";
  if (inject_faults)
    std::cout << "fault plan: seed " << fault_cfg.seed << ", P(throw) "
              << fault_cfg.throw_probability << ", P(delay) "
              << fault_cfg.delay_probability << ", P(hang) "
              << fault_cfg.hang_probability << "; retry policy: "
              << cfg.retry.max_attempts << " attempts, timeout "
              << fmt_seconds(cfg.retry.attempt_timeout_seconds) << "\n";

  std::atomic<std::int64_t> ok{0}, shed{0}, failed{0};
  // Terminal failures keyed by ServiceError::reason() — the machine-
  // readable cause a real RPC front-end would map onto status codes.
  constexpr int kReasons = 8;
  std::atomic<std::int64_t> by_reason[kReasons] = {};
  trace::LatencyHistogram latency;
  const double t0 = trace::now_seconds();
  std::vector<std::thread> swarm;
  for (int c = 0; c < clients; ++c) {
    swarm.emplace_back([&, c] {
      for (int i = 0; i < requests; ++i) {
        const int job_id = (c + i) % njobs;
        const double r0 = trace::now_seconds();
        // Interactive lane for the first client, batch for the rest —
        // exercises the priority classes.
        svc::Ticket t = service.submit(
            spec_of(job_id),
            c == 0 ? svc::Priority::kInteractive : svc::Priority::kBatch);
        if (t.rejected()) {
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        try {
          t.result.get();
          latency.record(trace::now_seconds() - r0);
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const svc::ServiceError& e) {
          failed.fetch_add(1, std::memory_order_relaxed);
          const int r = static_cast<int>(e.reason());
          if (r >= 0 && r < kReasons)
            by_reason[r].fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : swarm) t.join();
  const double wall = trace::now_seconds() - t0;

  Table t({"", "value"});
  t.add_row({"wall time", fmt_seconds(wall)});
  t.add_row({"completed", std::to_string(ok.load())});
  t.add_row({"shed (queue full)", std::to_string(shed.load())});
  t.add_row({"failed", std::to_string(failed.load())});
  t.add_row({"throughput",
             fmt_fixed(static_cast<double>(ok.load()) / wall, 0) + " req/s"});
  t.add_row({"latency p50", fmt_seconds(latency.quantile(0.5))});
  t.add_row({"latency p99", fmt_seconds(latency.quantile(0.99))});
  t.add_row({"simulations actually run",
             std::to_string(service.metrics().executed.load())});
  t.add_row({"cache hit ratio",
             fmt_fixed(100 * service.metrics().hit_ratio(), 1) + "%"});
  if (cfg.batch_max > 1) {
    const auto& sm = service.metrics();
    const std::int64_t dispatches = sm.batches.load();
    t.add_row({"batch dispatches", std::to_string(dispatches)});
    t.add_row({"jobs per dispatch",
               fmt_fixed(dispatches > 0
                             ? static_cast<double>(sm.batched_jobs.load()) /
                                   static_cast<double>(dispatches)
                             : 0.0,
                         2)});
  }
  if (svc::Persister* p = service.persister()) {
    p->flush();
    service.wait_warm_loaded();
    t.add_row({"results persisted", std::to_string(p->written())});
    t.add_row({"warm-loaded at start",
               std::to_string(service.metrics().warm_loaded.load())});
  }
  if (inject_faults) {
    const auto& m = service.metrics();
    t.add_row({"retries", std::to_string(m.retries.load())});
    t.add_row({"timeouts", std::to_string(m.timeouts.load())});
    t.add_row({"gave up", std::to_string(m.gave_up.load())});
    t.add_row({"injected throws", std::to_string(faulty->injected_throws())});
    t.add_row({"injected delays", std::to_string(faulty->injected_delays())});
    t.add_row({"injected hangs", std::to_string(faulty->injected_hangs())});
    for (int r = 0; r < kReasons; ++r) {
      if (by_reason[r].load() == 0) continue;
      t.add_row({std::string("failed: ") +
                     svc::to_string(static_cast<svc::ErrorReason>(r)),
                 std::to_string(by_reason[r].load())});
    }
  }
  std::cout << "\n";
  t.print(std::cout);

  std::cout << "\nmetrics snapshot:\n" << service.metrics_snapshot();
  return 0;
}
