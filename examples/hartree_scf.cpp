// Full mini-GPAW calculation: a self-consistent Hartree loop for two
// interacting electrons in a harmonic trap. Every SCF iteration runs the
// complete distributed pipeline — FD-stencil Hamiltonian on every band,
// Chebyshev-filtered eigensolver, density mixing, and a multigrid
// Poisson solve for the Hartree potential.
#include <iostream>

#include "common/table.hpp"
#include "gpaw/scf.hpp"
#include "mp/thread_comm.hpp"

int main() {
  using namespace gpawfd;
  using namespace gpawfd::gpaw;

  const int n = 20;
  const double L = 12.0;
  const double h = L / n;
  const double w = 1.0;

  std::cout << "gpawfd Hartree SCF example: 2 electrons in a harmonic trap\n"
            << "  grid " << n << "^3, spacing " << h << ", omega " << w
            << ", 8 ranks\n";

  mp::ThreadWorld world(8);
  world.run([&](mp::ThreadComm& comm) {
    Domain d(comm, Vec3::cube(n), h);
    auto vext = d.make_field();
    d.fill(vext, [&](Vec3 p) {
      auto x2 = [&](std::int64_t q) {
        const double x = (static_cast<double>(q) - n / 2.0) * h;
        return x * x;
      };
      return 0.5 * w * w * (x2(p.x) + x2(p.y) + x2(p.z));
    });

    ScfOptions opt;
    opt.density_tolerance = 1e-7;
    opt.eigensolver.tolerance = 1e-9;
    ScfLoop scf(d, std::move(vext), /*occupations=*/{2.0}, opt);

    WaveFunctions wfs(d, 1);
    wfs.randomize(2026);
    const auto res = scf.run(wfs);

    if (comm.rank() == 0) {
      std::cout << "  SCF " << (res.converged ? "converged" : "DID NOT converge")
                << " in " << res.iterations << " iterations (last density "
                << "change " << res.density_change << ")\n\n"
                << "  bare single-particle level (no interaction): "
                << fmt_fixed(1.5 * w, 4) << "\n"
                << "  self-consistent level (with Hartree repulsion): "
                << fmt_fixed(res.eigenvalues[0], 4) << "\n"
                << "  Hartree total energy (2 eps - E_H): "
                << fmt_fixed(res.total_energy, 4) << "\n"
                << "\n  The Hartree repulsion raises the level above 3/2 "
                   "and the double-counting\n  correction pulls the total "
                   "below 2 eps — the expected mean-field structure.\n";
    }
  });
  return 0;
}
