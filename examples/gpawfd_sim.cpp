// gpawfd_sim: run any finite-difference experiment on the simulated Blue
// Gene/P from the command line — approach, scale, workload, machine
// overrides, phase breakdown, and an optional Chrome-trace timeline.
//
//   ./gpawfd_sim --approach=hybrid-multiple --cores=16384 --grids=2816
//   ./gpawfd_sim --approach=flat-original --cores=1024 --trace=run.json
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/figures.hpp"

namespace {

gpawfd::sched::Approach parse_approach(const std::string& s) {
  using gpawfd::sched::Approach;
  if (s == "flat-original") return Approach::kFlatOriginal;
  if (s == "flat-optimized") return Approach::kFlatOptimized;
  if (s == "hybrid-multiple") return Approach::kHybridMultiple;
  if (s == "hybrid-master-only") return Approach::kHybridMasterOnly;
  if (s == "subgroups") return Approach::kFlatOptimizedSubgroups;
  GPAWFD_CHECK_MSG(false, "unknown approach '" << s << "'");
  return Approach::kFlatOriginal;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd;
  using sched::JobConfig;
  using sched::Optimizations;

  CliParser cli;
  cli.flag("approach", "hybrid-multiple",
           "flat-original | flat-optimized | hybrid-multiple | "
           "hybrid-master-only | subgroups")
      .flag("cores", "4096", "total CPU cores (4 per node)")
      .flag("grids", "1024", "number of real-space grids")
      .flag("edge", "192", "grid edge length (grids are edge^3)")
      .flag("batch", "0", "batch size; 0 = sweep for the best")
      .flag("iterations", "1", "FD sweeps over the whole grid set")
      .flag("no-double-buffering", "false", "disable double buffering")
      .flag("no-ramp", "false", "disable the ramp-up batch")
      .flag("no-mapping", "false", "disable torus-aware rank placement")
      .flag("complex", "false", "complex-valued grids (16 B/point)")
      .flag("link-bw", "425e6", "torus link bandwidth [B/s]")
      .flag("core-flops", "425e6", "effective flop rate per core [flop/s]")
      .flag("mpi-overhead-ns", "1300", "CPU cost per MPI call [ns]")
      .flag("trace", "", "write a Chrome-tracing JSON timeline to this file")
      .flag("csv", "false", "machine-readable one-line CSV output");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  const auto approach = parse_approach(cli.get("approach"));
  JobConfig job;
  job.grid_shape = Vec3::cube(cli.get_int("edge"));
  job.ngrids = static_cast<int>(cli.get_int("grids"));
  job.iterations = static_cast<int>(cli.get_int("iterations"));
  job.elem_bytes = cli.get_bool("complex") ? 16 : 8;

  bgsim::MachineConfig m = bgsim::MachineConfig::bluegene_p();
  m.link_bandwidth = cli.get_double("link-bw");
  m.core_flops = cli.get_double("core-flops");
  m.mpi_call_overhead = cli.get_int("mpi-overhead-ns");

  const int cores = static_cast<int>(cli.get_int("cores"));
  int batch = static_cast<int>(cli.get_int("batch"));
  const bool wants_opts = approach != sched::Approach::kFlatOriginal;
  if (batch == 0 && wants_opts)
    batch = core::best_batch_size(approach, job, Optimizations::all_on(1),
                                  cores, 4, m);
  if (batch == 0) batch = 1;

  Optimizations opt = wants_opts ? Optimizations::all_on(batch)
                                 : Optimizations::original();
  if (cli.get_bool("no-double-buffering")) opt.double_buffering = false;
  if (cli.get_bool("no-ramp")) opt.ramp_up = false;
  if (cli.get_bool("no-mapping")) opt.topology_mapping = false;

  // A trace needs a direct (unscaled) run and records every span, so
  // keep traced jobs moderate.
  core::SimResult r;
  if (cli.is_set("trace")) {
    GPAWFD_CHECK_MSG(static_cast<std::int64_t>(job.ngrids) * cores <=
                         std::int64_t{64} << 20,
                     "traced runs are direct simulations; use a smaller "
                     "--grids x --cores product (<= 64M)");
    bgsim::TraceLog log;
    const auto plan = sched::RunPlan::make(approach, job, opt, cores, 4);
    r = core::simulate(plan, m, &log);
    std::ofstream os(cli.get("trace"));
    GPAWFD_CHECK_MSG(os.good(), "cannot write " << cli.get("trace"));
    log.write_chrome_json(os);
    std::cout << "timeline with " << log.spans().size() << " spans -> "
              << cli.get("trace") << "\n";
  } else {
    r = core::simulate_scaled(approach, job, opt, cores, 4, m);
  }

  const double seq = core::simulate_sequential_seconds(job, m);
  if (cli.get_bool("csv")) {
    std::cout << cli.get("approach") << ',' << cores << ',' << job.ngrids
              << ',' << batch << ',' << r.seconds << ','
              << seq / (cores * r.seconds) << ',' << r.bytes_sent_per_node
              << ',' << r.messages_total << '\n';
    return 0;
  }

  std::cout << "approach:        " << sched::to_string(approach) << "\n"
            << "cores:           " << cores << " (" << cores / 4
            << " nodes)\n"
            << "job:             " << job.ngrids << " x "
            << job.grid_shape << " grids, batch " << batch << "\n"
            << "run time:        " << fmt_seconds(r.seconds) << "\n"
            << "speedup:         " << fmt_fixed(seq / r.seconds, 1) << "x\n"
            << "CPU utilization: "
            << fmt_fixed(100 * seq / (cores * r.seconds), 1) << "%\n"
            << "sent per node:   " << fmt_bytes(r.bytes_sent_per_node) << "\n"
            << "messages:        " << r.messages_total << "\n\n";

  Table t({"phase", "stream-seconds", "share of busy time"});
  const double busy = r.phases.compute + r.phases.copy +
                      r.phases.mpi_overhead + r.phases.wait +
                      r.phases.barrier + r.phases.spawn;
  auto row = [&](const char* name, double v) {
    t.add_row({name, fmt_fixed(v, 4),
               busy > 0 ? fmt_fixed(100 * v / busy, 1) + "%" : "-"});
  };
  row("compute", r.phases.compute);
  row("pack/unpack copies", r.phases.copy);
  row("MPI call overhead", r.phases.mpi_overhead);
  row("waiting on network", r.phases.wait);
  row("thread barriers", r.phases.barrier);
  row("thread spawn", r.phases.spawn);
  t.print(std::cout);
  return 0;
}
