// sim_client: the remote half of sim_server --listen. C client threads,
// each with its own net::Client connection, fire requests over K
// distinct experiment configurations at a sim_server across TCP and
// tally every reply by wire status — the same sweep machine_room and
// sim_server run in-process, now over the wire. With --pipeline each
// thread keeps a window of submit_async() futures in flight instead of
// one blocking submit at a time; --pipeline-window additionally caps the
// unanswered requests a single connection may carry (the transport-level
// self-throttle, net::ClientConfig::pipeline_window).
//
// With --cache-dir every successful reply is harvested into a local
// persistent result store (the same on-disk format sim_server's
// --cache-dir uses — a kResult reply carries the exact 96 bytes a store
// record does), so a server or in-process run pointed at that directory
// later starts with the fetched results already cached: the wire fills a
// second process's cache.
//
//   ./sim_server --listen --port=7450 &
//   ./sim_client --port=7450
//   ./sim_client --port=7450 --clients=16 --requests=64 --pipeline=8
//   ./sim_client --port=7450 --pipeline=32 --pipeline-window=16
//   ./sim_client --port=7450 --cache-dir=/tmp/simcache  # harvest replies
#include <atomic>
#include <deque>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "net/client.hpp"
#include "svc/cache_store.hpp"
#include "svc/job_key.hpp"
#include "trace/stats.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;

  CliParser cli;
  cli.flag("host", "127.0.0.1", "sim_server address (IPv4)")
      .flag("port", "7450", "sim_server port")
      .flag("clients", "4", "client threads (one connection each)")
      .flag("jobs", "6", "distinct experiment configurations")
      .flag("requests", "32", "requests per client")
      .flag("pipeline", "1", "async submits kept in flight per thread")
      .flag("pipeline-window", "0", "transport-level cap on unanswered "
            "requests per connection (0 = unbounded; submit_async blocks "
            "once the window is full)")
      .flag("cores", "256", "simulated cores of the smallest job")
      .flag("edge", "48", "grid edge of every job (edge^3)")
      .flag("ping", "false", "just ping the server and exit")
      .flag("cache-dir", "", "harvest successful replies into a local "
            "persistent result store (sim_server --cache-dir format)");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  net::ClientConfig ccfg;
  try {
    ccfg.host = cli.get("host");
    ccfg.port = static_cast<std::uint16_t>(cli.get_int_in("port", 1, 65535));
    ccfg.pipeline_window =
        static_cast<std::size_t>(cli.get_int_in("pipeline-window", 0, 1 << 20));
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (cli.get_bool("ping")) {
    try {
      net::Client client(ccfg);
      const double t0 = trace::now_seconds();
      client.ping();
      std::cout << "pong from " << ccfg.host << ":" << ccfg.port << " in "
                << fmt_seconds(trace::now_seconds() - t0) << "\n";
      return 0;
    } catch (const net::RpcError& e) {
      std::cerr << "ping failed: " << e.what() << "\n";
      return 1;
    }
  }

  int clients, njobs, requests, pipeline, edge, cores;
  try {
    clients = static_cast<int>(cli.get_int_in("clients", 1, 4096));
    njobs = static_cast<int>(cli.get_int_in("jobs", 1, 1 << 20));
    requests = static_cast<int>(cli.get_int_in("requests", 1, 1 << 30));
    pipeline = static_cast<int>(cli.get_int_in("pipeline", 1, 1 << 20));
    edge = static_cast<int>(cli.get_int_in("edge", 1, 4096));
    cores = static_cast<int>(cli.get_int_in("cores", 1, 1 << 24));
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  // The same sweep sim_server's in-process swarm runs: four approaches
  // cycled over growing machine slices.
  const sched::Approach approaches[] = {
      sched::Approach::kFlatOriginal, sched::Approach::kFlatOptimized,
      sched::Approach::kHybridMultiple, sched::Approach::kHybridMasterOnly};
  auto spec_of = [&](int job_id) {
    core::SimJobSpec spec;
    spec.approach = approaches[static_cast<std::size_t>(job_id) % 4];
    spec.job.grid_shape = Vec3::cube(edge);
    spec.job.ngrids = 32;
    spec.opt = spec.approach == sched::Approach::kFlatOriginal
                   ? sched::Optimizations::original()
                   : sched::Optimizations::all_on(4);
    spec.total_cores = cores << (job_id / 4);
    return spec;
  };

  std::cout << "sim_client: " << clients << " connections x " << requests
            << " requests over " << njobs << " distinct jobs to "
            << ccfg.host << ":" << ccfg.port << " (pipeline depth "
            << pipeline << ")\n";

  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> by_status[net::kWireStatusCount] = {};
  std::atomic<std::int64_t> reconnects{0};
  trace::LatencyHistogram latency;
  // --cache-dir: successful replies harvested here (keyed by canonical
  // JobKey, deduplicated across threads), written to the store once the
  // swarm settles. The round-trip latency stands in for the result's
  // production cost — the best estimate this side of the wire has.
  const std::string cache_dir = cli.get("cache-dir");
  std::mutex harvest_mu;
  std::unordered_map<std::string, std::pair<core::SimResult, double>> harvest;
  const double t0 = trace::now_seconds();
  std::vector<std::thread> swarm;
  for (int c = 0; c < clients; ++c) {
    swarm.emplace_back([&, c] {
      net::Client client(ccfg);
      auto harvested = [&](int job_id, const core::SimResult& r,
                           double rtt) {
        if (cache_dir.empty()) return;
        std::lock_guard lock(harvest_mu);
        harvest.emplace(svc::JobKey::of(spec_of(job_id)).canonical(),
                        std::make_pair(r, rtt));
      };
      auto settle = [&](std::future<core::SimResult>& f, double sent_at,
                        int job_id) {
        try {
          const core::SimResult r = f.get();
          const double rtt = trace::now_seconds() - sent_at;
          latency.record(rtt);
          ok.fetch_add(1, std::memory_order_relaxed);
          harvested(job_id, r, rtt);
        } catch (const net::RpcError& e) {
          by_status[static_cast<int>(e.status())].fetch_add(
              1, std::memory_order_relaxed);
        }
      };
      std::deque<std::tuple<std::future<core::SimResult>, double, int>>
          window;
      for (int i = 0; i < requests; ++i) {
        const int job_id = (c + i) % njobs;
        const svc::Priority priority =
            c == 0 ? svc::Priority::kInteractive : svc::Priority::kBatch;
        if (pipeline == 1) {
          const double r0 = trace::now_seconds();
          try {
            const core::SimResult r = client.submit(spec_of(job_id), priority);
            const double rtt = trace::now_seconds() - r0;
            latency.record(rtt);
            ok.fetch_add(1, std::memory_order_relaxed);
            harvested(job_id, r, rtt);
          } catch (const net::RpcError& e) {
            by_status[static_cast<int>(e.status())].fetch_add(
                1, std::memory_order_relaxed);
          }
          continue;
        }
        while (static_cast<int>(window.size()) >= pipeline) {
          settle(std::get<0>(window.front()), std::get<1>(window.front()),
                 std::get<2>(window.front()));
          window.pop_front();
        }
        try {
          const double r0 = trace::now_seconds();
          window.emplace_back(client.submit_async(spec_of(job_id), priority),
                              r0, job_id);
        } catch (const net::RpcError& e) {
          by_status[static_cast<int>(e.status())].fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      for (auto& [future, sent_at, job_id] : window)
        settle(future, sent_at, job_id);
      reconnects.fetch_add(client.reconnects(), std::memory_order_relaxed);
    });
  }
  for (auto& t : swarm) t.join();
  const double wall = trace::now_seconds() - t0;

  // Fill (or top up) the local store: skip keys that are already live so
  // repeated harvests don't grow the log with identical records.
  std::int64_t stored = 0;
  if (!cache_dir.empty() && !harvest.empty()) {
    std::filesystem::create_directories(cache_dir);
    svc::CacheStore store(svc::CacheStore::path_in(cache_dir));
    store.recover();
    const double now = trace::unix_seconds();
    for (const auto& [key, rv] : harvest) {
      if (store.contains(key)) continue;
      store.append_put(key, rv.first, rv.second, now);
      ++stored;
    }
    store.sync();
  }

  Table t({"", "value"});
  t.add_row({"wall time", fmt_seconds(wall)});
  t.add_row({"completed", std::to_string(ok.load())});
  t.add_row({"throughput",
             fmt_fixed(static_cast<double>(ok.load()) / wall, 0) + " req/s"});
  t.add_row({"latency p50", fmt_seconds(latency.quantile(0.5))});
  t.add_row({"latency p99", fmt_seconds(latency.quantile(0.99))});
  t.add_row({"reconnects", std::to_string(reconnects.load())});
  if (!cache_dir.empty())
    t.add_row({"results stored locally", std::to_string(stored)});
  for (int s = 0; s < net::kWireStatusCount; ++s) {
    if (by_status[s].load() == 0) continue;
    t.add_row({std::string("failed: ") +
                   net::to_string(static_cast<net::WireStatus>(s)),
               std::to_string(by_status[s].load())});
  }
  std::cout << "\n";
  t.print(std::cout);
  return ok.load() > 0 ? 0 : 1;
}
