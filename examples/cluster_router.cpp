// cluster_router: the sharded-cluster front door as a standalone
// process. It speaks the exact sim_server wire protocol on --port, so
// any sim_client points at it unchanged; behind it, every submit is
// consistent-hashed across the --backends list of sim_server processes
// and forwarded over pooled connections. Retryable backend failures
// fail over to the next replica on the key's preference list under the
// --retries/--backoff-ms budget; successful results are pushed to the
// next replica as peer cache-fills; a health prober marks backends down
// after --fail-threshold consecutive failed pings and resurrects them
// on the first success.
//
//   ./sim_server --listen --port=7511 &   # three backends
//   ./sim_server --listen --port=7512 &
//   ./sim_server --listen --port=7513 &
//   ./cluster_router --port=7500 --backends=7511,7512,7513 --duration-s=30
//   ./sim_client --port=7500 ...          # clients talk to the router
//
// Backends are "host:port" or bare "port" (= 127.0.0.1). On exit the
// router prints its wire totals and the cluster metrics snapshot
// (per-backend routed/retried/hedged rows included); --metrics-out
// additionally writes the snapshot to a file for harnesses to parse.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "net/server.hpp"
#include "trace/stats.hpp"

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

std::vector<gpawfd::cluster::BackendAddress> parse_backends(
    const std::string& list) {
  using gpawfd::cluster::BackendAddress;
  std::vector<BackendAddress> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    BackendAddress addr;
    const std::size_t colon = item.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? item : item.substr(colon + 1);
    if (colon != std::string::npos && colon > 0)
      addr.host = item.substr(0, colon);
    try {
      const int port = std::stoi(port_str);
      if (port < 1 || port > 65535) throw std::out_of_range(port_str);
      addr.port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      throw gpawfd::Error("bad backend address: \"" + item +
                          "\" (want host:port or port)");
    }
    out.push_back(addr);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd;

  CliParser cli;
  cli.flag("port", "0", "front TCP port (0 = ephemeral, printed)")
      .flag("backends", "", "comma-separated backend list, host:port or "
            "bare port (= 127.0.0.1)")
      .flag("vnodes", "64", "ring points per backend")
      .flag("replicas", "2", "failover + replication span per key")
      .flag("retries", "3", "forward attempts per job across replicas")
      .flag("backoff-ms", "5", "initial failover backoff in milliseconds")
      .flag("forwarders", "4", "forwarder threads")
      .flag("queue-capacity", "1024", "bounded forward queue")
      .flag("connections", "2", "pooled connections per backend")
      .flag("health-period-ms", "200", "backend ping period (0 = no prober)")
      .flag("fail-threshold", "3", "consecutive failures before down")
      .flag("hedge-ms", "0", "hedge a slow primary after this many "
            "milliseconds (0 = no hedging)")
      .flag("replicate", "true", "push results to the next replica "
            "(peer cache-fill)")
      .flag("stable-ring", "false", "ring identity = backend list index "
            "instead of host:port, so key ownership is identical across "
            "runs even on ephemeral ports (harnesses)")
      .flag("duration-s", "0", "serving time (0 = until SIGINT/SIGTERM)")
      .flag("max-inflight", "64", "per-connection request limit")
      .flag("max-connections", "256", "front connection limit")
      .flag("idle-timeout-s", "60", "idle front connection timeout")
      .flag("metrics-out", "", "also write the exit metrics snapshot "
            "to this file");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  cluster::RouterConfig rcfg;
  net::ServerConfig scfg;
  try {
    rcfg.backends = parse_backends(cli.get("backends"));
    if (rcfg.backends.empty())
      throw Error("--backends is required (e.g. --backends=7511,7512,7513)");
    rcfg.vnodes = static_cast<int>(cli.get_int_in("vnodes", 1, 1 << 16));
    rcfg.replicas = static_cast<int>(cli.get_int_in("replicas", 1, 64));
    rcfg.retry.max_attempts =
        static_cast<int>(cli.get_int_in("retries", 1, 1000));
    rcfg.retry.initial_backoff_seconds =
        cli.get_double_in("backoff-ms", 0, 1e7) / 1e3;
    rcfg.forwarders =
        static_cast<int>(cli.get_int_in("forwarders", 1, 1024));
    rcfg.queue_capacity = static_cast<std::size_t>(
        cli.get_int_in("queue-capacity", 1, 1 << 24));
    rcfg.connections_per_backend =
        static_cast<int>(cli.get_int_in("connections", 1, 64));
    rcfg.health_period_seconds =
        cli.get_double_in("health-period-ms", 0, 1e7) / 1e3;
    rcfg.health_fail_threshold =
        static_cast<int>(cli.get_int_in("fail-threshold", 1, 1000));
    rcfg.hedge_after_seconds = cli.get_double_in("hedge-ms", 0, 1e7) / 1e3;
    rcfg.replicate = cli.get_bool("replicate");
    if (cli.get_bool("stable-ring"))
      for (std::size_t b = 0; b < rcfg.backends.size(); ++b)
        rcfg.backends[b].ring_id = "node-" + std::to_string(b);

    scfg.port = static_cast<std::uint16_t>(cli.get_int_in("port", 0, 65535));
    scfg.max_inflight_per_conn =
        static_cast<int>(cli.get_int_in("max-inflight", 1, 1 << 20));
    scfg.max_connections =
        static_cast<int>(cli.get_int_in("max-connections", 1, 1 << 20));
    scfg.idle_timeout_seconds = cli.get_double_in("idle-timeout-s", 0, 1e9);
    (void)cli.get_double_in("duration-s", 0, 1e9);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  cluster::Router router(rcfg);
  net::Server server(router, scfg);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const double duration = cli.get_double("duration-s");
  std::cout << "cluster_router: listening on port " << server.port() << ", "
            << rcfg.backends.size() << " backends x " << rcfg.vnodes
            << " vnodes, replicas " << rcfg.replicas << ", "
            << rcfg.forwarders << " forwarders\n"
            << std::flush;

  const double t0 = trace::now_seconds();
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (duration > 0 && trace::now_seconds() - t0 >= duration) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  router.shutdown();
  const double wall = trace::now_seconds() - t0;

  std::cout << "\nwall time: " << fmt_seconds(wall) << "\n";
  std::cout << "\nwire metrics snapshot:\n" << server.metrics().snapshot();
  std::cout << "\ncluster metrics snapshot:\n" << router.metrics_snapshot();

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write --metrics-out file: " << metrics_out << "\n";
      return 1;
    }
    out << server.metrics().snapshot() << router.metrics_snapshot();
  }
  return 0;
}
