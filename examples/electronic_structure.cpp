// Mini electronic-structure calculation: the lowest eigenstates of a 3-D
// harmonic well, computed with the Chebyshev-filtered eigensolver on top
// of the distributed finite-difference Hamiltonian — the Kohn-Sham side
// of GPAW's workload, with the paper's stencil operation applied to every
// wave function in every iteration.
//
// Analytic spectrum of H = -1/2 del^2 + 1/2 w^2 r^2 (atomic units):
// E = (n_x + n_y + n_z + 3/2) w, i.e. 3/2, then 5/2 three-fold.
#include <iostream>

#include "common/table.hpp"
#include "gpaw/eigensolver.hpp"
#include "mp/thread_comm.hpp"

int main() {
  using namespace gpawfd;
  using namespace gpawfd::gpaw;

  const int n = 28;
  const double L = 14.0;
  const double h = L / n;
  const double w = 1.0;
  const int nbands = 4;

  std::cout << "gpawfd electronic structure example: 3-D harmonic well\n"
            << "  grid " << n << "^3, spacing " << h << ", omega " << w
            << ", " << nbands << " bands, 8 ranks\n";

  mp::ThreadWorld world(8);
  world.run([&](mp::ThreadComm& comm) {
    Domain d(comm, Vec3::cube(n), h);
    auto v = d.make_field();
    d.fill(v, [&](Vec3 p) {
      auto x2 = [&](std::int64_t q) {
        const double x = (static_cast<double>(q) - n / 2.0) * h;
        return x * x;
      };
      return 0.5 * w * w * (x2(p.x) + x2(p.y) + x2(p.z));
    });

    Hamiltonian ham(d, std::move(v), nbands);
    WaveFunctions wfs(d, nbands);
    wfs.randomize(42);

    EigensolverOptions opt;
    opt.max_iterations = 200;
    opt.tolerance = 1e-9;
    const auto res = solve_lowest_eigenstates(ham, wfs, opt);

    if (comm.rank() == 0) {
      std::cout << "  converged in " << res.iterations
                << " filtered subspace iterations\n\n"
                << "  band   E (computed)   E (analytic)   error\n"
                << "  ------------------------------------------\n";
      const double analytic[] = {1.5 * w, 2.5 * w, 2.5 * w, 2.5 * w};
      for (int b = 0; b < nbands; ++b) {
        const double e = res.eigenvalues[static_cast<std::size_t>(b)];
        std::cout << "  " << b << "      " << fmt_fixed(e, 6) << "      "
                  << fmt_fixed(analytic[b], 6) << "      "
                  << fmt_fixed(std::fabs(e - analytic[b]), 6) << "\n";
      }
      std::cout << "\n  (residual error is the grid discretization plus "
                   "the finite box tail)\n";
    }

    // Sanity: orthonormality after the solve.
    const DenseMatrix s = wfs.overlap();
    if (comm.rank() == 0) {
      double max_offdiag = 0;
      for (int i = 0; i < nbands; ++i)
        for (int j = 0; j < nbands; ++j)
          if (i != j) max_offdiag = std::max(max_offdiag, std::fabs(s(i, j)));
      std::cout << "  final band overlap max off-diagonal: " << max_offdiag
                << "\n";
    }
  });
  return 0;
}
