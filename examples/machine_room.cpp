// The machine room: run the paper's four programming approaches on the
// simulated Blue Gene/P at a scale of your choosing and watch who wins.
//
//   ./machine_room [cores] [ngrids] [grid_edge]
//
// Defaults reproduce a mid-size slice of the paper's Fig. 6/7 regime.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::JobConfig;
  using sched::Optimizations;

  const int cores = argc > 1 ? std::atoi(argv[1]) : 4096;
  const int ngrids = argc > 2 ? std::atoi(argv[2]) : 1024;
  const int edge = argc > 3 ? std::atoi(argv[3]) : 192;

  const auto m = bgsim::MachineConfig::bluegene_p();
  JobConfig job;
  job.grid_shape = Vec3::cube(edge);
  job.ngrids = ngrids;

  std::cout << "Simulated Blue Gene/P, " << cores << " PowerPC 450 cores ("
            << cores / m.cores_per_node << " nodes, "
            << (cores / m.cores_per_node >= m.torus_min_nodes ? "torus"
                                                              : "mesh")
            << " partition)\n"
            << "Job: " << ngrids << " real-space grids of " << edge << "^3 ("
            << fmt_bytes(static_cast<double>(ngrids) *
                         static_cast<double>(job.grid_shape.product()) * 8)
            << " of wave-function data)\n\n";

  const double seq = core::simulate_sequential_seconds(job, m);

  Table t({"approach", "batch", "time", "speedup", "CPU util",
           "sent/node", "messages"});
  for (const ApproachSpec& spec : kApproaches) {
    int batch = 1;
    if (spec.uses_optimizations)
      batch = core::best_batch_size(spec.approach, job,
                                    Optimizations::all_on(1), cores, 4, m);
    const auto r = core::simulate_scaled(spec.approach, job,
                                         opts_for(spec, batch), cores, 4, m);
    t.add_row({spec.name, std::to_string(batch), fmt_seconds(r.seconds),
               fmt_fixed(seq / r.seconds, 0) + "x",
               fmt_fixed(100 * seq / (cores * r.seconds), 1) + "%",
               fmt_bytes(r.bytes_sent_per_node),
               std::to_string(r.messages_total)});
  }
  t.print(std::cout);
  std::cout << "\n(sequential baseline: " << fmt_seconds(seq) << ")\n";
  return 0;
}
