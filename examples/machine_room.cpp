// The machine room: run the paper's four programming approaches on the
// simulated Blue Gene/P at a scale of your choosing and watch who wins.
// The four simulations are submitted concurrently to svc::SimService
// (this binary is the service layer's first internal consumer), so they
// run in parallel on the worker pool and identical re-runs are served
// from the result cache.
//
//   ./machine_room                          # paper's Fig. 6/7 mid-size slice
//   ./machine_room --cores=16384 --grids=2816 --edge=192
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "svc/service.hpp"

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::JobConfig;
  using sched::Optimizations;

  CliParser cli;
  cli.flag("cores", "4096", "total PowerPC 450 cores (multiple of 4)")
      .flag("grids", "1024", "number of real-space grids")
      .flag("edge", "192", "grid edge length (grids are edge^3)");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  const int cores = static_cast<int>(cli.get_int("cores"));
  const int ngrids = static_cast<int>(cli.get_int("grids"));
  const int edge = static_cast<int>(cli.get_int("edge"));
  const auto m = bgsim::MachineConfig::bluegene_p();
  try {
    GPAWFD_CHECK_MSG(cores >= 1, "--cores must be positive");
    GPAWFD_CHECK_MSG(cores % m.cores_per_node == 0,
                     "--cores must be a multiple of "
                         << m.cores_per_node << " (whole nodes), got "
                         << cores);
    GPAWFD_CHECK_MSG(ngrids >= 1, "--grids must be positive");
    GPAWFD_CHECK_MSG(edge >= 8, "--edge must be at least 8");
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  JobConfig job;
  job.grid_shape = Vec3::cube(edge);
  job.ngrids = ngrids;

  std::cout << "Simulated Blue Gene/P, " << cores << " PowerPC 450 cores ("
            << cores / m.cores_per_node << " nodes, "
            << (cores / m.cores_per_node >= m.torus_min_nodes ? "torus"
                                                              : "mesh")
            << " partition)\n"
            << "Job: " << ngrids << " real-space grids of " << edge << "^3 ("
            << fmt_bytes(static_cast<double>(ngrids) *
                         static_cast<double>(job.grid_shape.product()) * 8)
            << " of wave-function data)\n\n";

  const double seq = core::simulate_sequential_seconds(job, m);

  // One service, four concurrent submissions — the per-approach batch
  // search stays on this thread, the simulations overlap on the pool.
  svc::SimService service;
  std::vector<svc::Ticket> tickets;
  std::vector<int> batches;
  for (const ApproachSpec& spec : kApproaches) {
    int batch = 1;
    if (spec.uses_optimizations)
      batch = core::best_batch_size(spec.approach, job,
                                    Optimizations::all_on(1), cores,
                                    m.cores_per_node, m);
    core::SimJobSpec sim;
    sim.approach = spec.approach;
    sim.job = job;
    sim.opt = opts_for(spec, batch);
    sim.total_cores = cores;
    sim.cores_per_node = m.cores_per_node;
    sim.machine = m;
    svc::Ticket t = service.submit(sim, svc::Priority::kInteractive);
    GPAWFD_CHECK_MSG(!t.rejected(), "service rejected "
                                        << spec.name << ": "
                                        << svc::to_string(t.status));
    tickets.push_back(std::move(t));
    batches.push_back(batch);
  }

  Table t({"approach", "batch", "time", "speedup", "CPU util",
           "sent/node", "messages"});
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const ApproachSpec& spec = kApproaches[i];
    const auto r = tickets[i].result.get();
    t.add_row({spec.name, std::to_string(batches[i]), fmt_seconds(r.seconds),
               fmt_fixed(seq / r.seconds, 0) + "x",
               fmt_fixed(100 * seq / (cores * r.seconds), 1) + "%",
               fmt_bytes(r.bytes_sent_per_node),
               std::to_string(r.messages_total)});
  }
  t.print(std::cout);
  std::cout << "\n(sequential baseline: " << fmt_seconds(seq)
            << "; simulations executed: "
            << service.metrics().executed.load() << " on "
            << service.workers() << " workers)\n";
  return 0;
}
