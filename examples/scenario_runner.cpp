// scenario_runner: run one declarative workload scenario end to end and
// grade its SLOs. The scenario JSON names everything — job catalog, key
// skew, arrival process per phase, fault schedule, service knobs,
// transport, assertions (DESIGN.md §14 is the schema reference); this
// binary just loads it, replays the deterministic plan, prints the
// per-phase stats and the assertion verdicts, and exits 0 iff every SLO
// held — which is how CI gates on a scenario.
//
//   ./scenario_runner --scenario=scenarios/smoke.json
//   ./scenario_runner --scenario=scenarios/zipf_flagship.json
//       --report=SCENARIO_flagship.json
//   ./scenario_runner --scenario=scenarios/fault_storm.json --print-plan
//   ./scenario_runner --scenario=scenarios/smoke.json --seed=7  # override
//   ./scenario_runner --scenario=scenarios/long_soak.json
//       --telemetry-dir=telemetry-out --run-id=pr10  # stream rows
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;

  CliParser cli;
  cli.flag("scenario", "", "path to the scenario JSON file (required)")
      .flag("report", "", "write the machine-readable run report (JSON) "
            "to this path")
      .flag("seed", "-1", "override the scenario's seed (-1 = keep)")
      .flag("print-plan", "false", "print the deterministic request plan "
            "and exit without running")
      .flag("telemetry-dir", "", "stream run telemetry rows into "
            "<dir>/telemetry.gptt (empty = off)")
      .flag("run-id", "", "trajectory point id for telemetry rows "
            "(default: $GPAWFD_RUN_ID, else \"local\")");
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }
  if (cli.get("scenario").empty()) {
    std::cerr << "--scenario is required\n" << cli.usage(argv[0]);
    return 2;
  }

  scenario::Scenario sc;
  try {
    sc = scenario::load_scenario(cli.get("scenario"));
    const std::int64_t seed = cli.get_int_in("seed", -1, std::int64_t{1} << 40);
    if (seed >= 0) sc.seed = static_cast<std::uint64_t>(seed);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  scenario::Generator generator(sc);
  std::cout << "scenario \"" << sc.name << "\": seed " << sc.seed << ", "
            << generator.catalog().size() << " distinct jobs, "
            << sc.phases.size() << " phase(s), plan fingerprint " << std::hex
            << generator.fingerprint() << std::dec << "\n";

  if (cli.get_bool("print-plan")) {
    const auto catalog = generator.catalog();
    const auto fault_points = generator.fault_points();
    for (const scenario::PlannedRequest& r : generator.plan())
      std::cout << "phase " << r.phase << " client " << r.client << " job "
                << r.job << " prio " << static_cast<int>(r.priority)
                << " at +" << fmt_seconds(r.arrival_offset_seconds)
                << (fault_points[static_cast<std::size_t>(r.job)] !=
                            svc::FaultKind::kNone
                        ? std::string(" fault=") +
                              svc::to_string(fault_points[
                                  static_cast<std::size_t>(r.job)])
                        : "")
                << "\n";
    return 0;
  }

  std::shared_ptr<telemetry::TelemetrySink> sink;
  const std::string telemetry_dir = cli.get("telemetry-dir");
  if (!telemetry_dir.empty()) {
    std::string run_id = cli.get("run-id");
    if (run_id.empty())
      if (const char* env = std::getenv("GPAWFD_RUN_ID")) run_id = env;
    if (run_id.empty()) run_id = "local";
    std::filesystem::create_directories(telemetry_dir);
    sink = telemetry::TelemetrySink::open_in(telemetry_dir, run_id);
  }

  scenario::ScenarioReport report;
  try {
    scenario::Runner runner(sc);
    runner.set_telemetry(sink);
    report = runner.run();
  } catch (const Error& e) {
    std::cerr << "scenario run failed: " << e.what() << "\n";
    return 2;
  }
  if (sink)
    std::cout << "telemetry -> " << sink->table().path() << " ("
              << sink->written() << " rows, " << sink->dropped()
              << " dropped)\n";

  Table t({"phase", "issued", "ok", "rejected", "failed", "p50", "p99",
           "rps"});
  for (const scenario::PhaseStats& p : report.phases)
    t.add_row({p.name, std::to_string(p.issued), std::to_string(p.ok),
               std::to_string(p.rejected), std::to_string(p.failed),
               fmt_seconds(p.p50_seconds), fmt_seconds(p.p99_seconds),
               fmt_fixed(p.throughput_rps, 0)});
  t.add_row({"overall", std::to_string(report.overall.issued),
             std::to_string(report.overall.ok),
             std::to_string(report.overall.rejected),
             std::to_string(report.overall.failed),
             fmt_seconds(report.overall.p50_seconds),
             fmt_seconds(report.overall.p99_seconds),
             fmt_fixed(report.overall.throughput_rps, 0)});
  t.print(std::cout);

  std::cout << "\n" << report.assertion_summary();
  std::cout << "scenario \"" << sc.name << "\": "
            << (report.passed ? "PASS" : "FAIL") << "\n";

  const std::string report_path = cli.get("report");
  if (!report_path.empty()) {
    std::ofstream os(report_path);
    if (!os.good()) {
      std::cerr << "cannot write report to " << report_path << "\n";
      return 2;
    }
    os << report.to_json();
    std::cout << "report written to " << report_path << "\n";
  }
  return report.passed ? 0 : 1;
}
