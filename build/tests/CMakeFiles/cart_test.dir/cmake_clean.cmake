file(REMOVE_RECURSE
  "CMakeFiles/cart_test.dir/cart_test.cpp.o"
  "CMakeFiles/cart_test.dir/cart_test.cpp.o.d"
  "cart_test"
  "cart_test.pdb"
  "cart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
