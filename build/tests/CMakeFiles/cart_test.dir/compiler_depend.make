# Empty compiler generated dependencies file for cart_test.
# This may be replaced when dependencies are built.
