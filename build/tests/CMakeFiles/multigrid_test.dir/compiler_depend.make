# Empty compiler generated dependencies file for multigrid_test.
# This may be replaced when dependencies are built.
