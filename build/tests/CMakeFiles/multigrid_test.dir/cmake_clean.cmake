file(REMOVE_RECURSE
  "CMakeFiles/multigrid_test.dir/multigrid_test.cpp.o"
  "CMakeFiles/multigrid_test.dir/multigrid_test.cpp.o.d"
  "multigrid_test"
  "multigrid_test.pdb"
  "multigrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
