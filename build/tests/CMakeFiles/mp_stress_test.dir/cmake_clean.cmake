file(REMOVE_RECURSE
  "CMakeFiles/mp_stress_test.dir/mp_stress_test.cpp.o"
  "CMakeFiles/mp_stress_test.dir/mp_stress_test.cpp.o.d"
  "mp_stress_test"
  "mp_stress_test.pdb"
  "mp_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
