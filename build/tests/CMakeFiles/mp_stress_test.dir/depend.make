# Empty dependencies file for mp_stress_test.
# This may be replaced when dependencies are built.
