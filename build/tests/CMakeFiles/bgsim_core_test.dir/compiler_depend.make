# Empty compiler generated dependencies file for bgsim_core_test.
# This may be replaced when dependencies are built.
