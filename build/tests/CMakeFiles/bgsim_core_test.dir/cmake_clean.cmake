file(REMOVE_RECURSE
  "CMakeFiles/bgsim_core_test.dir/bgsim_core_test.cpp.o"
  "CMakeFiles/bgsim_core_test.dir/bgsim_core_test.cpp.o.d"
  "bgsim_core_test"
  "bgsim_core_test.pdb"
  "bgsim_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgsim_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
