file(REMOVE_RECURSE
  "CMakeFiles/engine_chain_test.dir/engine_chain_test.cpp.o"
  "CMakeFiles/engine_chain_test.dir/engine_chain_test.cpp.o.d"
  "engine_chain_test"
  "engine_chain_test.pdb"
  "engine_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
