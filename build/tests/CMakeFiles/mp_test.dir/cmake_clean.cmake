file(REMOVE_RECURSE
  "CMakeFiles/mp_test.dir/mp_test.cpp.o"
  "CMakeFiles/mp_test.dir/mp_test.cpp.o.d"
  "mp_test"
  "mp_test.pdb"
  "mp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
