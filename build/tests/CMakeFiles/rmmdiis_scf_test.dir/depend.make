# Empty dependencies file for rmmdiis_scf_test.
# This may be replaced when dependencies are built.
