file(REMOVE_RECURSE
  "CMakeFiles/rmmdiis_scf_test.dir/rmmdiis_scf_test.cpp.o"
  "CMakeFiles/rmmdiis_scf_test.dir/rmmdiis_scf_test.cpp.o.d"
  "rmmdiis_scf_test"
  "rmmdiis_scf_test.pdb"
  "rmmdiis_scf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmmdiis_scf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
