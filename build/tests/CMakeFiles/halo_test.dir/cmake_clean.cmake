file(REMOVE_RECURSE
  "CMakeFiles/halo_test.dir/halo_test.cpp.o"
  "CMakeFiles/halo_test.dir/halo_test.cpp.o.d"
  "halo_test"
  "halo_test.pdb"
  "halo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
