# Empty dependencies file for halo_test.
# This may be replaced when dependencies are built.
