file(REMOVE_RECURSE
  "CMakeFiles/stencil_property_test.dir/stencil_property_test.cpp.o"
  "CMakeFiles/stencil_property_test.dir/stencil_property_test.cpp.o.d"
  "stencil_property_test"
  "stencil_property_test.pdb"
  "stencil_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
