file(REMOVE_RECURSE
  "CMakeFiles/trace_log_test.dir/trace_log_test.cpp.o"
  "CMakeFiles/trace_log_test.dir/trace_log_test.cpp.o.d"
  "trace_log_test"
  "trace_log_test.pdb"
  "trace_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
