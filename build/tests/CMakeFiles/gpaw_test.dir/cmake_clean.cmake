file(REMOVE_RECURSE
  "CMakeFiles/gpaw_test.dir/gpaw_test.cpp.o"
  "CMakeFiles/gpaw_test.dir/gpaw_test.cpp.o.d"
  "gpaw_test"
  "gpaw_test.pdb"
  "gpaw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpaw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
