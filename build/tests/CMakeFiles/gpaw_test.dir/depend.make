# Empty dependencies file for gpaw_test.
# This may be replaced when dependencies are built.
