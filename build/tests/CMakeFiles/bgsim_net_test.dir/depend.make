# Empty dependencies file for bgsim_net_test.
# This may be replaced when dependencies are built.
