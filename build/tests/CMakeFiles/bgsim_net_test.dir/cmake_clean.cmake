file(REMOVE_RECURSE
  "CMakeFiles/bgsim_net_test.dir/bgsim_net_test.cpp.o"
  "CMakeFiles/bgsim_net_test.dir/bgsim_net_test.cpp.o.d"
  "bgsim_net_test"
  "bgsim_net_test.pdb"
  "bgsim_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgsim_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
