# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/mp_test[1]_include.cmake")
include("/root/repo/build/tests/cart_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/bgsim_core_test[1]_include.cmake")
include("/root/repo/build/tests/bgsim_net_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_executor_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/dense_test[1]_include.cmake")
include("/root/repo/build/tests/gpaw_test[1]_include.cmake")
include("/root/repo/build/tests/multigrid_test[1]_include.cmake")
include("/root/repo/build/tests/worker_pool_test[1]_include.cmake")
include("/root/repo/build/tests/halo_test[1]_include.cmake")
include("/root/repo/build/tests/trace_log_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/rmmdiis_scf_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_property_test[1]_include.cmake")
include("/root/repo/build/tests/mp_stress_test[1]_include.cmake")
include("/root/repo/build/tests/engine_chain_test[1]_include.cmake")
include("/root/repo/build/tests/trace_stats_test[1]_include.cmake")
