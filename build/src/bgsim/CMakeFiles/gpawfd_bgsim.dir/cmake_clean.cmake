file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_bgsim.dir/event_loop.cpp.o"
  "CMakeFiles/gpawfd_bgsim.dir/event_loop.cpp.o.d"
  "CMakeFiles/gpawfd_bgsim.dir/fabric.cpp.o"
  "CMakeFiles/gpawfd_bgsim.dir/fabric.cpp.o.d"
  "CMakeFiles/gpawfd_bgsim.dir/machine.cpp.o"
  "CMakeFiles/gpawfd_bgsim.dir/machine.cpp.o.d"
  "CMakeFiles/gpawfd_bgsim.dir/torus.cpp.o"
  "CMakeFiles/gpawfd_bgsim.dir/torus.cpp.o.d"
  "CMakeFiles/gpawfd_bgsim.dir/trace_log.cpp.o"
  "CMakeFiles/gpawfd_bgsim.dir/trace_log.cpp.o.d"
  "libgpawfd_bgsim.a"
  "libgpawfd_bgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_bgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
