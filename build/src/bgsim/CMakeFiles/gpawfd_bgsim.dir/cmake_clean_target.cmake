file(REMOVE_RECURSE
  "libgpawfd_bgsim.a"
)
