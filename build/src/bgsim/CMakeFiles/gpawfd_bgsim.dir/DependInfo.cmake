
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgsim/event_loop.cpp" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/event_loop.cpp.o" "gcc" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/event_loop.cpp.o.d"
  "/root/repo/src/bgsim/fabric.cpp" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/fabric.cpp.o" "gcc" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/fabric.cpp.o.d"
  "/root/repo/src/bgsim/machine.cpp" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/machine.cpp.o" "gcc" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/machine.cpp.o.d"
  "/root/repo/src/bgsim/torus.cpp" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/torus.cpp.o" "gcc" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/torus.cpp.o.d"
  "/root/repo/src/bgsim/trace_log.cpp" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/trace_log.cpp.o" "gcc" "src/bgsim/CMakeFiles/gpawfd_bgsim.dir/trace_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpawfd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
