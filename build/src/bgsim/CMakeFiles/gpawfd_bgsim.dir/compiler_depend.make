# Empty compiler generated dependencies file for gpawfd_bgsim.
# This may be replaced when dependencies are built.
