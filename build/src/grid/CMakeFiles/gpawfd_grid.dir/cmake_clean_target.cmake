file(REMOVE_RECURSE
  "libgpawfd_grid.a"
)
