# Empty compiler generated dependencies file for gpawfd_grid.
# This may be replaced when dependencies are built.
