file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_grid.dir/decomposition.cpp.o"
  "CMakeFiles/gpawfd_grid.dir/decomposition.cpp.o.d"
  "libgpawfd_grid.a"
  "libgpawfd_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
