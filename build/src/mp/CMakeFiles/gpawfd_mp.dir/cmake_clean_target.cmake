file(REMOVE_RECURSE
  "libgpawfd_mp.a"
)
