# Empty dependencies file for gpawfd_mp.
# This may be replaced when dependencies are built.
