file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_mp.dir/cart.cpp.o"
  "CMakeFiles/gpawfd_mp.dir/cart.cpp.o.d"
  "CMakeFiles/gpawfd_mp.dir/comm.cpp.o"
  "CMakeFiles/gpawfd_mp.dir/comm.cpp.o.d"
  "CMakeFiles/gpawfd_mp.dir/thread_comm.cpp.o"
  "CMakeFiles/gpawfd_mp.dir/thread_comm.cpp.o.d"
  "libgpawfd_mp.a"
  "libgpawfd_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
