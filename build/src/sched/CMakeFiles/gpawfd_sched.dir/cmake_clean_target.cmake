file(REMOVE_RECURSE
  "libgpawfd_sched.a"
)
