file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_sched.dir/plan.cpp.o"
  "CMakeFiles/gpawfd_sched.dir/plan.cpp.o.d"
  "libgpawfd_sched.a"
  "libgpawfd_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
