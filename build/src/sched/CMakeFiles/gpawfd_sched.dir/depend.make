# Empty dependencies file for gpawfd_sched.
# This may be replaced when dependencies are built.
