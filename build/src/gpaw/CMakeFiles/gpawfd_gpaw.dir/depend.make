# Empty dependencies file for gpawfd_gpaw.
# This may be replaced when dependencies are built.
