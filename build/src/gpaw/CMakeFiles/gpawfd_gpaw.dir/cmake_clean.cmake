file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_gpaw.dir/dense.cpp.o"
  "CMakeFiles/gpawfd_gpaw.dir/dense.cpp.o.d"
  "CMakeFiles/gpawfd_gpaw.dir/multigrid.cpp.o"
  "CMakeFiles/gpawfd_gpaw.dir/multigrid.cpp.o.d"
  "CMakeFiles/gpawfd_gpaw.dir/wavefunctions.cpp.o"
  "CMakeFiles/gpawfd_gpaw.dir/wavefunctions.cpp.o.d"
  "libgpawfd_gpaw.a"
  "libgpawfd_gpaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_gpaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
