file(REMOVE_RECURSE
  "libgpawfd_gpaw.a"
)
