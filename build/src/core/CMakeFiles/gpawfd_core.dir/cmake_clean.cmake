file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_core.dir/figures.cpp.o"
  "CMakeFiles/gpawfd_core.dir/figures.cpp.o.d"
  "CMakeFiles/gpawfd_core.dir/sim_executor.cpp.o"
  "CMakeFiles/gpawfd_core.dir/sim_executor.cpp.o.d"
  "CMakeFiles/gpawfd_core.dir/worker_pool.cpp.o"
  "CMakeFiles/gpawfd_core.dir/worker_pool.cpp.o.d"
  "libgpawfd_core.a"
  "libgpawfd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
