file(REMOVE_RECURSE
  "libgpawfd_core.a"
)
