# Empty compiler generated dependencies file for gpawfd_core.
# This may be replaced when dependencies are built.
