file(REMOVE_RECURSE
  "libgpawfd_common.a"
)
