# Empty compiler generated dependencies file for gpawfd_common.
# This may be replaced when dependencies are built.
