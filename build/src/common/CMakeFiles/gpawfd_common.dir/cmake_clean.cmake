file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_common.dir/cli.cpp.o"
  "CMakeFiles/gpawfd_common.dir/cli.cpp.o.d"
  "CMakeFiles/gpawfd_common.dir/math.cpp.o"
  "CMakeFiles/gpawfd_common.dir/math.cpp.o.d"
  "CMakeFiles/gpawfd_common.dir/table.cpp.o"
  "CMakeFiles/gpawfd_common.dir/table.cpp.o.d"
  "libgpawfd_common.a"
  "libgpawfd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
