# Empty compiler generated dependencies file for fig7_speedup_large.
# This may be replaced when dependencies are built.
