file(REMOVE_RECURSE
  "CMakeFiles/fig7_speedup_large.dir/fig7_speedup_large.cpp.o"
  "CMakeFiles/fig7_speedup_large.dir/fig7_speedup_large.cpp.o.d"
  "fig7_speedup_large"
  "fig7_speedup_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_speedup_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
