file(REMOVE_RECURSE
  "CMakeFiles/micro_stencil.dir/micro_stencil.cpp.o"
  "CMakeFiles/micro_stencil.dir/micro_stencil.cpp.o.d"
  "micro_stencil"
  "micro_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
