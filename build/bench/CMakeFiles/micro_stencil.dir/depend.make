# Empty dependencies file for micro_stencil.
# This may be replaced when dependencies are built.
