file(REMOVE_RECURSE
  "CMakeFiles/ablation_subgroup.dir/ablation_subgroup.cpp.o"
  "CMakeFiles/ablation_subgroup.dir/ablation_subgroup.cpp.o.d"
  "ablation_subgroup"
  "ablation_subgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
