# Empty dependencies file for ablation_subgroup.
# This may be replaced when dependencies are built.
