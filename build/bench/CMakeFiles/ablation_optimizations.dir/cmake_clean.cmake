file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimizations.dir/ablation_optimizations.cpp.o"
  "CMakeFiles/ablation_optimizations.dir/ablation_optimizations.cpp.o.d"
  "ablation_optimizations"
  "ablation_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
