# Empty compiler generated dependencies file for ablation_optimizations.
# This may be replaced when dependencies are built.
