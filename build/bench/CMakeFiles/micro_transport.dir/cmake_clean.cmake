file(REMOVE_RECURSE
  "CMakeFiles/micro_transport.dir/micro_transport.cpp.o"
  "CMakeFiles/micro_transport.dir/micro_transport.cpp.o.d"
  "micro_transport"
  "micro_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
