# Empty compiler generated dependencies file for micro_transport.
# This may be replaced when dependencies are built.
