# Empty dependencies file for fig6_gustafson.
# This may be replaced when dependencies are built.
