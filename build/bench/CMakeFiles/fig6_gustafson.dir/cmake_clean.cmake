file(REMOVE_RECURSE
  "CMakeFiles/fig6_gustafson.dir/fig6_gustafson.cpp.o"
  "CMakeFiles/fig6_gustafson.dir/fig6_gustafson.cpp.o.d"
  "fig6_gustafson"
  "fig6_gustafson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gustafson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
