file(REMOVE_RECURSE
  "CMakeFiles/gpawfd_sim.dir/gpawfd_sim.cpp.o"
  "CMakeFiles/gpawfd_sim.dir/gpawfd_sim.cpp.o.d"
  "gpawfd_sim"
  "gpawfd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpawfd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
