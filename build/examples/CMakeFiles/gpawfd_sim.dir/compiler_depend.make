# Empty compiler generated dependencies file for gpawfd_sim.
# This may be replaced when dependencies are built.
