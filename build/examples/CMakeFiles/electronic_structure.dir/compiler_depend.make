# Empty compiler generated dependencies file for electronic_structure.
# This may be replaced when dependencies are built.
