file(REMOVE_RECURSE
  "CMakeFiles/electronic_structure.dir/electronic_structure.cpp.o"
  "CMakeFiles/electronic_structure.dir/electronic_structure.cpp.o.d"
  "electronic_structure"
  "electronic_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electronic_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
