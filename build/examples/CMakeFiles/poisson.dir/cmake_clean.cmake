file(REMOVE_RECURSE
  "CMakeFiles/poisson.dir/poisson.cpp.o"
  "CMakeFiles/poisson.dir/poisson.cpp.o.d"
  "poisson"
  "poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
