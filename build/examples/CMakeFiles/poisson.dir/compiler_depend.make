# Empty compiler generated dependencies file for poisson.
# This may be replaced when dependencies are built.
