file(REMOVE_RECURSE
  "CMakeFiles/hartree_scf.dir/hartree_scf.cpp.o"
  "CMakeFiles/hartree_scf.dir/hartree_scf.cpp.o.d"
  "hartree_scf"
  "hartree_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hartree_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
