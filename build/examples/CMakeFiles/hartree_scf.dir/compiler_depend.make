# Empty compiler generated dependencies file for hartree_scf.
# This may be replaced when dependencies are built.
