file(REMOVE_RECURSE
  "CMakeFiles/machine_room.dir/machine_room.cpp.o"
  "CMakeFiles/machine_room.dir/machine_room.cpp.o.d"
  "machine_room"
  "machine_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
