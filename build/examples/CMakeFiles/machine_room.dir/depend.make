# Empty dependencies file for machine_room.
# This may be replaced when dependencies are built.
