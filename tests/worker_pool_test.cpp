#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/worker_pool.hpp"

namespace gpawfd::core {
namespace {

// Keep the compiler from folding away busy-work loops.
inline void benchmark_do_not_optimize(double& v) {
  asm volatile("" : "+m"(v));
}

TEST(WorkerPool, RunsEveryWorkerExactlyOnce) {
  WorkerPool pool(4);
  std::atomic<int> mask{0};
  pool.run([&](int tid) { mask.fetch_or(1 << tid); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(WorkerPool, SingleThreadPoolRunsInline) {
  WorkerPool pool(1);
  int count = 0;
  pool.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(WorkerPool, RunActsAsBarrier) {
  // After run() returns, all workers' writes must be visible.
  WorkerPool pool(4);
  std::vector<int> out(4, 0);
  for (int round = 1; round <= 16; ++round) {
    pool.run([&, round](int tid) {
      out[static_cast<std::size_t>(tid)] = round;
    });
    for (int v : out) EXPECT_EQ(v, round);
  }
}

TEST(WorkerPool, SplitsSlabWorkCompletely) {
  // The master-only pattern: split [0, n) into slabs, each worker fills
  // its own; together they must cover every element exactly once.
  constexpr int kN = 1003;
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(kN);
  pool.run([&](int tid) {
    const int x0 = kN * tid / 4;
    const int x1 = kN * (tid + 1) / 4;
    for (int i = x0; i < x1; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(WorkerPool, ManySequentialRounds) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 500; ++i)
    pool.run([&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1500);
}

TEST(WorkerPool, UnbalancedWorkStillJoins) {
  WorkerPool pool(4);
  std::atomic<int> done{0};
  pool.run([&](int tid) {
    // Worker 3 does far more work than the others.
    double sink = 0;
    const int iters = tid == 3 ? 2'000'000 : 10;
    for (int i = 0; i < iters; ++i) sink += static_cast<double>(i);
    benchmark_do_not_optimize(sink);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace gpawfd::core
