#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "bgsim/trace_log.hpp"
#include "core/sim_executor.hpp"

namespace gpawfd {
namespace {

using bgsim::Phase;
using bgsim::TraceLog;

TEST(TraceLog, AccumulatesSpansPerPhase) {
  TraceLog log;
  log.add(0, Phase::kCompute, 0, 1'000);
  log.add(1, Phase::kCompute, 500, 2'500);
  log.add(0, Phase::kWait, 1'000, 1'200);
  EXPECT_EQ(log.spans().size(), 3u);
  EXPECT_DOUBLE_EQ(log.total_seconds(Phase::kCompute), 3e-6);
  EXPECT_DOUBLE_EQ(log.total_seconds(Phase::kWait), 0.2e-6);
  EXPECT_DOUBLE_EQ(log.total_seconds(Phase::kCopy), 0.0);
}

TEST(TraceLog, DropsEmptySpans) {
  TraceLog log;
  log.add(0, Phase::kCopy, 5, 5);
  log.add(0, Phase::kCopy, 7, 6);
  EXPECT_TRUE(log.spans().empty());
}

TEST(TraceLog, ChromeJsonIsWellFormed) {
  TraceLog log;
  log.add(3, Phase::kCompute, 1'000, 2'000);
  log.add(4, Phase::kMpiOverhead, 0, 500);
  std::ostringstream os;
  log.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mpi\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces: one '{' per span.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
}

TEST(TraceLog, PhaseNamesAreDistinct) {
  std::set<std::string> names;
  for (Phase p : {Phase::kCompute, Phase::kCopy, Phase::kMpiOverhead,
                  Phase::kWait, Phase::kBarrier, Phase::kSpawn})
    names.insert(to_string(p));
  EXPECT_EQ(names.size(), 6u);
}

TEST(TraceLog, SimulationProducesConsistentBreakdown) {
  using sched::Approach;
  sched::JobConfig job;
  job.grid_shape = Vec3::cube(48);
  job.ngrids = 32;
  const auto plan =
      sched::RunPlan::make(Approach::kHybridMultiple, job,
                           sched::Optimizations::all_on(8), 64, 4);
  TraceLog log;
  const auto r = core::simulate(plan, bgsim::MachineConfig::bluegene_p(), &log);

  EXPECT_FALSE(log.spans().empty());
  // The log's per-phase totals must equal the SimResult breakdown.
  EXPECT_NEAR(log.total_seconds(Phase::kCompute), r.phases.compute, 1e-12);
  EXPECT_NEAR(log.total_seconds(Phase::kWait), r.phases.wait, 1e-12);
  EXPECT_NEAR(log.total_seconds(Phase::kCopy), r.phases.copy, 1e-12);
  EXPECT_NEAR(log.total_seconds(Phase::kMpiOverhead), r.phases.mpi_overhead,
              1e-12);
  // Every activity class is exercised by a hybrid run.
  EXPECT_GT(r.phases.compute, 0.0);
  EXPECT_GT(r.phases.copy, 0.0);
  EXPECT_GT(r.phases.mpi_overhead, 0.0);
  EXPECT_GT(r.phases.spawn, 0.0);
  // Per-stream busy time can never exceed streams * makespan.
  const double busy = r.phases.compute + r.phases.copy +
                      r.phases.mpi_overhead + r.phases.wait +
                      r.phases.barrier + r.phases.spawn;
  EXPECT_LE(busy, 64 * r.seconds * (1 + 1e-9));
  // No span may end after the makespan.
  for (const auto& s : log.spans())
    EXPECT_LE(bgsim::to_seconds(s.end), r.seconds * (1 + 1e-9));
}

TEST(TraceLog, SerializedRunSpendsMoreTimeWaiting) {
  using sched::Approach;
  sched::JobConfig job;
  // Faces must be large enough that transfers outlast the CPU-side call
  // overheads, otherwise neither pattern ever waits.
  job.grid_shape = Vec3::cube(96);
  job.ngrids = 32;
  const auto serialized =
      core::simulate(sched::RunPlan::make(Approach::kFlatOriginal, job,
                                          sched::Optimizations::original(),
                                          64, 4),
                     bgsim::MachineConfig::bluegene_p());
  const auto overlapped =
      core::simulate(sched::RunPlan::make(Approach::kFlatOptimized, job,
                                          sched::Optimizations::all_on(8),
                                          64, 4),
                     bgsim::MachineConfig::bluegene_p());
  // Same compute, but the serialized pattern exposes the waits.
  EXPECT_NEAR(serialized.phases.compute, overlapped.phases.compute, 1e-4);
  EXPECT_GT(serialized.phases.wait, overlapped.phases.wait);
}

}  // namespace
}  // namespace gpawfd
