// The long-soak scenario, end to end with telemetry attached: a
// multi-phase Zipf workload (closed warmup, open-loop Poisson soak, a
// 2x burst) over a fault-injecting service, SLO-gated, streaming every
// layer's rows into one telemetry table. Beyond the SLO verdict, the
// test asserts the *telemetry contract*: after the run the table holds
// the per-phase client stats, the per-assertion observed/margin rows,
// the run summary, and the service flusher's gauges — the rows
// scripts/trajectory_report renders into the per-PR series. Labelled
// stress (it runs a few seconds) but tier-1 still runs it once.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/table.hpp"

namespace gpawfd::scenario {
namespace {

class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "gpawfd_soak_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    GPAWFD_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& dir() const { return path_; }

 private:
  std::string path_;
};

TEST(ScenarioSoak, LongSoakMeetsSlosAndStreamsEveryLayerIntoTheTable) {
  TempDir tmp;
  const Scenario sc =
      load_scenario(std::string(GPAWFD_SCENARIO_DIR) + "/long_soak.json");
  ASSERT_EQ(sc.phases.size(), 3u);

  auto sink = telemetry::TelemetrySink::open_in(tmp.dir(), "soak-test");
  ScenarioReport report;
  {
    Runner runner(sc);
    runner.set_telemetry(sink);
    report = runner.run();
  }
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  // The injected faults were absorbed by retries, not surfaced.
  EXPECT_EQ(report.overall.failed, 0);
  EXPECT_GE(report.service_counters.at("svc.retries"), 1);

  // Quiesce the sink and reconcile its ledger before reading the table.
  sink->flush();
  EXPECT_EQ(sink->recorded(), sink->written() + sink->dropped());
  sink->shutdown();

  telemetry::TelemetryTable table(
      telemetry::TelemetryTable::path_in(tmp.dir()));
  telemetry::TableRecoveryStats stats;
  const auto rows = table.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.runs, 1);
  ASSERT_FALSE(rows.empty());

  std::set<std::string> keys_by_source;  // "source|key"
  for (const telemetry::TelemetryRow& r : rows) {
    EXPECT_EQ(r.run_id, "soak-test");
    keys_by_source.insert(r.source + "|" + r.key);
  }
  const auto has = [&](const std::string& source, const std::string& key) {
    return keys_by_source.count(source + "|" + key) > 0;
  };

  // Per-phase client stats for every declared phase.
  for (const char* phase : {"warm", "soak", "burst"}) {
    const std::string pfx = std::string("phase.") + phase + ".";
    EXPECT_TRUE(has("scenario.long-soak", pfx + "throughput_rps")) << phase;
    EXPECT_TRUE(has("scenario.long-soak", pfx + "p99_s")) << phase;
    EXPECT_TRUE(has("scenario.long-soak", pfx + "ok")) << phase;
    // The in-proc phases carry service counter deltas too.
    EXPECT_TRUE(has("scenario.long-soak", pfx + "delta.svc.submitted"))
        << phase;
  }
  // Per-assertion observed + margin rows for every SLO in the file.
  for (const SloParams& slo : sc.slos) {
    const std::string base = "slo." + slo.metric +
                             (slo.phase.empty() ? "" : "." + slo.phase);
    EXPECT_TRUE(has("scenario.long-soak", base + ".observed")) << base;
    EXPECT_TRUE(has("scenario.long-soak", base + ".margin")) << base;
  }
  // Run summary + verdict.
  EXPECT_TRUE(has("scenario.long-soak", "overall.throughput_rps"));
  EXPECT_TRUE(has("scenario.long-soak", "passed"));
  // The service's own periodic flusher rode along on the same table
  // (gauges always emitted, counter deltas for a run this busy).
  EXPECT_TRUE(has("svc", "svc.hit_ratio"));
  EXPECT_TRUE(has("svc", "svc.submitted"));
}

}  // namespace
}  // namespace gpawfd::scenario
