// The chaos-test harness for the service layer's fault model: every
// retry / timeout / backoff branch of SimService is driven from a
// deterministic, seeded fault schedule (svc::FaultyExecutor — faults
// keyed off JobKey hash + attempt, never rand() or the clock), and the
// ServiceError::reason() enum is asserted on for every terminal path.
// Includes the reproducibility check (same seed => identical counter
// snapshot) and the property test that no accepted future is ever
// abandoned and the metrics reconcile under any seeded schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "svc/fault.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace gpawfd {
namespace {

using core::SimJobSpec;
using core::SimResult;

SimJobSpec spec_of_job(int job_id) {
  SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(24);
  spec.job.ngrids = 8 + job_id;  // distinct workload per job id
  spec.opt = sched::Optimizations::all_on(2);
  spec.total_cores = 4;
  return spec;
}

/// Fast inner executor: a marker result, no simulation.
SimResult marker_executor(const SimJobSpec& spec) {
  SimResult r;
  r.seconds = static_cast<double>(spec.job.ngrids);
  r.messages_total = spec.job.ngrids;
  return r;
}

/// Service over a FaultyExecutor (kept alive by the shared_ptr capture).
svc::ServiceConfig faulty_config(std::shared_ptr<svc::FaultyExecutor> faulty,
                                 svc::RetryPolicy retry, int workers = 1) {
  svc::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 1024;
  cfg.executor = [faulty = std::move(faulty)](const SimJobSpec& s) {
    return (*faulty)(s);
  };
  cfg.retry = retry;
  return cfg;
}

svc::ErrorReason reason_of(const std::shared_future<SimResult>& f) {
  try {
    f.get();
  } catch (const svc::ServiceError& e) {
    return e.reason();
  } catch (...) {
    ADD_FAILURE() << "future failed with something other than ServiceError";
  }
  return svc::ErrorReason::kUnknown;
}

// ---- RetryPolicy: the backoff schedule as a pure function --------------

TEST(RetryPolicy, BackoffIsCappedExponential) {
  svc::RetryPolicy rp;
  rp.initial_backoff_seconds = 0.001;
  rp.backoff_multiplier = 2.0;
  rp.max_backoff_seconds = 0.005;
  EXPECT_DOUBLE_EQ(rp.backoff_after(0), 0.001);
  EXPECT_DOUBLE_EQ(rp.backoff_after(1), 0.002);
  EXPECT_DOUBLE_EQ(rp.backoff_after(2), 0.004);
  EXPECT_DOUBLE_EQ(rp.backoff_after(3), 0.005) << "cap must bind";
  EXPECT_DOUBLE_EQ(rp.backoff_after(60), 0.005)
      << "cap must bind without overflowing the exponential";
  rp.initial_backoff_seconds = 0;
  EXPECT_DOUBLE_EQ(rp.backoff_after(4), 0.0) << "backoff can be disabled";
}

// ---- FaultyExecutor: the seeded plan is deterministic -------------------

TEST(FaultPlan, SameSeedSamePartitionDifferentSeedDiffers) {
  svc::FaultConfig fc;
  fc.seed = 1234;
  fc.throw_probability = 0.3;
  fc.hang_probability = 0.1;
  fc.delay_probability = 0.2;
  svc::FaultyExecutor a(marker_executor, fc);
  svc::FaultyExecutor b(marker_executor, fc);
  fc.seed = 4321;
  svc::FaultyExecutor c(marker_executor, fc);

  int kinds[4] = {0, 0, 0, 0};
  int differs = 0;
  constexpr int kKeys = 256;
  for (int j = 0; j < kKeys; ++j) {
    const auto key = svc::JobKey::of(spec_of_job(j));
    const auto ra = a.rule_for(key);
    EXPECT_EQ(static_cast<int>(ra.kind),
              static_cast<int>(b.rule_for(key).kind))
        << "same seed must give the same schedule";
    if (ra.kind != c.rule_for(key).kind) ++differs;
    ++kinds[static_cast<int>(ra.kind)];
  }
  EXPECT_GT(differs, 0) << "a different seed must give a different schedule";
  // Every configured band is populated, roughly by its probability.
  EXPECT_NEAR(kinds[static_cast<int>(svc::FaultKind::kThrow)],
              0.3 * kKeys, 0.15 * kKeys);
  EXPECT_GT(kinds[static_cast<int>(svc::FaultKind::kHang)], 0);
  EXPECT_GT(kinds[static_cast<int>(svc::FaultKind::kDelay)], 0);
  EXPECT_GT(kinds[static_cast<int>(svc::FaultKind::kNone)], 0);
}

// ---- terminal reasons, branch by branch ---------------------------------

TEST(SvcFault, ThrowWithoutRetriesIsExecutorFailed) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(0);
  faulty->set_rule(svc::JobKey::of(spec), {svc::FaultKind::kThrow});
  svc::SimService service(faulty_config(faulty, svc::RetryPolicy{}));

  svc::Ticket t = service.submit(spec);
  ASSERT_EQ(t.status, svc::SubmitStatus::kAccepted);
  EXPECT_EQ(reason_of(t.result), svc::ErrorReason::kExecutorFailed);
  service.shutdown();

  const auto& m = service.metrics();
  EXPECT_EQ(m.exec_failures.load(), 1);
  EXPECT_EQ(m.gave_up.load(), 1);
  EXPECT_EQ(m.retries.load(), 0);
  EXPECT_EQ(m.executed.load(), 0);
  EXPECT_EQ(faulty->injected_throws(), 1);
}

TEST(SvcFault, FailNThenSucceedRecoversViaRetries) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(1);
  faulty->set_rule(svc::JobKey::of(spec),
                   {svc::FaultKind::kThrow, /*fail_attempts=*/2});
  svc::RetryPolicy rp;
  rp.max_attempts = 4;
  rp.initial_backoff_seconds = 0.0005;
  svc::SimService service(faulty_config(faulty, rp));

  const SimResult r = service.run(spec);
  EXPECT_DOUBLE_EQ(r.seconds, 9.0) << "the retried job must still be correct";
  service.shutdown();

  const auto& m = service.metrics();
  EXPECT_EQ(m.exec_failures.load(), 2) << "attempts 0 and 1 fail";
  EXPECT_EQ(m.retries.load(), 2);
  EXPECT_EQ(m.executed.load(), 1);
  EXPECT_EQ(m.gave_up.load(), 0);
  EXPECT_EQ(m.attempt_time.count(), 3) << "every attempt is measured";
  EXPECT_EQ(m.exec_time.count(), 1) << "only the success is a cold run";
}

TEST(SvcFault, RetryBudgetExhaustionGivesUp) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(2);
  faulty->set_rule(svc::JobKey::of(spec), {svc::FaultKind::kThrow});  // always
  svc::RetryPolicy rp;
  rp.max_attempts = 3;
  rp.initial_backoff_seconds = 0.0005;
  svc::SimService service(faulty_config(faulty, rp));

  svc::Ticket t = service.submit(spec);
  ASSERT_FALSE(t.rejected());
  EXPECT_EQ(reason_of(t.result), svc::ErrorReason::kGaveUp);
  service.shutdown();

  const auto& m = service.metrics();
  EXPECT_EQ(m.exec_failures.load(), 3);
  EXPECT_EQ(m.retries.load(), 2);
  EXPECT_EQ(m.gave_up.load(), 1);
  EXPECT_EQ(m.executed.load(), 0);
}

TEST(SvcFault, SlowFirstAttemptTimesOutThenFastRetrySucceeds) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(3);
  svc::FaultRule rule;
  rule.kind = svc::FaultKind::kDelay;
  rule.fail_attempts = 1;  // only attempt 0 straggles
  rule.delay_seconds = 0.200;
  faulty->set_rule(svc::JobKey::of(spec), rule);
  svc::RetryPolicy rp;
  rp.max_attempts = 2;
  rp.attempt_timeout_seconds = 0.050;
  rp.initial_backoff_seconds = 0.0005;
  svc::SimService service(faulty_config(faulty, rp));

  const SimResult r = service.run(spec);
  EXPECT_DOUBLE_EQ(r.seconds, 11.0);
  service.shutdown();

  const auto& m = service.metrics();
  EXPECT_EQ(m.timeouts.load(), 1) << "the straggler attempt is a timeout";
  EXPECT_EQ(m.exec_failures.load(), 0) << "a straggler is not a throw";
  EXPECT_EQ(m.retries.load(), 1);
  EXPECT_EQ(m.executed.load(), 1);
  EXPECT_EQ(faulty->injected_delays(), 1);
}

TEST(SvcFault, PersistentStragglerTimesOutTerminally) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(4);
  svc::FaultRule rule;
  rule.kind = svc::FaultKind::kDelay;
  rule.delay_seconds = 0.200;  // every attempt exceeds the budget
  faulty->set_rule(svc::JobKey::of(spec), rule);
  svc::RetryPolicy rp;
  rp.max_attempts = 2;
  rp.attempt_timeout_seconds = 0.040;
  rp.initial_backoff_seconds = 0.0005;
  svc::SimService service(faulty_config(faulty, rp));

  svc::Ticket t = service.submit(spec);
  ASSERT_FALSE(t.rejected());
  EXPECT_EQ(reason_of(t.result), svc::ErrorReason::kTimedOut);
  service.shutdown();

  const auto& m = service.metrics();
  EXPECT_EQ(m.timeouts.load(), 2);
  EXPECT_EQ(m.retries.load(), 1);
  EXPECT_EQ(m.gave_up.load(), 1);
  EXPECT_EQ(m.executed.load(), 0);
}

TEST(SvcFault, HangIsReleasedByTheAttemptDeadline) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(5);
  faulty->set_rule(svc::JobKey::of(spec), {svc::FaultKind::kHang});
  svc::RetryPolicy rp;
  rp.attempt_timeout_seconds = 0.040;  // the only thing that frees a hang
  svc::SimService service(faulty_config(faulty, rp));

  svc::Ticket t = service.submit(spec);
  ASSERT_FALSE(t.rejected());
  EXPECT_EQ(reason_of(t.result), svc::ErrorReason::kTimedOut);
  service.shutdown();
  EXPECT_EQ(service.metrics().timeouts.load(), 1);
  EXPECT_EQ(faulty->injected_hangs(), 1);
}

TEST(SvcFault, HangIsReleasedByCancelAll) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(6);
  faulty->set_rule(svc::JobKey::of(spec), {svc::FaultKind::kHang});
  // No deadline at all: only cancel_all() can free the worker.
  svc::SimService service(faulty_config(faulty, svc::RetryPolicy{}));

  svc::Ticket t = service.submit(spec);
  ASSERT_FALSE(t.rejected());
  while (faulty->injected_hangs() == 0) std::this_thread::yield();
  faulty->cancel_all();
  EXPECT_EQ(reason_of(t.result), svc::ErrorReason::kExecutorFailed)
      << "a cancelled hang within budget is an executor failure";
  service.shutdown();
  EXPECT_EQ(service.metrics().exec_failures.load(), 1);
}

TEST(SvcFault, DiscardShutdownCancelsARetryInBackoff) {
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor,
                                                      svc::FaultConfig{});
  const auto spec = spec_of_job(7);
  faulty->set_rule(svc::JobKey::of(spec), {svc::FaultKind::kThrow});
  svc::RetryPolicy rp;
  rp.max_attempts = 3;
  rp.initial_backoff_seconds = 30.0;  // park "forever": shutdown must wake it
  rp.max_backoff_seconds = 30.0;
  svc::SimService service(faulty_config(faulty, rp));

  svc::Ticket t = service.submit(spec);
  ASSERT_FALSE(t.rejected());
  while (service.metrics().exec_failures.load() == 0)
    std::this_thread::yield();  // attempt 0 failed; worker is in backoff

  const double t0 = trace::now_seconds();
  service.shutdown(/*drain=*/false);
  EXPECT_LT(trace::now_seconds() - t0, 5.0)
      << "shutdown must never wait out a backoff schedule";
  EXPECT_EQ(reason_of(t.result), svc::ErrorReason::kCancelled);
  const auto& m = service.metrics();
  EXPECT_EQ(m.cancelled.load(), 1);
  EXPECT_EQ(m.retries.load(), 0) << "the retry was cancelled, not started";
  EXPECT_EQ(m.gave_up.load(), 0);
}

TEST(SvcFault, QueuedDiscardAndRejectionCarryDistinctReasons) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> started{0};
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.executor = [&](const SimJobSpec& s) {
    started.fetch_add(1);
    opened.wait();
    return marker_executor(s);
  };
  svc::SimService service(cfg);

  svc::Ticket inflight = service.submit(spec_of_job(0));
  ASSERT_EQ(inflight.status, svc::SubmitStatus::kAccepted);
  while (started.load() == 0) std::this_thread::yield();
  svc::Ticket queued = service.submit(spec_of_job(1));
  ASSERT_EQ(queued.status, svc::SubmitStatus::kAccepted);

  std::thread stopper([&] { service.shutdown(/*drain=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();
  stopper.join();

  EXPECT_DOUBLE_EQ(inflight.result.get().seconds, 8.0);
  EXPECT_EQ(reason_of(queued.result), svc::ErrorReason::kCancelled)
      << "discard-shutdown must be distinguishable from executor failure";
  try {
    service.run(spec_of_job(2));
    FAIL() << "post-shutdown run() must throw";
  } catch (const svc::ServiceError& e) {
    EXPECT_EQ(e.reason(), svc::ErrorReason::kRejectedShutdown);
  }
}

// ---- reproducibility: the acceptance criterion --------------------------

// One fixed seeded schedule, submitted sequentially on one worker; run
// twice from scratch. Counters (not timings) must be identical.
std::map<std::string, std::int64_t> run_fixed_schedule(std::uint64_t seed) {
  svc::FaultConfig fc;
  fc.seed = seed;
  fc.throw_probability = 0.30;
  fc.delay_probability = 0.15;
  fc.fail_attempts = 1;  // faults recover on the first retry
  fc.delay_seconds = 0.120;
  fc.jitter_seconds = 0.020;
  auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor, fc);
  svc::RetryPolicy rp;
  rp.max_attempts = 3;
  rp.attempt_timeout_seconds = 0.040;  // delayed attempts time out
  rp.initial_backoff_seconds = 0.0005;
  svc::SimService service(faulty_config(faulty, rp, /*workers=*/1));
  for (int j = 0; j < 24; ++j) {
    svc::Ticket t = service.submit(spec_of_job(j));
    if (!t.rejected()) t.result.wait();
  }
  service.shutdown();
  return service.metrics().counter_map();
}

TEST(SvcFault, FixedSeedReproducesIdenticalCounterSnapshot) {
  const auto first = run_fixed_schedule(99);
  const auto second = run_fixed_schedule(99);
  EXPECT_EQ(first, second)
      << "same seed, same schedule, same counters — no rand(), no clock";
  // And the schedule actually exercised the machinery.
  EXPECT_GT(first.at("svc.retries"), 0);
  EXPECT_GT(first.at("svc.timeouts"), 0);
  EXPECT_GT(first.at("svc.exec_failures"), 0);
  EXPECT_EQ(first.at("svc.executed"), 24) << "fail-1-then-succeed recovers all";
}

// ---- the property test: no future abandoned, counters reconcile ---------

TEST(SvcFault, NoAcceptedFutureAbandonedAndCountersReconcile) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 1009ULL}) {
    svc::FaultConfig fc;
    fc.seed = seed;
    fc.throw_probability = 0.35;
    fc.delay_probability = 0.15;
    fc.fail_attempts = 2;
    fc.delay_seconds = 0.004;
    fc.jitter_seconds = 0.002;
    auto faulty = std::make_shared<svc::FaultyExecutor>(marker_executor, fc);
    svc::RetryPolicy rp;
    rp.max_attempts = 2;  // < fail_attempts for some keys: gave_up happens
    rp.initial_backoff_seconds = 0.0005;
    svc::SimService service(faulty_config(faulty, rp, /*workers=*/4));

    constexpr int kClients = 4;
    constexpr int kRequests = 50;
    std::mutex mu;
    std::vector<svc::Ticket> tickets;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kRequests; ++i) {
          svc::Ticket t = service.submit(spec_of_job((c * 13 + i) % 16));
          std::lock_guard lock(mu);
          tickets.push_back(std::move(t));
        }
      });
    }
    for (auto& t : clients) t.join();
    service.shutdown();  // drain

    int resolved = 0, rejected = 0;
    for (const auto& t : tickets) {
      if (t.rejected()) {
        ++rejected;
        continue;
      }
      ASSERT_EQ(t.result.wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "an accepted future was abandoned (seed " << seed << ")";
      ++resolved;
    }
    EXPECT_EQ(resolved + rejected, kClients * kRequests);

    const auto& m = service.metrics();
    EXPECT_EQ(m.submitted.load(),
              m.cache_hits.load() + m.dedup_joined.load() + m.accepted.load() +
                  m.rejected_queue_full.load() + m.rejected_shutdown.load())
        << "every submit has exactly one fate (seed " << seed << ")";
    EXPECT_EQ(m.accepted.load(),
              m.executed.load() + m.gave_up.load() + m.cancelled.load())
        << "every accepted job ends exactly one way (seed " << seed << ")";
    EXPECT_EQ(m.exec_failures.load() + m.timeouts.load(),
              m.retries.load() + m.gave_up.load())
        << "attempt accounting must reconcile (seed " << seed << "):\n"
        << service.metrics_snapshot();
  }
}

}  // namespace
}  // namespace gpawfd
