#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gpaw/dense.hpp"

namespace gpawfd::gpaw {
namespace {

DenseMatrix random_spd(int n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix b(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
  DenseMatrix a = b.transposed() * b;
  for (int i = 0; i < n; ++i) a(i, i) += n;  // well conditioned
  return a;
}

TEST(DenseMatrix, BasicOps) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 5;
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  const DenseMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t(2, 1), 5);
  const DenseMatrix i3 = DenseMatrix::identity(3);
  const DenseMatrix p = m * i3;
  EXPECT_DOUBLE_EQ(p(1, 2), 5);
}

TEST(DenseMatrix, MultiplicationAgainstHandComputed) {
  DenseMatrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const DenseMatrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Cholesky, ReconstructsInput) {
  for (int n : {1, 2, 5, 12}) {
    const DenseMatrix a = random_spd(n, static_cast<std::uint64_t>(n));
    const DenseMatrix l = cholesky(a);
    const DenseMatrix recon = l * l.transposed();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(recon(i, j), a(i, j), 1e-10) << n << " " << i << " " << j;
    // Upper triangle of L is zero.
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), gpawfd::Error);
}

TEST(TriangularSolve, ForwardSubstitution) {
  DenseMatrix l(2, 2);
  l(0, 0) = 2; l(1, 0) = 1; l(1, 1) = 3;
  const auto x = solve_lower(l, {4, 7});
  EXPECT_DOUBLE_EQ(x[0], 2);
  EXPECT_DOUBLE_EQ(x[1], 5.0 / 3.0);
}

TEST(TriangularSolve, InvertLowerGivesInverse) {
  const DenseMatrix a = random_spd(6, 99);
  const DenseMatrix l = cholesky(a);
  const DenseMatrix li = invert_lower(l);
  const DenseMatrix prod = l * li;
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(JacobiEigen, DiagonalMatrixIsItsOwnSpectrum) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3; a(1, 1) = -1; a(2, 2) = 2;
  const EigenResult r = jacobi_eigensolver(a);
  EXPECT_DOUBLE_EQ(r.values[0], -1);
  EXPECT_DOUBLE_EQ(r.values[1], 2);
  EXPECT_DOUBLE_EQ(r.values[2], 3);
}

TEST(JacobiEigen, TwoByTwoAnalytic) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;  // eigenvalues 1, 3
  const EigenResult r = jacobi_eigensolver(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(JacobiEigen, ReconstructsRandomSymmetricMatrix) {
  const int n = 10;
  Rng rng(7);
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) a(i, j) = a(j, i) = rng.uniform(-2, 2);
  const EigenResult r = jacobi_eigensolver(a);
  // Ascending eigenvalues.
  for (int i = 1; i < n; ++i) EXPECT_LE(r.values[static_cast<std::size_t>(i - 1)],
                                        r.values[static_cast<std::size_t>(i)]);
  // A v_j = w_j v_j and orthonormal vectors.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double av = 0;
      for (int k = 0; k < n; ++k) av += a(i, k) * r.vectors(k, j);
      EXPECT_NEAR(av, r.values[static_cast<std::size_t>(j)] * r.vectors(i, j),
                  1e-9);
    }
    for (int j2 = 0; j2 < n; ++j2) {
      double d = 0;
      for (int k = 0; k < n; ++k) d += r.vectors(k, j) * r.vectors(k, j2);
      EXPECT_NEAR(d, j == j2 ? 1.0 : 0.0, 1e-10);
    }
  }
}

}  // namespace
}  // namespace gpawfd::gpaw
