#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "common/rng.hpp"
#include "grid/array3d.hpp"
#include "stencil/kernels.hpp"

namespace gpawfd::stencil {
namespace {

using grid::Array3D;

TEST(Coeffs, LaplacianRadius1IsClassic7Point) {
  const Coeffs c = Coeffs::laplacian(1);
  EXPECT_EQ(c.points(), 7);
  EXPECT_DOUBLE_EQ(c.center, -6.0);
  for (int d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(c.axis[d][0], 1.0);
}

TEST(Coeffs, LaplacianRadius2IsThePapers13Point) {
  const Coeffs c = Coeffs::laplacian(2);
  EXPECT_EQ(c.points(), 13);
  EXPECT_DOUBLE_EQ(c.center, 3 * (-5.0 / 2.0));
  for (int d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(c.axis[d][0], 4.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.axis[d][1], -1.0 / 12.0);
  }
}

TEST(Coeffs, AnisotropicSpacingScalesPerAxis) {
  const Coeffs c = Coeffs::laplacian_spacing(1, 1.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(c.axis[0][0], 1.0);
  EXPECT_DOUBLE_EQ(c.axis[1][0], 0.25);
  EXPECT_DOUBLE_EQ(c.axis[2][0], 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(c.center, -2.0 * (1.0 + 0.25 + 1.0 / 16.0));
}

TEST(Coeffs, FlopsPerPoint) {
  EXPECT_EQ(flops_per_point(Coeffs::laplacian(2)), 25);  // 13 mul + 12 add
  EXPECT_EQ(flops_per_point(Coeffs::laplacian(1)), 13);
}

TEST(Coeffs, InvalidInputsThrow) {
  EXPECT_THROW(Coeffs::laplacian(0), gpawfd::Error);
  EXPECT_THROW(Coeffs::laplacian(5), gpawfd::Error);
  EXPECT_THROW(Coeffs::laplacian_spacing(2, -1.0, 1.0, 1.0), gpawfd::Error);
}

/// Sum of all coefficients of a Laplacian is 0 — applying it to a
/// constant field must give 0 (with periodic ghosts).
TEST(Kernels, LaplacianOfConstantIsZero) {
  for (int radius : {1, 2, 3}) {
    Array3D<double> in(Vec3::cube(8), radius), out(Vec3::cube(8), radius);
    in.fill(3.7);
    grid::local_periodic_fill(in);
    apply(in, out, Coeffs::laplacian(radius));
    out.for_each_interior([&](Vec3 p, double& v) {
      EXPECT_NEAR(v, 0.0, 1e-12) << "radius " << radius << " at " << p;
    });
  }
}

/// Optimized kernel must agree with the reference transcription exactly.
TEST(Kernels, OptimizedMatchesReference) {
  for (int radius : {1, 2, 3}) {
    const Vec3 n{6, 7, 9};
    Array3D<double> in(n, radius), ref(n, radius), opt(n, radius);
    Rng rng(99);
    in.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
    grid::local_periodic_fill(in);
    const Coeffs c = Coeffs::laplacian(radius, {1, 1, 1}, 0.5);
    apply_reference(in, ref, c);
    apply(in, opt, c);
    // The optimized kernel associates the sum differently (and the
    // compiler may contract to FMA), so allow a few ulps.
    ref.for_each_interior([&](Vec3 p, double& v) {
      EXPECT_NEAR(opt.at(p), v, 1e-12) << "radius " << radius << " at " << p;
    });
  }
}

/// Slab decomposition (how hybrid master-only splits one grid across
/// cores) must compose to the full kernel.
TEST(Kernels, SlabsComposeToFullApply) {
  const Vec3 n{10, 5, 6};
  Array3D<double> in(n, 2), full(n, 2), slabs(n, 2);
  Rng rng(3);
  in.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  grid::local_periodic_fill(in);
  const Coeffs c = Coeffs::laplacian(2);
  apply(in, full, c);
  // 4 uneven slabs, like 4 cores.
  apply_slab(in, slabs, c, 0, 3);
  apply_slab(in, slabs, c, 3, 6);
  apply_slab(in, slabs, c, 6, 9);
  apply_slab(in, slabs, c, 9, 10);
  full.for_each_interior(
      [&](Vec3 p, double& v) { EXPECT_DOUBLE_EQ(slabs.at(p), v); });
}

/// Periodic plane wave is an eigenfunction of the discrete Laplacian:
/// apply() must reproduce the analytic eigenvalue to the stencil's order.
TEST(Kernels, PlaneWaveEigenvalueConvergesWithOrder) {
  const int n = 32;
  const double h = 2.0 * std::numbers::pi / n;  // domain [0, 2*pi)
  double prev_err = 1e9;
  for (int radius : {1, 2, 3}) {
    Array3D<double> in(Vec3::cube(n), radius), out(Vec3::cube(n), radius);
    in.for_each_interior([&](Vec3 p, double& v) {
      v = std::sin(static_cast<double>(p.x) * h);
    });
    grid::local_periodic_fill(in);
    apply(in, out, Coeffs::laplacian_spacing(radius, h, h, h));
    // Laplacian of sin(x) is -sin(x): measure max error.
    double err = 0;
    out.for_each_interior([&](Vec3 p, double& v) {
      err = std::max(err, std::fabs(v + std::sin(static_cast<double>(p.x) * h)));
    });
    EXPECT_LT(err, prev_err * 0.5) << "radius " << radius;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);  // 6th order at n=32
}

TEST(Kernels, ComplexGridMatchesRealAndImagParts) {
  using C = std::complex<double>;
  const Vec3 n{5, 6, 7};
  Array3D<C> in(n, 2), out(n, 2);
  Array3D<double> re(n, 2), im(n, 2), re_out(n, 2), im_out(n, 2);
  Rng rng(17);
  in.for_each_interior([&](Vec3 p, C& v) {
    v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));
    re.at(p) = v.real();
    im.at(p) = v.imag();
  });
  grid::local_periodic_fill(in);
  grid::local_periodic_fill(re);
  grid::local_periodic_fill(im);
  const Coeffs c = Coeffs::laplacian(2);
  apply(in, out, c);
  apply(re, re_out, c);
  apply(im, im_out, c);
  // Rounding-level tolerance, not bit equality: complex rows hold twice
  // as many double lanes as real rows, so under FMA builds a point can
  // take the fused vector body in one kernel and the scalar tail in the
  // other.
  out.for_each_interior([&](Vec3 p, C& v) {
    EXPECT_NEAR(v.real(), re_out.at(p), 1e-12);
    EXPECT_NEAR(v.imag(), im_out.at(p), 1e-12);
  });
}

TEST(Kernels, ZeroBoundaryViaGhostFill) {
  // Dirichlet-zero boundaries: fill ghosts with 0 instead of wrapping.
  Array3D<double> in(Vec3::cube(4), 2), out(Vec3::cube(4), 2);
  in.fill(1.0);
  in.fill_ghosts(0.0);
  apply(in, out, Coeffs::laplacian(1));
  // Center points see six 1-neighbours: laplacian 0. Corner points see
  // three 1-neighbours and three 0-ghosts: -6 + 3 = -3.
  EXPECT_NEAR(out.at(1, 1, 1), 0.0, 1e-12);
  EXPECT_NEAR(out.at(0, 0, 0), -3.0, 1e-12);
}

TEST(Kernels, JacobiStepReducesPoissonResidual) {
  // A u = b with b = A u_exact; iterating weighted Jacobi from zero must
  // monotonically reduce ||u - u_exact|| over the first iterations.
  const int n = 8;
  const Coeffs c = Coeffs::laplacian(2);
  Array3D<double> exact(Vec3::cube(n), 2), b(Vec3::cube(n), 2);
  Rng rng(5);
  exact.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  grid::local_periodic_fill(exact);
  apply(exact, b, c);

  Array3D<double> u(Vec3::cube(n), 2), u_next(Vec3::cube(n), 2);
  u.fill(0.0);
  auto err = [&](const Array3D<double>& w) {
    double e = 0;
    w.for_each_interior([&](Vec3 p, const double& v) {
      e += (v - exact.at(p)) * (v - exact.at(p));
    });
    return std::sqrt(e);
  };
  double prev = err(u);
  for (int it = 0; it < 12; ++it) {
    grid::local_periodic_fill(u);
    jacobi_step(u, b, u_next, c, 0.7);
    std::swap(u, u_next);
    const double e = err(u);
    // Periodic Laplacian has a zero mode (constants); compare errors after
    // removing the mean.
    EXPECT_LE(e, prev + 1e-12) << "iteration " << it;
    prev = e;
  }
}

TEST(Kernels, ShapeAndGhostMismatchesThrow) {
  Array3D<double> a(Vec3::cube(4), 2), small(Vec3::cube(3), 2),
      thin(Vec3::cube(4), 1);
  const Coeffs c = Coeffs::laplacian(2);
  EXPECT_THROW(apply(a, small, c), gpawfd::Error);
  EXPECT_THROW(apply(thin, thin, c), gpawfd::Error);  // ghost < radius
}

}  // namespace
}  // namespace gpawfd::stencil
