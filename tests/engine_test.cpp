// End-to-end correctness of the distributed finite-difference engine:
// every programming approach, with and without each optimization, must
// reproduce the sequential stencil exactly.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::core {
namespace {

using sched::Approach;
using sched::JobConfig;
using sched::Optimizations;
using sched::RunPlan;

/// Run a plan on a ThreadWorld and compare every rank's output sub-grids
/// with the sequential reference.
template <typename T = double>
void run_and_verify(const RunPlan& plan, const stencil::Coeffs& coeffs) {
  // Sequential ground truth per grid.
  std::vector<grid::Array3D<T>> expected;
  expected.reserve(static_cast<std::size_t>(plan.job().ngrids));
  for (int g = 0; g < plan.job().ngrids; ++g)
    expected.push_back(testing::sequential_reference<T>(
        plan.job().grid_shape, plan.job().ghost, g, coeffs,
        plan.job().periodic));

  mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
  world.run([&](mp::ThreadComm& comm) {
    DistributedFd<T> engine(comm, plan, coeffs);
    const grid::Box3 box = plan.decomp().local_box(engine.coords());

    const auto n = static_cast<std::size_t>(plan.job().ngrids);
    std::vector<grid::Array3D<T>> in(n), out(n);
    for (std::size_t g = 0; g < n; ++g) {
      in[g] = grid::Array3D<T>(box.shape(), plan.job().ghost);
      out[g] = grid::Array3D<T>(box.shape(), plan.job().ghost);
      testing::fill_local(in[g], box, static_cast<int>(g));
      out[g].fill(T{-12345.0});
    }

    engine.apply_all(in, out);

    // Which grids must this rank have computed?
    std::vector<bool> owned(n, false);
    for (int s = 0; s < plan.comm_streams_per_rank(); ++s)
      for (int g : plan.grids_of_stream(comm.rank(), s))
        owned[static_cast<std::size_t>(g)] = true;

    for (std::size_t g = 0; g < n; ++g) {
      if (!owned[g]) continue;
      out[g].for_each_interior([&](Vec3 p, T& v) {
        const T want = expected[g].at(box.lo + p);
        if (std::abs(v - want) > 1e-12) {
          ADD_FAILURE() << "rank " << comm.rank() << " grid " << g
                        << " at local " << p << ": got " << v << " want "
                        << want;
        }
      });
    }
  });
}

JobConfig job(Vec3 shape, int ngrids, bool periodic = true) {
  JobConfig j;
  j.grid_shape = shape;
  j.ngrids = ngrids;
  j.ghost = 2;
  j.periodic = periodic;
  return j;
}

const stencil::Coeffs kLap = stencil::Coeffs::laplacian(2);

TEST(Engine, FlatOriginalMatchesSequential) {
  run_and_verify(RunPlan::make(Approach::kFlatOriginal, job({12, 12, 12}, 4),
                               Optimizations::original(), 8, 4),
                 kLap);
}

TEST(Engine, FlatOptimizedMatchesSequential) {
  run_and_verify(RunPlan::make(Approach::kFlatOptimized, job({12, 12, 12}, 8),
                               Optimizations::all_on(4), 8, 4),
                 kLap);
}

TEST(Engine, HybridMultipleMatchesSequential) {
  run_and_verify(RunPlan::make(Approach::kHybridMultiple, job({16, 12, 12}, 8),
                               Optimizations::all_on(2), 8, 4),
                 kLap);
}

TEST(Engine, HybridMasterOnlyMatchesSequential) {
  run_and_verify(RunPlan::make(Approach::kHybridMasterOnly,
                               job({16, 12, 12}, 8), Optimizations::all_on(4),
                               8, 4),
                 kLap);
}

TEST(Engine, SubgroupAblationMatchesSequential) {
  run_and_verify(RunPlan::make(Approach::kFlatOptimizedSubgroups,
                               job({16, 12, 12}, 8), Optimizations::all_on(2),
                               8, 4),
                 kLap);
}

TEST(Engine, SingleRankStillWorks) {
  run_and_verify(RunPlan::make(Approach::kFlatOptimized, job({8, 8, 8}, 3),
                               Optimizations::all_on(2), 1, 4),
                 kLap);
}

TEST(Engine, NonPeriodicZeroBoundary) {
  run_and_verify(RunPlan::make(Approach::kFlatOptimized,
                               job({12, 12, 12}, 4, /*periodic=*/false),
                               Optimizations::all_on(2), 8, 4),
                 kLap);
  run_and_verify(RunPlan::make(Approach::kFlatOriginal,
                               job({12, 12, 12}, 4, /*periodic=*/false),
                               Optimizations::original(), 8, 4),
                 kLap);
  run_and_verify(RunPlan::make(Approach::kHybridMultiple,
                               job({12, 12, 12}, 4, /*periodic=*/false),
                               Optimizations::all_on(2), 8, 4),
                 kLap);
}

TEST(Engine, ComplexGrids) {
  JobConfig j = job({12, 12, 12}, 4);
  j.elem_bytes = 16;
  run_and_verify<std::complex<double>>(
      RunPlan::make(Approach::kFlatOptimized, j, Optimizations::all_on(2), 8,
                    4),
      kLap);
  run_and_verify<std::complex<double>>(
      RunPlan::make(Approach::kHybridMultiple, j, Optimizations::all_on(2), 8,
                    4),
      kLap);
}

TEST(Engine, UnevenDecompositionRemainders) {
  // 13 is prime along x; ranks get uneven slabs.
  run_and_verify(RunPlan::make(Approach::kFlatOptimized, job({13, 9, 11}, 5),
                               Optimizations::all_on(2), 6, 2),
                 kLap);
}

TEST(Engine, TwoProcessDimensionBothNeighborsSameRank) {
  // pgrid 2 in some dimension: +1 and -1 neighbours are the same rank;
  // tags must keep the two faces apart.
  run_and_verify(RunPlan::make(Approach::kFlatOptimized, job({8, 8, 8}, 4),
                               Optimizations::all_on(2), 2, 2),
                 kLap);
}

TEST(Engine, RadiusOneAndThreeStencils) {
  JobConfig j1 = job({12, 12, 12}, 4);
  j1.ghost = 1;
  run_and_verify(RunPlan::make(Approach::kFlatOptimized, j1,
                               Optimizations::all_on(2), 8, 4),
                 stencil::Coeffs::laplacian(1));
  JobConfig j3 = job({12, 12, 12}, 4);
  j3.ghost = 3;
  run_and_verify(RunPlan::make(Approach::kHybridMultiple, j3,
                               Optimizations::all_on(2), 4, 4),
                 stencil::Coeffs::laplacian(3));
}

TEST(Engine, DoubleBufferingOffStillCorrect) {
  Optimizations o = Optimizations::all_on(2);
  o.double_buffering = false;
  run_and_verify(RunPlan::make(Approach::kFlatOptimized, job({12, 12, 12}, 8),
                               o, 8, 4),
                 kLap);
}

TEST(Engine, RampUpOffStillCorrect) {
  Optimizations o = Optimizations::all_on(3);
  o.ramp_up = false;
  run_and_verify(RunPlan::make(Approach::kHybridMultiple, job({12, 12, 12}, 16),
                               o, 8, 4),
                 kLap);
}

TEST(Engine, MismatchedWorldSizeThrows) {
  const auto plan = RunPlan::make(Approach::kFlatOptimized, job({8, 8, 8}, 2),
                                  Optimizations::all_on(2), 4, 4);
  mp::ThreadWorld world(2);
  EXPECT_THROW(world.run([&](mp::ThreadComm& c) {
    DistributedFd<double> engine(c, plan, kLap);
  }),
               gpawfd::Error);
}

}  // namespace
}  // namespace gpawfd::core
