// Torture tests for the persistent result store (svc/cache_store):
// crash-safe recovery truncated at every byte offset of a multi-record
// log, random bit flips caught by the CRC without losing earlier
// records, a committed golden binary fixture pinning the on-disk format
// bit-for-bit (a format change MUST bump kStoreVersion and regenerate
// the fixture — see tests/data/README note below), compaction, the
// concurrent writer + read-only-reader reopen dance, and the
// write-behind Persister's drop-oldest backpressure made deterministic
// with a gated write hook.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/result_codec.hpp"
#include "svc/cache_store.hpp"
#include "svc/metrics.hpp"

namespace gpawfd {
namespace {

// ---- fixtures and helpers ---------------------------------------------

/// A unique scratch directory per test, removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "gpawfd_cache_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    GPAWFD_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string store_path() const {
    return svc::CacheStore::path_in(path_);
  }
  const std::string& dir() const { return path_; }

 private:
  std::string path_;
};

core::SimResult make_result(double tag) {
  core::SimResult r;
  r.seconds = tag;
  r.compute_core_seconds = 2 * tag;
  r.utilization = 0.5;
  r.bytes_sent_total = static_cast<std::int64_t>(1000 * tag);
  r.bytes_sent_per_node = tag / 4;
  r.messages_total = static_cast<std::int64_t>(10 * tag);
  r.phases.compute = tag + 0.125;
  r.phases.copy = tag + 0.25;
  r.phases.mpi_overhead = tag + 0.375;
  r.phases.wait = tag + 0.5;
  r.phases.barrier = tag + 0.625;
  r.phases.spawn = tag + 0.75;
  return r;
}

void expect_result_eq(const core::SimResult& a, const core::SimResult& b) {
  // Bit-exact across the codec: plain == on every field.
  const auto ea = core::encode_sim_result(a);
  const auto eb = core::encode_sim_result(b);
  EXPECT_EQ(ea, eb);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void append_to_file(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Hand-rolled record encoder (independent of CacheStore's private one)
/// for crafting byte-valid records with hostile field values — a future
/// format version, a non-monotonic sequence — that the store's own
/// appenders would refuse to produce. CRC is correct by construction, so
/// recovery must reject these on the *semantic* check, not the checksum.
std::vector<std::uint8_t> craft_record(std::uint8_t version,
                                       std::uint8_t type, std::uint64_t seq,
                                       double write_time, double cost,
                                       const std::string& key,
                                       const std::vector<std::uint8_t>& value) {
  std::vector<std::uint8_t> out;
  core::append_u32(out, svc::kStoreMagic);
  out.push_back(version);
  out.push_back(type);
  out.push_back(0);
  out.push_back(0);
  core::append_u64(out, seq);
  core::append_double(out, write_time);
  core::append_double(out, cost);
  core::append_u32(out, static_cast<std::uint32_t>(key.size()));
  core::append_u32(out, static_cast<std::uint32_t>(value.size()));
  std::uint32_t crc = crc32(out.data(), out.size());
  crc = crc32(key.data(), key.size(), crc);
  crc = crc32(value.data(), value.size(), crc);
  core::append_u32(out, crc);
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

/// Writes a 4-record log (3 puts + 1 supersede... see body) and returns
/// the record-boundary offsets appends reported.
std::vector<std::uint64_t> write_sample_log(const std::string& path) {
  svc::CacheStore store(path);
  store.recover();
  std::vector<std::uint64_t> ends;
  ends.push_back(store.append_put("v1|key-a", make_result(1.0), 0.1, 100.0));
  ends.push_back(store.append_put("v1|key-b", make_result(2.0), 0.2, 101.0));
  ends.push_back(store.append_put("v1|key-a", make_result(3.0), 0.3, 102.0));
  ends.push_back(store.append_tombstone("v1|key-b", 103.0));
  store.sync();
  return ends;
}

/// Asserts the live set of the sample log's first `n` records, exactly.
/// The live set is ordered by the sequence of each key's *surviving*
/// put, so key-a's supersede at seq 3 moves it after key-b.
void expect_prefix_live(const std::vector<svc::StoreRecord>& live,
                        std::int64_t n) {
  switch (n) {
    case 0:
      EXPECT_TRUE(live.empty());
      break;
    case 1:
      ASSERT_EQ(live.size(), 1u);
      EXPECT_EQ(live[0].key, "v1|key-a");
      expect_result_eq(live[0].result, make_result(1.0));
      break;
    case 2:
      ASSERT_EQ(live.size(), 2u);
      EXPECT_EQ(live[0].key, "v1|key-a");
      expect_result_eq(live[0].result, make_result(1.0));
      EXPECT_EQ(live[1].key, "v1|key-b");
      expect_result_eq(live[1].result, make_result(2.0));
      break;
    case 3:
      ASSERT_EQ(live.size(), 2u);
      EXPECT_EQ(live[0].key, "v1|key-b");
      expect_result_eq(live[0].result, make_result(2.0));
      EXPECT_EQ(live[1].key, "v1|key-a");
      expect_result_eq(live[1].result, make_result(3.0));
      break;
    case 4:
      ASSERT_EQ(live.size(), 1u);
      EXPECT_EQ(live[0].key, "v1|key-a");
      expect_result_eq(live[0].result, make_result(3.0));
      break;
    default:
      FAIL() << "unexpected prefix record count " << n;
  }
}

// ---- basic round trip ---------------------------------------------------

TEST(CacheStore, RoundTripAppliesSupersedesAndTombstones) {
  TempDir tmp;
  write_sample_log(tmp.store_path());

  svc::CacheStore reopened(tmp.store_path());
  svc::RecoveryStats stats;
  const auto live = reopened.recover(&stats);
  EXPECT_EQ(stats.records_scanned, 4);
  EXPECT_EQ(stats.puts, 3);
  EXPECT_EQ(stats.tombstones, 1);
  EXPECT_EQ(stats.live, 1);
  EXPECT_FALSE(stats.truncated);

  // key-b was tombstoned; key-a's second put superseded the first.
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].key, "v1|key-a");
  EXPECT_EQ(live[0].sequence, 3u);
  EXPECT_EQ(live[0].cost_seconds, 0.3);
  EXPECT_EQ(live[0].write_time, 102.0);
  expect_result_eq(live[0].result, make_result(3.0));

  EXPECT_TRUE(reopened.contains("v1|key-a"));
  EXPECT_FALSE(reopened.contains("v1|key-b"));
  EXPECT_EQ(reopened.total_records(), 4);
  EXPECT_EQ(reopened.live_records(), 1);
  EXPECT_EQ(reopened.next_sequence(), 5u);
}

TEST(CacheStore, AppendsContinueAfterReopen) {
  TempDir tmp;
  write_sample_log(tmp.store_path());

  {
    svc::CacheStore store(tmp.store_path());
    store.recover();
    store.append_put("v1|key-c", make_result(4.0), 0.4, 104.0);
    store.sync();
  }
  svc::CacheStore again(tmp.store_path());
  const auto live = again.recover();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].key, "v1|key-a");
  EXPECT_EQ(live[1].key, "v1|key-c");
  EXPECT_EQ(live[1].sequence, 5u);  // sequences keep climbing across opens
}

TEST(CacheStore, AppendBeforeRecoverIsRefused) {
  TempDir tmp;
  svc::CacheStore store(tmp.store_path());
  EXPECT_THROW(store.append_put("v1|k", make_result(1.0), 0, 0), Error);
}

// ---- the every-byte-offset truncation torture ---------------------------

// Crash-safety acceptance test: for EVERY prefix length of a
// multi-record log — every possible torn-write crash point — reopening
// must neither crash nor accept a corrupt record, and must recover
// exactly the records whose bytes fully survived.
TEST(CacheStoreTorture, TruncationAtEveryByteOffsetRecoversThePrefix) {
  TempDir tmp;
  const std::string sample = tmp.dir() + "/sample.gpcs";
  const std::vector<std::uint64_t> ends = write_sample_log(sample);
  const std::vector<std::uint8_t> full = read_file(sample);
  ASSERT_EQ(full.size(), ends.back());

  const std::string victim = tmp.dir() + "/victim.gpcs";
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_file(victim, std::vector<std::uint8_t>(full.begin(),
                                                 full.begin() +
                                                     static_cast<long>(len)));
    // How many records fit entirely inside the prefix, and where the
    // last intact one ends.
    std::int64_t expect_records = 0;
    std::uint64_t valid_end = 0;
    for (const std::uint64_t end : ends) {
      if (end <= len) {
        ++expect_records;
        valid_end = end;
      }
    }

    svc::CacheStore store(victim);
    svc::RecoveryStats stats;
    const auto live = store.recover(&stats);
    ASSERT_EQ(stats.records_scanned, expect_records) << "prefix " << len;
    ASSERT_EQ(stats.truncated_bytes,
              static_cast<std::int64_t>(len - valid_end))
        << "prefix " << len;
    ASSERT_EQ(stats.truncated, len != valid_end) << "prefix " << len;
    // repair=true physically truncated the file to the record boundary.
    ASSERT_EQ(std::filesystem::file_size(victim), valid_end)
        << "prefix " << len;

    // The undamaged prefix is fully recovered, with its exact contents.
    expect_prefix_live(live, expect_records);

    // A second recovery of the repaired file is clean and identical.
    svc::CacheStore again(victim);
    svc::RecoveryStats stats2;
    const auto live2 = again.recover(&stats2);
    ASSERT_FALSE(stats2.truncated) << "prefix " << len;
    ASSERT_EQ(live2.size(), live.size()) << "prefix " << len;
  }
}

// ---- random bit flips ---------------------------------------------------

// Any single flipped bit invalidates exactly the record it lands in: the
// CRC rejects that record (and, because nothing past a bad record can be
// trusted, the scan stops there) while every earlier record survives
// with its exact contents. Seeds are fixed: failures replay.
TEST(CacheStoreTorture, RandomBitFlipsNeverLoseEarlierRecords) {
  TempDir tmp;
  const std::string sample = tmp.dir() + "/sample.gpcs";
  const std::vector<std::uint64_t> ends = write_sample_log(sample);
  const std::vector<std::uint8_t> full = read_file(sample);

  const std::string victim = tmp.dir() + "/victim.gpcs";
  for (std::uint32_t seed = 1; seed <= 64; ++seed) {
    std::mt19937 rng(seed);
    const std::size_t pos = std::uniform_int_distribution<std::size_t>(
        0, full.size() - 1)(rng);
    const int bit = std::uniform_int_distribution<int>(0, 7)(rng);

    std::vector<std::uint8_t> damaged = full;
    damaged[pos] ^= static_cast<std::uint8_t>(1u << bit);
    write_file(victim, damaged);

    // The flip lands inside exactly one record; everything before it
    // must survive, nothing from it on may be accepted.
    std::int64_t damaged_record = 0;
    while (pos >= ends[static_cast<std::size_t>(damaged_record)])
      ++damaged_record;

    svc::CacheStore store(victim);
    svc::RecoveryStats stats;
    const auto live = store.recover(&stats);
    ASSERT_EQ(stats.records_scanned, damaged_record)
        << "seed " << seed << " pos " << pos << " bit " << bit;
    expect_prefix_live(live, damaged_record);
  }
}

// ---- hostile-but-checksummed records ------------------------------------

TEST(CacheStore, FutureFormatVersionIsRejectedNotMisread) {
  TempDir tmp;
  write_sample_log(tmp.store_path());
  // A record from "version 2" with a perfectly valid CRC: the scanner
  // must stop at the version check rather than guess at its layout.
  const auto alien = craft_record(
      svc::kStoreVersion + 1, 1, /*seq=*/5, 200.0, 0.5, "v1|key-z",
      core::encode_sim_result(make_result(9.0)));
  append_to_file(tmp.store_path(), alien);

  svc::CacheStore store(tmp.store_path());
  svc::RecoveryStats stats;
  store.recover(&stats);
  EXPECT_EQ(stats.records_scanned, 4);
  EXPECT_TRUE(stats.truncated);
  EXPECT_FALSE(store.contains("v1|key-z"));
}

TEST(CacheStore, NonMonotonicSequenceIsRejected) {
  TempDir tmp;
  write_sample_log(tmp.store_path());  // sequences 1..4
  const auto replayed = craft_record(
      svc::kStoreVersion, 1, /*seq=*/2, 200.0, 0.5, "v1|key-z",
      core::encode_sim_result(make_result(9.0)));
  append_to_file(tmp.store_path(), replayed);

  svc::CacheStore store(tmp.store_path());
  svc::RecoveryStats stats;
  store.recover(&stats);
  EXPECT_EQ(stats.records_scanned, 4);
  EXPECT_TRUE(stats.truncated);
  EXPECT_FALSE(store.contains("v1|key-z"));
}

TEST(CacheStore, OversizedKeyLengthIsRejected) {
  TempDir tmp;
  write_sample_log(tmp.store_path());
  // key_len past the sanity cap, CRC valid: the scanner must refuse to
  // allocate/swallow rather than trust the length.
  std::string huge_key(svc::kStoreMaxKeyBytes + 1, 'x');
  const auto hostile = craft_record(
      svc::kStoreVersion, 2, /*seq=*/5, 200.0, 0.0, huge_key, {});
  append_to_file(tmp.store_path(), hostile);

  svc::CacheStore store(tmp.store_path());
  svc::RecoveryStats stats;
  store.recover(&stats);
  EXPECT_EQ(stats.records_scanned, 4);
  EXPECT_TRUE(stats.truncated);
}

// ---- golden file: the on-disk format, pinned ---------------------------

// tests/data/cache_store_v1.gpcs is a committed binary fixture produced
// by this exact record schedule. If either golden test fails, the
// on-disk format changed: bump svc::kStoreVersion and regenerate the
// fixture (write_golden_records into a fresh store and commit the file),
// so that stores written by older builds are cleanly rejected instead of
// silently misread.
constexpr const char* kGoldenPath =
    GPAWFD_TEST_DATA_DIR "/cache_store_v1.gpcs";

void write_golden_records(svc::CacheStore& store) {
  store.append_put("v1|golden-a", make_result(1.5), 0.125, 1700000000.5);
  store.append_put("v1|golden-b", make_result(2.25), 0.0625, 1700000001.5);
  store.append_put("v1|golden-a", make_result(7.75), 0.25, 1700000002.5);
  store.append_tombstone("v1|golden-b", 1700000003.5);
  store.sync();
}

TEST(CacheStoreGolden, FixtureDecodesBitExactly) {
  svc::CacheStore store(kGoldenPath);
  svc::RecoveryStats stats;
  // repair=false: a golden fixture must never be modified by the test.
  const auto live = store.recover(&stats, /*repair=*/false);
  EXPECT_EQ(stats.records_scanned, 4);
  EXPECT_EQ(stats.puts, 3);
  EXPECT_EQ(stats.tombstones, 1);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].key, "v1|golden-a");
  EXPECT_EQ(live[0].sequence, 3u);
  EXPECT_EQ(live[0].write_time, 1700000002.5);
  EXPECT_EQ(live[0].cost_seconds, 0.25);
  expect_result_eq(live[0].result, make_result(7.75));
}

TEST(CacheStoreGolden, EncoderReproducesTheFixtureByteForByte) {
  TempDir tmp;
  {
    svc::CacheStore store(tmp.store_path());
    store.recover();
    write_golden_records(store);
  }
  const auto ours = read_file(tmp.store_path());
  const auto golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing fixture " << kGoldenPath;
  ASSERT_EQ(ours.size(), golden.size());
  EXPECT_TRUE(ours == golden)
      << "on-disk format drifted from the committed fixture — bump "
         "svc::kStoreVersion and regenerate tests/data/cache_store_v1.gpcs";
}

// ---- compaction ---------------------------------------------------------

TEST(CacheStore, CompactionRewritesTheLiveSetAndShrinksTheLog) {
  TempDir tmp;
  svc::CacheStore store(tmp.store_path());
  store.recover();
  // 3 keys, 8 generations each + one tombstone: 25 records, 2 live.
  for (int gen = 0; gen < 8; ++gen)
    for (int k = 0; k < 3; ++k)
      store.append_put("v1|key-" + std::to_string(k),
                       make_result(10.0 * k + gen), 0.1, 100.0 + gen);
  store.append_tombstone("v1|key-0", 200.0);
  store.sync();
  const std::uint64_t before = store.size_bytes();
  const std::uint64_t seq_before = store.next_sequence();
  EXPECT_GT(store.garbage_ratio(), 0.9);

  EXPECT_FALSE(store.maybe_compact(0.95, 4));  // below threshold: no-op
  ASSERT_TRUE(store.maybe_compact(0.5, 4));
  EXPECT_LT(store.size_bytes(), before / 5);
  EXPECT_EQ(store.total_records(), 2);
  EXPECT_EQ(store.live_records(), 2);
  EXPECT_EQ(store.next_sequence(), seq_before);  // sequences never reused
  EXPECT_EQ(store.compactions(), 1);

  // Appends continue cleanly and a fresh process sees the compacted +
  // appended state with original timestamps/sequences preserved.
  store.append_put("v1|key-9", make_result(99.0), 0.9, 300.0);
  store.sync();
  svc::CacheStore reopened(tmp.store_path());
  svc::RecoveryStats stats;
  const auto live = reopened.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0].key, "v1|key-1");
  expect_result_eq(live[0].result, make_result(17.0));  // k=1, gen=7
  EXPECT_EQ(live[0].write_time, 107.0);
  EXPECT_EQ(live[2].key, "v1|key-9");
  EXPECT_EQ(live[2].sequence, seq_before);
}

// ---- concurrent writer + read-only reader -------------------------------

// One thread appends; the main thread repeatedly reopens the file with
// repair=false scans (the second-process-peeks-at-a-live-store case).
// Readers may observe a torn tail mid-append — that must parse as a
// clean prefix, never as an error, and the observed record count can
// only grow. Run under TSAN in the tier-1 tsan lane.
TEST(CacheStoreTorture, ConcurrentWriterAndReaderReopen) {
  TempDir tmp;
  constexpr int kRecords = 200;
  {
    svc::CacheStore writer(tmp.store_path());
    writer.recover();

    std::thread producer([&writer] {
      for (int i = 0; i < kRecords; ++i) {
        writer.append_put("v1|key-" + std::to_string(i),
                          make_result(static_cast<double>(i)), 0.01,
                          1000.0 + i);
        if (i % 16 == 0) writer.sync();
      }
      writer.sync();
    });

    std::int64_t last_seen = 0;
    while (last_seen < kRecords) {
      svc::CacheStore reader(tmp.store_path());
      svc::RecoveryStats stats;
      const auto live = reader.recover(&stats, /*repair=*/false);
      ASSERT_GE(stats.records_scanned, last_seen);
      ASSERT_LE(stats.records_scanned, kRecords);
      ASSERT_EQ(static_cast<std::int64_t>(live.size()),
                stats.records_scanned);  // distinct keys: all puts live
      last_seen = stats.records_scanned;
    }
    producer.join();
  }
  svc::CacheStore final_reader(tmp.store_path());
  svc::RecoveryStats stats;
  final_reader.recover(&stats);
  EXPECT_EQ(stats.records_scanned, kRecords);
  EXPECT_FALSE(stats.truncated);
}

// ---- the write-behind persister -----------------------------------------

TEST(Persister, WritesBehindFlushesAndReconciles) {
  TempDir tmp;
  auto store = std::make_unique<svc::CacheStore>(tmp.store_path());
  store->recover();

  svc::Metrics metrics;
  svc::Persister persister(std::move(store), {}, &metrics);
  constexpr int kItems = 32;
  for (int i = 0; i < kItems; ++i)
    persister.enqueue("v1|key-" + std::to_string(i),
                      make_result(static_cast<double>(i)), 0.05, 500.0 + i);
  persister.flush();

  EXPECT_EQ(persister.enqueued(), kItems);
  EXPECT_EQ(persister.written(), kItems);
  EXPECT_EQ(persister.dropped(), 0);
  EXPECT_GE(persister.flushes(), 1);
  // The identity the Metrics mirror must satisfy at quiescence, via the
  // exported counter map (what operators actually read).
  const auto counters = metrics.counter_map();
  EXPECT_EQ(counters.at("svc.persist_enqueued"),
            counters.at("svc.persist_written") +
                counters.at("svc.persist_dropped"));
  EXPECT_EQ(counters.at("svc.persist_written"), kItems);
  EXPECT_GE(counters.at("svc.persist_flushes"), 1);

  persister.shutdown();
  // Everything is durable: a second process recovers all of it.
  svc::CacheStore reopened(tmp.store_path());
  svc::RecoveryStats stats;
  const auto live = reopened.recover(&stats);
  EXPECT_EQ(static_cast<int>(live.size()), kItems);
  EXPECT_FALSE(stats.truncated);
}

TEST(Persister, DropOldestBackpressureIsCountedAndDeterministic) {
  TempDir tmp;
  auto store = std::make_unique<svc::CacheStore>(tmp.store_path());
  store->recover();

  // Gate the very first write so the queue (capacity 2) fills behind it
  // deterministically: enqueue 1 (thread takes it and blocks in the
  // hook), then 2, 3, 4 -> the queue holds [2,3], 4 bumps 2 out.
  std::mutex mu;
  std::condition_variable cv;
  bool first_entered = false, release = false;
  svc::PersisterConfig cfg;
  cfg.queue_capacity = 2;
  cfg.on_write = [&](const std::string&) {
    std::unique_lock lk(mu);
    if (!first_entered) {
      first_entered = true;
      cv.notify_all();
      cv.wait(lk, [&] { return release; });
    }
  };

  svc::Metrics metrics;
  svc::Persister persister(std::move(store), cfg, &metrics);
  persister.enqueue("v1|key-1", make_result(1.0), 0.1, 100.0);
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return first_entered; });
  }
  persister.enqueue("v1|key-2", make_result(2.0), 0.1, 100.0);
  persister.enqueue("v1|key-3", make_result(3.0), 0.1, 100.0);
  persister.enqueue("v1|key-4", make_result(4.0), 0.1, 100.0);
  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  persister.flush();

  EXPECT_EQ(persister.enqueued(), 4);
  EXPECT_EQ(persister.written(), 3);
  EXPECT_EQ(persister.dropped(), 1);
  EXPECT_TRUE(persister.store().contains("v1|key-1"));
  EXPECT_FALSE(persister.store().contains("v1|key-2"));  // the dropped one
  EXPECT_TRUE(persister.store().contains("v1|key-3"));
  EXPECT_TRUE(persister.store().contains("v1|key-4"));
  EXPECT_EQ(metrics.persist_dropped.load(), 1);
}

TEST(Persister, CompactionRacesConcurrentBatchProducers) {
  // Aggressive compaction thresholds so the persister thread compacts
  // *while* producer threads are still landing enqueue_batch rounds —
  // the compact-vs-append interleaving this test (and the TSAN lane)
  // exists to race. Producers own disjoint key subsets and supersede
  // their own keys every round, so the expected final live set is exact
  // regardless of interleaving: the last round per key.
  TempDir tmp;
  auto store = std::make_unique<svc::CacheStore>(tmp.store_path());
  store->recover();

  constexpr int kProducers = 4;
  constexpr int kKeysPerProducer = 8;
  constexpr int kRounds = 20;
  constexpr int kTotal = kProducers * kKeysPerProducer * kRounds;

  svc::PersisterConfig config;
  // Capacity covers everything in flight: no drop-oldest, so the final
  // round of every key is guaranteed durable and the live set is exact.
  config.queue_capacity = kTotal;
  config.compact_garbage_threshold = 0.05;
  config.compact_min_records = 8;
  // Slow each append slightly so drains (and the compactions after
  // them) genuinely overlap the producers instead of running after.
  config.on_write = [](const std::string&) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  };

  svc::Metrics metrics;
  svc::Persister persister(std::move(store), config, &metrics);

  const auto key_of = [](int producer, int k) {
    return "v1|p" + std::to_string(producer) + "-k" + std::to_string(k);
  };
  const auto tag_of = [](int producer, int k, int round) {
    return 1000.0 * producer + 10.0 * k + round;
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<svc::Persister::Write> batch;
        for (int k = 0; k < kKeysPerProducer; ++k)
          batch.push_back({key_of(p, k), make_result(tag_of(p, k, round)),
                           0.05, 600.0 + round});
        persister.enqueue_batch(std::move(batch));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (auto& t : producers) t.join();
  persister.flush();

  // Nothing dropped (capacity covered the run), everything written, and
  // the mirrored counters reconcile.
  EXPECT_EQ(persister.enqueued(), kTotal);
  EXPECT_EQ(persister.written(), kTotal);
  EXPECT_EQ(persister.dropped(), 0);
  EXPECT_GE(persister.compactions(), 1);
  const auto counters = metrics.counter_map();
  EXPECT_EQ(counters.at("svc.persist_enqueued"),
            counters.at("svc.persist_written") +
                counters.at("svc.persist_dropped"));
  EXPECT_GE(counters.at("svc.persist_compactions"), 1);
  // Compaction kept only the live set on disk, so the log is far
  // smaller than the kTotal appended records.
  EXPECT_LT(persister.store().total_records(), kTotal);
  persister.shutdown();

  // A second process recovers exactly the last round of every key —
  // compaction under fire lost nothing and resurrected nothing.
  svc::CacheStore reopened(tmp.store_path());
  svc::RecoveryStats stats;
  const auto live = reopened.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(static_cast<int>(live.size()), kProducers * kKeysPerProducer);
  for (const auto& rec : live) {
    int p = 0, k = 0;
    ASSERT_EQ(std::sscanf(rec.key.c_str(), "v1|p%d-k%d", &p, &k), 2)
        << rec.key;
    expect_result_eq(rec.result, make_result(tag_of(p, k, kRounds - 1)));
  }
}

TEST(Persister, EnqueueAfterShutdownCountsAsDropped) {
  TempDir tmp;
  auto store = std::make_unique<svc::CacheStore>(tmp.store_path());
  store->recover();
  svc::Persister persister(std::move(store), {}, nullptr);
  persister.enqueue("v1|key-1", make_result(1.0), 0.1, 100.0);
  persister.shutdown();
  persister.enqueue("v1|key-2", make_result(2.0), 0.1, 100.0);
  EXPECT_EQ(persister.enqueued(), 2);
  EXPECT_EQ(persister.written(), 1);
  EXPECT_EQ(persister.dropped(), 1);  // identity holds even past shutdown
}

}  // namespace
}  // namespace gpawfd
