// Unit tests for the scenario engine: the strict JSON reader, the schema
// validator (typos and range violations must fail loudly), the seeded
// deterministic generator (the reproducibility contract the acceptance
// suite leans on), the SLO algebra, and small end-to-end runner passes
// over both transports.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "scenario/generator.hpp"
#include "scenario/json.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace gpawfd::scenario {
namespace {

// ---- JSON reader ----------------------------------------------------

TEST(scenario_json, ParsesScalarsAndNesting) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1, "b": -2.5e2, "c": "hi\n\"x\"", "d": [true, false, null],
          "e": {"nested": 3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a")->as_int("a"), 1);
  EXPECT_DOUBLE_EQ(v.get("b")->as_number("b"), -250.0);
  EXPECT_EQ(v.get("c")->as_string("c"), "hi\n\"x\"");
  const auto& d = v.get("d")->as_array("d");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(d[0].as_bool("d[0]"));
  EXPECT_FALSE(d[1].as_bool("d[1]"));
  EXPECT_TRUE(d[2].is_null());
  EXPECT_EQ(v.get("e")->get("nested")->as_int("e.nested"), 3);
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(scenario_json, ParsesUnicodeEscapes) {
  const JsonValue v = JsonValue::parse(R"({"s": "Aé€"})");
  EXPECT_EQ(v.get("s")->as_string("s"), "A\xc3\xa9\xe2\x82\xac");
}

TEST(scenario_json, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  \"b\": tru\n}");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(scenario_json, RejectsTrailingCommasCommentsAndGarbage) {
  EXPECT_THROW(JsonValue::parse(R"({"a": 1,})"), Error);
  EXPECT_THROW(JsonValue::parse(R"([1, 2,])"), Error);
  EXPECT_THROW(JsonValue::parse("{} // comment"), Error);
  EXPECT_THROW(JsonValue::parse(R"({"a": 1} x)"), Error);
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse(R"({"a": 01})"), Error);
}

TEST(scenario_json, RejectsDuplicateKeys) {
  EXPECT_THROW(JsonValue::parse(R"({"a": 1, "a": 2})"), Error);
}

TEST(scenario_json, TypedAccessorsNameTheKeyPath) {
  const JsonValue v = JsonValue::parse(R"({"a": "text", "f": 1.5})");
  try {
    v.get("a")->as_number("workload.skew.s");
    FAIL() << "expected a type error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("workload.skew.s"),
              std::string::npos)
        << e.what();
  }
  // as_int rejects fractional values rather than truncating.
  EXPECT_THROW(v.get("f")->as_int("f"), Error);
}

// ---- Schema validation ----------------------------------------------

std::string minimal_scenario(const std::string& extra = "") {
  return R"({"name": "t", "phases": [{"name": "p"}])" + extra + "}";
}

TEST(scenario_schema, MinimalDocumentGetsDefaults) {
  const Scenario s = parse_scenario(minimal_scenario());
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.seed, 1u);
  EXPECT_TRUE(s.service.block_when_full);  // scenario default: throttle
  EXPECT_EQ(s.catalog.grid_edges, std::vector<std::int64_t>{48});
  EXPECT_EQ(s.mix.kind, KeyMixParams::Kind::kUniform);
  EXPECT_EQ(s.transport.mode, TransportParams::Mode::kInProc);
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].mode, PhaseParams::Mode::kClosed);
  EXPECT_FALSE(s.faults.enabled());
}

TEST(scenario_schema, UnknownKeysAreErrors) {
  EXPECT_THROW(parse_scenario(R"({"name": "t", "phasez": []})"), Error);
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t", "service": {"workerz": 2},
                       "phases": [{"name": "p"}]})"),
               Error);
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t",
                       "phases": [{"name": "p", "clientz": 2}]})"),
               Error);
}

TEST(scenario_schema, RequiredFieldsAndRanges) {
  EXPECT_THROW(parse_scenario(R"({"phases": [{"name": "p"}]})"), Error);
  EXPECT_THROW(parse_scenario(R"({"name": "t"})"), Error);
  EXPECT_THROW(parse_scenario(R"({"name": "t", "phases": []})"), Error);
  // Out-of-range: a probability above 1.
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t", "faults": {"throw_probability": 1.5},
                       "phases": [{"name": "p"}]})"),
               Error);
  // Out-of-range: zero queue capacity.
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t", "service": {"queue_capacity": 0},
                       "phases": [{"name": "p"}]})"),
               Error);
}

TEST(scenario_schema, PhaseValidation) {
  // Open loop without a rate.
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t",
                       "phases": [{"name": "p", "mode": "open"}]})"),
               Error);
  // Duplicate phase names.
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t",
                       "phases": [{"name": "p"}, {"name": "p"}]})"),
               Error);
  // restart_service in the first phase.
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t", "service": {"cache_dir": "auto"},
                       "phases": [{"name": "p", "restart_service": true}]})"),
               Error);
  // restart_service without a persistent store.
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t",
                       "phases": [{"name": "a"},
                                  {"name": "b", "restart_service": true}]})"),
               Error);
}

TEST(scenario_schema, SloValidation) {
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t", "phases": [{"name": "p"}],
                       "slo": [{"metric": "ok", "op": "=<", "value": 1}]})"),
               Error);
  EXPECT_THROW(parse_scenario(
                   R"({"name": "t", "phases": [{"name": "p"}],
                       "slo": [{"metric": "ok", "op": "==", "value": 1,
                                "phase": "nope"}]})"),
               Error);
  const Scenario s = parse_scenario(
      R"({"name": "t", "phases": [{"name": "p"}],
          "slo": [{"metric": "p99_seconds", "op": "<=", "value": 0.5,
                   "phase": "p"}]})");
  ASSERT_EQ(s.slos.size(), 1u);
  EXPECT_EQ(s.slos[0].op, SloParams::Op::kLe);
  EXPECT_EQ(s.slos[0].phase, "p");
}

TEST(scenario_schema, ParsesTheFullVocabulary) {
  const Scenario s = parse_scenario(R"({
    "name": "full", "seed": 9,
    "service": {"workers": 2, "queue_capacity": 8, "cache_capacity": 16,
                "block_when_full": false, "max_attempts": 3,
                "backoff_ms": 0.5, "timeout_ms": 100, "cache_dir": "auto",
                "cache_ttl_seconds": 60, "batch_max": 4,
                "batch_linger_us": 50},
    "faults": {"seed": 3, "throw_probability": 0.25, "fail_attempts": 2},
    "workload": {
      "jobs": {"grid_edges": [16, 24], "radii": [1, 2], "cores": [64],
               "ngrids": 8, "distinct": 3},
      "skew": {"kind": "zipf", "s": 1.1}},
    "transport": {"mode": "tcp", "pipeline_window": 8},
    "phases": [
      {"name": "fill", "mode": "closed", "clients": 2, "requests": 10},
      {"name": "peak", "mode": "open", "rate_hz": 100, "requests": 20,
       "process": "uniform", "interactive_fraction": 0.5,
       "restart_service": true}]})");
  EXPECT_FALSE(s.service.block_when_full);
  EXPECT_EQ(s.service.max_attempts, 3);
  EXPECT_EQ(s.service.cache_dir, "auto");
  EXPECT_EQ(s.faults.fail_attempts, 2);
  EXPECT_TRUE(s.faults.enabled());
  EXPECT_EQ(s.catalog.distinct, 3);
  EXPECT_EQ(s.mix.kind, KeyMixParams::Kind::kZipf);
  EXPECT_EQ(s.transport.mode, TransportParams::Mode::kTcp);
  EXPECT_EQ(s.transport.pipeline_window, 8);
  ASSERT_EQ(s.phases.size(), 2u);
  EXPECT_EQ(s.phases[1].process, PhaseParams::Process::kUniform);
  EXPECT_TRUE(s.phases[1].restart_service);
  const svc::ServiceConfig cfg = s.service.to_service_config();
  EXPECT_EQ(cfg.retry.max_attempts, 3);
  EXPECT_DOUBLE_EQ(cfg.retry.attempt_timeout_seconds, 0.1);
  EXPECT_EQ(cfg.batch_max, 4u);
}

// ---- Generator determinism ------------------------------------------

Scenario small_scenario() {
  return parse_scenario(R"({
    "name": "gen", "seed": 77,
    "workload": {
      "jobs": {"grid_edges": [16, 24], "radii": [1, 2], "cores": [64, 128],
               "ngrids": 8},
      "skew": {"kind": "zipf", "s": 1.0}},
    "faults": {"seed": 5, "throw_probability": 0.4, "fail_attempts": 1},
    "phases": [
      {"name": "closed", "clients": 3, "requests": 40,
       "interactive_fraction": 0.3},
      {"name": "open", "mode": "open", "rate_hz": 1000, "requests": 40}]})");
}

TEST(scenario_generator, CatalogIsTheCrossProduct) {
  const Scenario s = small_scenario();
  Generator g(s);
  ASSERT_EQ(g.catalog().size(), 8u);  // 2 edges x 2 radii x 2 core counts
  // Nesting order: edges outermost, cores innermost.
  EXPECT_EQ(g.catalog()[0].job.grid_shape.x, 16);
  EXPECT_EQ(g.catalog()[0].job.ghost, 1);
  EXPECT_EQ(g.catalog()[0].total_cores, 64);
  EXPECT_EQ(g.catalog()[1].total_cores, 128);
  EXPECT_EQ(g.catalog()[2].job.ghost, 2);
  EXPECT_EQ(g.catalog()[4].job.grid_shape.x, 24);

  Scenario truncated = s;
  truncated.catalog.distinct = 3;
  EXPECT_EQ(Generator(truncated).catalog().size(), 3u);
}

TEST(scenario_generator, SameSeedSameJsonIdenticalPlan) {
  const Scenario s = small_scenario();
  Generator a(s), b(s);
  const std::vector<PlannedRequest> pa = a.plan(), pb = b.plan();
  ASSERT_EQ(pa.size(), 80u);
  EXPECT_EQ(pa, pb);  // key order, clients, priorities, arrival times
  EXPECT_EQ(a.fault_points(), b.fault_points());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(scenario_generator, DifferentSeedDifferentTraffic) {
  const Scenario s = small_scenario();
  Scenario other = s;
  other.seed = s.seed + 1;
  Generator a(s), b(other);
  EXPECT_NE(a.plan(), b.plan());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(scenario_generator, FingerprintCoversTheCatalog) {
  const Scenario s = small_scenario();
  Scenario other = s;
  other.catalog.grid_edges = {20, 32};  // same plan indices, other jobs
  EXPECT_NE(Generator(s).fingerprint(), Generator(other).fingerprint());
}

TEST(scenario_generator, ClosedLoopDealsClientsRoundRobin) {
  const Scenario s = small_scenario();
  const std::vector<PlannedRequest> plan = Generator(s).plan();
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(plan[i].phase, 0);
    EXPECT_EQ(plan[i].client, static_cast<int>(i % 3));
    EXPECT_EQ(plan[i].arrival_offset_seconds, 0.0);
  }
}

TEST(scenario_generator, OpenLoopArrivalsAreStrictlyIncreasing) {
  const Scenario s = small_scenario();
  const std::vector<PlannedRequest> plan = Generator(s).plan();
  double last = 0;
  for (std::size_t i = 40; i < 80; ++i) {
    EXPECT_EQ(plan[i].phase, 1);
    EXPECT_GT(plan[i].arrival_offset_seconds, last);
    last = plan[i].arrival_offset_seconds;
  }
  // Poisson arrivals at 1 kHz: 40 requests land in the right decade.
  EXPECT_LT(last, 1.0);
}

TEST(scenario_generator, ZipfMakesJobZeroHottest) {
  Scenario s = small_scenario();
  s.mix.zipf_s = 1.2;
  s.phases[0].requests = 2000;
  s.phases.pop_back();
  std::vector<int> counts(Generator(s).catalog().size(), 0);
  for (const PlannedRequest& r : Generator(s).plan())
    counts[static_cast<std::size_t>(r.job)]++;
  EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), counts[0]);
  // Rank 0 beats the tail decisively at s = 1.2.
  EXPECT_GT(counts[0], 3 * counts.back());
}

TEST(scenario_generator, UniformMixTouchesTheWholeCatalog) {
  Scenario s = small_scenario();
  s.mix.kind = KeyMixParams::Kind::kUniform;
  s.phases[0].requests = 500;
  s.phases.pop_back();
  std::vector<int> counts(Generator(s).catalog().size(), 0);
  for (const PlannedRequest& r : Generator(s).plan())
    counts[static_cast<std::size_t>(r.job)]++;
  for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(scenario_generator, FaultPointsMatchTheRealPartition) {
  const Scenario s = small_scenario();
  const std::vector<svc::FaultKind> points = Generator(s).fault_points();
  ASSERT_EQ(points.size(), 8u);
  // P(throw) = 0.4 over 8 keys: the partition must mark some keys and
  // spare some — and be bit-stable across calls.
  EXPECT_TRUE(std::any_of(points.begin(), points.end(), [](svc::FaultKind k) {
    return k == svc::FaultKind::kThrow;
  }));
  Scenario quiet = s;
  quiet.faults = FaultParams{};
  for (const svc::FaultKind k : Generator(quiet).fault_points())
    EXPECT_EQ(k, svc::FaultKind::kNone);
}

TEST(scenario_generator, InteractiveFractionProducesBothPriorities) {
  const Scenario s = small_scenario();
  const std::vector<PlannedRequest> plan = Generator(s).plan();
  int interactive = 0;
  for (std::size_t i = 0; i < 40; ++i)
    if (plan[i].priority == svc::Priority::kInteractive) ++interactive;
  EXPECT_GT(interactive, 0);
  EXPECT_LT(interactive, 40);
}

// ---- SLO algebra ----------------------------------------------------

TEST(scenario_slo, OperatorTable) {
  using Op = SloParams::Op;
  EXPECT_TRUE(slo_holds(Op::kLe, 1.0, 1.0));
  EXPECT_FALSE(slo_holds(Op::kLt, 1.0, 1.0));
  EXPECT_TRUE(slo_holds(Op::kGe, 2.0, 1.0));
  EXPECT_FALSE(slo_holds(Op::kGt, 1.0, 2.0));
  EXPECT_TRUE(slo_holds(Op::kEq, 3.0, 3.0));
  EXPECT_TRUE(slo_holds(Op::kNe, 3.0, 4.0));
  EXPECT_STREQ(to_string(Op::kLe), "<=");
  EXPECT_STREQ(to_string(Op::kNe), "!=");
}

ScenarioReport fixture_report() {
  ScenarioReport r;
  r.overall.ok = 10;
  r.overall.p99_seconds = 0.25;
  PhaseStats p;
  p.name = "peak";
  p.ok = 4;
  p.service_delta["svc.executed"] = 2;
  r.phases.push_back(p);
  r.service_counters["svc.gave_up"] = 0;
  r.service_counters["svc.cache_hits"] = 6;
  r.service_counters["svc.dedup_joined"] = 0;
  r.service_counters["svc.accepted"] = 4;
  r.service_counters["svc.batched_jobs"] = 4;
  return r;
}

TEST(scenario_slo, MetricResolutionAndScoping) {
  const ScenarioReport r = fixture_report();
  EXPECT_DOUBLE_EQ(r.metric("ok", ""), 10);          // run = overall stats
  EXPECT_DOUBLE_EQ(r.metric("ok", "peak"), 4);       // phase-scoped stats
  EXPECT_DOUBLE_EQ(r.metric("gave_up", ""), 0);      // bare counter name
  EXPECT_DOUBLE_EQ(r.metric("svc.gave_up", ""), 0);  // prefixed too
  EXPECT_DOUBLE_EQ(r.metric("executed", "peak"), 2);  // phase counter delta
  EXPECT_DOUBLE_EQ(r.metric("hit_ratio", ""), 0.6);
  EXPECT_DOUBLE_EQ(r.metric("batched_jobs_reconcile", ""), 0);
  EXPECT_THROW(r.metric("no_such_metric", ""), Error);
  EXPECT_THROW(r.metric("ok", "no_such_phase"), Error);
}

TEST(scenario_slo, EvaluateGradesAndSurvivesUnknownMetrics) {
  std::vector<SloParams> slos(3);
  slos[0].metric = "ok";
  slos[0].op = SloParams::Op::kEq;
  slos[0].value = 10;
  slos[1].metric = "p99_seconds";
  slos[1].op = SloParams::Op::kLe;
  slos[1].value = 0.1;  // observed 0.25: must fail
  slos[2].metric = "bogus";
  slos[2].op = SloParams::Op::kEq;
  slos[2].value = 0;
  const auto results = evaluate_slos(slos, fixture_report());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].passed);
  EXPECT_FALSE(results[1].passed);
  EXPECT_FALSE(results[2].passed);  // unevaluable = failed, not skipped
  EXPECT_FALSE(results[2].detail.empty());
}

// ---- End-to-end runner (small, fast) --------------------------------

const char* kTinyRun = R"({
  "name": "tiny", "seed": 3,
  "service": {"workers": 2, "queue_capacity": 32},
  "workload": {"jobs": {"grid_edges": [12, 16], "radii": [1], "cores": [64],
                        "ngrids": 8}},
  "phases": [{"name": "only", "clients": 2, "requests": 24}],
  "slo": [{"metric": "ok", "op": "==", "value": 24},
          {"metric": "failed", "op": "==", "value": 0},
          {"metric": "gave_up", "op": "==", "value": 0}]})";

TEST(scenario_runner_inproc, TinyClosedLoopMeetsItsSlos) {
  const Scenario s = parse_scenario(kTinyRun);
  ScenarioReport report = Runner(s).run();
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].issued, 24);
  EXPECT_EQ(report.overall.ok, 24);
  EXPECT_EQ(report.plan_fingerprint, Generator(s).fingerprint());
  EXPECT_EQ(report.service_counters.at("svc.submitted"), 24);
  // The report renders to JSON that the reader round-trips.
  const JsonValue parsed = JsonValue::parse(report.to_json());
  EXPECT_EQ(parsed.get("scenario")->as_string("scenario"), "tiny");
  EXPECT_TRUE(parsed.get("passed")->as_bool("passed"));
  EXPECT_EQ(parsed.get("phases")->as_array("phases").size(), 1u);
}

TEST(scenario_runner_inproc, FailingSloIsReportedNotThrown) {
  Scenario s = parse_scenario(kTinyRun);
  s.slos[0].value = 9999;  // ok == 9999 cannot hold
  ScenarioReport report = Runner(s).run();
  EXPECT_FALSE(report.passed);
  EXPECT_FALSE(report.assertions[0].passed);
  EXPECT_TRUE(report.assertions[1].passed);
}

TEST(scenario_runner_tcp, TinyRunOverLoopback) {
  Scenario s = parse_scenario(kTinyRun);
  s.transport.mode = TransportParams::Mode::kTcp;
  s.transport.pipeline_window = 4;
  ScenarioReport report = Runner(s).run();
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  EXPECT_EQ(report.overall.ok, 24);
}

TEST(scenario_runner_tcp, OpenLoopPacedDispatch) {
  Scenario s = parse_scenario(R"({
    "name": "paced", "seed": 5,
    "service": {"workers": 2, "queue_capacity": 64},
    "workload": {"jobs": {"grid_edges": [12], "radii": [1], "cores": [64],
                          "ngrids": 8}},
    "transport": {"mode": "tcp", "pipeline_window": 8},
    "phases": [{"name": "open", "mode": "open", "rate_hz": 2000,
                "requests": 40, "interactive_fraction": 0.2}],
    "slo": [{"metric": "ok", "op": "==", "value": 40},
            {"metric": "failed", "op": "==", "value": 0}]})");
  ScenarioReport report = Runner(s).run();
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  // ~40 arrivals at 2 kHz: the phase wall clock must reflect the pacing.
  EXPECT_GE(report.phases[0].wall_seconds, 0.005);
}

}  // namespace
}  // namespace gpawfd::scenario
