// Torture tests for the telemetry table + sink (src/telemetry): crash-
// safe recovery truncated at every byte offset of a multi-row table,
// random bit flips caught by the CRC without losing earlier rows, a
// committed golden binary fixture pinning the on-disk row format
// bit-for-bit (a format change MUST bump kTableVersion and regenerate
// tests/data/telemetry_v1.gptt — scripts/trajectory_report carries an
// independent python encoder the selfcheck subcommand verifies against
// the same bytes), run-retention compaction, the concurrent writer +
// read-only-reader reopen dance, and the sink's drop-oldest
// backpressure made deterministic with a gated write hook.
#include <gtest/gtest.h>

#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/result_codec.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/table.hpp"

namespace gpawfd {
namespace {

using telemetry::SinkConfig;
using telemetry::TableRecoveryStats;
using telemetry::TelemetryRow;
using telemetry::TelemetrySink;
using telemetry::TelemetryTable;

// ---- fixtures and helpers ---------------------------------------------

/// A unique scratch directory per test, removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "gpawfd_telemetry_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    GPAWFD_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string table_path() const { return TelemetryTable::path_in(path_); }
  const std::string& dir() const { return path_; }

 private:
  std::string path_;
};

TelemetryRow make_row(const std::string& run, const std::string& source,
                      const std::string& key, double value,
                      const std::string& tags = {}, double time = 0) {
  TelemetryRow r;
  r.run_id = run;
  r.source = source;
  r.key = key;
  r.tags = tags;
  r.value = value;
  r.time = time;
  return r;
}

void expect_row_eq(const TelemetryRow& got, const TelemetryRow& want,
                   std::uint64_t sequence) {
  EXPECT_EQ(got.run_id, want.run_id);
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.key, want.key);
  EXPECT_EQ(got.tags, want.tags);
  EXPECT_EQ(got.value, want.value);
  EXPECT_EQ(got.time, want.time);
  EXPECT_EQ(got.sequence, sequence);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void append_to_file(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The four-row sample every torture loop uses: two runs, mixed sources
/// and tags (including the empty-tags case the length fields must get
/// right). Returns the row-boundary offsets the appends reported.
const std::vector<TelemetryRow>& sample_rows() {
  static const std::vector<TelemetryRow> rows = {
      make_row("run-a", "bench.svc_service", "throughput_rps", 81920.5,
               "report", 100.5),
      make_row("run-a", "svc", "svc.jobs_executed", 48.0, "delta", 101.5),
      make_row("run-b", "scenario.smoke", "phase.steady.p99_s", 0.032768,
               "phase", 102.5),
      make_row("run-b", "svc", "hit_ratio", 0.8125, "", 103.5),
  };
  return rows;
}

std::vector<std::uint64_t> write_sample_table(const std::string& path) {
  TelemetryTable table(path);
  table.recover();
  std::vector<std::uint64_t> ends;
  for (const TelemetryRow& r : sample_rows()) ends.push_back(table.append_row(r));
  table.sync();
  return ends;
}

/// Hand-rolled row encoder (independent of TelemetryTable's private one)
/// for crafting byte-valid rows with hostile field values — a future
/// format version, a replayed sequence, a lying length — that the
/// table's own appenders would refuse to produce. CRC is correct by
/// construction, so recovery must reject these on the *semantic* check,
/// not the checksum.
std::vector<std::uint8_t> craft_row(std::uint8_t version, std::uint8_t type,
                                    std::uint64_t seq, double time,
                                    double value, const std::string& run,
                                    const std::string& source,
                                    const std::string& key,
                                    const std::string& tags,
                                    int lie_tags_len = -1) {
  std::vector<std::uint8_t> out;
  core::append_u32(out, telemetry::kTableMagic);
  out.push_back(version);
  out.push_back(type);
  out.push_back(0);
  out.push_back(0);
  core::append_u64(out, seq);
  core::append_double(out, time);
  core::append_double(out, value);
  auto len16 = [&](std::size_t n) {
    out.push_back(static_cast<std::uint8_t>(n & 0xff));
    out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
  };
  len16(run.size());
  len16(source.size());
  len16(key.size());
  len16(lie_tags_len >= 0 ? static_cast<std::size_t>(lie_tags_len)
                          : tags.size());
  std::uint32_t crc = crc32(out.data(), out.size());
  crc = crc32(run.data(), run.size(), crc);
  crc = crc32(source.data(), source.size(), crc);
  crc = crc32(key.data(), key.size(), crc);
  crc = crc32(tags.data(), tags.size(), crc);
  core::append_u32(out, crc);
  out.insert(out.end(), run.begin(), run.end());
  out.insert(out.end(), source.begin(), source.end());
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), tags.begin(), tags.end());
  return out;
}

// ---- basic round trip ---------------------------------------------------

TEST(TelemetryTable, RoundTripRecoversEveryRowInOrder) {
  TempDir tmp;
  write_sample_table(tmp.table_path());

  TelemetryTable reopened(tmp.table_path());
  TableRecoveryStats stats;
  const auto rows = reopened.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, 4);
  EXPECT_EQ(stats.runs, 2);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    expect_row_eq(rows[i], sample_rows()[i], i + 1);

  EXPECT_EQ(reopened.total_rows(), 4);
  EXPECT_EQ(reopened.next_sequence(), 5u);
  ASSERT_EQ(reopened.runs().size(), 2u);
  EXPECT_EQ(reopened.runs()[0], "run-a");  // first-appearance order
  EXPECT_EQ(reopened.runs()[1], "run-b");
}

TEST(TelemetryTable, AppendsContinueAfterReopen) {
  TempDir tmp;
  write_sample_table(tmp.table_path());
  {
    TelemetryTable table(tmp.table_path());
    table.recover();
    table.append_row(make_row("run-c", "svc", "queue_depth", 3.0));
    table.sync();
  }
  TelemetryTable again(tmp.table_path());
  const auto rows = again.recover();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[4].run_id, "run-c");
  EXPECT_EQ(rows[4].sequence, 5u);  // sequences keep climbing across opens
}

TEST(TelemetryTable, AppendBeforeRecoverIsRefused) {
  TempDir tmp;
  TelemetryTable table(tmp.table_path());
  EXPECT_THROW(table.append_row(make_row("r", "s", "k", 1.0)), Error);
}

TEST(TelemetryTable, EmptyRequiredFieldsAreRefused) {
  TempDir tmp;
  TelemetryTable table(tmp.table_path());
  table.recover();
  EXPECT_THROW(table.append_row(make_row("", "s", "k", 1.0)), Error);
  EXPECT_THROW(table.append_row(make_row("r", "", "k", 1.0)), Error);
  EXPECT_THROW(table.append_row(make_row("r", "s", "", 1.0)), Error);
  // Empty tags are legal — the only optional string.
  table.append_row(make_row("r", "s", "k", 1.0, ""));
  EXPECT_EQ(table.total_rows(), 1);
}

TEST(TelemetryTable, OversizedFieldIsRefused) {
  TempDir tmp;
  TelemetryTable table(tmp.table_path());
  table.recover();
  const std::string huge(telemetry::kMaxFieldBytes + 1, 'x');
  EXPECT_THROW(table.append_row(make_row("r", "s", huge, 1.0)), Error);
  EXPECT_EQ(table.total_rows(), 0);
}

TEST(TelemetryTable, BatchAppendIsByteIdenticalToSingleAppends) {
  TempDir tmp;
  const std::string one = tmp.dir() + "/one.gptt";
  const std::string batch = tmp.dir() + "/batch.gptt";
  {
    TelemetryTable t(one);
    t.recover();
    for (const TelemetryRow& r : sample_rows()) t.append_row(r);
    t.sync();
  }
  {
    TelemetryTable t(batch);
    t.recover();
    t.append_rows(sample_rows());
    t.sync();
  }
  EXPECT_TRUE(read_file(one) == read_file(batch));
}

// ---- the every-byte-offset truncation torture ---------------------------

// Crash-safety acceptance test: for EVERY prefix length of a multi-row
// table — every possible torn-write crash point — reopening must
// neither crash nor accept a corrupt row, and must recover exactly the
// rows whose bytes fully survived.
TEST(TelemetryTorture, TruncationAtEveryByteOffsetRecoversThePrefix) {
  TempDir tmp;
  const std::string sample = tmp.dir() + "/sample.gptt";
  const std::vector<std::uint64_t> ends = write_sample_table(sample);
  const std::vector<std::uint8_t> full = read_file(sample);
  ASSERT_EQ(full.size(), ends.back());

  const std::string victim = tmp.dir() + "/victim.gptt";
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_file(victim, std::vector<std::uint8_t>(full.begin(),
                                                 full.begin() +
                                                     static_cast<long>(len)));
    std::int64_t expect_rows = 0;
    std::uint64_t valid_end = 0;
    for (const std::uint64_t end : ends) {
      if (end <= len) {
        ++expect_rows;
        valid_end = end;
      }
    }

    TelemetryTable table(victim);
    TableRecoveryStats stats;
    const auto rows = table.recover(&stats);
    ASSERT_EQ(stats.rows_scanned, expect_rows) << "prefix " << len;
    ASSERT_EQ(stats.truncated_bytes,
              static_cast<std::int64_t>(len - valid_end))
        << "prefix " << len;
    ASSERT_EQ(stats.truncated, len != valid_end) << "prefix " << len;
    // repair=true physically truncated the file to the row boundary.
    ASSERT_EQ(std::filesystem::file_size(victim), valid_end)
        << "prefix " << len;

    // The undamaged prefix is fully recovered, with its exact contents.
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(expect_rows));
    for (std::size_t i = 0; i < rows.size(); ++i)
      expect_row_eq(rows[i], sample_rows()[i], i + 1);

    // A second recovery of the repaired file is clean and identical.
    TelemetryTable again(victim);
    TableRecoveryStats stats2;
    const auto rows2 = again.recover(&stats2);
    ASSERT_FALSE(stats2.truncated) << "prefix " << len;
    ASSERT_EQ(rows2.size(), rows.size()) << "prefix " << len;
  }
}

// ---- random bit flips ---------------------------------------------------

// Any single flipped bit invalidates exactly the row it lands in: the
// CRC rejects that row (and, because nothing past a bad row can be
// trusted, the scan stops there) while every earlier row survives with
// its exact contents. Seeds are fixed: failures replay.
TEST(TelemetryTorture, RandomBitFlipsNeverLoseEarlierRows) {
  TempDir tmp;
  const std::string sample = tmp.dir() + "/sample.gptt";
  const std::vector<std::uint64_t> ends = write_sample_table(sample);
  const std::vector<std::uint8_t> full = read_file(sample);

  const std::string victim = tmp.dir() + "/victim.gptt";
  for (std::uint32_t seed = 1; seed <= 64; ++seed) {
    std::mt19937 rng(seed);
    const std::size_t pos = std::uniform_int_distribution<std::size_t>(
        0, full.size() - 1)(rng);
    const int bit = std::uniform_int_distribution<int>(0, 7)(rng);

    std::vector<std::uint8_t> damaged = full;
    damaged[pos] ^= static_cast<std::uint8_t>(1u << bit);
    write_file(victim, damaged);

    std::int64_t damaged_row = 0;
    while (pos >= ends[static_cast<std::size_t>(damaged_row)]) ++damaged_row;

    TelemetryTable table(victim);
    TableRecoveryStats stats;
    const auto rows = table.recover(&stats);
    ASSERT_EQ(stats.rows_scanned, damaged_row)
        << "seed " << seed << " pos " << pos << " bit " << bit;
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(damaged_row));
    for (std::size_t i = 0; i < rows.size(); ++i)
      expect_row_eq(rows[i], sample_rows()[i], i + 1);
  }
}

// ---- hostile-but-checksummed rows ---------------------------------------

TEST(TelemetryTable, FutureFormatVersionIsRejectedNotMisread) {
  TempDir tmp;
  write_sample_table(tmp.table_path());
  const auto alien =
      craft_row(telemetry::kTableVersion + 1, 1, /*seq=*/5, 200.0, 9.0,
                "run-z", "svc", "alien", "");
  append_to_file(tmp.table_path(), alien);

  TelemetryTable table(tmp.table_path());
  TableRecoveryStats stats;
  const auto rows = table.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, 4);
  EXPECT_TRUE(stats.truncated);
  for (const TelemetryRow& r : rows) EXPECT_NE(r.run_id, "run-z");
}

TEST(TelemetryTable, NonMonotonicSequenceIsRejected) {
  TempDir tmp;
  write_sample_table(tmp.table_path());  // sequences 1..4
  const auto replayed = craft_row(telemetry::kTableVersion, 1, /*seq=*/2,
                                  200.0, 9.0, "run-z", "svc", "replay", "");
  append_to_file(tmp.table_path(), replayed);

  TelemetryTable table(tmp.table_path());
  TableRecoveryStats stats;
  table.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, 4);
  EXPECT_TRUE(stats.truncated);
}

TEST(TelemetryTable, EmptyRunIdOnDiskIsRejected) {
  TempDir tmp;
  write_sample_table(tmp.table_path());
  // run_id_len == 0 with a valid CRC: appenders can't produce it, the
  // scanner must still refuse it (required fields are non-empty).
  const auto hostile = craft_row(telemetry::kTableVersion, 1, /*seq=*/5,
                                 200.0, 9.0, "", "svc", "k", "");
  append_to_file(tmp.table_path(), hostile);

  TelemetryTable table(tmp.table_path());
  TableRecoveryStats stats;
  table.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, 4);
  EXPECT_TRUE(stats.truncated);
}

TEST(TelemetryTable, OversizedLengthFieldIsRejected) {
  TempDir tmp;
  write_sample_table(tmp.table_path());
  // tags_len past the sanity cap, CRC valid over the real (short) tags:
  // the scanner must refuse the length before trusting it — a lying
  // length must never swallow the rest of the table as one "row".
  const auto hostile = craft_row(
      telemetry::kTableVersion, 1, /*seq=*/5, 200.0, 9.0, "run-z", "svc",
      "k", "t", /*lie_tags_len=*/static_cast<int>(telemetry::kMaxFieldBytes)
                + 1);
  append_to_file(tmp.table_path(), hostile);

  TelemetryTable table(tmp.table_path());
  TableRecoveryStats stats;
  table.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, 4);
  EXPECT_TRUE(stats.truncated);
}

// ---- golden file: the on-disk format, pinned ---------------------------

// tests/data/telemetry_v1.gptt is a committed binary fixture produced by
// this exact row schedule (times fixed, sequences 1..4). If either
// golden test fails, the on-disk format changed: bump
// telemetry::kTableVersion, regenerate the fixture, and update the
// python decoder in scripts/trajectory_report to match — old tables must
// be cleanly rejected, never silently misread.
constexpr const char* kGoldenPath =
    GPAWFD_TEST_DATA_DIR "/telemetry_v1.gptt";

const std::vector<TelemetryRow>& golden_rows() {
  static const std::vector<TelemetryRow> rows = {
      make_row("golden-run-a", "bench.svc_service", "throughput_rps",
               81920.5, "report", 1700000000.5),
      make_row("golden-run-a", "svc", "svc.jobs_executed", 48.0, "delta",
               1700000001.5),
      make_row("golden-run-b", "scenario.smoke", "phase.steady.p99_s",
               0.032768, "phase", 1700000002.5),
      make_row("golden-run-b", "svc", "hit_ratio", 0.8125, "",
               1700000003.5),
  };
  return rows;
}

TEST(TelemetryGolden, FixtureDecodesBitExactly) {
  TelemetryTable table(kGoldenPath);
  TableRecoveryStats stats;
  // repair=false: a golden fixture must never be modified by the test.
  const auto rows = table.recover(&stats, /*repair=*/false);
  EXPECT_EQ(stats.rows_scanned, 4);
  EXPECT_EQ(stats.runs, 2);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    expect_row_eq(rows[i], golden_rows()[i], i + 1);
}

TEST(TelemetryGolden, EncoderReproducesTheFixtureByteForByte) {
  TempDir tmp;
  {
    TelemetryTable table(tmp.table_path());
    table.recover();
    for (const TelemetryRow& r : golden_rows()) table.append_row(r);
    table.sync();
  }
  const auto ours = read_file(tmp.table_path());
  const auto golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing fixture " << kGoldenPath;
  ASSERT_EQ(ours.size(), golden.size());
  EXPECT_TRUE(ours == golden)
      << "on-disk format drifted from the committed fixture — bump "
         "telemetry::kTableVersion, regenerate tests/data/telemetry_v1."
         "gptt, and update scripts/trajectory_report";
}

// ---- retention compaction -----------------------------------------------

TEST(TelemetryTable, CompactionKeepsNewestRunsAndPreservesSequences) {
  TempDir tmp;
  TelemetryTable table(tmp.table_path());
  table.recover();
  // 4 runs x 6 rows. Retention keeps the newest 2 runs.
  for (int run = 0; run < 4; ++run)
    for (int i = 0; i < 6; ++i)
      table.append_row(make_row("run-" + std::to_string(run), "svc",
                                "k" + std::to_string(i), run * 10.0 + i));
  table.sync();
  const std::uint64_t before = table.size_bytes();
  const std::uint64_t seq_before = table.next_sequence();

  EXPECT_FALSE(table.maybe_compact(2, /*min_rows=*/1000));  // below min: no-op
  EXPECT_FALSE(table.maybe_compact(4, /*min_rows=*/1));     // 4 runs fit: no-op
  ASSERT_TRUE(table.maybe_compact(2, /*min_rows=*/1));
  EXPECT_EQ(table.compactions(), 1);
  EXPECT_EQ(table.total_rows(), 12);
  EXPECT_LT(table.size_bytes(), before);
  EXPECT_EQ(table.next_sequence(), seq_before);  // sequences never reused
  ASSERT_EQ(table.runs().size(), 2u);
  EXPECT_EQ(table.runs()[0], "run-2");
  EXPECT_EQ(table.runs()[1], "run-3");

  // Appends continue cleanly and a fresh process sees the compacted +
  // appended state, sequences/times intact.
  table.append_row(make_row("run-4", "svc", "k0", 40.0));
  table.sync();
  TelemetryTable reopened(tmp.table_path());
  TableRecoveryStats stats;
  const auto rows = reopened.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(rows.size(), 13u);
  EXPECT_EQ(rows[0].run_id, "run-2");
  EXPECT_EQ(rows[0].sequence, 13u);  // original sequence from before
  EXPECT_EQ(rows.back().run_id, "run-4");
  EXPECT_EQ(rows.back().sequence, seq_before);
}

// ---- concurrent writer + read-only reader -------------------------------

// One thread appends; the main thread repeatedly reopens the file with
// repair=false scans (trajectory_report peeking at a live table).
// Readers may observe a torn tail mid-append — that must parse as a
// clean prefix, never as an error, and the observed row count can only
// grow. Run under TSAN in the tier-1 tsan lane.
TEST(TelemetryTorture, ConcurrentWriterAndReaderReopen) {
  TempDir tmp;
  constexpr int kRows = 200;
  {
    TelemetryTable writer(tmp.table_path());
    writer.recover();

    std::thread producer([&writer] {
      for (int i = 0; i < kRows; ++i) {
        writer.append_row(make_row("run", "svc", "k" + std::to_string(i),
                                   static_cast<double>(i)));
        if (i % 16 == 0) writer.sync();
      }
      writer.sync();
    });

    std::int64_t last_seen = 0;
    while (last_seen < kRows) {
      TelemetryTable reader(tmp.table_path());
      TableRecoveryStats stats;
      const auto rows = reader.recover(&stats, /*repair=*/false);
      ASSERT_GE(stats.rows_scanned, last_seen);
      ASSERT_LE(stats.rows_scanned, kRows);
      ASSERT_EQ(rows.size(), static_cast<std::size_t>(stats.rows_scanned));
      last_seen = stats.rows_scanned;
    }
    producer.join();
  }
  TelemetryTable final_reader(tmp.table_path());
  TableRecoveryStats stats;
  final_reader.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, kRows);
  EXPECT_FALSE(stats.truncated);
}

// ---- the async sink -----------------------------------------------------

TEST(TelemetrySink, WritesBehindFlushesAndReconciles) {
  TempDir tmp;
  TelemetrySink sink(tmp.table_path(), "run-1");
  constexpr int kItems = 64;
  for (int i = 0; i < kItems; ++i)
    sink.record("svc", "k" + std::to_string(i), static_cast<double>(i));
  sink.flush();

  EXPECT_EQ(sink.recorded(), kItems);
  EXPECT_EQ(sink.written(), kItems);
  EXPECT_EQ(sink.dropped(), 0);
  EXPECT_GE(sink.flushes(), 1);
  sink.shutdown();

  // Everything is durable with the sink's run_id and a sane wall-clock
  // stamp: a second process recovers all of it.
  TelemetryTable reopened(tmp.table_path());
  TableRecoveryStats stats;
  const auto rows = reopened.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(kItems));
  for (const TelemetryRow& r : rows) {
    EXPECT_EQ(r.run_id, "run-1");
    EXPECT_GT(r.time, 1.5e9);  // unix seconds, not a monotonic clock
  }
}

TEST(TelemetrySink, DropOldestBackpressureIsCountedAndDeterministic) {
  TempDir tmp;
  // Gate the very first write so the queue (capacity 2) fills behind it
  // deterministically: record 1 (thread takes it and blocks in the
  // hook), then 2, 3, 4 -> the queue holds [2,3], 4 bumps 2 out.
  std::mutex mu;
  std::condition_variable cv;
  bool first_entered = false, release = false;
  SinkConfig cfg;
  cfg.queue_capacity = 2;
  cfg.on_write = [&](const TelemetryRow&) {
    std::unique_lock lk(mu);
    if (!first_entered) {
      first_entered = true;
      cv.notify_all();
      cv.wait(lk, [&] { return release; });
    }
  };

  TelemetrySink sink(tmp.table_path(), "run-1", cfg);
  EXPECT_TRUE(sink.record("svc", "k1", 1.0));
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return first_entered; });
  }
  EXPECT_TRUE(sink.record("svc", "k2", 2.0));
  EXPECT_TRUE(sink.record("svc", "k3", 3.0));
  EXPECT_FALSE(sink.record("svc", "k4", 4.0));  // bumped k2 out
  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  sink.flush();

  EXPECT_EQ(sink.recorded(), 4);
  EXPECT_EQ(sink.written(), 3);
  EXPECT_EQ(sink.dropped(), 1);
  sink.shutdown();

  TelemetryTable reopened(tmp.table_path());
  const auto rows = reopened.recover();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "k1");
  EXPECT_EQ(rows[1].key, "k3");  // k2 was the dropped one
  EXPECT_EQ(rows[2].key, "k4");
}

TEST(TelemetrySink, RecordAfterShutdownCountsAsDropped) {
  TempDir tmp;
  TelemetrySink sink(tmp.table_path(), "run-1");
  EXPECT_TRUE(sink.record("svc", "k1", 1.0));
  sink.shutdown();
  EXPECT_FALSE(sink.record("svc", "k2", 2.0));
  EXPECT_EQ(sink.recorded(), 2);
  EXPECT_EQ(sink.written(), 1);
  EXPECT_EQ(sink.dropped(), 1);  // identity holds even past shutdown
}

TEST(TelemetrySink, OpensOnATornTableAndAppendsAfterTheValidPrefix) {
  TempDir tmp;
  write_sample_table(tmp.table_path());
  // Simulate a SIGKILL mid-append: half a row of garbage at the tail.
  append_to_file(tmp.table_path(),
                 std::vector<std::uint8_t>(telemetry::kRowHeaderBytes / 2,
                                           0xAB));
  {
    // Construction recovers (repair=true): the torn tail is cut, the
    // four intact rows survive, and new rows land after them.
    TelemetrySink sink(tmp.table_path(), "run-new");
    sink.record("svc", "post_crash", 1.0);
    sink.flush();
  }
  TelemetryTable reopened(tmp.table_path());
  TableRecoveryStats stats;
  const auto rows = reopened.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(rows.size(), 5u);
  expect_row_eq(rows[3], sample_rows()[3], 4);
  EXPECT_EQ(rows[4].run_id, "run-new");
  EXPECT_EQ(rows[4].key, "post_crash");
  EXPECT_EQ(rows[4].sequence, 5u);
}

TEST(TelemetrySink, RetentionCompactionRunsOnTheWriterThread) {
  TempDir tmp;
  {
    // Three older runs already on disk.
    TelemetryTable table(tmp.table_path());
    table.recover();
    for (int run = 0; run < 3; ++run)
      for (int i = 0; i < 4; ++i)
        table.append_row(make_row("old-" + std::to_string(run), "svc", "k",
                                  static_cast<double>(i)));
    table.sync();
  }
  SinkConfig cfg;
  cfg.compact_max_runs = 2;
  cfg.compact_min_rows = 1;
  TelemetrySink sink(tmp.table_path(), "run-new", cfg);
  sink.record("svc", "k", 99.0);
  sink.flush();
  EXPECT_GE(sink.compactions(), 1);
  sink.shutdown();

  TelemetryTable reopened(tmp.table_path());
  TableRecoveryStats stats;
  const auto rows = reopened.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.runs, 2);  // newest two: old-2 + run-new
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].run_id, "old-2");
  EXPECT_EQ(rows.back().run_id, "run-new");
}

// Concurrent producers hammer one sink while the main thread repeatedly
// reopens the table read-only (repair=false) — record() vs drain vs
// external reader is exactly the cross-thread surface the TSAN lane
// race-checks. The reconcile identity must hold at quiescence.
TEST(TelemetrySink, ConcurrentProducersReconcileUnderReaders) {
  TempDir tmp;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  {
    TelemetrySink sink(tmp.table_path(), "run-1");
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&sink, p] {
        for (int i = 0; i < kPerProducer; ++i)
          sink.record("svc.p" + std::to_string(p), "k", p * 1000.0 + i);
      });
    }
    for (int peek = 0; peek < 20; ++peek) {
      TelemetryTable reader(tmp.table_path());
      TableRecoveryStats stats;
      reader.recover(&stats, /*repair=*/false);
      ASSERT_LE(stats.rows_scanned, kProducers * kPerProducer);
    }
    for (auto& t : producers) t.join();
    sink.flush();
    EXPECT_EQ(sink.recorded(), kProducers * kPerProducer);
    EXPECT_EQ(sink.recorded(), sink.written() + sink.dropped());
    EXPECT_EQ(sink.dropped(), 0);  // capacity 1024 >= 800 in flight
  }
  TelemetryTable final_reader(tmp.table_path());
  TableRecoveryStats stats;
  final_reader.recover(&stats);
  EXPECT_EQ(stats.rows_scanned, kProducers * kPerProducer);
  EXPECT_FALSE(stats.truncated);
}

}  // namespace
}  // namespace gpawfd
