#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "mp/cart.hpp"

namespace gpawfd::mp {
namespace {

TEST(CartTopology, IdentityRoundTrip) {
  const auto t = CartTopology::identity({2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  for (int r = 0; r < t.size(); ++r)
    EXPECT_EQ(t.rank_at(t.coords_of_rank(r)), r);
  EXPECT_EQ(t.coords_of_rank(0), (Vec3{0, 0, 0}));
  EXPECT_EQ(t.rank_at({1, 2, 3}), 23);
}

TEST(CartTopology, PeriodicShiftWraps) {
  const auto t = CartTopology::identity({2, 3, 4});
  const int r0 = t.rank_at({0, 0, 0});
  EXPECT_EQ(t.shifted_rank(r0, 0, -1), t.rank_at({1, 0, 0}));
  EXPECT_EQ(t.shifted_rank(r0, 1, -1), t.rank_at({0, 2, 0}));
  EXPECT_EQ(t.shifted_rank(r0, 2, 5), t.rank_at({0, 0, 1}));
  EXPECT_EQ(t.shifted_rank(r0, 2, -8), t.rank_at({0, 0, 0}));
}

TEST(CartTopology, NonPeriodicEdgeIsProcNull) {
  const auto t =
      CartTopology::identity({2, 2, 2}, {false, true, false});
  const int r0 = t.rank_at({0, 0, 0});
  EXPECT_EQ(t.shifted_rank(r0, 0, -1), -1);
  EXPECT_EQ(t.shifted_rank(r0, 1, -1), t.rank_at({0, 1, 0}));
  EXPECT_EQ(t.shifted_rank(r0, 2, 2), -1);
  EXPECT_EQ(t.shifted_rank(r0, 0, 1), t.rank_at({1, 0, 0}));
}

TEST(CartTopology, CustomMappingPermutes) {
  // Reverse mapping: cart index i -> rank (n-1-i).
  std::vector<int> map(8);
  for (int i = 0; i < 8; ++i) map[static_cast<std::size_t>(i)] = 7 - i;
  const auto t = CartTopology::with_mapping({2, 2, 2}, {true, true, true},
                                            std::move(map));
  EXPECT_EQ(t.rank_at({0, 0, 0}), 7);
  EXPECT_EQ(t.coords_of_rank(7), (Vec3{0, 0, 0}));
  EXPECT_EQ(t.rank_at({1, 1, 1}), 0);
}

TEST(CartTopology, ShiftIsInverseOfNegativeShift) {
  const auto t = CartTopology::identity({3, 4, 5});
  for (int r = 0; r < t.size(); ++r)
    for (int d = 0; d < 3; ++d) {
      const int fwd = t.shifted_rank(r, d, 1);
      EXPECT_EQ(t.shifted_rank(fwd, d, -1), r);
    }
}

TEST(CartTopology, EachRankHasSixNeighborsCoveringTorus) {
  const auto t = CartTopology::identity({2, 2, 2});
  for (int r = 0; r < t.size(); ++r) {
    std::set<int> nbrs;
    for (int d = 0; d < 3; ++d) {
      nbrs.insert(t.shifted_rank(r, d, 1));
      nbrs.insert(t.shifted_rank(r, d, -1));
    }
    // On a 2x2x2 torus, +1 and -1 coincide: exactly 3 distinct neighbours.
    EXPECT_EQ(nbrs.size(), 3u);
    EXPECT_EQ(nbrs.count(r), 0u);
  }
}

TEST(CartTopology, BadMappingsThrow) {
  EXPECT_THROW(CartTopology::with_mapping({2, 2, 2}, {true, true, true},
                                          {0, 1, 2}),
               gpawfd::Error);  // wrong size
  EXPECT_THROW(CartTopology::with_mapping({2, 1, 1}, {true, true, true},
                                          {0, 0}),
               gpawfd::Error);  // not a permutation
  EXPECT_THROW(CartTopology::with_mapping({2, 1, 1}, {true, true, true},
                                          {0, 5}),
               gpawfd::Error);  // out of range
}

}  // namespace
}  // namespace gpawfd::mp
