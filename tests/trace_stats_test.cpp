// Host-side tracing: phase timers, comm counters, and the engine's
// optional wall-clock phase accounting.
#include <gtest/gtest.h>

#include <thread>

#include "core/engine.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"
#include "trace/stats.hpp"

namespace gpawfd {
namespace {

TEST(PhaseTimers, AccumulatesAcrossScopes) {
  trace::PhaseTimers t;
  t.add("compute", 1.5);
  t.add("compute", 0.5);
  t.add("exchange", 0.25);
  EXPECT_DOUBLE_EQ(t.get("compute"), 2.0);
  EXPECT_DOUBLE_EQ(t.get("exchange"), 0.25);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  const auto snap = t.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  t.reset();
  EXPECT_DOUBLE_EQ(t.get("compute"), 0.0);
}

TEST(PhaseTimers, ScopedMeasuresElapsedTime) {
  trace::PhaseTimers t;
  {
    trace::PhaseTimers::Scoped s(t, "sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_GE(t.get("sleep"), 0.010);
  EXPECT_LT(t.get("sleep"), 2.0);
}

TEST(PhaseTimers, CountsAndRates) {
  trace::PhaseTimers t;
  t.add("compute", 2.0);
  t.add_count("compute", 1000);
  t.add_count("compute", 500);
  EXPECT_EQ(t.get_count("compute"), 1500);
  EXPECT_EQ(t.get_count("missing"), 0);
  EXPECT_DOUBLE_EQ(t.rate("compute"), 750.0);  // items per second
  EXPECT_DOUBLE_EQ(t.rate("missing"), 0.0);
  t.add_count("untimed", 7);
  EXPECT_DOUBLE_EQ(t.rate("untimed"), 0.0);  // no elapsed time recorded
  const auto snap = t.count_snapshot();
  EXPECT_EQ(snap.size(), 2u);
  t.reset();
  EXPECT_EQ(t.get_count("compute"), 0);
}

TEST(PhaseTimers, ThreadSafeAccumulation) {
  trace::PhaseTimers t;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) t.add("x", 0.001);
    });
  for (auto& th : ts) th.join();
  EXPECT_NEAR(t.get("x"), 8.0, 1e-9);
}

TEST(SizeHistogram, ExactBucketsQuantilesAndOverflow) {
  trace::SizeHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  h.record(1);
  h.record(1);
  h.record(4);
  h.record(8);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.total(), 14);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  EXPECT_EQ(h.max_value(), 8);
  // Quantiles are exact within the exact range (batch sizes are small
  // integers, so the common case has no bucketing error at all).
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(0.5), 4);
  EXPECT_EQ(h.quantile(1.0), 8);
  // Negative clamps to 0; past-the-range lands in the overflow bucket
  // and reports as kMaxExact + 1.
  h.record(-3);
  EXPECT_EQ(h.quantile(0.0), 0);
  h.record(trace::SizeHistogram::kMaxExact + 1000);
  EXPECT_EQ(h.quantile(1.0), trace::SizeHistogram::kMaxExact + 1);
  EXPECT_EQ(h.max_value(), trace::SizeHistogram::kMaxExact + 1000);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.total(), 0);
}

TEST(CommStats, CountersAccumulate) {
  trace::CommStats s;
  s.count_send(100);
  s.count_send(50);
  s.count_recv(70);
  EXPECT_EQ(s.bytes_sent.load(), 150);
  EXPECT_EQ(s.messages_sent.load(), 2);
  EXPECT_EQ(s.bytes_received.load(), 70);
}

TEST(EngineTimers, PhaseAccountingCoversExchangeAndCompute) {
  using sched::Approach;
  sched::JobConfig j;
  j.grid_shape = {16, 16, 16};
  j.ngrids = 8;
  j.ghost = 2;
  const auto plan = sched::RunPlan::make(Approach::kFlatOptimized, j,
                                         sched::Optimizations::all_on(2), 4,
                                         4);
  const auto coeffs = stencil::Coeffs::laplacian(2);
  mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
  trace::PhaseTimers timers;
  world.run([&](mp::ThreadComm& comm) {
    core::DistributedFd<double> engine(comm, plan, coeffs);
    engine.set_timers(&timers);
    const grid::Box3 box = plan.decomp().local_box(engine.coords());
    const auto n = static_cast<std::size_t>(j.ngrids);
    std::vector<grid::Array3D<double>> in(n), out(n);
    for (std::size_t g = 0; g < n; ++g) {
      in[g] = grid::Array3D<double>(box.shape(), j.ghost);
      out[g] = grid::Array3D<double>(box.shape(), j.ghost);
      core::testing::fill_local(in[g], box, static_cast<int>(g));
    }
    engine.apply_all(in, out);
  });
  EXPECT_GT(timers.get("compute"), 0.0);
  EXPECT_GT(timers.get("exchange"), 0.0);
  // Every rank adds its local points per grid; summed over the domain
  // decomposition that is exactly ngrids * global points.
  EXPECT_EQ(timers.get_count("compute"), 8 * 16 * 16 * 16);
  EXPECT_GT(timers.rate("compute"), 0.0);  // Mpts/s basis for reports
}

}  // namespace
}  // namespace gpawfd
