// Figure-driver tests: extrapolation validity, batch search sanity, and
// the calibration bands for the paper's headline numbers (DESIGN.md §6).
#include <gtest/gtest.h>

#include "bgsim/torus.hpp"
#include "core/figures.hpp"

namespace gpawfd::core {
namespace {

using bgsim::MachineConfig;
using sched::Approach;
using sched::JobConfig;
using sched::Optimizations;

JobConfig paper_job(int ngrids) {
  JobConfig j;
  j.grid_shape = Vec3::cube(192);
  j.ngrids = ngrids;
  return j;
}

/// Run time must be affine in the grid count once past the pipeline
/// ramp-up — the property the scaled driver relies on.
TEST(ScaledSimulation, TimeIsAffineInGridCount) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const Optimizations o = Optimizations::all_on(8);
  const int cores = 512;
  auto t = [&](int n) {
    const auto plan =
        sched::RunPlan::make(Approach::kHybridMultiple, paper_job(n), o,
                             cores, 4);
    return simulate(plan, m).seconds;
  };
  const double t1 = t(128), t2 = t(256), t3 = t(384);
  const double slope_a = t2 - t1, slope_b = t3 - t2;
  EXPECT_NEAR(slope_b / slope_a, 1.0, 0.05);
}

TEST(ScaledSimulation, MatchesDirectBelowCap) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const Optimizations o = Optimizations::all_on(8);
  const auto direct = simulate(
      sched::RunPlan::make(Approach::kFlatOptimized, paper_job(64), o, 256, 4),
      m);
  const auto scaled = simulate_scaled(Approach::kFlatOptimized, paper_job(64),
                                      o, 256, 4, m, {.grid_cap = 256});
  EXPECT_EQ(direct.seconds, scaled.seconds);
  EXPECT_EQ(direct.bytes_sent_total, scaled.bytes_sent_total);
}

TEST(ScaledSimulation, ExtrapolationCloseToDirect) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const Optimizations o = Optimizations::all_on(8);
  // Direct at 512 grids vs extrapolated from <=256.
  const auto direct = simulate(
      sched::RunPlan::make(Approach::kHybridMultiple, paper_job(512), o, 512,
                           4),
      m);
  const auto scaled =
      simulate_scaled(Approach::kHybridMultiple, paper_job(512), o, 512, 4, m,
                      {.grid_cap = 256});
  EXPECT_NEAR(scaled.seconds / direct.seconds, 1.0, 0.03);
  EXPECT_EQ(scaled.bytes_sent_total, direct.bytes_sent_total);
}

TEST(BestBatch, GrowsWithScaleAndStaysAdmissible) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const int small = best_batch_size(Approach::kHybridMultiple, paper_job(256),
                                    Optimizations::all_on(1), 64, 4, m);
  const int large = best_batch_size(Approach::kHybridMultiple, paper_job(256),
                                    Optimizations::all_on(1), 4096, 4, m);
  EXPECT_GE(small, 1);
  EXPECT_LE(small, 64);  // per-stream grid count
  EXPECT_GE(large, 4);   // tiny sub-grids need batch aggregation
  EXPECT_GE(large, small);
}

/// Figure 2 calibration: the bandwidth curve's knee and asymptote.
TEST(Calibration, Fig2KneeAndAsymptote) {
  const MachineConfig m = MachineConfig::bluegene_p();
  auto bandwidth = [&](std::int64_t bytes) {
    bgsim::EventLoop loop;
    bgsim::TorusNetwork net(loop, m, {8, 8, 8});
    const auto done =
        net.submit(net.node_at({0, 0, 0}), net.node_at({1, 0, 0}), bytes);
    return static_cast<double>(bytes) / bgsim::to_seconds(done);
  };
  const double peak = bandwidth(10'000'000);
  EXPECT_GT(peak, 340e6);  // paper asymptote ~370-390 MB/s
  EXPECT_LT(peak, 400e6);
  // Half bandwidth around 10^3 bytes (paper), i.e. in [200, 5000].
  EXPECT_LT(bandwidth(200), 0.5 * peak);
  EXPECT_GT(bandwidth(5000), 0.5 * peak);
  // Monotone in message size.
  double prev = 0;
  for (std::int64_t s : {10, 100, 1000, 10000, 100000}) {
    const double bw = bandwidth(s);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

/// The headline calibration at 16384 cores (section VII/VIII): bands
/// around the paper's numbers, not exact matches.
TEST(Calibration, HeadlineNumbersAt16kCores) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig job = paper_job(2816);
  const double seq = simulate_sequential_seconds(job, m);

  const auto fo = simulate_scaled(Approach::kFlatOriginal, job,
                                  Optimizations::original(), 16384, 4, m);
  const auto fopt = simulate_scaled(Approach::kFlatOptimized, job,
                                    Optimizations::all_on(64), 16384, 4, m);
  const auto hm = simulate_scaled(Approach::kHybridMultiple, job,
                                  Optimizations::all_on(64), 16384, 4, m);
  const auto fo1k = simulate_scaled(Approach::kFlatOriginal, job,
                                    Optimizations::original(), 1024, 4, m);

  // Paper: 1.94x at 16384 cores.
  EXPECT_GT(fo.seconds / hm.seconds, 1.6);
  EXPECT_LT(fo.seconds / hm.seconds, 2.3);
  // Paper: hybrid ~10% faster than flat optimized.
  EXPECT_GT(fopt.seconds / hm.seconds, 1.02);
  EXPECT_LT(fopt.seconds / hm.seconds, 1.25);
  // Paper: utilization 36% -> 70%.
  const double util_fo = seq / (16384 * fo.seconds);
  const double util_hm = seq / (16384 * hm.seconds);
  EXPECT_GT(util_fo, 0.28);
  EXPECT_LT(util_fo, 0.45);
  EXPECT_GT(util_hm, 0.60);
  EXPECT_LT(util_hm, 0.85);
  // Paper: ~16.5x vs flat original at 1k.
  EXPECT_GT(fo1k.seconds / hm.seconds, 14.0);
  EXPECT_LT(fo1k.seconds / hm.seconds, 22.0);
  // Fig. 6 right axis: flat sends ~1.67x the hybrid bytes per node.
  EXPECT_NEAR(static_cast<double>(fo.bytes_sent_total) /
                  static_cast<double>(hm.bytes_sent_total),
              1.67, 0.25);
}

/// Mesh vs torus: a sub-512-node partition pays for its periodic wrap
/// traffic (section V's requirement of >= 512 nodes for a torus).
TEST(Calibration, MeshPartitionSlowerThanTorusPartition) {
  const MachineConfig m = MachineConfig::bluegene_p();
  // 256 nodes: mesh. Compare against an an otherwise-identical machine
  // where the torus threshold is lowered so wrap links exist.
  MachineConfig torus_anyway = m;
  torus_anyway.torus_min_nodes = 1;
  const JobConfig job = paper_job(256);
  const auto plan = sched::RunPlan::make(Approach::kHybridMultiple, job,
                                         Optimizations::all_on(8), 1024, 4);
  const double mesh_t = simulate(plan, m).seconds;
  const double torus_t = simulate(plan, torus_anyway).seconds;
  EXPECT_GT(mesh_t, torus_t);
}

}  // namespace
}  // namespace gpawfd::core
