// Mini-GPAW integration tests: distributed field algebra, wave-function
// orthonormalization, the Poisson solver and the eigensolver — each
// validated against analytic results and against single-rank runs.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gpaw/eigensolver.hpp"
#include "gpaw/poisson.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::gpaw {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Domain, GeometryAndVolumeElement) {
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, {16, 16, 16}, 0.25);
    EXPECT_EQ(d.global_shape(), Vec3::cube(16));
    EXPECT_DOUBLE_EQ(d.dv(), 0.25 * 0.25 * 0.25);
    EXPECT_EQ(d.decomp().ranks(), 4);
    EXPECT_EQ(d.box().shape().product(), 16 * 16 * 16 / 4);
  });
}

TEST(Domain, DotSumMeanAreDecompositionInvariant) {
  // The same global field must give the same integrals on 1 and 8 ranks.
  auto run = [](int ranks) {
    double dot = 0, sum = 0, mean = 0;
    mp::ThreadWorld world(ranks);
    world.run([&](mp::ThreadComm& c) {
      Domain d(c, {12, 12, 12}, 0.5);
      auto f = d.make_field();
      auto g = d.make_field();
      d.fill(f, [](Vec3 p) { return std::sin(0.1 * static_cast<double>(p.x + 2 * p.y)); });
      d.fill(g, [](Vec3 p) { return 0.3 + 0.01 * static_cast<double>(p.z); });
      if (c.rank() == 0) {
        dot = d.dot(f, g);
        sum = d.sum(f);
        mean = d.mean(g);
      } else {
        d.dot(f, g);  // collectives need every rank
        d.sum(f);
        d.mean(g);
      }
    });
    return std::array<double, 3>{dot, sum, mean};
  };
  const auto a = run(1);
  const auto b = run(8);
  EXPECT_NEAR(a[0], b[0], 1e-10);
  EXPECT_NEAR(a[1], b[1], 1e-10);
  EXPECT_NEAR(a[2], b[2], 1e-10);
}

TEST(WaveFunctionsTest, OverlapIsSymmetricAndDecompositionInvariant) {
  auto overlap_trace = [](int ranks) {
    double trace = 0;
    mp::ThreadWorld world(ranks);
    world.run([&](mp::ThreadComm& c) {
      Domain d(c, {12, 12, 12}, 0.4);
      WaveFunctions wfs(d, 5);
      wfs.randomize(2024);
      const DenseMatrix s = wfs.overlap();
      for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
          EXPECT_NEAR(s(i, j), s(j, i), 1e-14);
      if (c.rank() == 0)
        for (int i = 0; i < 5; ++i) trace += s(i, i);
    });
    return trace;
  };
  EXPECT_NEAR(overlap_trace(1), overlap_trace(6), 1e-10);
}

TEST(WaveFunctionsTest, GramSchmidtProducesOrthonormalSet) {
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, {12, 12, 12}, 0.4);
    WaveFunctions wfs(d, 6);
    wfs.randomize(11);
    wfs.gram_schmidt();
    const DenseMatrix s = wfs.overlap();
    for (int i = 0; i < 6; ++i)
      for (int j = 0; j < 6; ++j)
        EXPECT_NEAR(s(i, j), i == j ? 1.0 : 0.0, 1e-12) << i << "," << j;
  });
}

TEST(WaveFunctionsTest, CholeskyOrthonormalizeMatchesGramSchmidtSpan) {
  mp::ThreadWorld world(2);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, {10, 10, 10}, 0.4);
    WaveFunctions wfs(d, 4);
    wfs.randomize(3);
    wfs.cholesky_orthonormalize();
    const DenseMatrix s = wfs.overlap();
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        EXPECT_NEAR(s(i, j), i == j ? 1.0 : 0.0, 1e-12);
  });
}

TEST(WaveFunctionsTest, RotationPreservesOrthonormality) {
  mp::ThreadWorld world(2);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, {10, 10, 10}, 0.4);
    WaveFunctions wfs(d, 3);
    wfs.randomize(5);
    wfs.cholesky_orthonormalize();
    // Rotate by a (proper) rotation in band space.
    DenseMatrix u = DenseMatrix::identity(3);
    const double a = 0.3;
    u(0, 0) = std::cos(a); u(0, 1) = -std::sin(a);
    u(1, 0) = std::sin(a); u(1, 1) = std::cos(a);
    wfs.rotate(u);
    const DenseMatrix s = wfs.overlap();
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(s(i, j), i == j ? 1.0 : 0.0, 1e-12);
  });
}

TEST(Poisson, RecoversManufacturedPeriodicSolution) {
  mp::ThreadWorld world(8);
  world.run([](mp::ThreadComm& c) {
    const int n = 16;
    const double L = 1.0;
    const double h = L / n;
    Domain d(c, Vec3::cube(n), h);
    // phi_exact = sin(2 pi x / L); rho = -Lap(phi)/(4 pi) (analytically
    // (2pi/L)^2 sin(..) / (4 pi)). The discrete solver must reproduce
    // phi up to the stencil's discretization error.
    auto rho = d.make_field();
    const double k = 2.0 * kPi / L;
    d.fill(rho, [&](Vec3 p) {
      return k * k * std::sin(k * static_cast<double>(p.x) * h) / (4.0 * kPi);
    });
    auto phi = d.make_field();
    PoissonSolver::Options o;
    o.tolerance = 1e-10;
    PoissonSolver solver(d, o);
    const auto res = solver.solve(phi, rho);
    EXPECT_TRUE(res.converged) << res.relative_residual;

    double max_err = 0;
    phi.for_each_interior([&](Vec3 p, double& v) {
      const double exact =
          std::sin(k * static_cast<double>((d.box().lo + p).x) * h);
      max_err = std::max(max_err, std::fabs(v - exact));
    });
    // 4th-order stencil at n=16: discretization error ~(kh)^4/30 ~ 6e-3.
    EXPECT_LT(max_err, 2e-2);
  });
}

TEST(Poisson, ResidualDecreasesMonotonically) {
  mp::ThreadWorld world(1);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, Vec3::cube(8), 0.5);
    auto rho = d.make_field();
    d.fill(rho, [](Vec3 p) { return p.x == 2 && p.y == 2 && p.z == 2 ? 1.0 : 0.0; });
    auto phi = d.make_field();
    PoissonSolver::Options o;
    o.max_iterations = 50;
    o.tolerance = 0;  // run all iterations
    PoissonSolver solver(d, o);
    const auto r1 = solver.solve(phi, rho);
    o.max_iterations = 200;
    PoissonSolver solver2(d, o);
    auto phi2 = d.make_field();
    const auto r2 = solver2.solve(phi2, rho);
    EXPECT_LT(r2.relative_residual, r1.relative_residual);
  });
}

TEST(HamiltonianTest, PlaneWaveKineticEigenvalue) {
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    const int n = 16;
    const double h = 2.0 * kPi / n;  // box [0, 2 pi)
    Domain d(c, Vec3::cube(n), h);
    auto v0 = d.make_field();  // zero potential
    Hamiltonian ham(d, std::move(v0), /*nbands=*/1);
    std::vector<grid::Array3D<double>> psi(1), hpsi(1);
    psi[0] = d.make_field();
    hpsi[0] = d.make_field();
    d.fill(psi[0], [&](Vec3 p) {
      return std::sin(static_cast<double>(p.x) * h);
    });
    ham.apply(psi, hpsi);
    // H sin(x) = 1/2 sin(x) up to the discrete symbol: compare against
    // the stencil's own eigenvalue lambda = -1/2 * symbol(k=1).
    const auto& kc = ham.kinetic_coeffs();
    double lambda = kc.center;
    for (int kk = 1; kk <= kc.radius; ++kk) {
      lambda += 2.0 * kc.axis[0][kk - 1] * std::cos(kk * h);  // k_x = 1
      lambda += 2.0 * kc.axis[1][kk - 1];                     // k_y = 0
      lambda += 2.0 * kc.axis[2][kk - 1];                     // k_z = 0
    }
    hpsi[0].for_each_interior([&](Vec3 p, double& v) {
      const double expected =
          lambda * std::sin(static_cast<double>((d.box().lo + p).x) * h);
      EXPECT_NEAR(v, expected, 1e-10);
    });
    EXPECT_NEAR(lambda, 0.5, 0.01);  // 4th-order accurate kinetic energy
  });
}

TEST(HamiltonianTest, PotentialTermIsPointwise) {
  mp::ThreadWorld world(2);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, Vec3::cube(8), 0.5);
    auto v = d.make_field();
    d.fill(v, [](Vec3 p) { return static_cast<double>(p.x); });
    Hamiltonian ham(d, std::move(v), 1);
    std::vector<grid::Array3D<double>> psi(1), hpsi(1);
    psi[0] = d.make_field();
    hpsi[0] = d.make_field();
    psi[0].fill(1.0);  // constant: kinetic term vanishes (periodic)
    ham.apply(psi, hpsi);
    hpsi[0].for_each_interior([&](Vec3 p, double& val) {
      EXPECT_NEAR(val, static_cast<double>((d.box().lo + p).x), 1e-10);
    });
  });
}

TEST(HamiltonianTest, SpectralUpperBoundDominatesRayleighQuotients) {
  mp::ThreadWorld world(2);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, Vec3::cube(8), 0.5);
    auto v = d.make_field();
    d.fill(v, [](Vec3 p) { return 0.1 * static_cast<double>(p.x + p.y); });
    Hamiltonian ham(d, std::move(v), 3);
    const double bound = ham.spectral_upper_bound();
    WaveFunctions wfs(d, 3);
    wfs.randomize(17);
    wfs.cholesky_orthonormalize();
    std::vector<grid::Array3D<double>> hpsi(3);
    for (auto& f : hpsi) f = d.make_field();
    ham.apply(wfs.storage(), hpsi);
    for (int b = 0; b < 3; ++b)
      EXPECT_LT(d.dot(wfs.band(b), hpsi[static_cast<std::size_t>(b)]), bound);
  });
}

TEST(Eigensolver, ParticleInPeriodicBoxMatchesDiscreteSpectrum) {
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    const int n = 12;
    const double L = 2.0 * kPi;
    const double h = L / n;
    Domain d(c, Vec3::cube(n), h);
    auto v0 = d.make_field();
    const int nbands = 4;
    Hamiltonian ham(d, std::move(v0), nbands);
    WaveFunctions wfs(d, nbands);
    wfs.randomize(123);
    EigensolverOptions o;
    o.max_iterations = 200;
    o.tolerance = 1e-11;
    const auto res = solve_lowest_eigenstates(ham, wfs, o);
    EXPECT_TRUE(res.converged);

    // Discrete spectrum: lambda(k) = -1/2 sum_d symbol_d(k_d) with the
    // stencil symbol; lowest values are k=(0,0,0) then the six k=1
    // states (triply degenerate pairs): E0 = 0, E1..E3 = lambda1.
    const auto& kc = ham.kinetic_coeffs();
    auto sym1d = [&](int k) {
      double s = kc.center / 3.0;
      for (int kk = 1; kk <= kc.radius; ++kk)
        s += 2.0 * kc.axis[0][kk - 1] *
             std::cos(2.0 * kPi * kk * k / n);
      return s;
    };
    const double e0 = 3 * sym1d(0);
    const double e1 = 2 * sym1d(0) + sym1d(1);  // (1,0,0) and permutations
    EXPECT_NEAR(res.eigenvalues[0], e0, 1e-8);
    for (int b = 1; b < nbands; ++b)
      EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(b)], e1, 1e-6)
          << "band " << b;
  });
}

TEST(Eigensolver, HarmonicWellGroundStateNearAnalytic) {
  mp::ThreadWorld world(8);
  world.run([](mp::ThreadComm& c) {
    // 3-D harmonic oscillator V = 1/2 w^2 r^2, ground state E = 3/2 w.
    const int n = 24;
    const double L = 12.0;
    const double h = L / n;
    const double w = 1.0;
    Domain d(c, Vec3::cube(n), h);
    auto v = d.make_field();
    d.fill(v, [&](Vec3 p) {
      auto axis = [&](std::int64_t q) {
        const double x = (static_cast<double>(q) - n / 2.0) * h;
        return x * x;
      };
      return 0.5 * w * w * (axis(p.x) + axis(p.y) + axis(p.z));
    });
    Hamiltonian ham(d, std::move(v), 1);
    WaveFunctions wfs(d, 1);
    wfs.randomize(77);
    EigensolverOptions o;
    o.max_iterations = 200;
    o.tolerance = 1e-10;
    const auto res = solve_lowest_eigenstates(ham, wfs, o);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalues[0], 1.5 * w, 0.02);
  });
}

TEST(Eigensolver, DecompositionInvariantEigenvalues) {
  auto ground_state = [](int ranks) {
    double e = 0;
    mp::ThreadWorld world(ranks);
    world.run([&](mp::ThreadComm& c) {
      Domain d(c, Vec3::cube(10), 0.6);
      auto v = d.make_field();
      d.fill(v, [](Vec3 p) {
        return 0.05 * static_cast<double>((p.x - 5) * (p.x - 5));
      });
      Hamiltonian ham(d, std::move(v), 2);
      WaveFunctions wfs(d, 2);
      wfs.randomize(31);
      EigensolverOptions o;
      o.max_iterations = 200;
      o.tolerance = 1e-11;
      const auto res = solve_lowest_eigenstates(ham, wfs, o);
      if (c.rank() == 0) e = res.eigenvalues[0];
    });
    return e;
  };
  EXPECT_NEAR(ground_state(1), ground_state(8), 1e-7);
}

}  // namespace
}  // namespace gpawfd::gpaw
