// Concurrency tests for svc::SimService: single-flight execution counts
// under heavy client fan-in, cache coherence (same JobKey => identical
// SimResult), non-blocking admission control at the queue bound, metrics
// consistency, clean shutdown with work in flight, and the chaos soak
// (seeded faults + random priorities + mid-run shutdown). Run under the
// GPAWFD_TSAN preset to race-check the queue/cache/retry machinery;
// labelled `stress` so nightly can run it longer (GPAWFD_CHAOS_ROUNDS,
// scripts/tier1.sh --stress) without slowing tier-1.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "svc/fault.hpp"
#include "svc/job_queue.hpp"
#include "svc/service.hpp"
#include "telemetry/sink.hpp"
#include "trace/stats.hpp"

namespace gpawfd {
namespace {

using core::SimJobSpec;
using core::SimResult;

SimJobSpec spec_of_job(int job_id) {
  SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(24);
  spec.job.ngrids = 8 + job_id;  // distinct workload per job id
  spec.opt = sched::Optimizations::all_on(2);
  spec.total_cores = 4;
  return spec;
}

/// Fake executor: records per-key execution counts and burns a little
/// wall clock so concurrent submits genuinely overlap an in-flight run.
class CountingExecutor {
 public:
  explicit CountingExecutor(std::chrono::milliseconds delay) : delay_(delay) {}

  SimResult operator()(const SimJobSpec& spec) {
    {
      std::lock_guard lock(mu_);
      ++runs_[svc::JobKey::of(spec).canonical()];
    }
    total_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(delay_);
    SimResult r;
    r.seconds = static_cast<double>(spec.job.ngrids);  // identity marker
    r.messages_total = spec.job.ngrids;
    return r;
  }

  int total() const { return total_.load(); }
  std::map<std::string, int> runs() const {
    std::lock_guard lock(mu_);
    return runs_;
  }

 private:
  std::chrono::milliseconds delay_;
  mutable std::mutex mu_;
  std::map<std::string, int> runs_;
  std::atomic<int> total_{0};
};

// Acceptance (a): 64 concurrent clients x 8 distinct jobs -> exactly 8
// executions, every response coherent with its key.
TEST(SvcStress, SingleFlightExecutesEachDistinctJobExactlyOnce) {
  constexpr int kClients = 64;
  constexpr int kJobs = 8;
  auto counting =
      std::make_shared<CountingExecutor>(std::chrono::milliseconds(20));

  svc::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 1024;
  cfg.executor = [counting](const SimJobSpec& s) { return (*counting)(s); };
  svc::SimService service(cfg);

  std::vector<std::thread> clients;
  std::atomic<int> coherent{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Stagger job order per client so every job sees concurrent
      // first-requesters, joiners, and late cache-hitters.
      for (int j = 0; j < kJobs; ++j) {
        const int job_id = (j + c) % kJobs;
        svc::Ticket t = service.submit(spec_of_job(job_id));
        ASSERT_FALSE(t.rejected()) << svc::to_string(t.status);
        const SimResult r = t.result.get();
        // Cache coherence: same JobKey => the marker of *that* job.
        if (r.seconds == static_cast<double>(8 + job_id) &&
            r.messages_total == 8 + job_id)
          coherent.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(coherent.load(), kClients * kJobs);
  EXPECT_EQ(counting->total(), kJobs)
      << "single-flight must collapse all duplicate requests";
  for (const auto& [key, n] : counting->runs())
    EXPECT_EQ(n, 1) << "job executed " << n << " times: " << key;

  const auto& m = service.metrics();
  EXPECT_EQ(m.submitted.load(), kClients * kJobs);
  EXPECT_EQ(m.accepted.load(), kJobs);
  EXPECT_EQ(m.executed.load(), kJobs);
  EXPECT_EQ(m.cache_hits.load() + m.dedup_joined.load() + m.accepted.load(),
            m.submitted.load())
      << "every submit is exactly one of hit/joined/accepted:\n"
      << service.metrics_snapshot();
  EXPECT_EQ(m.rejected_queue_full.load(), 0);
  EXPECT_EQ(service.cache().size(), static_cast<std::size_t>(kJobs));
}

// Acceptance (c): past the queue bound the service rejects immediately
// (load shedding), it does not block, and the metrics add up.
TEST(SvcStress, AdmissionControlRejectsNotBlocksPastTheBound) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> started{0};

  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.executor = [&](const SimJobSpec& s) {
    started.fetch_add(1);
    opened.wait();  // hold the worker so the queue stays full
    SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    return r;
  };
  svc::SimService service(cfg);

  // Job 0 occupies the worker...
  svc::Ticket a = service.submit(spec_of_job(0));
  ASSERT_EQ(a.status, svc::SubmitStatus::kAccepted);
  while (started.load() == 0) std::this_thread::yield();
  // ...jobs 1 and 2 fill the bounded queue...
  svc::Ticket b = service.submit(spec_of_job(1));
  svc::Ticket c = service.submit(spec_of_job(2));
  ASSERT_EQ(b.status, svc::SubmitStatus::kAccepted);
  ASSERT_EQ(c.status, svc::SubmitStatus::kAccepted);
  // ...job 3 must be refused with a reason, without blocking.
  const double t0 = trace::now_seconds();
  svc::Ticket d = service.submit(spec_of_job(3));
  const double reject_latency = trace::now_seconds() - t0;
  EXPECT_EQ(d.status, svc::SubmitStatus::kRejectedQueueFull);
  EXPECT_TRUE(d.rejected());
  EXPECT_FALSE(d.result.valid()) << "rejected requests get no future";
  EXPECT_LT(reject_latency, 0.25) << "rejection must not block";

  gate.set_value();
  EXPECT_DOUBLE_EQ(a.result.get().seconds, 8.0);
  EXPECT_DOUBLE_EQ(b.result.get().seconds, 9.0);
  EXPECT_DOUBLE_EQ(c.result.get().seconds, 10.0);

  const auto& m = service.metrics();
  EXPECT_EQ(m.submitted.load(), 4);
  EXPECT_EQ(m.accepted.load(), 3);
  EXPECT_EQ(m.rejected_queue_full.load(), 1);
  EXPECT_EQ(m.cache_hits.load() + m.dedup_joined.load() + m.accepted.load() +
                m.rejected_queue_full.load() + m.rejected_shutdown.load(),
            m.submitted.load())
      << service.metrics_snapshot();
  EXPECT_GE(m.queue_depth_high_water(), 2);

  // The rejected job was never poisoned: resubmitting works now.
  svc::Ticket retry = service.submit(spec_of_job(3));
  EXPECT_FALSE(retry.rejected());
  EXPECT_DOUBLE_EQ(retry.result.get().seconds, 11.0);
}

// Blocking backpressure flavour: with block_when_full the submitter
// throttles instead of shedding.
TEST(SvcStress, BlockingBackpressureThrottlesProducers) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 2;
  cfg.block_when_full = true;
  cfg.executor = [](const SimJobSpec& s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    return r;
  };
  svc::SimService service(cfg);

  std::vector<svc::Ticket> tickets;
  for (int j = 0; j < 16; ++j) tickets.push_back(service.submit(spec_of_job(j)));
  for (auto& t : tickets) {
    ASSERT_FALSE(t.rejected());
    t.result.wait();
  }
  EXPECT_EQ(service.metrics().rejected_queue_full.load(), 0);
  EXPECT_EQ(service.metrics().executed.load(), 16);
}

// Clean shutdown, drain flavour: the destructor finishes accepted work;
// no future is left dangling.
TEST(SvcStress, DrainShutdownCompletesInFlightAndQueuedWork) {
  std::vector<svc::Ticket> tickets;
  {
    svc::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 64;
    cfg.executor = [](const SimJobSpec& s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      SimResult r;
      r.seconds = static_cast<double>(s.job.ngrids);
      return r;
    };
    svc::SimService service(cfg);
    for (int j = 0; j < 12; ++j)
      tickets.push_back(service.submit(spec_of_job(j)));
  }  // ~SimService: drain
  for (std::size_t j = 0; j < tickets.size(); ++j) {
    ASSERT_FALSE(tickets[j].rejected());
    EXPECT_DOUBLE_EQ(tickets[j].result.get().seconds,
                     static_cast<double>(8 + j));
  }
}

// Discard shutdown: in-flight work completes, queued-unstarted work is
// cancelled with an exception (never silently dropped), submits after
// shutdown are rejected.
TEST(SvcStress, DiscardShutdownCancelsQueuedWorkExplicitly) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> started{0};

  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.executor = [&](const SimJobSpec& s) {
    started.fetch_add(1);
    opened.wait();
    SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    return r;
  };
  svc::SimService service(cfg);

  svc::Ticket inflight = service.submit(spec_of_job(0));
  ASSERT_EQ(inflight.status, svc::SubmitStatus::kAccepted);
  while (started.load() == 0) std::this_thread::yield();
  svc::Ticket queued1 = service.submit(spec_of_job(1));
  svc::Ticket queued2 = service.submit(spec_of_job(2));
  ASSERT_EQ(queued1.status, svc::SubmitStatus::kAccepted);
  ASSERT_EQ(queued2.status, svc::SubmitStatus::kAccepted);

  std::thread stopper([&] { service.shutdown(/*drain=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();  // let the in-flight job finish so workers can join
  stopper.join();

  EXPECT_DOUBLE_EQ(inflight.result.get().seconds, 8.0);
  EXPECT_THROW(queued1.result.get(), svc::ServiceError);
  EXPECT_THROW(queued2.result.get(), svc::ServiceError);
  EXPECT_EQ(service.metrics().cancelled.load(), 2);

  svc::Ticket late = service.submit(spec_of_job(3));
  EXPECT_EQ(late.status, svc::SubmitStatus::kRejectedShutdown);
}

// Acceptance (b) at test scale: a cache hit answers >= 10x faster than
// the cold simulation it short-circuits (the bench measures the same
// ratio at service scale).
TEST(SvcStress, CacheHitIsAtLeastTenTimesFasterThanColdRun) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;  // real executor: core::simulate_job
  svc::SimService service(cfg);

  SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(48);
  spec.job.ngrids = 16;
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = 8;

  const double cold0 = trace::now_seconds();
  service.run(spec);
  const double cold = trace::now_seconds() - cold0;

  double best_hit = 1e9;
  for (int i = 0; i < 5; ++i) {
    const double h0 = trace::now_seconds();
    svc::Ticket t = service.submit(spec);
    t.result.get();
    const double h = trace::now_seconds() - h0;
    ASSERT_EQ(t.status, svc::SubmitStatus::kCacheHit);
    best_hit = std::min(best_hit, h);
  }
  EXPECT_GE(cold / best_hit, 10.0)
      << "cold=" << cold << "s best_hit=" << best_hit << "s";
}

// Chaos soak: seeded faults (throws, stragglers, hangs), random-priority
// submitters, eviction churn, and a mid-run shutdown whose mode (drain
// vs discard) alternates by round. The invariants under all of it: no
// accepted future is ever abandoned, no key ever yields another key's
// result, and the job-level metrics reconcile exactly. Runs one round in
// tier-1; nightly runs longer via GPAWFD_CHAOS_ROUNDS (scripts/tier1.sh
// --stress) and race-checks under the GPAWFD_TSAN preset (--tsan).
TEST(SvcChaos, SoakSurvivesFaultsPrioritiesAndMidRunShutdown) {
  int rounds = 1;
  if (const char* env = std::getenv("GPAWFD_CHAOS_ROUNDS"))
    rounds = std::max(1, std::atoi(env));

  for (int round = 0; round < rounds; ++round) {
    svc::FaultConfig fc;
    fc.seed = 0xC0FFEE + static_cast<std::uint64_t>(round);
    fc.throw_probability = 0.20;
    fc.hang_probability = 0.05;
    fc.delay_probability = 0.20;
    fc.fail_attempts = 2;
    fc.delay_seconds = 0.002;
    fc.jitter_seconds = 0.002;
    auto faulty =
        std::make_shared<svc::FaultyExecutor>(
            [](const SimJobSpec& s) {
              SimResult r;
              r.seconds = static_cast<double>(s.job.ngrids);
              r.messages_total = s.job.ngrids;
              return r;
            },
            fc);

    svc::ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queue_capacity = 128;
    cfg.cache_capacity = 16;  // fewer than distinct jobs -> eviction churn
    cfg.cache_shards = 4;
    cfg.executor = [faulty](const SimJobSpec& s) { return (*faulty)(s); };
    cfg.retry.max_attempts = 3;
    cfg.retry.initial_backoff_seconds = 0.0005;
    cfg.retry.max_backoff_seconds = 0.004;
    cfg.retry.attempt_timeout_seconds = 0.025;  // bounds every hang
    svc::SimService service(cfg);

    constexpr int kClients = 8;
    constexpr int kRequests = 40;
    constexpr int kDistinct = 24;
    const bool drain = round % 2 == 0;

    std::mutex mu;
    std::vector<svc::Ticket> tickets;
    std::atomic<int> incoherent{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(fc.seed ^ static_cast<std::uint64_t>(c * 977 + 1));
        for (int i = 0; i < kRequests; ++i) {
          const int job_id =
              static_cast<int>(rng.next_below(kDistinct));
          const auto prio = static_cast<svc::Priority>(rng.next_below(3));
          svc::Ticket t = service.submit(spec_of_job(job_id), prio);
          if (!t.rejected()) {
            // Coherence check on a sample without blocking the swarm.
            if (i % 8 == 0) {
              try {
                if (t.result.get().seconds !=
                    static_cast<double>(8 + job_id))
                  incoherent.fetch_add(1);
              } catch (const svc::ServiceError&) {
                // a documented fate under faults/shutdown
              }
            }
            std::lock_guard lock(mu);
            tickets.push_back(std::move(t));
          }
        }
      });
    }
    // Mid-run shutdown: let roughly half the traffic through first.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    service.shutdown(drain);
    for (auto& t : clients) t.join();

    // Zero abandoned futures: after shutdown() returned, every accepted
    // ticket must already be resolved (value or exception).
    for (const auto& t : tickets)
      ASSERT_EQ(t.result.wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "abandoned future (round " << round << ", drain=" << drain
          << ")";
    EXPECT_EQ(incoherent.load(), 0)
        << "a key must never yield another key's result";

    const auto& m = service.metrics();
    EXPECT_EQ(m.submitted.load(),
              m.cache_hits.load() + m.dedup_joined.load() +
                  m.accepted.load() + m.rejected_queue_full.load() +
                  m.rejected_shutdown.load())
        << service.metrics_snapshot();
    EXPECT_EQ(m.accepted.load(),
              m.executed.load() + m.gave_up.load() + m.cancelled.load())
        << "every accepted job must end exactly one way (round " << round
        << ", drain=" << drain << "):\n"
        << service.metrics_snapshot();
    if (drain) {
      EXPECT_EQ(m.cancelled.load(), 0)
          << "drain shutdown must not cancel accepted work";
    }
  }
}

// Hammer one service with a mixed read/write pattern while results are
// being evicted — the TSAN target for the striped LRU.
TEST(SvcStress, EvictionChurnStaysCoherentUnderConcurrency) {
  auto counting =
      std::make_shared<CountingExecutor>(std::chrono::milliseconds(0));
  svc::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 8;  // far fewer than distinct jobs -> churn
  cfg.cache_shards = 4;
  cfg.executor = [counting](const SimJobSpec& s) { return (*counting)(s); };
  svc::SimService service(cfg);

  constexpr int kClients = 16;
  constexpr int kDistinct = 48;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 64; ++i) {
        const int job_id = (c * 7 + i * 11) % kDistinct;
        svc::Ticket t = service.submit(spec_of_job(job_id));
        if (t.rejected()) continue;  // shedding under churn is fine
        try {
          if (t.result.get().seconds != static_cast<double>(8 + job_id))
            bad.fetch_add(1);
        } catch (const svc::ServiceError&) {
          // joined a flight whose leader was shed — a documented fate
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0) << "a key must never yield another key's result";
  EXPECT_LE(service.cache().size(), 8u);
  EXPECT_GT(service.cache().evictions(), 0);
}

// Operator snapshots race the telemetry flusher: the periodic
// telemetry_loop reads every counter and histogram to compute deltas
// and gauges while workers are still flushing batched counter updates
// and the main thread hammers counter_map()/snapshot(). Under TSAN this
// is the race check for Metrics reads vs the flusher thread. At
// quiescence the ledger must reconcile exactly: every row the service
// recorded is either written to the table or counted dropped.
TEST(SvcStress, CounterMapSnapshotsRaceTelemetryFlushes) {
  std::string tmpl = ::testing::TempDir() + "gpawfd_teltmp_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  const std::string dir(buf.data());

  auto sink = telemetry::TelemetrySink::open_in(dir, "stress-run");
  auto counting =
      std::make_shared<CountingExecutor>(std::chrono::milliseconds(1));
  svc::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  cfg.executor = [counting](const SimJobSpec& s) { return (*counting)(s); };
  cfg.telemetry = sink;
  cfg.telemetry_period_seconds = 0.002;  // flush as hard as possible
  {
    svc::SimService service(cfg);

    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < 40; ++i) {
          svc::Ticket t = service.submit(spec_of_job((c * 5 + i) % 12));
          if (!t.rejected()) t.result.get();
        }
      });
    }
    // Snapshot readers race the flusher the whole time.
    std::int64_t last_rows = 0;
    for (int peek = 0; peek < 200; ++peek) {
      const auto counters = service.metrics().counter_map();
      const std::int64_t rows = counters.at("svc.telemetry_rows");
      EXPECT_GE(rows, last_rows);  // monotone under concurrent flushes
      last_rows = rows;
      EXPECT_GE(counters.at("svc.telemetry_flushes"), 0);
      (void)service.metrics().snapshot();
    }
    for (auto& t : clients) t.join();

    // Quiesce: destructor shutdown joins the flusher, runs one final
    // flush, then flushes the sink — so after this scope the counters
    // are final and the ledger must balance.
    const auto counters = service.metrics().counter_map();
    EXPECT_GT(counters.at("svc.telemetry_flushes"), 0);
  }
  // The service is gone; the sink's ledger is the other half of the
  // reconcile identity and must balance exactly at quiescence.
  EXPECT_EQ(sink->recorded(), sink->written() + sink->dropped());
  sink->shutdown();

  // Everything written survives a fresh recovery, attributed to the run.
  telemetry::TelemetryTable table(telemetry::TelemetryTable::path_in(dir));
  telemetry::TableRecoveryStats stats;
  const auto rows = table.recover(&stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(static_cast<std::int64_t>(rows.size()), sink->written());
  for (const auto& r : rows) EXPECT_EQ(r.run_id, "stress-run");

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// The gated-notify machinery (plain / linger / lane waiter bookkeeping,
// pushes that deliberately wake nobody) under genuine contention: every
// queued item must come out exactly once across batch consumers of
// mixed linger settings plus an interactive affinity lane, with no
// consumer left parked when close() lands. Run under TSAN this is the
// race check for the waiter counters.
TEST(SvcStress, PopBatchConcurrentConsumersConserveItems) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 400;
  constexpr int kLaneItems = 100;
  svc::JobQueue<int> q(256);

  std::atomic<std::int64_t> batch_sum{0};
  std::atomic<int> batch_count{0};
  std::atomic<std::int64_t> lane_sum{0};
  std::atomic<int> lane_count{0};
  std::vector<std::thread> consumers;
  // Two batch consumers with a linger, one without: mixed waiter kinds
  // force the broadcast paths of wake_after_push.
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&, c] {
      const auto linger = std::chrono::microseconds(c < 2 ? 200 : 0);
      for (;;) {
        const auto batch = q.pop_batch(8, /*ramp=*/(c == 0), linger);
        if (batch.empty()) return;  // closed and drained
        batch_count.fetch_add(static_cast<int>(batch.size()));
        for (int v : batch) batch_sum.fetch_add(v);
      }
    });
  }
  consumers.emplace_back([&] {  // the interactive affinity lane
    while (auto item = q.pop_class(svc::Priority::kInteractive)) {
      lane_count.fetch_add(1);
      lane_sum.fetch_add(*item);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i + 1;
        const auto prio = (i % 3 == 0) ? svc::Priority::kBatch
                                       : svc::Priority::kNormal;
        while (q.push_wait(v, prio) != svc::PushResult::kAccepted) {
        }
      }
    });
  }
  producers.emplace_back([&] {
    for (int i = 0; i < kLaneItems; ++i) {
      while (q.push_wait(-(i + 1), svc::Priority::kInteractive) !=
             svc::PushResult::kAccepted) {
      }
    }
  });
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  // Conservation: every item left the queue exactly once. The lane only
  // ever sees interactive items (negative markers); general consumers
  // may pick up interactive items the lane did not get to first, but
  // never the reverse.
  constexpr int kTotal = kProducers * kPerProducer;
  std::int64_t expected_sum = 0;
  for (int v = 1; v <= kTotal; ++v) expected_sum += v;
  std::int64_t lane_expected = 0;
  for (int i = 1; i <= kLaneItems; ++i) lane_expected -= i;
  EXPECT_EQ(batch_count.load() + lane_count.load(), kTotal + kLaneItems);
  EXPECT_EQ(batch_sum.load() + lane_sum.load(),
            expected_sum + lane_expected);
  EXPECT_LE(lane_sum.load(), 0) << "the lane saw a non-interactive item";
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace gpawfd
