// Stress tests of the in-process transport: message storms, random
// many-to-many patterns, mixed collectives, MULTIPLE-mode thread storms.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::mp {
namespace {

TEST(MpStress, MessageStormKeepsFifoOrderPerTag) {
  constexpr int kRanks = 6;
  constexpr int kMessages = 400;
  ThreadWorld world(kRanks);
  world.run([](ThreadComm& c) {
    // Every rank sends kMessages to every other rank, interleaved; the
    // receiver checks FIFO order per (source, tag).
    std::vector<Request> reqs;
    std::vector<std::vector<int>> inbox(
        kRanks, std::vector<int>(kMessages));
    for (int m = 0; m < kMessages; ++m) {
      for (int peer = 0; peer < kRanks; ++peer) {
        if (peer == c.rank()) continue;
        reqs.push_back(c.irecv(
            std::as_writable_bytes(std::span<int>(&inbox[static_cast<std::size_t>(peer)][static_cast<std::size_t>(m)], 1)),
            peer, /*tag=*/3));
      }
    }
    for (int m = 0; m < kMessages; ++m) {
      for (int peer = 0; peer < kRanks; ++peer) {
        if (peer == c.rank()) continue;
        int payload = m;
        c.send(std::as_bytes(std::span<const int>(&payload, 1)), peer, 3);
      }
    }
    c.wait_all(reqs);
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == c.rank()) continue;
      for (int m = 0; m < kMessages; ++m)
        ASSERT_EQ(inbox[static_cast<std::size_t>(peer)][static_cast<std::size_t>(m)], m)
            << "rank " << c.rank() << " from " << peer;
    }
  });
}

TEST(MpStress, RandomizedPairwiseExchangesBalance) {
  // Deterministically random sparse communication: every rank computes
  // the same global schedule and plays its part.
  constexpr int kRanks = 8;
  constexpr int kRounds = 200;
  ThreadWorld world(kRanks);
  world.run([](ThreadComm& c) {
    Rng rng(0xABCDEF);  // same stream on every rank
    for (int round = 0; round < kRounds; ++round) {
      const int a = static_cast<int>(rng.next_below(kRanks));
      int b = static_cast<int>(rng.next_below(kRanks));
      if (a == b) b = (b + 1) % kRanks;
      const int payload = round * 7;
      if (c.rank() == a) {
        c.send(std::as_bytes(std::span<const int>(&payload, 1)), b, round);
      } else if (c.rank() == b) {
        int got = -1;
        c.recv(std::as_writable_bytes(std::span<int>(&got, 1)), a, round);
        ASSERT_EQ(got, payload);
      }
    }
  });
}

TEST(MpStress, CollectiveChainsStaySynchronized) {
  constexpr int kRanks = 7;  // non power of two on purpose
  ThreadWorld world(kRanks);
  world.run([](ThreadComm& c) {
    double running = static_cast<double>(c.rank());
    for (int i = 0; i < 60; ++i) {
      // allreduce -> bcast -> barrier -> allgather, interleaved.
      running = c.allreduce_sum(running);
      std::vector<double> seed{running};
      c.bcast(std::as_writable_bytes(std::span<double>(seed)), i % kRanks);
      c.barrier();
      std::vector<double> all(kRanks);
      c.allgather(std::as_bytes(std::span<const double>(seed)),
                  std::as_writable_bytes(std::span<double>(all)));
      for (double v : all) ASSERT_DOUBLE_EQ(v, seed[0]);
      running = seed[0] / kRanks;  // keep magnitudes bounded
    }
  });
}

TEST(MpStress, MultipleModeThreadStorm) {
  // 4 threads per rank, each with a private tag lane, hammering the
  // shared mailboxes concurrently — the hybrid-multiple communication
  // structure under load.
  constexpr int kRanks = 4;
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  ThreadWorld world(kRanks, ThreadMode::kMultiple);
  world.run([](ThreadComm& c) {
    std::vector<std::thread> ts;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&c, t, &failures] {
        const int peer = (c.rank() + 1) % kRanks;
        const int prev = (c.rank() + kRanks - 1) % kRanks;
        for (int r = 0; r < kRounds; ++r) {
          const int tag = t * 1000 + r;
          int out = c.rank() * 100000 + tag;
          int in = -1;
          Request rr = c.irecv(
              std::as_writable_bytes(std::span<int>(&in, 1)), prev, tag);
          c.send(std::as_bytes(std::span<const int>(&out, 1)), peer, tag);
          c.wait(rr);
          if (in != prev * 100000 + tag) failures.fetch_add(1);
        }
      });
    }
    for (auto& t : ts) t.join();
    ASSERT_EQ(failures.load(), 0);
  });
}

TEST(MpStress, LargePayloadsSurviveConcurrency) {
  ThreadWorld world(4);
  world.run([](ThreadComm& c) {
    const std::size_t kWords = 1 << 15;
    std::vector<std::uint64_t> out(kWords), in(kWords);
    for (std::size_t i = 0; i < kWords; ++i)
      out[i] = static_cast<std::uint64_t>(c.rank()) * kWords + i;
    const int peer = c.rank() ^ 1;
    Request r = c.irecv(std::as_writable_bytes(std::span<std::uint64_t>(in)),
                        peer, 0);
    c.send(std::as_bytes(std::span<const std::uint64_t>(out)), peer, 0);
    c.wait(r);
    for (std::size_t i = 0; i < kWords; ++i)
      ASSERT_EQ(in[i], static_cast<std::uint64_t>(peer) * kWords + i);
  });
}

}  // namespace
}  // namespace gpawfd::mp
