// Acceptance suite over the checked-in scenario files: the smoke and
// fault-storm scenarios must meet their SLOs end to end, the warm-restart
// scenario must prove persistence across a service rebuild, and the
// flagship Zipf scenario must replay bit-identically under its fixed
// seed. `ctest -R scenario` is the CI gate; these tests ARE the contract
// the scenarios/ directory ships with.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace gpawfd::scenario {
namespace {

std::string scenario_path(const std::string& file) {
  return std::string(GPAWFD_SCENARIO_DIR) + "/" + file;
}

ScenarioReport run_file(const std::string& file) {
  const Scenario s = load_scenario(scenario_path(file));
  return Runner(s).run();
}

TEST(scenario_acceptance, SmokeMeetsItsSlos) {
  const ScenarioReport report = run_file("smoke.json");
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  EXPECT_EQ(report.overall.ok, 64);
  EXPECT_EQ(report.overall.failed, 0);
}

TEST(scenario_acceptance, FaultStormAbsorbedByRetries) {
  const ScenarioReport report = run_file("fault_storm.json");
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  // The storm finishes with zero give-ups and a nonzero retry count:
  // the injected failures were absorbed, not dropped.
  EXPECT_EQ(report.service_counters.at("svc.gave_up"), 0);
  EXPECT_GE(report.service_counters.at("svc.retries"), 1);
  EXPECT_EQ(report.overall.ok, 48);
}

TEST(scenario_acceptance, WarmRestartServesFromTheStore) {
  const ScenarioReport report = run_file("warm_restart.json");
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  // The restarted service warm-loaded the store and re-executed nothing.
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[1].service_delta.at("svc.executed"), 0);
  EXPECT_GE(report.service_counters.at("svc.warm_loaded"), 1);
}

TEST(scenario_acceptance, NodeKillLosesZeroJobs) {
  const ScenarioReport report = run_file("node_kill.json");
  EXPECT_TRUE(report.passed) << report.assertion_summary();
  // A backend died mid-phase: the router noticed, failed the in-flight
  // jobs over to replicas, and the client-visible ledger still balances
  // to the last request.
  EXPECT_EQ(report.overall.issued, report.overall.ok);
  EXPECT_GE(report.service_counters.at("cluster.retried"), 1);
  EXPECT_GE(report.service_counters.at("cluster.marked_down"), 1);
  EXPECT_EQ(report.service_counters.at("cluster.gave_up"), 0);
}

TEST(scenario_acceptance, FlagshipPlanReplaysBitIdentically) {
  const Scenario s = load_scenario(scenario_path("zipf_flagship.json"));
  Generator first(s), second(s);
  // Two independent generators over the same JSON + seed: identical job
  // sequence, priorities, arrival times, fault points, fingerprint.
  EXPECT_EQ(first.plan(), second.plan());
  EXPECT_EQ(first.fault_points(), second.fault_points());
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
  // And the catalog is the documented 64-key Zipf universe.
  EXPECT_EQ(first.catalog().size(), 64u);
  EXPECT_EQ(s.mix.kind, KeyMixParams::Kind::kZipf);
}

TEST(scenario_acceptance, SloGradingSurfacesObservedValueAndMargin) {
  const ScenarioReport report = run_file("smoke.json");
  ASSERT_FALSE(report.assertions.empty());
  for (const AssertionResult& a : report.assertions) {
    // Every graded assertion carries the measured value and its signed
    // headroom; a passing assertion never has negative margin.
    EXPECT_TRUE(a.detail.empty()) << a.slo.metric << ": " << a.detail;
    if (a.passed) EXPECT_GE(a.margin, 0.0) << a.slo.metric;
    // margin semantics: headroom to the bound, per the operator.
    switch (a.slo.op) {
      case SloParams::Op::kLe:
      case SloParams::Op::kLt:
        EXPECT_DOUBLE_EQ(a.margin, a.slo.value - a.observed);
        break;
      case SloParams::Op::kGe:
      case SloParams::Op::kGt:
        EXPECT_DOUBLE_EQ(a.margin, a.observed - a.slo.value);
        break;
      default:
        break;  // kEq/kNe: |distance| with sign by op, covered below
    }
  }
  // The hit-ratio SLO (>= 0.3) passes with real headroom on this
  // workload; its margin must be the distance above the bound.
  bool saw_hit_ratio = false;
  for (const AssertionResult& a : report.assertions) {
    if (a.slo.metric != "hit_ratio") continue;
    saw_hit_ratio = true;
    EXPECT_GT(a.margin, 0.0);
    EXPECT_DOUBLE_EQ(a.margin, a.observed - a.slo.value);
  }
  EXPECT_TRUE(saw_hit_ratio);

  // The machine-readable report carries both new fields per assertion.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"margin\":"), std::string::npos);
  EXPECT_NE(json.find("\"observed\":"), std::string::npos);
  // And the human summary prints the margin next to each verdict.
  EXPECT_NE(report.assertion_summary().find("margin"), std::string::npos);
}

TEST(scenario_acceptance, EveryCheckedInScenarioParses) {
  for (const char* file : {"smoke.json", "fault_storm.json",
                           "warm_restart.json", "zipf_flagship.json",
                           "node_kill.json", "long_soak.json"}) {
    const Scenario s = load_scenario(scenario_path(file));
    EXPECT_FALSE(s.name.empty()) << file;
    EXPECT_FALSE(s.phases.empty()) << file;
    EXPECT_FALSE(s.slos.empty()) << file;
    // The generator accepts it too (catalog non-empty, plan well formed).
    EXPECT_FALSE(Generator(s).plan().empty()) << file;
  }
}

}  // namespace
}  // namespace gpawfd::scenario
