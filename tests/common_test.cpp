#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/vec3.hpp"

namespace gpawfd {
namespace {

TEST(Check, ThrowsWithLocation) {
  try {
    GPAWFD_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { GPAWFD_CHECK(2 + 2 == 4); }

TEST(Vec3Test, IndexingAndArithmetic) {
  Vec3 v{1, 2, 3};
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ((v + Vec3{1, 1, 1}), (Vec3{2, 3, 4}));
  EXPECT_EQ((v * 2), (Vec3{2, 4, 6}));
  EXPECT_EQ((v * Vec3{2, 3, 4}), (Vec3{2, 6, 12}));
  EXPECT_EQ(v.product(), 6);
  EXPECT_EQ(Vec3::cube(5).product(), 125);
  EXPECT_EQ(v.min(), 1);
  EXPECT_EQ(v.max(), 3);
}

TEST(Vec3Test, LinearIndexRoundTrip) {
  const Vec3 shape{3, 4, 5};
  std::int64_t expect = 0;
  for (std::int64_t x = 0; x < 3; ++x)
    for (std::int64_t y = 0; y < 4; ++y)
      for (std::int64_t z = 0; z < 5; ++z) {
        const Vec3 p{x, y, z};
        EXPECT_EQ(linear_index(p, shape), expect);
        EXPECT_EQ(delinearize(expect, shape), p);
        ++expect;
      }
}

TEST(Vec3Test, InBounds) {
  EXPECT_TRUE(in_bounds({0, 0, 0}, {1, 1, 1}));
  EXPECT_FALSE(in_bounds({1, 0, 0}, {1, 1, 1}));
  EXPECT_FALSE(in_bounds({-1, 0, 0}, {1, 1, 1}));
}

TEST(MathTest, CeilDivRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
}

TEST(MathTest, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(1023), 9);
}

TEST(MathTest, Divisors) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(16384).size(), 15u);  // 2^14 has 15 divisors
}

TEST(MathTest, FactorTriplesCoverAndMultiply) {
  for (std::int64_t n : {1, 2, 12, 64, 100}) {
    const auto triples = factor_triples(n);
    EXPECT_FALSE(triples.empty());
    for (Vec3 t : triples) EXPECT_EQ(t.product(), n) << t;
    // (1,1,n) must be present.
    EXPECT_NE(std::find(triples.begin(), triples.end(), Vec3{1, 1, n}),
              triples.end());
  }
  // 12 = 2^2*3: number of ordered triples = product over primes of
  // C(e+2,2) = C(4,2)*C(3,2) = 6*3 = 18.
  EXPECT_EQ(factor_triples(12).size(), 18u);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(TableTest, PrintAndCsv) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("333"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb\n1,2\n333,4\n");
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_seconds(2.5), "2.50 s");
  EXPECT_EQ(fmt_seconds(0.009), "9.00 ms");
  EXPECT_EQ(fmt_seconds(2.5e-6), "2.50 us");
  EXPECT_EQ(fmt_bytes(1.5e6), "1.50 MB");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bandwidth(374.1e6), "374.1 MB/s");
}

}  // namespace
}  // namespace gpawfd
