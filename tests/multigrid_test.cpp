// Multigrid Poisson solver: convergence rate, agreement with the plain
// Jacobi solver, decomposition invariance, and level construction.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gpaw/multigrid.hpp"
#include "gpaw/poisson.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::gpaw {
namespace {

constexpr double kPi = std::numbers::pi;

grid::Array3D<double> sin_rho(const Domain& d, double L) {
  auto rho = d.make_field();
  const double k = 2.0 * kPi / L;
  const double h = d.spacing();
  d.fill(rho, [&](Vec3 p) {
    return k * k * std::sin(k * static_cast<double>(p.x) * h) / (4.0 * kPi);
  });
  return rho;
}

TEST(Multigrid, BuildsAFullHierarchy) {
  mp::ThreadWorld world(1);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, Vec3::cube(32), 0.25);
    MultigridPoissonSolver mg(d);
    // 32 -> 16 -> 8 -> 4 -> 2: stops when local extent < 2.
    EXPECT_GE(mg.levels(), 4);
  });
}

TEST(Multigrid, FewerLevelsWhenDistributed) {
  mp::ThreadWorld world(8);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, Vec3::cube(32), 0.25);  // 2x2x2 process grid, local 16^3
    MultigridPoissonSolver mg(d);
    // Coarsening stops once a local extent would fall under 2:
    // local 16 -> 8 -> 4 -> 2.
    EXPECT_GE(mg.levels(), 3);
    EXPECT_LE(mg.levels(), 4);
  });
}

TEST(Multigrid, ConvergesInFewCyclesWhereJacobiNeedsThousands) {
  mp::ThreadWorld world(1);
  world.run([](mp::ThreadComm& c) {
    const int n = 32;
    const double L = 1.0;
    Domain d(c, Vec3::cube(n), L / n);
    auto rho = sin_rho(d, L);
    auto phi = d.make_field();
    MultigridOptions o;
    o.tolerance = 1e-9;
    MultigridPoissonSolver mg(d, o);
    const auto res = mg.solve(phi, rho);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.cycles, 25) << "V-cycles should converge fast";
  });
}

TEST(Multigrid, MatchesJacobiSolverSolution) {
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    const int n = 16;
    const double L = 1.0;
    Domain d(c, Vec3::cube(n), L / n);
    auto rho = sin_rho(d, L);

    auto phi_mg = d.make_field();
    MultigridOptions mo;
    mo.tolerance = 1e-10;
    MultigridPoissonSolver mg(d, mo);
    const auto mg_res = mg.solve(phi_mg, rho);
    EXPECT_TRUE(mg_res.converged);

    auto phi_j = d.make_field();
    PoissonSolver::Options jo;
    jo.tolerance = 1e-10;
    PoissonSolver jacobi(d, jo);
    const auto j_res = jacobi.solve(phi_j, rho);
    EXPECT_TRUE(j_res.converged);

    double max_diff = 0;
    phi_mg.for_each_interior([&](Vec3 p, double& v) {
      max_diff = std::max(max_diff, std::fabs(v - phi_j.at(p)));
    });
    EXPECT_LT(max_diff, 1e-7);
  });
}

TEST(Multigrid, DecompositionInvariantSolution) {
  auto solve_probe = [](int ranks) {
    double probe = 0;
    mp::ThreadWorld world(ranks);
    world.run([&](mp::ThreadComm& c) {
      const int n = 16;
      Domain d(c, Vec3::cube(n), 1.0 / n);
      auto rho = sin_rho(d, 1.0);
      auto phi = d.make_field();
      MultigridOptions o;
      o.tolerance = 1e-11;
      MultigridPoissonSolver mg(d, o);
      mg.solve(phi, rho);
      const Vec3 pt{3, 5, 7};
      double local = d.box().contains(pt) ? phi.at(pt - d.box().lo) : 0.0;
      const double total = c.allreduce_sum(local);
      if (c.rank() == 0) probe = total;
    });
    return probe;
  };
  EXPECT_NEAR(solve_probe(1), solve_probe(8), 1e-8);
}

TEST(Multigrid, ResidualDropsByOrdersOfMagnitudePerCycle) {
  mp::ThreadWorld world(1);
  world.run([](mp::ThreadComm& c) {
    const int n = 32;
    Domain d(c, Vec3::cube(n), 1.0 / n);
    auto rho = sin_rho(d, 1.0);
    auto phi = d.make_field();
    // One cycle vs three cycles.
    MultigridOptions o1;
    o1.max_cycles = 1;
    o1.tolerance = 0;
    MultigridPoissonSolver mg1(d, o1);
    const auto r1 = mg1.solve(phi, rho);
    auto phi3 = d.make_field();
    MultigridOptions o3 = o1;
    o3.max_cycles = 3;
    MultigridPoissonSolver mg3(d, o3);
    const auto r3 = mg3.solve(phi3, rho);
    EXPECT_LT(r3.relative_residual, r1.relative_residual * 0.2);
  });
}

TEST(Multigrid, NonPeriodicDomainRejected) {
  mp::ThreadWorld world(1);
  world.run([](mp::ThreadComm& c) {
    Domain d(c, Vec3::cube(16), 0.5, 2, /*periodic=*/false);
    EXPECT_THROW(MultigridPoissonSolver{d}, gpawfd::Error);
  });
}

}  // namespace
}  // namespace gpawfd::gpaw
