#include <gtest/gtest.h>

#include "grid/decomposition.hpp"

namespace gpawfd::grid {
namespace {

TEST(Decomposition, LocalBoxesTileTheGlobalGrid) {
  const Vec3 g{10, 7, 5};
  Decomposition d(g, {3, 2, 1}, 1);
  std::int64_t total = 0;
  for (std::int64_t r = 0; r < d.ranks(); ++r) {
    const Box3 b = d.local_box_of_rank(r);
    EXPECT_FALSE(b.empty());
    total += b.volume();
    // No overlap with any other rank.
    for (std::int64_t q = 0; q < r; ++q)
      EXPECT_TRUE(intersect(b, d.local_box_of_rank(q)).empty());
  }
  EXPECT_EQ(total, g.product());
}

TEST(Decomposition, RemainderSpreadOverLeadingRanks) {
  // 10 points over 3 processes -> 4,3,3.
  Decomposition d({10, 3, 3}, {3, 1, 1}, 1);
  EXPECT_EQ(d.local_box({0, 0, 0}).shape().x, 4);
  EXPECT_EQ(d.local_box({1, 0, 0}).shape().x, 3);
  EXPECT_EQ(d.local_box({2, 0, 0}).shape().x, 3);
  // Boxes are contiguous.
  EXPECT_EQ(d.local_box({0, 0, 0}).hi.x, d.local_box({1, 0, 0}).lo.x);
  EXPECT_EQ(d.local_box({1, 0, 0}).hi.x, d.local_box({2, 0, 0}).lo.x);
}

TEST(Decomposition, CoordsRankRoundTrip) {
  Decomposition d({8, 8, 8}, {2, 2, 2}, 2);
  for (std::int64_t r = 0; r < 8; ++r)
    EXPECT_EQ(d.rank_of(d.coords_of(r)), r);
}

TEST(Decomposition, PeriodicNeighbors) {
  Decomposition d({8, 8, 8}, {2, 4, 1}, 2);
  EXPECT_EQ(d.neighbor({0, 0, 0}, 0, 0), (Vec3{1, 0, 0}));  // wraps
  EXPECT_EQ(d.neighbor({0, 0, 0}, 0, 1), (Vec3{1, 0, 0}));
  EXPECT_EQ(d.neighbor({0, 3, 0}, 1, 1), (Vec3{0, 0, 0}));  // wraps
  EXPECT_EQ(d.neighbor({0, 2, 0}, 1, 0), (Vec3{0, 1, 0}));
  EXPECT_EQ(d.neighbor({0, 0, 0}, 2, 1), (Vec3{0, 0, 0}));  // self (p=1)
}

TEST(Decomposition, BestMinimizesAggregateSurface) {
  // For a cube and 8 ranks, 2x2x2 is optimal.
  const auto d = Decomposition::best(Vec3::cube(64), 8, 2);
  EXPECT_EQ(d.process_grid(), (Vec3{2, 2, 2}));
  // For 4 ranks on a cube, a 1x2x2-style split beats 1x1x4.
  const auto d4 = Decomposition::best(Vec3::cube(64), 4, 2);
  const Vec3 pg = d4.process_grid();
  std::int64_t ones = 0;
  for (int i = 0; i < 3; ++i)
    if (pg[i] == 1) ++ones;
  EXPECT_EQ(ones, 1);
  EXPECT_EQ(pg.product(), 4);
}

TEST(Decomposition, BestPrefersLongDimensionForAnisotropicGrid) {
  // Grid much longer in x: splitting x costs the least surface.
  const auto d = Decomposition::best({256, 16, 16}, 4, 2);
  EXPECT_EQ(d.process_grid(), (Vec3{4, 1, 1}));
}

TEST(Decomposition, SurfaceCountsMatchHandComputation) {
  // 64^3 grid, 2x2x2 processes, ghost 2: every rank sends 6 faces of
  // 2*32*32 points.
  Decomposition d(Vec3::cube(64), {2, 2, 2}, 2);
  EXPECT_EQ(d.send_bytes({0, 0, 0}, 1), 6 * 2 * 32 * 32);
  EXPECT_EQ(d.aggregate_surface(), 8 * 6 * 2 * 32 * 32);
}

TEST(Decomposition, SingleProcessDimensionCostsNoBytes) {
  // p=1 in z: periodic wrap is a local copy, not network traffic.
  // Local shape is (8, 8, 16); x and y faces are counted, z is not.
  Decomposition d(Vec3::cube(16), {2, 2, 1}, 2);
  const std::int64_t x_faces = 2 * 2 * (8 * 16);  // sides * ghost * cross
  const std::int64_t y_faces = 2 * 2 * (8 * 16);
  EXPECT_EQ(d.send_bytes({0, 0, 0}, 1), x_faces + y_faces);
  EXPECT_EQ(d.send_bytes({0, 0, 0}, 8), 8 * (x_faces + y_faces));
}

TEST(Decomposition, TooManyRanksThrows) {
  EXPECT_THROW(Decomposition::best(Vec3::cube(4), 1024, 2), gpawfd::Error);
  EXPECT_THROW(Decomposition(Vec3::cube(4), {8, 1, 1}, 2), gpawfd::Error);
}

TEST(Decomposition, PaperScaleShapes) {
  // The paper's Fig. 7 job: 192^3 over 4096 nodes (hybrid) and 16384
  // virtual-mode ranks (flat). Both must decompose; flat cuts 4x finer.
  const auto hybrid = Decomposition::best(Vec3::cube(192), 4096, 2);
  const auto flat = Decomposition::best(Vec3::cube(192), 16384, 2);
  EXPECT_EQ(hybrid.process_grid(), (Vec3{16, 16, 16}));
  EXPECT_EQ(hybrid.local_box({0, 0, 0}).shape(), Vec3::cube(12));
  EXPECT_EQ(flat.ranks(), 16384);
  // The flat decomposition has more aggregate surface per grid.
  EXPECT_GT(flat.aggregate_surface(), hybrid.aggregate_surface());
}

}  // namespace
}  // namespace gpawfd::grid
