// RMM-DIIS eigensolver and the Hartree SCF loop.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gpaw/rmmdiis.hpp"
#include "gpaw/scf.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::gpaw {
namespace {

grid::Array3D<double> harmonic_potential(const Domain& d, int n, double h,
                                         double w) {
  auto v = d.make_field();
  d.fill(v, [&](Vec3 p) {
    auto x2 = [&](std::int64_t q) {
      const double x = (static_cast<double>(q) - n / 2.0) * h;
      return x * x;
    };
    return 0.5 * w * w * (x2(p.x) + x2(p.y) + x2(p.z));
  });
  return v;
}

TEST(RmmDiis, HarmonicWellMatchesChebyshevSolver) {
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    const int n = 20;
    const double h = 0.55;
    Domain d(c, Vec3::cube(n), h);
    const int nbands = 2;

    Hamiltonian h1(d, harmonic_potential(d, n, h, 1.0), nbands);
    WaveFunctions wfs1(d, nbands);
    wfs1.randomize(9);
    EigensolverOptions co;
    co.tolerance = 1e-10;
    const auto cheb = solve_lowest_eigenstates(h1, wfs1, co);
    ASSERT_TRUE(cheb.converged);

    Hamiltonian h2(d, harmonic_potential(d, n, h, 1.0), nbands);
    WaveFunctions wfs2(d, nbands);
    wfs2.randomize(10);
    RmmDiisOptions ro;
    ro.max_iterations = 300;
    ro.tolerance = 1e-10;
    const auto rmm = rmm_diis_solve(h2, wfs2, ro);
    EXPECT_TRUE(rmm.converged);

    for (int b = 0; b < nbands; ++b)
      EXPECT_NEAR(rmm.eigenvalues[static_cast<std::size_t>(b)],
                  cheb.eigenvalues[static_cast<std::size_t>(b)], 1e-6)
          << "band " << b;
  });
}

TEST(RmmDiis, ResidualNormsShrink) {
  mp::ThreadWorld world(2);
  world.run([](mp::ThreadComm& c) {
    const int n = 16;
    Domain d(c, Vec3::cube(n), 0.6);
    Hamiltonian h(d, harmonic_potential(d, n, 0.6, 1.0), 2);
    WaveFunctions wfs(d, 2);
    wfs.randomize(3);
    RmmDiisOptions o;
    o.max_iterations = 60;
    o.tolerance = 1e-9;
    const auto res = rmm_diis_solve(h, wfs, o);
    for (double r : res.residual_norms) EXPECT_LT(r, 1e-2);
  });
}

TEST(Scf, NonInteractingLimitReproducesBareEigenvalues) {
  // With zero occupation the Hartree potential vanishes and the SCF
  // eigenvalues must equal the bare (one-shot) ones.
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    const int n = 16;
    const double h = 0.6;
    Domain d(c, Vec3::cube(n), h);

    Hamiltonian bare(d, harmonic_potential(d, n, h, 1.0), 1);
    WaveFunctions wfs0(d, 1);
    wfs0.randomize(5);
    EigensolverOptions eo;
    eo.tolerance = 1e-10;
    const auto ref = solve_lowest_eigenstates(bare, wfs0, eo);

    ScfOptions so;
    so.eigensolver.tolerance = 1e-10;
    ScfLoop scf(d, harmonic_potential(d, n, h, 1.0), {0.0}, so);
    WaveFunctions wfs(d, 1);
    wfs.randomize(6);
    const auto res = scf.run(wfs);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalues[0], ref.eigenvalues[0], 1e-7);
    EXPECT_NEAR(res.total_energy, 0.0, 1e-10);  // zero occupation
  });
}

TEST(Scf, HartreeRepulsionRaisesTheLevel) {
  // Two electrons in the well: their mutual Hartree repulsion must push
  // the one-particle level above the bare 1.5 (and converge).
  mp::ThreadWorld world(4);
  world.run([](mp::ThreadComm& c) {
    const int n = 16;
    const double h = 0.7;
    Domain d(c, Vec3::cube(n), h);
    ScfOptions so;
    so.density_tolerance = 1e-7;
    so.eigensolver.tolerance = 1e-9;
    ScfLoop scf(d, harmonic_potential(d, n, h, 1.0), {2.0}, so);
    WaveFunctions wfs(d, 1);
    wfs.randomize(7);
    const auto res = scf.run(wfs);
    EXPECT_TRUE(res.converged) << res.density_change;
    EXPECT_GT(res.eigenvalues[0], 1.5);
    EXPECT_LT(res.eigenvalues[0], 4.0);
    // E_total = 2 eps - E_H < 2 eps (double counting removed).
    EXPECT_LT(res.total_energy, 2 * res.eigenvalues[0]);
    EXPECT_GT(res.total_energy, 2 * 1.5 - 1e-9);
  });
}

TEST(Scf, DecompositionInvariant) {
  auto run = [](int ranks) {
    double e = 0;
    mp::ThreadWorld world(ranks);
    world.run([&](mp::ThreadComm& c) {
      const int n = 16;
      const double h = 0.7;
      Domain d(c, Vec3::cube(n), h);
      ScfOptions so;
      so.density_tolerance = 1e-8;
      so.eigensolver.tolerance = 1e-10;
      ScfLoop scf(d, harmonic_potential(d, n, h, 1.0), {2.0}, so);
      WaveFunctions wfs(d, 1);
      wfs.randomize(7);
      const auto res = scf.run(wfs);
      if (c.rank() == 0) e = res.total_energy;
    });
    return e;
  };
  EXPECT_NEAR(run(1), run(8), 1e-6);
}

}  // namespace
}  // namespace gpawfd::gpaw
