#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mp/thread_comm.hpp"

namespace gpawfd::mp {
namespace {

std::span<const std::byte> bytes_of(const std::vector<int>& v) {
  return std::as_bytes(std::span<const int>(v));
}
std::span<std::byte> writable_bytes_of(std::vector<int>& v) {
  return std::as_writable_bytes(std::span<int>(v));
}

TEST(ThreadComm, PingPong) {
  ThreadWorld world(2);
  world.run([](ThreadComm& c) {
    std::vector<int> msg{1, 2, 3};
    std::vector<int> got(3);
    if (c.rank() == 0) {
      c.send(bytes_of(msg), 1, 7);
      c.recv(writable_bytes_of(got), 1, 8);
      EXPECT_EQ(got, (std::vector<int>{4, 5, 6}));
    } else {
      c.recv(writable_bytes_of(got), 0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
      std::vector<int> reply{4, 5, 6};
      c.send(bytes_of(reply), 0, 8);
    }
  });
}

TEST(ThreadComm, RecvBeforeSendBlocksUntilMessage) {
  ThreadWorld world(2);
  world.run([](ThreadComm& c) {
    if (c.rank() == 0) {
      std::vector<int> got(1);
      c.recv(writable_bytes_of(got), 1, 0);  // posted before the send
      EXPECT_EQ(got[0], 99);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::vector<int> msg{99};
      c.send(bytes_of(msg), 0, 0);
    }
  });
}

TEST(ThreadComm, TagMatchingSelectsCorrectMessage) {
  ThreadWorld world(2);
  world.run([](ThreadComm& c) {
    if (c.rank() == 0) {
      std::vector<int> a{1}, b{2};
      c.send(bytes_of(a), 1, 10);
      c.send(bytes_of(b), 1, 20);
    } else {
      std::vector<int> got(1);
      c.recv(writable_bytes_of(got), 0, 20);  // out of arrival order
      EXPECT_EQ(got[0], 2);
      c.recv(writable_bytes_of(got), 0, 10);
      EXPECT_EQ(got[0], 1);
    }
  });
}

TEST(ThreadComm, FifoOrderWithinSameTag) {
  ThreadWorld world(2);
  world.run([](ThreadComm& c) {
    constexpr int kN = 100;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        std::vector<int> msg{i};
        c.send(bytes_of(msg), 1, 5);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::vector<int> got(1);
        c.recv(writable_bytes_of(got), 0, 5);
        EXPECT_EQ(got[0], i);
      }
    }
  });
}

TEST(ThreadComm, NonblockingOverlapAllDirections) {
  // The paper's key pattern: post all sends and receives, then wait.
  constexpr int kRanks = 8;
  ThreadWorld world(kRanks);
  world.run([](ThreadComm& c) {
    const int me = c.rank();
    std::vector<std::vector<int>> inbox(kRanks, std::vector<int>(1));
    std::vector<Request> reqs;
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == me) continue;
      reqs.push_back(c.irecv(writable_bytes_of(inbox[peer]), peer, 1));
    }
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == me) continue;
      std::vector<int> msg{me * 100 + peer};
      reqs.push_back(c.isend(bytes_of(msg), peer, 1));
    }
    c.wait_all(reqs);
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer != me) {
        EXPECT_EQ(inbox[peer][0], peer * 100 + me);
      }
    }
  });
}

TEST(ThreadComm, SendToSelf) {
  ThreadWorld world(1);
  world.run([](ThreadComm& c) {
    std::vector<int> msg{42}, got(1);
    Request r = c.irecv(writable_bytes_of(got), 0, 0);
    c.send(bytes_of(msg), 0, 0);
    c.wait(r);
    EXPECT_EQ(got[0], 42);
  });
}

TEST(ThreadComm, StatsCountBytesAndMessages) {
  ThreadWorld world(2);
  world.run([](ThreadComm& c) {
    std::vector<int> payload(256);
    if (c.rank() == 0) {
      c.send(bytes_of(payload), 1, 0);
      c.send(bytes_of(payload), 1, 0);
    } else {
      c.recv(writable_bytes_of(payload), 0, 0);
      c.recv(writable_bytes_of(payload), 0, 0);
    }
  });
  EXPECT_EQ(world.comm(0).stats().messages_sent.load(), 2);
  EXPECT_EQ(world.comm(0).stats().bytes_sent.load(), 2 * 256 * 4);
  EXPECT_EQ(world.comm(1).stats().bytes_received.load(), 2 * 256 * 4);
}

TEST(ThreadComm, MultipleModeAllowsConcurrentCallsFromOneRank) {
  // Four threads of rank 0 each exchange with the matching thread of
  // rank 1 — the hybrid-multiple pattern.
  ThreadWorld world(2, ThreadMode::kMultiple);
  world.run([](ThreadComm& c) {
    constexpr int kThreads = 4;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&c, t] {
        std::vector<int> msg{t}, got(1);
        const int peer = 1 - c.rank();
        Request r = c.irecv(writable_bytes_of(got), peer, t);
        c.send(bytes_of(msg), peer, t);
        c.wait(r);
        EXPECT_EQ(got[0], t);
      });
    }
    for (auto& t : ts) t.join();
  });
}

TEST(ThreadComm, SingleModeRejectsSecondThread) {
  ThreadWorld world(1, ThreadMode::kSingle);
  world.run([](ThreadComm& c) {
    std::vector<int> msg{1}, got(1);
    Request r = c.irecv(writable_bytes_of(got), 0, 0);
    c.send(bytes_of(msg), 0, 0);
    c.wait(r);
    std::thread other([&c] {
      std::vector<int> m{2};
      EXPECT_THROW(c.send(bytes_of(m), 0, 1), gpawfd::Error);
    });
    other.join();
  });
}

TEST(ThreadComm, TooSmallReceiveBufferThrows) {
  ThreadWorld world(2);
  EXPECT_THROW(world.run([](ThreadComm& c) {
    if (c.rank() == 0) {
      std::vector<int> big(16);
      c.send(bytes_of(big), 1, 0);
    } else {
      std::vector<int> tiny(1);
      c.recv(writable_bytes_of(tiny), 0, 0);
    }
  }),
               gpawfd::Error);
}

TEST(ThreadWorld, ExceptionInRankFunctionPropagates) {
  ThreadWorld world(4);
  EXPECT_THROW(world.run([](ThreadComm& c) {
    if (c.rank() == 2) throw gpawfd::Error("rank 2 failed");
  }),
               gpawfd::Error);
}

}  // namespace
}  // namespace gpawfd::mp
